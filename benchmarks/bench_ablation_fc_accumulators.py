"""Ablation A2: interleaved accumulators in the FC core (Section IV-B).

Sweeps the number of accumulator lanes for the paper's FC workloads
(64->10 and 900->64) showing the latency/resource trade-off the paper
describes: below ~11 lanes the 11-cycle float add forces II > 1; at or
beyond it the loop fully pipelines at the cost of more adders.
"""

import numpy as np
from conftest import emit

from repro.hls import AccumulatorModel, interleaved_sum
from repro.report import banner, format_table

LANES = [1, 2, 4, 8, 11, 12, 16]


def test_accumulator_lane_sweep(benchmark):
    def rows():
        out = []
        for terms in (64, 900):
            for lanes in LANES:
                m = AccumulatorModel(terms, lanes)
                out.append(
                    [terms, lanes, m.ii, m.total_latency,
                     m.speedup_vs_single(), int(m.resources.dsp)]
                )
        return out

    data = benchmark(rows)
    text = banner("A2") + "\n" + format_table(
        ["terms", "lanes", "II", "latency", "speedup vs 1 lane", "adder DSP"],
        data,
        title="Ablation A2 — interleaved accumulators in the FC core",
        float_fmt="{:.2f}",
    )
    emit("ablation_fc_accumulators.txt", text)
    by = {(r[0], r[1]): r for r in data}
    # II reaches 1 exactly when lanes >= the 11-cycle add latency.
    assert by[(900, 8)][2] > 1
    assert by[(900, 11)][2] == 1 and by[(900, 12)][2] == 1
    # Latency improves monotonically, resources grow monotonically.
    for terms in (64, 900):
        lat = [by[(terms, l)][3] for l in LANES]
        dsp = [by[(terms, l)][5] for l in LANES]
        assert lat == sorted(lat, reverse=True)
        assert dsp == sorted(dsp)


def test_interleaved_sum_throughput(benchmark, rng):
    vals = rng.standard_normal((64, 900)).astype(np.float32)
    out = benchmark(interleaved_sum, vals, 12)
    assert np.allclose(out, vals.sum(axis=-1), rtol=1e-4, atol=1e-2)
