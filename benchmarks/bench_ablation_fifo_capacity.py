"""Ablation A5: inter-actor FIFO capacity vs pipeline throughput.

The paper sizes its memory-structure FIFOs for full buffering; the small
inter-core stream FIFOs still need enough slack to decouple producer and
consumer schedules. This bench sweeps the default channel capacity of the
elaborated USPS design and measures the cycle-simulated steady interval:
capacity 1 serializes the handshakes, a few slots recover the full rate,
and further depth buys nothing — the classic latency-insensitive result.
"""

import numpy as np
import pytest
from conftest import emit

from repro.core import network_perf, random_weights, usps_design
from repro.core.builder import build_network
from repro.report import banner, format_table

CAPACITIES = [1, 2, 4, 8, 16]


def measure(capacity: int) -> float:
    design = usps_design()
    weights = random_weights(design, seed=0)
    batch = np.random.default_rng(0).uniform(0, 1, (5, 1, 16, 16)).astype(np.float32)
    built = build_network(design, weights, batch, channel_capacity=capacity)
    built.run()
    return float(np.mean(np.diff(built.image_completion_cycles())))


def test_fifo_capacity_sweep(benchmark):
    def sweep():
        return [[c, measure(c)] for c in CAPACITIES]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    model = network_perf(usps_design()).interval
    text = banner("A5") + "\n" + format_table(
        ["channel capacity", "measured interval (cycles/img)"],
        rows,
        title=f"Ablation A5 — FIFO capacity vs throughput (model: {model})",
    )
    emit("ablation_fifo_capacity.txt", text)
    by = dict((c, i) for c, i in rows)
    # Deeper never slower; a few slots reach the model's full rate; extra
    # depth beyond that buys nothing.
    intervals = [by[c] for c in CAPACITIES]
    assert intervals == sorted(intervals, reverse=True)
    assert by[4] == pytest.approx(model, rel=0.02)
    assert by[16] == pytest.approx(by[4], rel=0.01)
    assert by[1] > by[4]
