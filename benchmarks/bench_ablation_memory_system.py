"""Ablation A6: behavioral line buffer vs literal SST filter chain.

Elaborates the same design twice — once with the fast behavioral
sliding-window actor, once with the literal actor-per-tap filter chain
(full-buffering FIFO depths, the faithful Section II-B structure) — and
compares outputs (bit-identical), steady-state timing, and elaboration/
simulation cost. Demonstrates that the behavioral model used everywhere
else is a sound abstraction of the literal memory system.
"""

import numpy as np
from conftest import emit

from repro.core import random_weights, tiny_design
from repro.core.builder import build_network
from repro.report import banner, format_table


def elaborate_and_run(memory_system: str):
    design = tiny_design()
    weights = random_weights(design, seed=3)
    batch = np.random.default_rng(3).uniform(0, 1, (4, 1, 8, 8)).astype(np.float32)
    built = build_network(design, weights, batch, memory_system=memory_system)
    built.run()
    return built


def test_memory_system_fidelity(benchmark):
    def compare():
        behavioral = elaborate_and_run("behavioral")
        literal = elaborate_and_run("literal")
        ib = float(np.mean(np.diff(behavioral.image_completion_cycles())))
        il = float(np.mean(np.diff(literal.image_completion_cycles())))
        return {
            "identical": bool(
                np.array_equal(behavioral.outputs(), literal.outputs())
            ),
            "behavioral_actors": len(behavioral.graph.actors),
            "literal_actors": len(literal.graph.actors),
            "behavioral_interval": ib,
            "literal_interval": il,
        }

    data = benchmark.pedantic(compare, rounds=1, iterations=1)
    text = banner("A6") + "\n" + format_table(
        ["memory system", "actors", "interval (cycles/img)"],
        [
            ["behavioral line buffer", data["behavioral_actors"],
             data["behavioral_interval"]],
            ["literal filter chain", data["literal_actors"],
             data["literal_interval"]],
        ],
        title=f"Ablation A6 — memory-system fidelity "
              f"(outputs identical: {data['identical']})",
    )
    emit("ablation_memory_system.txt", text)
    assert data["identical"]
    assert data["literal_actors"] > data["behavioral_actors"]
    # Same streaming rates: intervals agree within 10%.
    assert abs(data["literal_interval"] - data["behavioral_interval"]) <= (
        0.10 * data["behavioral_interval"]
    )


def test_behavioral_elaboration_speed(benchmark):
    benchmark(elaborate_and_run, "behavioral")


def test_literal_elaboration_speed(benchmark):
    def run():
        return elaborate_and_run("literal")

    benchmark.pedantic(run, rounds=2, iterations=1)
