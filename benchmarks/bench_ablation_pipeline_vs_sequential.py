"""Ablation A3: high-level pipeline versus layer-at-a-time execution.

The paper's central argument (Sections I and IV-C): a pure dataflow
pipeline keeps all layers busy and amortizes over batches, while the
related-work pattern of accelerating one layer at a time pays off-chip
round trips and gains nothing from batching. This bench reproduces the
comparison for both test cases.
"""

from conftest import emit

from repro.baselines import sequential_perf
from repro.core import batch_sweep, cifar10_design, network_perf, usps_design
from repro.fpga import VC707
from repro.report import banner, format_table

BATCHES = [1, 5, 20, 50]


def comparison_rows():
    rows = []
    for design in (usps_design(), cifar10_design()):
        df = network_perf(design)
        seq = sequential_perf(design)
        for b in BATCHES:
            rows.append(
                [
                    design.name,
                    b,
                    df.mean_cycles_per_image(b) / 100,
                    seq.mean_cycles_per_image(b) / 100,
                    seq.mean_cycles_per_image(b) / df.mean_cycles_per_image(b),
                ]
            )
    return rows


def test_pipeline_vs_sequential(benchmark):
    rows = benchmark(comparison_rows)
    text = banner("A3") + "\n" + format_table(
        ["design", "batch", "dataflow us/img", "sequential us/img", "speedup"],
        rows,
        title="Ablation A3 — dataflow pipeline vs layer-at-a-time",
    )
    emit("ablation_pipeline_vs_sequential.txt", text)
    for design_name in ("usps-tc1", "cifar10-tc2"):
        mine = [r for r in rows if r[0] == design_name]
        # The dataflow design always wins and its advantage grows with the
        # batch (sequential is flat; the pipeline amortizes its fill).
        speedups = [r[4] for r in mine]
        assert all(s > 1.0 for s in speedups)
        assert speedups == sorted(speedups)


def test_sequential_flat_vs_dataflow_converging(benchmark):
    def curves():
        design = cifar10_design()
        df = [r["mean_us"] for r in batch_sweep(design, BATCHES, VC707)]
        seq_cycles = sequential_perf(design).cycles_per_image
        seq = [seq_cycles / 100 for _ in BATCHES]
        return df, seq

    df, seq = benchmark(curves)
    assert df == sorted(df, reverse=True)  # converging
    assert len(set(seq)) == 1  # flat
    assert df[-1] < seq[-1]
