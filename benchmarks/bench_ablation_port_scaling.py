"""Ablation A4: port-scaling sweep of the convolutional layers.

Section IV-A's scalability claim, quantified: sweep a conv layer from
single-input-port/single-output-port to fully parallel and report the
initiation interval, the network interval and the resource bill at every
step — the trade-off the paper tuned "empirically".
"""

from conftest import emit

from repro.core import (
    cifar10_design,
    design_resources,
    network_perf,
    single_port_design,
    usps_design,
    with_layer_ports,
)
from repro.core.scaling import divisors
from repro.fpga import XC7VX485T
from repro.report import banner, format_table


def sweep_conv1(design):
    base = single_port_design(design)
    conv1 = base.specs[0]
    rows = []
    for out_p in divisors(conv1.out_fm):
        d = with_layer_ports(base, "conv1", 1, out_p)
        perf = network_perf(d)
        res = design_resources(d)
        rows.append(
            [
                design.name,
                f"1/{out_p}",
                d.specs[0].ii,
                perf.interval,
                int(res.total.dsp),
                res.fits(XC7VX485T),
            ]
        )
    return rows


def test_port_scaling_usps(benchmark):
    rows = benchmark(sweep_conv1, usps_design())
    text = banner("A4") + "\n" + format_table(
        ["design", "conv1 ports", "conv1 II", "network interval", "DSP", "fits"],
        rows,
        title="Ablation A4 — conv1 port scaling (test case 1)",
    )
    emit("ablation_port_scaling_tc1.txt", text)
    intervals = [r[3] for r in rows]
    dsps = [r[4] for r in rows]
    assert intervals == sorted(intervals, reverse=True)
    assert dsps == sorted(dsps)
    assert all(r[5] for r in rows)  # everything fits for the small net


def test_port_scaling_cifar(benchmark):
    rows = benchmark(sweep_conv1, cifar10_design())
    text = format_table(
        ["design", "conv1 ports", "conv1 II", "network interval", "DSP", "fits"],
        rows,
        title="Ablation A4 — conv1 port scaling (test case 2)",
    )
    emit("ablation_port_scaling_tc2.txt", text)
    # Parallelism helps until the resource wall: the most parallel configs
    # of the big network no longer fit, exactly the paper's situation
    # ("the convolutional layers require too much area to allow
    # parallelization").
    assert rows[0][5] is True
    assert rows[-1][5] is False
    intervals = [r[3] for r in rows]
    assert intervals == sorted(intervals, reverse=True)
