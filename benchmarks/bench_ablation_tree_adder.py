"""Ablation A1: tree adder versus sequential adder chain (Section IV-A).

The paper motivates the tree adder as reducing the core's pipeline depth.
This bench quantifies the latency gap across reduction widths (including
the widths the paper's cores instantiate: 25-tap windows, 150-way groups)
and times the two functional reductions.
"""

import numpy as np
from conftest import emit

from repro.hls import AdderTreeModel, chain_reduce, tree_reduce
from repro.report import banner, format_table

WIDTHS = [9, 25, 64, 150, 900]


def test_tree_vs_chain_depth_model(benchmark):
    def rows():
        out = []
        for n in WIDTHS:
            m = AdderTreeModel(n)
            out.append(
                [n, m.depth_levels, m.latency, m.chain_latency,
                 m.chain_latency / m.latency, m.n_adders]
            )
        return out

    data = benchmark(rows)
    text = banner("A1") + "\n" + format_table(
        ["inputs", "tree levels", "tree latency", "chain latency",
         "depth speedup", "adders"],
        data,
        title="Ablation A1 — tree adder vs sequential chain (cycles)",
    )
    emit("ablation_tree_adder.txt", text)
    for n, _, tree_lat, chain_lat, speedup, adders in data:
        assert tree_lat < chain_lat
        assert adders == n - 1
    # The advantage grows with width (the paper's large cores need it most).
    speedups = [r[4] for r in data]
    assert speedups == sorted(speedups)


def test_tree_reduce_throughput(benchmark, rng):
    vals = rng.standard_normal((256, 150)).astype(np.float32)
    out = benchmark(tree_reduce, vals)
    assert np.allclose(out, vals.sum(axis=-1), rtol=1e-4, atol=1e-3)


def test_chain_reduce_throughput(benchmark, rng):
    vals = rng.standard_normal((256, 150)).astype(np.float32)
    out = benchmark(chain_reduce, vals)
    assert np.allclose(out, vals.sum(axis=-1), rtol=1e-4, atol=1e-3)
