"""Calibration study: reconciling the ideal model with the paper's numbers.

The ideal dataflow model runs faster than the paper's measured board:
2.56 vs 5.8 µs (TC1) and 94.1 vs 128.1 µs (TC2). Fitting a single
per-coordinate *loop overhead* — the cycles Vivado HLS inserts between
iterations of the outer coordinate loop when flattening is imperfect —
recovers both measurements: each test case independently implies ~3-4.3
cycles, and the shared mid-point constant lands both within 20%. The
absolute-latency gap is therefore a modeled-vs-real HLS pipelining
efficiency, not a structural disagreement.
"""

from conftest import emit

from repro.core import cifar10_design, usps_design
from repro.core.perf_model import fit_dma_setup, fit_loop_overhead, network_perf
from repro.report import format_table

#: Paper Table II latencies at 100 MHz, in cycles.
MEASURED = {"usps-tc1": 580, "cifar10-tc2": 12_810}


def test_loop_overhead_calibration(benchmark):
    def calibrate():
        rows = []
        fits = {}
        for design in (usps_design(), cifar10_design()):
            meas = MEASURED[design.name]
            ideal = network_perf(design).interval
            oh = fit_loop_overhead(design, meas)
            fitted = network_perf(design, loop_overhead=oh).interval
            fits[design.name] = oh
            rows.append([design.name, ideal, meas, oh, fitted])
        shared = sum(fits.values()) / len(fits)
        for design in (usps_design(), cifar10_design()):
            meas = MEASURED[design.name]
            iv = network_perf(design, loop_overhead=shared).interval
            rows.append(
                [f"{design.name} @ shared {shared:.2f}", "-", meas, shared, iv]
            )
        return rows

    rows = benchmark.pedantic(calibrate, rounds=1, iterations=1)
    text = format_table(
        ["design", "ideal interval", "paper measured", "fitted overhead",
         "modeled interval"],
        rows,
        title="Calibration — per-coordinate HLS loop overhead vs Table II",
    )
    emit("calibration_loop_overhead.txt", text)
    # Individually fitted overheads are small, similar constants...
    tc1_oh, tc2_oh = rows[0][3], rows[1][3]
    assert 2.0 < tc1_oh < 5.0 and 2.0 < tc2_oh < 5.0
    assert abs(tc1_oh - tc2_oh) < 2.0
    # ...and the shared constant explains both measurements within 20%.
    for r in rows[2:]:
        assert abs(r[4] - r[2]) / r[2] < 0.20


def test_dma_setup_hypothesis_rejected(benchmark):
    """The competing explanation fails the two-measurement consistency test.

    If the paper's extra latency were per-image DMA descriptor setup, both
    test cases should imply a similar constant; instead they demand 324 vs
    ~9700 cycles — a 30x disagreement, versus 1.4x for the loop-overhead
    hypothesis. Fitting two observations with one parameter each is easy;
    fitting both with *one shared* parameter is the test, and only the
    per-coordinate model passes it.
    """

    def fit():
        return {
            "tc1": fit_dma_setup(usps_design(), MEASURED["usps-tc1"]),
            "tc2": fit_dma_setup(cifar10_design(), MEASURED["cifar10-tc2"]),
        }

    fits = benchmark.pedantic(fit, rounds=1, iterations=1)
    emit(
        "calibration_dma_hypothesis.txt",
        format_table(
            ["design", "required per-image DMA setup (cycles)"],
            [["usps-tc1", fits["tc1"]], ["cifar10-tc2", fits["tc2"]]],
            title="Calibration — rejected hypothesis: per-image DMA setup",
        ),
    )
    ratio = fits["tc2"] / max(fits["tc1"], 1)
    assert ratio > 10  # wildly inconsistent constants -> hypothesis rejected
