"""Depth-prover benchmark: full buffering vs certified vs bisected floors.

Two modes, mirroring ``bench_sim_engine.py``:

* ``pytest benchmarks/bench_depths.py`` — pytest-benchmark micro
  benchmarks of the prover itself (``infer_depth_plan`` is pure static
  analysis and must stay effectively free next to a simulation run).
* ``PYTHONPATH=src python benchmarks/bench_depths.py [--quick]`` —
  sweep the model zoo with ``repro.analysis.depths.run_shrink`` and
  write ``BENCH_depths.json``: per design, the full-buffering channel
  words, the certified words, the empirically bisected floor words
  (tiny only — bisection simulates O(channels x log depth) runs), the
  prover runtime, and the throughput price of the word-minimal plan
  (``cycles_ratio``: certified-plan cycles / full-buffering cycles).

``--quick`` restricts the sweep to the small designs (tiny, usps-tc1);
the full sweep adds cifar10-tc2 plus the AlexNet and VGG-16 pilot
sub-networks and takes tens of minutes (the AlexNet pilot's lockstep
validation run alone is ~7 minutes on one core).
"""

import numpy as np
import pytest

from repro.analysis.depths import bisect_plan, infer_depth_plan, run_shrink
from repro.core import random_weights, tiny_design
from repro.core.builder import build_network


def _tiny_graph():
    design = tiny_design()
    weights = random_weights(design, seed=0)
    batch = (
        np.random.default_rng(0)
        .uniform(0, 1, (1,) + design.input_shape)
        .astype(np.float32)
    )
    return design, build_network(
        design, weights, batch, memory_system="literal"
    ).graph


def test_bench_infer_depth_plan(benchmark):
    """Prover runtime on the tiny literal graph (pure static analysis)."""
    design, graph = _tiny_graph()
    plan = benchmark.pedantic(
        lambda: infer_depth_plan(graph, design_name=design.name),
        rounds=3,
        iterations=1,
    )
    bounded = sum(
        1 for ch in graph.channels.values() if ch.capacity is not None
    )
    assert len(plan.certificates) == bounded
    assert not plan.heuristic_channels()
    assert plan.certified_words < plan.full_words


def test_bench_prover_vs_simulation(benchmark):
    """The pitch in one assert: proving floors must be far cheaper than
    simulating even a single image through the network."""
    import time

    design, graph = _tiny_graph()
    t0 = time.perf_counter()
    built = build_network(
        design,
        random_weights(design, seed=0),
        np.random.default_rng(0)
        .uniform(0, 1, (1,) + design.input_shape)
        .astype(np.float32),
        memory_system="literal",
    )
    assert built.run().finished
    sim_wall = time.perf_counter() - t0
    prove_wall = benchmark.pedantic(
        lambda: _walled(infer_depth_plan, graph), rounds=3, iterations=1
    )
    assert prove_wall < sim_wall, (
        f"prover ({prove_wall:.3f}s) slower than simulation ({sim_wall:.3f}s)"
    )


def _walled(fn, *args):
    import time

    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0


# -- zoo sweep script --------------------------------------------------------

#: (CLI design name, bisect floors empirically?) — bisection binary-searches
#: every depth>1 channel with a fresh simulation per trial, so it is
#: restricted to the design small enough to finish in seconds.
QUICK_DESIGNS = [("tiny", True), ("usps-tc1", False)]
FULL_DESIGNS = QUICK_DESIGNS + [
    ("cifar10-tc2", False),
    ("alexnet", False),
    ("vgg16", False),
]


def _sweep_design(name: str, bisect: bool) -> dict:
    from repro.cli import _load_design

    design = _load_design(name)
    report = run_shrink(design, seed=0, images=1, bisect=False)
    row = {
        "design": name,
        "simulated_design": report["simulated_design"],
        "pilot": report["pilot"],
        "ok": report["ok"],
        "channels": report["prover"]["channels"],
        "methods": report["prover"]["methods"],
        "tight": report["prover"]["tight"],
        "heuristic": report["prover"]["heuristic"],
        "prover_runtime_s": report["prover"]["runtime_s"],
        "full_words": report["words"]["full"],
        "certified_words": report["words"]["certified"],
        "saved_words": report["words"]["saved"],
        "saved_pct": report["words"]["saved_pct"],
        "cycles_ratio": report["cycles_ratio"],
        "violations": report["violations"],
    }
    if bisect:
        from repro.analysis.depths import DepthPlan

        plan = DepthPlan.from_dict(report["plan"])
        rows = bisect_plan(design, plan)
        floor_words = sum(
            int(r["floor"]) for r in rows.values()
        ) + sum(
            cert.depth
            for ch, cert in plan.certificates.items()
            if ch not in rows
        )
        row["bisect"] = {
            "channels": len(rows),
            "floor_words": floor_words,
            "agrees": all(bool(r["agrees"]) for r in rows.values()),
        }
    return row


def main(argv=None):
    import argparse
    import json
    import time

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small designs only (tiny, usps-tc1); skip the pilots",
    )
    parser.add_argument(
        "--out", default="BENCH_depths.json", help="output JSON path"
    )
    args = parser.parse_args(argv)

    designs = QUICK_DESIGNS if args.quick else FULL_DESIGNS
    rows = []
    for name, bisect in designs:
        t0 = time.perf_counter()
        row = _sweep_design(name, bisect)
        wall = time.perf_counter() - t0
        row["wall_seconds"] = round(wall, 1)
        rows.append(row)
        bis = ""
        if "bisect" in row:
            b = row["bisect"]
            bis = (
                f", bisected floor {b['floor_words']} words "
                f"({'agrees' if b['agrees'] else 'DISAGREES'})"
            )
        print(
            f"  {name:12s} {row['full_words']:>6} -> "
            f"{row['certified_words']:>6} words "
            f"(-{row['saved_pct']:.1f}%), prover "
            f"{row['prover_runtime_s']:.3f}s, cycles x"
            f"{row['cycles_ratio']:.1f}, "
            f"{'ok' if row['ok'] else 'VIOLATIONS'}{bis} "
            f"[{wall:.1f}s]"
        )

    out = {
        "benchmark": "depth_prover_zoo_sweep",
        "quick": args.quick,
        "designs": rows,
        "total_full_words": sum(r["full_words"] for r in rows),
        "total_certified_words": sum(r["certified_words"] for r in rows),
    }
    with open(args.out, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")
    bad = [r["design"] for r in rows if not r["ok"]]
    if bad:
        raise SystemExit(f"shrink violations on: {', '.join(bad)}")


if __name__ == "__main__":
    main()
