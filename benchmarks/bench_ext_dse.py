"""Extension E1: automated design-space exploration (paper future work).

The paper chose port counts "empirically"; Section IV-C lists DSE
automation as future work. This bench runs both search strategies on both
test cases, reports the chosen configurations, and extracts the
interval/DSP Pareto front of the USPS space.
"""

from conftest import emit

from repro.core import cifar10_design, network_perf, usps_design
from repro.dse import (
    apply_configuration,
    evaluate,
    exhaustive_search,
    greedy_optimize,
    iter_configurations,
    pareto_front,
)
from repro.report import banner, format_table


def test_greedy_dse_both_testcases(benchmark):
    def explore():
        out = []
        for design in (usps_design(), cifar10_design()):
            res = greedy_optimize(design)
            out.append(
                [
                    design.name,
                    network_perf(design).interval,
                    res.best.interval,
                    network_perf(design).interval / res.best.interval,
                    str(res.best.ports),
                    res.evaluated,
                ]
            )
        return out

    rows = benchmark(explore)
    text = banner("E1") + "\n" + format_table(
        ["design", "paper-config interval", "DSE interval", "speedup",
         "DSE ports", "evaluations"],
        rows,
        title="Extension E1 — greedy DSE vs the paper's configurations",
    )
    emit("ext_dse_greedy.txt", text)
    tc1, tc2 = rows
    # USPS: the paper's config already hits the DMA bound; DSE matches it.
    assert tc1[2] == tc1[1] == 256
    # CIFAR-10: DSE finds a fitting config ~2x faster than the paper's
    # all-single-port design.
    assert tc2[3] >= 1.5


def test_exhaustive_dse_usps(benchmark):
    res = benchmark.pedantic(
        lambda: exhaustive_search(usps_design()), rounds=1, iterations=1
    )
    emit(
        "ext_dse_exhaustive.txt",
        format_table(
            ["design", "best interval", "best ports", "space size"],
            [["usps-tc1", res.best.interval, str(res.best.ports), res.evaluated]],
            title="Extension E1 — exhaustive DSE (test case 1)",
        ),
    )
    assert res.best.interval == 256


def test_pareto_front_usps(benchmark):
    def front():
        d = usps_design()
        cands = [
            evaluate(apply_configuration(d, c)) for c in iter_configurations(d)
        ]
        return pareto_front(cands)

    points = benchmark.pedantic(front, rounds=1, iterations=1)
    rows = [[c.interval, int(c.dsp), str(c.ports)] for c in points]
    emit(
        "ext_dse_pareto.txt",
        format_table(
            ["interval", "DSP", "ports"],
            rows,
            title="Extension E1 — interval/DSP Pareto front (test case 1)",
        ),
    )
    assert len(points) >= 2
    dsps = [c.dsp for c in points]
    assert dsps == sorted(dsps, reverse=True)
