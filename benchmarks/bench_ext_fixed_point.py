"""Extension E3: fixed-point inference (paper's "subject to further study").

Quantizes a trained USPS network to several ap_fixed formats, measuring
classification accuracy against the float32 reference, and compares the
resource bill of fixed-point versus floating-point datapaths (where the
Section IV-B accumulator problem also disappears: integer adds are
single-cycle).
"""

import numpy as np
from conftest import emit

from repro.core import design_resources, usps_design
from repro.hls import AccumulatorModel, FixedPointFormat
from repro.nn import accuracy, quantize_network, with_quantized_activations
from repro.report import banner, format_table

FORMATS = [(24, 8), (16, 6), (12, 5), (8, 4), (6, 3)]


def test_fixed_point_accuracy(benchmark, trained_usps):
    model = trained_usps["model"]
    xv, yv = trained_usps["x_test"], trained_usps["y_test"]
    float_acc = accuracy(model.predict(xv), yv)

    def sweep():
        rows = [["float32", float_acc, 0.0]]
        for width, ibits in FORMATS:
            fmt = FixedPointFormat(width, ibits)
            import copy

            qmodel = copy.deepcopy(model)
            rep = quantize_network(qmodel, fmt)
            qnet = with_quantized_activations(qmodel, fmt)
            acc = accuracy(qnet.predict(xv), yv)
            rows.append([fmt.describe(), acc, rep.max_weight_error])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = banner("E3") + "\n" + format_table(
        ["format", "test accuracy", "max weight error"],
        rows,
        title="Extension E3 — fixed-point inference accuracy (USPS)",
        float_fmt="{:.4f}",
    )
    emit("ext_fixed_point_accuracy.txt", text)
    accs = {r[0]: r[1] for r in rows}
    assert accs["float32"] > 0.8  # the offline training phase worked
    # 16-bit inference matches float accuracy closely.
    assert accs["ap_fixed<16,6>"] >= accs["float32"] - 0.05
    # Aggressive 6-bit quantization visibly degrades.
    assert accs["ap_fixed<6,3>"] <= accs["ap_fixed<16,6>"] + 1e-9


def test_fixed_point_resources(benchmark):
    def compare():
        rows = []
        for dtype in ("float32", "fixed16", "fixed32"):
            total = design_resources(usps_design(), dtype=dtype).total
            rows.append([dtype, int(total.ff), int(total.lut), int(total.dsp)])
        return rows

    rows = benchmark(compare)
    text = format_table(
        ["datapath", "FF", "LUT", "DSP"],
        rows,
        title="Extension E3 — datapath resource comparison (test case 1)",
    )
    emit("ext_fixed_point_resources.txt", text)
    by = {r[0]: r for r in rows}
    assert by["fixed16"][3] < by["fixed32"][3] < by["float32"][3]
    assert by["fixed16"][1] < by["float32"][1]


def test_fixed_point_accumulator_needs_no_lanes(benchmark):
    def model():
        return {
            "float_ii_1lane": AccumulatorModel(900, 1, "float32").ii,
            "fixed_ii_1lane": AccumulatorModel(900, 1, "fixed16").ii,
        }

    data = benchmark(model)
    emit(
        "ext_fixed_point_accumulator.txt",
        format_table(
            ["datapath", "II with a single accumulator"],
            [["float32", data["float_ii_1lane"]], ["fixed16", data["fixed_ii_1lane"]]],
            title="Extension E3 — Section IV-B's problem vanishes with integers",
        ),
    )
    assert data["float_ii_1lane"] == 11
    assert data["fixed_ii_1lane"] == 1
