"""Extension E5: the automated design flow (paper Section VI future work).

"As last piece of future work, we envision the development of an
automated design flow" — this bench runs that flow end to end for the
USPS test case: offline training, weight extraction, layer-wise
verification of the elaborated dataflow graph, resource fit and
performance, in one automated call.
"""

from conftest import emit

from repro.core import run_flow
from repro.report import banner, format_table


def test_automated_flow_usps(benchmark):
    res = benchmark.pedantic(
        lambda: run_flow("usps", seed=5, epochs=4), rounds=1, iterations=1
    )
    text = banner("E5") + "\n" + format_table(
        ["stage", "outcome"],
        [
            ["offline training (synthetic USPS)",
             f"loss {res.training.losses[0]:.3f} -> {res.training.losses[-1]:.3f}, "
             f"test acc {res.training.test_accuracy:.3f}"],
            ["layer-wise verification",
             "PASSED" if res.verification.passed else "FAILED"],
            ["resource fit (xc7vx485t)", str(res.fits_device)],
            ["steady-state interval", f"{res.interval} cycles/image"],
            ["flow verdict", "OK" if res.ok else "REJECTED"],
        ],
        title="Extension E5 — automated design flow (test case 1)",
    )
    emit("ext_flow.txt", text)
    assert res.ok
    assert res.training.test_accuracy > 0.7
    assert res.interval == 256
