"""Extension E6: AlexNet/VGG-16 feasibility under the paper's methodology.

Section VI promises to "implement bigger CNNs" and "test the proposed
approach on ... AlexNet or VGG". Applying the analytical models at that
scale quantifies why that needed more than an evaluation rerun: with
design-time on-chip weights and Eq. 4's minimum parallelism (one FM-column
of MACs per cycle), both models overflow the xc7vx485t on every resource
class — and no contiguous multi-board split helps, because single layers
alone exceed a device. The methodology needs weight streaming and an
II-relaxation knob first; this bench reports the exact shortfalls.
"""

import pytest
from conftest import emit

from repro.core import design_resources, network_perf
from repro.core.multi_fpga import plan_split
from repro.core.zoo import alexnet_design, vgg16_design
from repro.errors import ResourceError
from repro.fpga import VC707, XC7VX485T
from repro.report import banner, format_table


def test_model_zoo_feasibility(benchmark):
    def analyze():
        rows = []
        for design in (alexnet_design(), vgg16_design()):
            perf = network_perf(design)
            res = design_resources(design)
            util = res.utilization(XC7VX485T)
            worst = max(util, key=util.get)
            rows.append(
                [
                    design.name,
                    f"{design.weight_count() / 1e6:.0f}M",
                    f"{design.macs_per_image() / 1e9:.1f}G",
                    f"{perf.images_per_second(VC707):.0f}",
                    perf.bottleneck,
                    f"{util[worst] * 100:.0f}% {worst.upper()}",
                    res.fits(XC7VX485T),
                ]
            )
        return rows

    rows = benchmark(analyze)
    text = banner("E6") + "\n" + format_table(
        ["model", "params", "MACs/img", "img/s (if it fit)", "bottleneck",
         "worst overflow", "fits"],
        rows,
        title="Extension E6 — AlexNet/VGG-16 under the paper's methodology",
    )
    emit("ext_model_zoo.txt", text)
    for r in rows:
        assert r[-1] is False  # neither fits one device


def test_no_contiguous_split_rescues_alexnet(benchmark):
    def try_splits():
        design = alexnet_design()
        outcomes = []
        for n in (2, 4, 8, 11):
            try:
                plan_split(design, n)
                outcomes.append((n, True))
            except ResourceError:
                outcomes.append((n, False))
        return outcomes

    outcomes = benchmark.pedantic(try_splits, rounds=1, iterations=1)
    emit(
        "ext_model_zoo_splits.txt",
        format_table(
            ["devices", "contiguous split fits"],
            [[n, ok] for n, ok in outcomes],
            title="Extension E6 — multi-FPGA splits cannot map AlexNet "
                  "(single layers exceed one device)",
        ),
    )
    assert all(not ok for _, ok in outcomes)


def test_single_layer_overflow_quantified(benchmark):
    def worst_layers():
        design = alexnet_design()
        res = design_resources(design, include_base=False)
        budget = XC7VX485T.resources
        rows = []
        for name, r in res.per_layer.items():
            rows.append(
                [name, int(r.dsp), round(r.dsp / budget.dsp, 1),
                 round(r.bram, 0), round(r.bram / budget.bram, 1)]
            )
        return sorted(rows, key=lambda r: -r[1])[:5]

    rows = benchmark(worst_layers)
    emit(
        "ext_model_zoo_layers.txt",
        format_table(
            ["layer", "DSP", "x device DSP", "BRAM36", "x device BRAM"],
            rows,
            title="Extension E6 — AlexNet's heaviest layers vs one xc7vx485t",
        ),
    )
    # At least one single layer needs more than a whole device of DSPs.
    assert rows[0][2] > 1.0
