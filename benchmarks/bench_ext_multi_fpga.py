"""Extension E2: multi-FPGA splits (paper Section VI future work).

Splits the CIFAR-10 design over 1..3 devices; alone a split does not beat
the monolithic pipeline (the bottleneck layer just moves boards), but the
freed resources let the DSE parallelize each segment further — the
combination the paper envisions for large networks.
"""

from conftest import emit

from repro.core import cifar10_design, network_perf, plan_split, with_layer_ports
from repro.dse import greedy_optimize
from repro.report import banner, format_table


def test_split_plans(benchmark):
    def plans():
        rows = []
        design = cifar10_design()
        for n in (1, 2, 3):
            plan = plan_split(design, n)
            rows.append(
                [
                    n,
                    plan.interval,
                    " | ".join(",".join(s.layer_names) for s in plan.segments),
                    max(int(s.resources.dsp) for s in plan.segments),
                ]
            )
        return rows

    rows = benchmark(plans)
    text = banner("E2") + "\n" + format_table(
        ["devices", "interval", "segments", "peak DSP/device"],
        rows,
        title="Extension E2 — contiguous multi-FPGA splits (test case 2)",
    )
    emit("ext_multi_fpga_splits.txt", text)
    intervals = [r[1] for r in rows]
    peaks = [r[3] for r in rows]
    # Splitting never hurts throughput and strictly relieves per-device load.
    assert intervals == sorted(intervals, reverse=True)
    assert peaks == sorted(peaks, reverse=True)


def test_split_plus_parallelization(benchmark):
    def combined():
        # A front-end-parallelized variant (conv1 at II=3, pool1 on 4 ports,
        # conv2 fed by 4 ports) that does NOT fit one device...
        big = with_layer_ports(cifar10_design(), "conv1", 1, 4)
        big = with_layer_ports(big, "pool1", 4, 4)
        big = with_layer_ports(big, "conv2", 4, 1)
        from repro.core import design_resources
        from repro.fpga import XC7VX485T

        single_fits = design_resources(big).fits(XC7VX485T)
        # ...but fits when split across two devices.
        plan = plan_split(big, 2)
        return {
            "single_fits": single_fits,
            "split_fits": plan.fits(XC7VX485T),
            "split_interval": plan.interval,
            "paper_interval": network_perf(cifar10_design()).interval,
        }

    data = benchmark(combined)
    emit(
        "ext_multi_fpga_parallel.txt",
        format_table(
            ["variant", "fits 1 device", "fits 2 devices", "interval"],
            [["conv1 @ 3/12 ports", data["single_fits"], data["split_fits"],
              data["split_interval"]]],
            title="Extension E2 — split enables parallelization beyond one chip",
        ),
    )
    assert not data["single_fits"]
    assert data["split_fits"]
    # The over-parallelized, split design beats the paper's single-chip one.
    assert data["split_interval"] < data["paper_interval"]
