"""Extension E4: roofline analysis of the two test-case designs.

The DSE literature the paper cites (Zhang et al. [10]) positions designs
with the Roofline Model [23]; this bench does the same for the dataflow
methodology: operational intensity, achieved GFLOPS, and the binding roof
per design — quantifying the paper's own remark that its evaluation used
the off-chip bandwidth sub-optimally.
"""

from conftest import emit

from repro.core import cifar10_design, usps_design
from repro.fpga import VC707, device_compute_roof_gflops, roofline_point
from repro.report import banner, format_table


def test_roofline_positions(benchmark):
    def points():
        return [roofline_point(d, VC707) for d in (usps_design(), cifar10_design())]

    pts = benchmark(points)
    rows = [
        [p.design_name, p.operational_intensity, p.achieved_gflops,
         p.attainable_gflops, p.bound, p.roof_fraction * 100]
        for p in pts
    ]
    text = banner("E4") + "\n" + format_table(
        ["design", "OI (FLOP/B)", "achieved GFLOPS", "roof GFLOPS",
         "bound by", "% of roof"],
        rows,
        title=f"Extension E4 — roofline positioning "
              f"(compute roof {device_compute_roof_gflops(VC707):.0f} GFLOPS)",
    )
    emit("ext_roofline.txt", text)
    tc1, tc2 = pts
    # TC1 streams a tiny image per 64k FLOP: bandwidth-bound at its roof.
    assert tc1.bound == "bandwidth"
    assert tc1.roof_fraction > 0.95
    # TC2 has 20x the intensity and is limited by the DSP compute roof,
    # running below it because its layers are only partially parallel.
    assert tc2.bound == "compute"
    assert tc2.operational_intensity > 3 * tc1.operational_intensity
    assert tc2.roof_fraction < tc1.roof_fraction


def test_fixed_point_raises_the_roof(benchmark):
    def roofs():
        return {
            "float32": device_compute_roof_gflops(VC707, "float32"),
            "fixed16": device_compute_roof_gflops(VC707, "fixed16"),
        }

    data = benchmark(roofs)
    emit(
        "ext_roofline_dtypes.txt",
        format_table(
            ["datapath", "compute roof (GFLOPS)"],
            [[k, v] for k, v in data.items()],
            title="Extension E4 — compute roof by datapath",
        ),
    )
    assert data["fixed16"] >= 4 * data["float32"]
