"""Extension E7: FC weight streaming for large models.

The E6 study shows AlexNet/VGG cannot hold their weights on chip.
Streaming the FC matrices from off-chip memory (one weight word per
cycle feeding a single MAC lane) removes most of the BRAM overflow — and
makes the FC layers the pipeline bottleneck by orders of magnitude. This
quantifies, inside the paper's own methodology, the observation of Qiu
et al. (the paper's ref. [24]) that "convolutional layers are
computational centric, while Fully-Connected layers are memory centric".
"""

from conftest import emit

from repro.core import design_resources, network_perf
from repro.core.zoo import alexnet_design, vgg16_design
from repro.fpga import VC707, XC7VX485T
from repro.report import banner, format_table


def test_weight_streaming_tradeoff(benchmark):
    def analyze():
        rows = []
        for fn in (alexnet_design, vgg16_design):
            for streaming in (False, True):
                d = fn(weight_streaming=streaming)
                res = design_resources(d)
                perf = network_perf(d)
                util = res.utilization(XC7VX485T)
                rows.append(
                    [
                        d.name,
                        "streamed" if streaming else "on-chip",
                        f"{util['bram'] * 100:.0f}%",
                        f"{util['dsp'] * 100:.0f}%",
                        perf.bottleneck,
                        f"{perf.images_per_second(VC707):.2f}",
                    ]
                )
        return rows

    rows = benchmark(analyze)
    text = banner("E7") + "\n" + format_table(
        ["model", "FC weights", "BRAM util", "DSP util", "bottleneck", "img/s"],
        rows,
        title="Extension E7 — FC weight streaming: memory-centric classifiers",
    )
    emit("ext_weight_streaming.txt", text)
    by = {(r[0], r[1]): r for r in rows}
    for model in ("alexnet", "vgg16"):
        onchip = by[(model, "on-chip")]
        streamed = by[(model, "streamed")]
        # Streaming slashes BRAM by an order of magnitude...
        assert float(streamed[2].rstrip("%")) < 0.2 * float(onchip[2].rstrip("%"))
        # ...and shifts the bottleneck from the first conv to the big FC.
        assert onchip[4].endswith("conv1")
        assert streamed[4] == "fc6"
        # FC-bound throughput collapses: the memory-centric conclusion.
        assert float(streamed[5]) < 0.1 * float(onchip[5])


def test_streaming_keeps_small_nets_untouched(benchmark):
    def check():
        from repro.core import usps_design
        from repro.core.layer_spec import FCLayerSpec

        base = usps_design()
        specs = [
            s if not isinstance(s, FCLayerSpec)
            else FCLayerSpec(name=s.name, in_fm=s.in_fm, out_fm=s.out_fm,
                             acc_lanes=s.acc_lanes, weight_streaming=True)
            for s in base.specs
        ]
        from repro.core import NetworkDesign

        streamed = NetworkDesign("usps-stream", base.input_shape, specs)
        return network_perf(base).interval, network_perf(streamed).interval

    base_iv, stream_iv = benchmark(check)
    emit(
        "ext_weight_streaming_small.txt",
        format_table(
            ["variant", "interval (cycles/img)"],
            [["on-chip FC weights", base_iv], ["streamed FC weights", stream_iv]],
            title="Extension E7 — streaming the tiny USPS classifier costs "
                  "little (640-word matrix)",
        ),
    )
    # The USPS FC is tiny: streaming it leaves the DMA-bound interval
    # within ~3x (640 weight words vs the 256-cycle image stream).
    assert stream_iv <= 3 * base_iv