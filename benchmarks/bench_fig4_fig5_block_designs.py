"""Figures 4 and 5: block designs of the two test-case networks.

The paper's figures are block diagrams annotated with window sizes,
channel counts and input-window counts; :meth:`NetworkDesign.block_design`
renders the same information textually. The benchmark times the full
design elaboration (spec validation + shape propagation + rendering).
"""

from conftest import emit

from repro.core import cifar10_design, usps_design


def test_fig4_usps_block_design(benchmark):
    text = benchmark(lambda: usps_design().block_design())
    assert "[conv1]" in text and "[fc1]" in text
    assert "1in/6out" in text  # conv1 fully parallelized
    assert "6in/1out" in text  # conv2 single output port
    emit("fig4_usps_block_design.txt", text)


def test_fig5_cifar10_block_design(benchmark):
    text = benchmark(lambda: cifar10_design().block_design())
    # Every layer single-port: both convs and both FCs.
    assert "conv 5x5 3->12 [1in/1out]" in text
    assert "conv 5x5 12->36 [1in/1out]" in text
    assert text.count("1in/1out") == 4
    assert "[fc2]" in text
    emit("fig5_cifar10_block_design.txt", text)
