"""Figure 6: mean time per image versus batch size.

Two reproductions of the same curve:

* the analytical pipeline model swept over batches 1..50 (and 1000) for
  both test cases — the full-scale figure;
* actual cycle-accurate simulation of the complete USPS design (and a
  short CIFAR-10 run) at several batch sizes, cross-checking the model.

Pass criteria match the paper's observations: the mean time per image
decreases monotonically with batch size and converges (within 5%) once
the batch exceeds the number of network layers.
"""

import numpy as np
import pytest
from conftest import emit

from repro.core import (
    batch_sweep,
    cifar10_design,
    cifar10_model,
    extract_weights,
    network_perf,
    simulated_batch_sweep,
    usps_design,
    usps_model,
)
from repro.fpga import VC707
from repro.report import ascii_plot, banner, format_table, to_csv

BATCHES = [1, 2, 3, 5, 8, 12, 20, 35, 50]


def analytic_series():
    out = {}
    for design in (usps_design(), cifar10_design()):
        rows = batch_sweep(design, BATCHES + [1000], VC707)
        out[design.name] = rows
    return out


def test_fig6_analytical_sweep(benchmark):
    series = benchmark(analytic_series)
    xs = BATCHES
    plot = ascii_plot(
        xs,
        [
            ("tc1 usps", [r["mean_us"] for r in series["usps-tc1"][: len(xs)]]),
            ("tc2 cifar10", [r["mean_us"] for r in series["cifar10-tc2"][: len(xs)]]),
        ],
        title="Figure 6 — mean time per image vs batch size (model)",
        x_label="batch",
        y_label="us/image",
    )
    rows = []
    for name, data in series.items():
        for r in data:
            rows.append([name, r["batch"], r["mean_us"]])
    emit(
        "fig6_analytical.txt",
        banner("fig6") + "\n" + plot + "\n"
        + format_table(["design", "batch", "mean us/img"], rows, float_fmt="{:.3f}"),
    )
    emit("fig6_analytical.csv", to_csv(["design", "batch", "mean_us"], rows))

    for design in (usps_design(), cifar10_design()):
        data = series[design.name]
        means = [r["mean_us"] for r in data]
        # Monotone decreasing toward the steady-state interval.
        assert means == sorted(means, reverse=True)
        converged = network_perf(design).interval / 100  # us at 100 MHz
        # Convergence once batch > number of layers (paper's observation).
        layers = design.n_layers
        for r in data:
            if r["batch"] > layers:
                assert r["mean_us"] <= 2.2 * converged
        assert data[-1]["mean_us"] == pytest.approx(converged, rel=0.02)


def test_fig6_simulated_usps(benchmark, rng):
    design = usps_design()
    weights = extract_weights(design, usps_model(np.random.default_rng(1)))
    image = rng.uniform(0, 1, (1, 16, 16)).astype(np.float32)
    batches = [1, 2, 5, 10, 20]

    def sweep():
        return simulated_batch_sweep(design, weights, image, batches, VC707)

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["batch", "mean us/img (sim)", "interval (cycles)"],
        [[r["batch"], r["mean_us"], r["interval"]] for r in rows],
        title="Figure 6 — cycle-simulated, test case 1",
        float_fmt="{:.3f}",
    )
    emit("fig6_simulated_tc1.txt", table)
    means = [r["mean_us"] for r in rows]
    assert means == sorted(means, reverse=True)
    # Converged within 10% of the model's steady interval by batch 20.
    model_us = network_perf(design).interval / 100
    assert means[-1] == pytest.approx(model_us, rel=0.10)
    # Steady-state interval measured == modeled.
    assert rows[-1]["interval"] == pytest.approx(network_perf(design).interval, rel=0.02)


def test_fig6_calibrated_converged_values(benchmark):
    """With the calibrated loop overhead, the converged means hit the
    paper's reported 5.8 us / 128.1 us directly (docs/calibration.md)."""

    def calibrated():
        rows = []
        for design, oh, paper_us in (
            (usps_design(), 3.05, 5.8),
            (cifar10_design(), 4.35, 128.1),
        ):
            perf = network_perf(design, VC707, loop_overhead=oh)
            converged_us = perf.interval / 100
            rows.append([design.name, oh, converged_us, paper_us])
        return rows

    rows = benchmark(calibrated)
    emit(
        "fig6_calibrated.txt",
        format_table(
            ["design", "loop overhead", "converged us/img", "paper us/img"],
            rows,
            title="Figure 6 converged values, calibrated mode",
            float_fmt="{:.2f}",
        ),
    )
    for _, _, got, paper in rows:
        assert got == pytest.approx(paper, rel=0.02)


def test_fig6_simulated_cifar10_short(benchmark, rng):
    design = cifar10_design()
    weights = extract_weights(design, cifar10_model(np.random.default_rng(2)))
    image = rng.uniform(0, 1, (3, 32, 32)).astype(np.float32)
    batches = [1, 2, 4]

    def sweep():
        return simulated_batch_sweep(design, weights, image, batches, VC707)

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["batch", "mean us/img (sim)", "interval (cycles)"],
        [[r["batch"], r["mean_us"], r["interval"]] for r in rows],
        title="Figure 6 — cycle-simulated, test case 2 (short sweep)",
        float_fmt="{:.3f}",
    )
    emit("fig6_simulated_tc2.txt", table)
    means = [r["mean_us"] for r in rows]
    assert means == sorted(means, reverse=True)
    # The measured steady interval stays within 5% of the model's 9408.
    assert rows[-1]["interval"] == pytest.approx(
        network_perf(design).interval, rel=0.05
    )
