"""Section IV-C's dynamic claim, measured: steady-state layer concurrency.

"At steady state, all the different layers of the network will be
concurrently active and computing." A traced cycle simulation of the USPS
design over a batch makes the claim quantitative: during the steady
window every layer family shows substantial busy fractions
simultaneously, and the activity-strip chart shows the overlapped
execution directly.
"""

import numpy as np
from conftest import emit

from repro.core import extract_weights, usps_design, usps_model
from repro.core.builder import build_network
from repro.dataflow import Tracer
from repro.report import format_table


def traced_usps_run():
    design = usps_design()
    model = usps_model(np.random.default_rng(1))
    batch = np.random.default_rng(2).uniform(0, 1, (8, 1, 16, 16)).astype(np.float32)
    built = build_network(design, extract_weights(design, model), batch)
    tracer = Tracer()
    built.run(tracer=tracer)
    return built, tracer


def test_steady_state_concurrency(benchmark):
    built, tracer = benchmark.pedantic(traced_usps_run, rounds=1, iterations=1)
    total = built.result.cycles
    start, end = total // 3, 2 * total // 3
    util = tracer.utilization(start, end)

    # Aggregate per layer family (max over its actors).
    families = {}
    for name, frac in util.items():
        fam = name.split(".")[0]
        families[fam] = max(families.get(fam, 0.0), frac)
    rows = sorted(([f, u * 100] for f, u in families.items()), key=lambda r: -r[1])
    text = (
        format_table(
            ["pipeline stage", "peak actor busy % (steady window)"],
            rows,
            title="Section IV-C observed — steady-state stage concurrency "
                  f"(cycles {start}..{end})",
            float_fmt="{:.0f}",
        )
        + "\n\n"
        + tracer.activity_strips(width=64)
    )
    emit("pipeline_concurrency.txt", text)

    # Every network stage is concurrently busy in the steady window.
    for stage in ("conv1", "pool1", "conv2", "fc1", "dma_in"):
        assert families[stage] > 0.15, stage
    # The DMA (the bottleneck of this design) is saturated.
    assert families["dma_in"] > 0.95
