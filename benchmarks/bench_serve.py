"""Serving benchmark: the end-to-end images/s + tail-latency number.

The single throughput axis every perf PR can be judged on: an open-loop
seeded loadtest over the TC2 (CIFAR-10) design on a 2-replica process
fleet, reporting virtual (board-clock) images/s, p50/p95/p99 latency,
host wall cost, and a chaos run cross-checked against the analytical
throttled-DMA model. Run as a script::

    PYTHONPATH=src python benchmarks/bench_serve.py [--quick] [--out JSON]

``--quick`` swaps in the USPS design and fewer requests (the CI smoke
configuration). The JSON is a list of ServeReport envelopes plus the
environment block shared with ``bench_sim_engine.py``.
"""

from repro.core import cifar10_design, usps_design
from repro.serve import run_loadtest


def _serve_environment() -> dict:
    from bench_sim_engine import _engine_environment

    return _engine_environment()


#: (label, design factory, loadtest kwargs) per benchmark row.
CONFIGS = {
    "full": [
        ("tc2-clean", cifar10_design,
         dict(requests=32, rate=15000.0, replicas=2)),
        ("tc2-chaos", cifar10_design,
         dict(requests=24, rate=15000.0, replicas=2,
              fault="dma-throttle", probe=False)),
    ],
    "quick": [
        ("usps-clean", usps_design,
         dict(requests=24, rate=300000.0, replicas=2)),
        ("usps-chaos", usps_design,
         dict(requests=24, rate=300000.0, replicas=2,
              fault="dma-throttle", probe=False)),
    ],
}


def main(argv=None):
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="USPS workload instead of CIFAR-10 (CI smoke)",
    )
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="output JSON path")
    parser.add_argument("--mode", choices=["process", "inline"],
                        default="process")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    env = _serve_environment()
    print(
        f"environment: {env['cpu_count']} cpu(s), numpy {env['numpy']}, "
        f"compiled backend {env['compiled_backend']}"
    )
    rows = []
    all_ok = True
    for label, design_fn, kwargs in CONFIGS["quick" if args.quick else "full"]:
        report = run_loadtest(
            design_fn(), seed=args.seed, mode=args.mode, **kwargs
        )
        rows.append({"label": label, **report.envelope()})
        all_ok &= report.ok
        print(f"  {label:12s} {report.summary()}")
        if not report.ok:
            print(f"    FAILURES: {report.failures}")

    with open(args.out, "w") as fh:
        json.dump(
            {
                "benchmark": "serve",
                "environment": env,
                "runs": rows,
            },
            fh, indent=2,
        )
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0 if all_ok else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
