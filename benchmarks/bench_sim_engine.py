"""Engine benchmark: cycle-simulation throughput of the substrate itself.

Not a paper artifact — the dial that tells users what simulations are
affordable: simulated cycles per second for FIFO chains of growing actor
counts, the window actor and full networks, under both the event-driven
scheduler (default) and the lock-step reference.

Run under pytest-benchmark for the micro numbers, or as a script::

    PYTHONPATH=src python benchmarks/bench_sim_engine.py [--quick]

to compare event vs lockstep vs compiled on the Table-2 CIFAR-10
workload and write ``BENCH_sim_engine.json`` with
simulated-cycles-per-second for all three.
"""

import numpy as np
import pytest

from repro.dataflow import ArraySource, DataflowGraph, FifoStage, ListSink, stable_digest
from repro.sst import SlidingWindowActor, WindowSpec

#: Interpreted engines, used by the micro-benchmarks (hand-built graphs
#: the compiled engine would refuse anyway).
SCHEDULERS = ("event", "lockstep")
#: All engines, compared on the full-network workload.
NETWORK_SCHEDULERS = ("event", "lockstep", "compiled")


def chain_sim(n_stages: int, n_values: int, scheduler: str = "event"):
    g = DataflowGraph("chain", default_capacity=4)
    src = g.add_actor(ArraySource("src", list(range(n_values))))
    prev, port = src, "out"
    for i in range(n_stages):
        f = g.add_actor(FifoStage(f"f{i}"))
        g.connect(prev, port, f, "in")
        prev, port = f, "out"
    snk = g.add_actor(ListSink("snk", count=n_values))
    g.connect(prev, port, snk, "in")
    return g.build_simulator(scheduler=scheduler)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_chain_4_stages(benchmark, scheduler):
    res = benchmark.pedantic(
        lambda: chain_sim(4, 256, scheduler).run(), rounds=3, iterations=1
    )
    assert res.finished


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_chain_32_stages(benchmark, scheduler):
    res = benchmark.pedantic(
        lambda: chain_sim(32, 256, scheduler).run(), rounds=3, iterations=1
    )
    assert res.finished


def test_window_actor_throughput(benchmark, rng):
    img = rng.uniform(0, 1, (16, 16)).astype(np.float32)

    def run():
        g = DataflowGraph("w", default_capacity=4)
        src = g.add_actor(ArraySource("src", img.ravel()))
        win = g.add_actor(SlidingWindowActor("win", WindowSpec(5, 5), 16, 16))
        snk = g.add_actor(ListSink("snk", count=144))
        g.connect(src, "out", win, "in")
        g.connect(win, "out", snk, "in")
        return g.build_simulator().run()

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert res.finished


def test_usps_network_cycles_per_second(benchmark):
    from repro.core import random_weights, usps_design
    from repro.core.builder import build_network

    design = usps_design()
    weights = random_weights(design)
    batch = np.random.default_rng(0).uniform(0, 1, (3, 1, 16, 16)).astype(np.float32)

    def run():
        built = build_network(design, weights, batch)
        return built.run()

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    assert res.finished


# -- scheduler comparison script ---------------------------------------------


def _network_workload(quick: bool):
    """The Table-2 CIFAR-10 network (USPS stand-in under --quick)."""
    from repro.core import cifar10_design, random_weights, usps_design

    if quick:
        design = usps_design()
        shape, batch_n = (1, 16, 16), 1
    else:
        design = cifar10_design()
        shape, batch_n = (3, 32, 32), 1
    weights = random_weights(design)
    batch = (
        np.random.default_rng(0)
        .uniform(0, 1, (batch_n,) + shape)
        .astype(np.float32)
    )
    return design, weights, batch


def _time_scheduler(design, weights, batch, scheduler: str, repeats: int = 3):
    import time

    from repro.core.builder import build_network

    best, res, built = None, None, None
    for _ in range(repeats):
        built = build_network(design, weights, batch)
        t0 = time.perf_counter()
        res = built.run(scheduler=scheduler)
        wall = time.perf_counter() - t0
        best = wall if best is None else min(best, wall)
    assert res.finished
    return {
        "scheduler": scheduler,
        "simulated_cycles": res.cycles,
        "wall_seconds": round(best, 4),
        "cycles_per_second": round(res.cycles / best, 1),
        # CRC over shape + exact float32 bits: equal iff bit-identical
        # outputs (the old float(sum) digest collided on permutations).
        "outputs_digest": stable_digest(built.outputs()),
    }


def _time_faulted_scheduler(
    design, weights, batch, scheduler: str, repeats: int = 3
):
    """Throughput with a *null* fault scenario armed: hooks installed on
    every channel but never holding a commit (probability 0). The delta
    against the unfaulted run is the price of the fault subsystem when
    it is present but idle; the unfaulted run itself has ``_fault is
    None`` everywhere and must stay at baseline speed.
    """
    import time

    from repro.core.builder import build_network
    from repro.faults import ChannelJitter, FaultScenario, arm_faults

    scenario = FaultScenario(
        "null", (ChannelJitter(channels="*", probability=0.0, max_delay=1),)
    )
    best, res = None, None
    for _ in range(repeats):
        built = build_network(design, weights, batch)
        armed = arm_faults(built.graph, scenario, seed=0)
        sim = built.graph.build_simulator(scheduler=scheduler)
        sim.faults = armed
        t0 = time.perf_counter()
        res = sim.run()
        wall = time.perf_counter() - t0
        best = wall if best is None else min(best, wall)
    assert res.finished
    return {
        "scheduler": scheduler,
        "simulated_cycles": res.cycles,
        "wall_seconds": round(best, 4),
        "cycles_per_second": round(res.cycles / best, 1),
    }


def _blocked_workload(quick: bool):
    """The full-size blocked VGG-16 (a blocked CIFAR-10 under --quick).

    Blocking is the transform that makes the full-size promoted networks
    simulable at all, so the benchmark records what that costs: the
    split/merge actors and per-tile halo re-reads add simulated beats
    that the unblocked design would not execute.
    """
    from repro.core import cifar10_design, random_weights, vgg16_blocked_design

    if quick:
        design = cifar10_design(name="cifar10-blocked").with_blocking(
            {"conv1": 14, "conv2": 5}
        )
        shape = (3, 32, 32)
    else:
        design = vgg16_blocked_design()
        shape = design.input_shape
    weights = random_weights(design)
    batch = (
        np.random.default_rng(0)
        .uniform(0, 1, (1,) + shape)
        .astype(np.float32)
    )
    return design, weights, batch


def _engine_environment() -> dict:
    """Library versions and host shape the numbers depend on.

    ``cpu_count`` and ``platform`` matter once serving benchmarks run
    multi-process replica fleets: the same cycles/s means something very
    different on 1 core than on 16.
    """
    import os
    import platform

    from repro.compiled import HAVE_NUMBA, backend_name, numba_version

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "numba_available": HAVE_NUMBA,
        "numba": numba_version(),
        "compiled_backend": backend_name(),
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def _check_baseline(rows: dict, path: str, tolerance: float = 0.30) -> str:
    """Compare fresh engine speed *ratios* against a recorded run.

    Absolute cycles-per-second varies with the host machine, so the
    regression gate is on machine-independent ratios: event/lockstep
    (the disarmed fault hooks and scheduler hot loops must stay free)
    and compiled/event (the compiled engine must keep its speedup). Each
    fresh ratio has to stay within ``tolerance`` of its baseline ratio.
    Returns a human-readable verdict; raises AssertionError on regression.
    """
    import json

    with open(path) as f:
        base = json.load(f)

    def ratio(rows_, num, den):
        return (
            rows_[num]["cycles_per_second"] / rows_[den]["cycles_per_second"]
        )

    verdicts = []
    for num, den in (("event", "lockstep"), ("compiled", "event")):
        if num not in base["results"] or num not in rows:
            continue
        base_r = ratio(base["results"], num, den)
        got_r = ratio(rows, num, den)
        floor = (1.0 - tolerance) * base_r
        verdict = (
            f"{num}/{den} ratio {got_r:.2f}x vs baseline {base_r:.2f}x "
            f"(floor {floor:.2f}x)"
        )
        assert got_r >= floor, (
            f"{num}-engine speedup regressed beyond {tolerance:.0%}: "
            f"{verdict}"
        )
        verdicts.append(verdict)
    return "; ".join(verdicts) + " — OK"


def _dma_bound_chain(scheduler: str, interval: int = 64, stages: int = 16):
    """A bandwidth-starved pipeline: one input word every ``interval`` cycles.

    This is the design-space-exploration regime (narrow or shared host DMA
    feeding a fast core) where almost every cycle is dead time — the case
    the event scheduler's bulk cycle-skipping targets.
    """
    g = DataflowGraph("dma_chain", default_capacity=4)
    src = g.add_actor(ArraySource("src", list(range(512)), interval=interval))
    prev, port = src, "out"
    for i in range(stages):
        f = g.add_actor(FifoStage(f"f{i}"))
        g.connect(prev, port, f, "in")
        prev, port = f, "out"
    snk = g.add_actor(ListSink("snk", count=512))
    g.connect(prev, port, snk, "in")
    return g.build_simulator(scheduler=scheduler)


def _time_dma_chain(scheduler: str, repeats: int = 3):
    import time

    best, res = None, None
    for _ in range(repeats):
        sim = _dma_bound_chain(scheduler)
        t0 = time.perf_counter()
        res = sim.run()
        wall = time.perf_counter() - t0
        best = wall if best is None else min(best, wall)
    assert res.finished
    return {
        "scheduler": scheduler,
        "simulated_cycles": res.cycles,
        "wall_seconds": round(best, 4),
        "cycles_per_second": round(res.cycles / best, 1),
    }


def main(argv=None):
    import argparse
    import json
    import os

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="use the small USPS network instead of CIFAR-10",
    )
    parser.add_argument(
        "--out", default="BENCH_sim_engine.json", help="output JSON path"
    )
    parser.add_argument(
        "--check-baseline", metavar="JSON", default=None,
        help="assert engine speed ratios (event/lockstep, compiled/event) "
        "stay within tolerance of this recorded baseline",
    )
    args = parser.parse_args(argv)

    env = _engine_environment()
    design, weights, batch = _network_workload(args.quick)
    print(f"workload: {design.name}, batch {batch.shape}")
    print(
        f"environment: numpy {env['numpy']}, "
        f"numba {env['numba'] or 'absent'} "
        f"(compiled backend: {env['compiled_backend']})"
    )
    rows = {}
    for sched in NETWORK_SCHEDULERS:
        rows[sched] = _time_scheduler(design, weights, batch, sched)
        r = rows[sched]
        print(
            f"  {sched:9s} {r['simulated_cycles']:>10,} cycles in "
            f"{r['wall_seconds']:8.3f} s = {r['cycles_per_second']:>12,.0f} cyc/s"
        )
    assert rows["event"]["simulated_cycles"] == rows["lockstep"]["simulated_cycles"], (
        "schedulers disagree on cycle count — equivalence broken"
    )
    # The compiled engine's cycle count is modeled, not measured, so it is
    # excluded from the cycle-equality assert; values must be bit-exact.
    digests = {s: rows[s]["outputs_digest"] for s in NETWORK_SCHEDULERS}
    assert len(set(digests.values())) == 1, (
        f"engines disagree on output digests — equivalence broken: {digests}"
    )
    speedup = (
        rows["event"]["cycles_per_second"] / rows["lockstep"]["cycles_per_second"]
    )
    compiled_speedup = (
        rows["compiled"]["cycles_per_second"] / rows["event"]["cycles_per_second"]
    )
    print(f"  speedup (event / lockstep):    {speedup:.2f}x")
    print(f"  speedup (compiled / event):    {compiled_speedup:.2f}x")

    # Null-armed fault hooks: installed everywhere, never firing. The
    # simulated cycle count must be untouched and the slowdown small.
    null = _time_faulted_scheduler(design, weights, batch, "event")
    assert null["simulated_cycles"] == rows["event"]["simulated_cycles"], (
        "a null fault scenario changed the cycle count"
    )
    hook_overhead = (
        rows["event"]["cycles_per_second"] / null["cycles_per_second"] - 1.0
    )
    print(
        f"  event+null-faults: {null['cycles_per_second']:>12,.0f} cyc/s "
        f"(hook overhead {hook_overhead:+.1%})"
    )

    if args.check_baseline:
        print(" ", _check_baseline(rows, args.check_baseline))

    # Blocked column: the transform behind the promoted full-size zoo
    # members. At 224x224 only the compiled engine is affordable (the
    # interpreted engines need ~20 min per run at VGG-16 scale), so the
    # full run records a compiled-only row and says so; --quick runs a
    # blocked CIFAR-10 through all three engines and cross-checks digests.
    bdesign, bweights, bbatch = _blocked_workload(args.quick)
    blocked_scheds = NETWORK_SCHEDULERS if args.quick else ("compiled",)
    print(
        f"workload: {bdesign.name} (blocked"
        f"{'' if args.quick else '; compiled engine only at this scale'})"
    )
    blocked_rows = {}
    for sched in blocked_scheds:
        blocked_rows[sched] = _time_scheduler(
            bdesign, bweights, bbatch, sched, repeats=1 if not args.quick else 3
        )
        r = blocked_rows[sched]
        print(
            f"  {sched:9s} {r['simulated_cycles']:>10,} cycles in "
            f"{r['wall_seconds']:8.3f} s = {r['cycles_per_second']:>12,.0f} cyc/s"
        )
    blocked_digests = {s: blocked_rows[s]["outputs_digest"] for s in blocked_scheds}
    assert len(set(blocked_digests.values())) == 1, (
        f"engines disagree on blocked-design digests: {blocked_digests}"
    )

    print("workload: dma_bound_chain (1 word / 64 cycles, 16 stages)")
    sparse = {}
    for sched in SCHEDULERS:
        sparse[sched] = _time_dma_chain(sched)
        r = sparse[sched]
        print(
            f"  {sched:9s} {r['simulated_cycles']:>10,} cycles in "
            f"{r['wall_seconds']:8.3f} s = {r['cycles_per_second']:>12,.0f} cyc/s"
        )
    assert (
        sparse["event"]["simulated_cycles"] == sparse["lockstep"]["simulated_cycles"]
    ), "schedulers disagree on cycle count — equivalence broken"
    sparse_speedup = (
        sparse["event"]["cycles_per_second"]
        / sparse["lockstep"]["cycles_per_second"]
    )
    print(f"  speedup (event / lockstep): {sparse_speedup:.2f}x")

    payload = {
        "benchmark": "sim_engine_scheduler_comparison",
        "workload": design.name,
        "batch_shape": list(batch.shape),
        "environment": env,
        "results": rows,
        "speedup_event_over_lockstep": round(speedup, 2),
        "speedup_compiled_over_event": round(compiled_speedup, 2),
        "null_fault_hooks": dict(
            null, hook_overhead_pct=round(100.0 * hook_overhead, 1)
        ),
        "blocked_workload": {
            "workload": bdesign.name,
            "batch_shape": list(bbatch.shape),
            "schedulers": list(blocked_scheds),
            "note": (
                "all engines cross-checked under --quick"
                if args.quick
                else "compiled engine only; interpreted engines need "
                "~20 min per run at full VGG-16 scale"
            ),
            "results": blocked_rows,
        },
        "sparse_workload": {
            "workload": "dma_bound_chain_interval64_16stages",
            "results": sparse,
            "speedup_event_over_lockstep": round(sparse_speedup, 2),
        },
    }
    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    print(f"wrote {os.path.abspath(args.out)}")


if __name__ == "__main__":
    main()
