"""Engine benchmark: cycle-simulation throughput of the substrate itself.

Not a paper artifact — the dial that tells users what simulations are
affordable: simulated cycles per second for FIFO chains of growing actor
counts, the window actor and the conv core. The README's guidance that
the full CIFAR-10 test case costs ~a second per image derives from these
numbers.
"""

import numpy as np

from repro.dataflow import ArraySource, DataflowGraph, FifoStage, ListSink
from repro.sst import SlidingWindowActor, WindowSpec


def chain_sim(n_stages: int, n_values: int):
    g = DataflowGraph("chain", default_capacity=4)
    src = g.add_actor(ArraySource("src", list(range(n_values))))
    prev, port = src, "out"
    for i in range(n_stages):
        f = g.add_actor(FifoStage(f"f{i}"))
        g.connect(prev, port, f, "in")
        prev, port = f, "out"
    snk = g.add_actor(ListSink("snk", count=n_values))
    g.connect(prev, port, snk, "in")
    return g.build_simulator()


def test_chain_4_stages(benchmark):
    res = benchmark.pedantic(
        lambda: chain_sim(4, 256).run(), rounds=3, iterations=1
    )
    assert res.finished


def test_chain_32_stages(benchmark):
    res = benchmark.pedantic(
        lambda: chain_sim(32, 256).run(), rounds=3, iterations=1
    )
    assert res.finished


def test_window_actor_throughput(benchmark, rng):
    img = rng.uniform(0, 1, (16, 16)).astype(np.float32)

    def run():
        g = DataflowGraph("w", default_capacity=4)
        src = g.add_actor(ArraySource("src", img.ravel()))
        win = g.add_actor(SlidingWindowActor("win", WindowSpec(5, 5), 16, 16))
        snk = g.add_actor(ListSink("snk", count=144))
        g.connect(src, "out", win, "in")
        g.connect(win, "out", snk, "in")
        return g.build_simulator().run()

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert res.finished


def test_usps_network_cycles_per_second(benchmark):
    from repro.core import random_weights, usps_design
    from repro.core.builder import build_network

    design = usps_design()
    weights = random_weights(design)
    batch = np.random.default_rng(0).uniform(0, 1, (3, 1, 16, 16)).astype(np.float32)

    def run():
        built = build_network(design, weights, batch)
        return built.run()

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    assert res.finished
