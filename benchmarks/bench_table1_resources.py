"""Table I: FPGA resource usage of both test cases on the xc7vx485t.

Reproduces the four utilization columns (Flip-Flops, LUT, BRAM, DSP) for
test case 1 (USPS) and test case 2 (CIFAR-10) from the analytical resource
model, side by side with the paper's reported percentages.
"""

from conftest import emit

from repro.core import cifar10_design, design_resources, usps_design
from repro.fpga import XC7VX485T
from repro.report import banner, format_table

PAPER = {
    "usps-tc1": {"ff": 41.10, "lut": 50.86, "bram": 3.50, "dsp": 55.04},
    "cifar10-tc2": {"ff": 61.77, "lut": 71.24, "bram": 22.82, "dsp": 74.32},
}


def table1_rows():
    rows = []
    for design in (usps_design(), cifar10_design()):
        util = design_resources(design).utilization(XC7VX485T)
        paper = PAPER[design.name]
        for res in ("ff", "lut", "bram", "dsp"):
            rows.append(
                [design.name, res.upper(), util[res] * 100, paper[res],
                 util[res] * 100 - paper[res]]
            )
    return rows


def test_table1_resource_usage(benchmark):
    rows = benchmark(table1_rows)
    text = banner("table1") + "\n" + format_table(
        ["design", "resource", "measured %", "paper %", "delta pp"],
        rows,
        title="Table I — FPGA resource usage (xc7vx485t)",
    )
    emit("table1_resources.txt", text)
    by_key = {(r[0], r[1]): r[2] for r in rows}
    # Both designs fit, TC2 > TC1 on every class, FF/LUT/DSP near paper.
    for (design, res), measured in by_key.items():
        assert measured < 100.0
        if res != "BRAM":
            assert abs(measured - PAPER[design][res.lower()]) < 15.0
    for res in ("FF", "LUT", "BRAM", "DSP"):
        assert by_key[("cifar10-tc2", res)] > by_key[("usps-tc1", res)]


def test_table1_per_layer_breakdown(benchmark):
    def breakdown():
        rows = []
        for design in (usps_design(), cifar10_design()):
            res = design_resources(design)
            for name, r in res.per_layer.items():
                rows.append([design.name, name, int(r.ff), int(r.lut),
                             round(r.bram, 1), int(r.dsp)])
        return rows

    rows = benchmark(breakdown)
    text = format_table(
        ["design", "layer", "FF", "LUT", "BRAM36", "DSP"],
        rows,
        title="Table I (supplement) — per-layer resource estimates",
    )
    emit("table1_per_layer.txt", text)
    assert len(rows) == 4 + 6
