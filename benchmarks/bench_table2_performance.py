"""Table II: performance and power-efficiency of both test cases.

Reproduces GFLOPS, GFLOPS/W, image latency and images/s for both designs,
plus the comparison row against Microsoft's Stratix-V CIFAR-10 accelerator
[28]. Absolute latencies come from the simulated steady-state interval
(our substrate is a cycle simulator, not the authors' board — see
EXPERIMENTS.md for the measured-vs-paper discussion); the comparison
structure (who wins, by what factor) is the reproduction target.
"""

import pytest
from conftest import emit

from repro.baselines import MICROSOFT_CIFAR10, PAPER_CLAIMED_SPEEDUP
from repro.core import cifar10_design, design_resources, network_perf, usps_design
from repro.fpga import PAPER_POWER, VC707
from repro.report import banner, format_table

PAPER = {
    "usps-tc1": {"gflops": 5.2, "eff": 0.25, "latency_ms": 0.0058, "img_s": 172_414},
    "cifar10-tc2": {"gflops": 28.4, "eff": 1.19, "latency_ms": 0.128, "img_s": 7_809},
}


def table2_rows():
    rows = []
    for design in (usps_design(), cifar10_design()):
        perf = network_perf(design)
        res = design_resources(design)
        ips = perf.images_per_second(VC707)
        gflops = design.flops_per_image() * ips / 1e9
        eff = PAPER_POWER.efficiency_gflops_per_w(gflops, res.total)
        paper = PAPER[design.name]
        rows.append(
            [design.name, gflops, eff, perf.image_latency_s(VC707) * 1e3, int(ips),
             paper["gflops"], paper["eff"], paper["latency_ms"], paper["img_s"]]
        )
    return rows


def test_table2_performance_and_power(benchmark):
    rows = benchmark(table2_rows)
    text = banner("table2") + "\n" + format_table(
        ["design", "GFLOPS", "GFLOPS/W", "latency ms", "img/s",
         "paper GFLOPS", "paper GF/W", "paper lat ms", "paper img/s"],
        rows,
        title="Table II — performance and power efficiency",
        float_fmt="{:.3f}",
    )
    emit("table2_performance.txt", text)
    tc1, tc2 = rows
    # Shape checks: TC2 does far more useful work per second than TC1 in
    # GFLOPS terms and is more power-efficient, as in the paper.
    assert tc2[1] > tc1[1]
    assert tc2[2] > tc1[2]
    # Latency ordering and rough magnitude (same order of magnitude).
    assert tc1[3] < tc2[3]
    assert 0.3 < tc2[3] / PAPER["cifar10-tc2"]["latency_ms"] < 1.5
    assert 0.2 < tc1[3] / PAPER["usps-tc1"]["latency_ms"] < 1.5


def test_table2_microsoft_comparison(benchmark):
    def comparison():
        perf = network_perf(cifar10_design())
        ours = perf.images_per_second(VC707)
        return {
            "ours_img_s": ours,
            "microsoft_img_s": MICROSOFT_CIFAR10.images_per_second,
            "speedup": MICROSOFT_CIFAR10.speedup_of(ours),
            "paper_speedup_at_paper_throughput": MICROSOFT_CIFAR10.speedup_of(
                PAPER["cifar10-tc2"]["img_s"]
            ),
        }

    data = benchmark(comparison)
    text = format_table(
        ["system", "dataset", "images/s", "speedup vs [28]"],
        [
            ["this work (tc2, simulated)", "CIFAR-10", int(data["ours_img_s"]),
             data["speedup"]],
            ["this work (tc2, paper-reported)", "CIFAR-10",
             PAPER["cifar10-tc2"]["img_s"],
             data["paper_speedup_at_paper_throughput"]],
            [MICROSOFT_CIFAR10.name, "CIFAR-10",
             int(MICROSOFT_CIFAR10.images_per_second), 1.0],
        ],
        title="Table II (comparison row) — vs Microsoft [28]",
    )
    emit("table2_microsoft.txt", text)
    # The dataflow design must beat [28]; the paper claims 3.36x, our
    # simulated substrate lands in the same won-by-several-x regime.
    assert data["speedup"] > 2.0
    assert data["paper_speedup_at_paper_throughput"] == pytest.approx(
        PAPER_CLAIMED_SPEEDUP, rel=0.01
    )
