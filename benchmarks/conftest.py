"""Shared fixtures and reporting helpers for the benchmark harness.

Every bench regenerates one paper artifact (table/figure) or one repo
ablation/extension. Reproduced artifacts are printed to stdout (visible
with ``pytest -s``) and persisted under ``benchmarks/out/`` so a plain
``pytest benchmarks/ --benchmark-only`` leaves the full set of reproduced
tables and figures on disk.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def emit(name: str, text: str) -> None:
    """Print a reproduced artifact and persist it under benchmarks/out/."""
    print()
    print(text)
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, name), "w") as fh:
        fh.write(text + "\n")


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(2017)


@pytest.fixture(scope="session")
def trained_usps():
    """The offline-training phase of test case 1 (shared by benches)."""
    from repro.core import usps_design, usps_model
    from repro.datasets import generate_usps, train_test_split
    from repro.nn import train_classifier

    x, y = generate_usps(400, seed=7)
    xt, yt, xv, yv = train_test_split(x, y, 0.2, seed=7)
    model = usps_model(np.random.default_rng(7))
    result = train_classifier(
        model, xt, yt, epochs=6, batch_size=32, lr=0.08, x_test=xv, y_test=yv, seed=7
    )
    return {
        "design": usps_design(),
        "model": model,
        "accuracy": result.test_accuracy,
        "x_test": xv,
        "y_test": yv,
    }
