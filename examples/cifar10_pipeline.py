"""Test case 2 end to end: the paper's CIFAR-10 network (Figure 5).

Trains the 6-layer CIFAR-10 CNN on the synthetic 32x32 RGB dataset,
simulates the all-single-port design cycle-accurately on a small batch,
and reproduces the Table II comparison against Microsoft's accelerator
[28]. The cycle simulation of this network is sizeable (~10k cycles and
dozens of actors per image), so the batch is kept small; the analytical
model supplies the full-scale numbers.

Run:  python examples/cifar10_pipeline.py
"""

import numpy as np

from repro.baselines import MICROSOFT_CIFAR10, sequential_perf
from repro.core import (
    cifar10_design,
    cifar10_model,
    design_resources,
    extract_weights,
    network_perf,
    run_batch,
)
from repro.datasets import generate_cifar10, train_test_split
from repro.fpga import PAPER_POWER, VC707, XC7VX485T
from repro.nn import train_classifier
from repro.report import format_kv, format_table

# --- offline training -----------------------------------------------------------
x, y = generate_cifar10(600, seed=21)
x_train, y_train, x_test, y_test = train_test_split(x, y, 0.2, seed=21)
model = cifar10_model(np.random.default_rng(21))
train = train_classifier(
    model, x_train, y_train, epochs=10, batch_size=16, lr=0.02,
    x_test=x_test, y_test=y_test, seed=21,
)
print(f"offline training: test accuracy {train.test_accuracy:.3f}")

# --- the hardware design ----------------------------------------------------------
design = cifar10_design()
print()
print(design.block_design())

# --- cycle-accurate simulation (small batch) ---------------------------------------
weights = extract_weights(design, model)
report = run_batch(design, weights, x_test[:2], reference=model)
print()
print(format_kv(
    "simulated batch",
    [
        ("images", report.images),
        ("total cycles", report.total_cycles),
        ("max |sim - reference|", f"{report.max_abs_error:.2e}"),
        ("measured interval", f"{report.measured_interval:.0f} cycles"),
        ("model interval", f"{network_perf(design).interval} cycles"),
    ],
))

# --- Table II for this design --------------------------------------------------------
perf = network_perf(design)
res = design_resources(design)
ips = perf.images_per_second(VC707)
gflops = design.flops_per_image() * ips / 1e9
seq = sequential_perf(design)
print()
print(format_table(
    ["system", "images/s", "notes"],
    [
        ["this work (dataflow, simulated)", f"{ips:,.0f}",
         f"bottleneck: {perf.bottleneck}"],
        ["layer-at-a-time baseline", f"{seq.images_per_second():,.0f}",
         "same cores, off-chip between layers"],
        [MICROSOFT_CIFAR10.name, f"{MICROSOFT_CIFAR10.images_per_second:,.0f}",
         MICROSOFT_CIFAR10.citation],
    ],
    title="CIFAR-10 throughput comparison",
))
print()
print(format_kv(
    "design figures (test case 2)",
    [
        ("GFLOPS", f"{gflops:.1f}"),
        ("GFLOPS/W", f"{PAPER_POWER.efficiency_gflops_per_w(gflops, res.total):.2f}"),
        ("speedup vs [28]", f"{MICROSOFT_CIFAR10.speedup_of(ips):.2f}x"),
        ("FF / LUT / BRAM / DSP", " / ".join(
            f"{v * 100:.1f}%" for v in res.utilization(XC7VX485T).values())),
    ],
))
