"""Designing a custom network with explicit port adapters.

Shows the methodology applied to a network the paper never built: a
padded, strided convolution front end whose port counts deliberately
mismatch at every boundary, so all three adapter cases of Section IV-A
(direct, demux, widen) appear in one design — and the simulated dataflow
output still matches the software model exactly.

Run:  python examples/custom_network.py
"""

import numpy as np

from repro.core import (
    ConvLayerSpec,
    FCLayerSpec,
    NetworkDesign,
    PoolLayerSpec,
    extract_weights,
    network_perf,
    run_batch,
)
from repro.nn import Conv2D, Flatten, Linear, MaxPool2D, ReLU, Sequential

# A 12x12 2-channel input; padding keeps conv1's spatial size.
design = NetworkDesign(
    "custom-adapters",
    input_shape=(2, 12, 12),
    specs=[
        # DMA (1 stream) -> 2 input ports: DEMUX adapter.
        ConvLayerSpec(name="conv1", in_fm=2, out_fm=8, kh=3, pad=1,
                      in_ports=2, out_ports=4, activation="relu"),
        # 4 ports -> 4 ports: DIRECT.
        PoolLayerSpec(name="pool1", in_fm=8, out_fm=8, kh=2, stride=2,
                      in_ports=4, out_ports=4),
        # 4 ports -> 2 ports: WIDEN adapter; stride-2 convolution.
        ConvLayerSpec(name="conv2", in_fm=8, out_fm=4, kh=3, stride=2,
                      in_ports=2, out_ports=1, activation="relu"),
        FCLayerSpec(name="fc", in_fm=4 * 2 * 2, out_fm=5),
    ],
)
print(design.block_design())
print()

# The matching software model (same shapes, same activations).
rng = np.random.default_rng(3)
model = Sequential(
    [
        Conv2D(2, 8, 3, pad=1, rng=rng), ReLU(),
        MaxPool2D(2),
        Conv2D(8, 4, 3, stride=2, rng=rng), ReLU(),
        Flatten(),
        Linear(16, 5, rng=rng),
    ],
    in_shape=(2, 12, 12),
)

batch = np.random.default_rng(4).uniform(0, 1, (4, 2, 12, 12)).astype(np.float32)
report = run_batch(design, extract_weights(design, model), batch, reference=model)

perf = network_perf(design)
print(f"simulated {report.images} images in {report.total_cycles} cycles")
print(f"max |dataflow - reference| = {report.max_abs_error:.2e}")
print(f"steady-state interval: measured {report.measured_interval:.0f}, "
      f"model {perf.interval} (bottleneck {perf.bottleneck})")
assert report.max_abs_error < 1e-4
print("OK — all three adapter cases verified in one design")
