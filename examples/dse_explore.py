"""Automated design-space exploration (the paper's future work, working).

The paper picked port counts "empirically"; this example lets the machine
do it: enumerate/search the configuration space of both test cases under
the Virtex-7 budget, print what the search finds, and show the
interval-vs-DSP Pareto front a designer would actually choose from.

Run:  python examples/dse_explore.py
"""

from repro.core import cifar10_design, network_perf, usps_design
from repro.dse import (
    apply_configuration,
    evaluate,
    exhaustive_search,
    greedy_optimize,
    iter_configurations,
    pareto_front,
    space_size,
)
from repro.report import format_kv, format_table

# --- how big are the spaces? ---------------------------------------------------
for design in (usps_design(), cifar10_design()):
    print(f"{design.name}: {space_size(design):,} valid configurations")
print()

# --- greedy bottleneck-driven search on both test cases --------------------------
rows = []
for design in (usps_design(), cifar10_design()):
    paper_interval = network_perf(design).interval
    res = greedy_optimize(design)
    rows.append([
        design.name, paper_interval, res.best.interval,
        f"{paper_interval / res.best.interval:.2f}x",
        str(res.best.ports), res.evaluated,
    ])
print(format_table(
    ["design", "paper interval", "DSE interval", "speedup", "ports", "evals"],
    rows,
    title="greedy DSE vs the paper's hand-picked configurations",
))
print()
print("Note: for test case 1 the paper's configuration already reaches the")
print("DMA bound, so DSE matches it; for test case 2 the search finds a")
print("fitting configuration the paper left on the table.")
print()

# --- exhaustive search + Pareto front for the small design ------------------------
ex = exhaustive_search(usps_design())
print(format_kv(
    "exhaustive search (test case 1)",
    [
        ("configurations evaluated", ex.evaluated),
        ("best interval", ex.best.interval),
        ("best ports", ex.best.ports),
    ],
))
print()

design = usps_design()
candidates = [
    evaluate(apply_configuration(design, c)) for c in iter_configurations(design)
]
front = pareto_front(candidates)
print(format_table(
    ["interval (cycles/img)", "DSP", "ports"],
    [[c.interval, int(c.dsp), str(c.ports)] for c in front],
    title="interval/DSP Pareto front (test case 1)",
))
