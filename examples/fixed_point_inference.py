"""Fixed-point inference study (the paper's "subject to further study").

Quantizes the trained USPS network to a ladder of ap_fixed formats and
reports accuracy and resource/latency implications: the Section IV-B
floating-point accumulator workaround becomes unnecessary with integers
(single-cycle adds), and DSP/FF drop sharply.

Run:  python examples/fixed_point_inference.py
"""

import copy

import numpy as np

from repro.core import design_resources, usps_design, usps_model
from repro.datasets import generate_usps, train_test_split
from repro.hls import AccumulatorModel, FixedPointFormat
from repro.nn import accuracy, quantize_network, train_classifier, with_quantized_activations
from repro.report import format_table

# Train the float32 reference.
x, y = generate_usps(500, seed=5)
x_train, y_train, x_test, y_test = train_test_split(x, y, 0.2, seed=5)
model = usps_model(np.random.default_rng(5))
train_classifier(model, x_train, y_train, epochs=6, batch_size=32, lr=0.08, seed=5)
float_acc = accuracy(model.predict(x_test), y_test)

# Quantization ladder.
rows = [["float32", f"{float_acc:.3f}", "-", 11]]
for width, ibits in [(24, 8), (16, 6), (12, 5), (8, 4), (6, 3)]:
    fmt = FixedPointFormat(width, ibits)
    qmodel = copy.deepcopy(model)
    quantize_network(qmodel, fmt)
    qnet = with_quantized_activations(qmodel, fmt)
    acc = accuracy(qnet.predict(x_test), y_test)
    acc_ii = AccumulatorModel(64, 1, fmt.dtype_key).ii
    rows.append([fmt.describe(), f"{acc:.3f}", f"{fmt.scale:.2e}", acc_ii])

print(format_table(
    ["datapath", "test accuracy", "LSB", "FC accumulator II (1 lane)"],
    rows,
    title="fixed-point inference on the USPS network",
))
print()

# Resource comparison of the whole test-case-1 design.
res_rows = []
for dtype in ("float32", "fixed32", "fixed16"):
    total = design_resources(usps_design(), dtype=dtype).total
    res_rows.append([dtype, int(total.ff), int(total.lut), int(total.dsp)])
print(format_table(
    ["datapath", "FF", "LUT", "DSP"],
    res_rows,
    title="test case 1 resource bill by datapath",
))
print()
print("16-bit fixed point keeps accuracy while cutting the DSP bill and")
print("making the single-accumulator FC loop pipeline at II=1.")
