"""Scaling the methodology to AlexNet and VGG-16 (analytical study).

The paper's future work asks what happens on "bigger and more popular CNN
models like AlexNet or VGG". The analytical models answer instantly:
with design-time on-chip weights, both overflow the Virtex-7 on every
resource class (single layers alone exceed a device, so multi-board
splits don't help either); streaming the FC weight matrices from
off-chip memory fixes most of the BRAM but turns the classifier into the
bottleneck — the memory-centric behaviour Qiu et al. describe.

Run:  python examples/model_zoo_analysis.py
"""

from repro.core import design_resources, network_perf
from repro.core.zoo import alexnet_design, vgg16_design
from repro.fpga import VC707, XC7VX485T
from repro.report import format_table

rows = []
for fn in (alexnet_design, vgg16_design):
    for streaming in (False, True):
        design = fn(weight_streaming=streaming)
        res = design_resources(design)
        perf = network_perf(design)
        util = res.utilization(XC7VX485T)
        rows.append([
            design.name,
            "streamed FC" if streaming else "on-chip FC",
            f"{design.weight_count() / 1e6:.0f}M",
            f"{util['bram'] * 100:,.0f}%",
            f"{util['dsp'] * 100:,.0f}%",
            perf.bottleneck,
            f"{perf.images_per_second(VC707):.2f}",
        ])

print(format_table(
    ["model", "weights", "params", "BRAM util", "DSP util", "bottleneck",
     "img/s (if it fit)"],
    rows,
    title="AlexNet / VGG-16 under the paper's methodology (xc7vx485t)",
))
print()
print("Reading the table:")
print(" * on-chip weights overflow BRAM by 59x (AlexNet) / 132x (VGG-16);")
print("   per-layer analysis (benchmarks/bench_ext_model_zoo.py) shows single")
print("   layers already exceed one device, so contiguous multi-FPGA splits")
print("   cannot rescue the mapping;")
print(" * streaming the FC matrices removes most of the BRAM pressure but")
print("   caps the classifier at one weight word per cycle: fc6 becomes a")
print("   ~38M-cycle (AlexNet) / ~103M-cycle (VGG) stage — the 'FC layers")
print("   are memory centric' result, reproduced inside this methodology;")
print(" * closing the remaining gap needs tiled conv weight storage and an")
print("   II-relaxation knob — exactly the future work the paper names.")
