"""Quickstart: build, simulate and verify a small dataflow CNN.

Walks the full happy path of the library in ~40 lines of user code:

1. describe a network as layer specs (the paper's parametric modules);
2. train the matching software model on synthetic data;
3. compile the design + trained weights into a cycle-accurate dataflow
   graph and stream a batch of images through it;
4. check the streamed outputs against the software model and look at the
   pipeline timing.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import extract_weights, network_perf, run_batch, tiny_design, tiny_model
from repro.datasets import generate_usps
from repro.nn import train_classifier

# 1. A small design: 3x3 conv (1->2 FMs, 2 output ports), 2x2 max-pool on
#    2 parallel ports, and a fully-connected classifier.
design = tiny_design(in_shape=(1, 8, 8))
print(design.block_design())
print()

# 2. Offline training (the paper trains offline and bakes the weights in).
model = tiny_model(np.random.default_rng(0), in_shape=(1, 8, 8))
x, y = generate_usps(200, seed=1)
x8 = x[:, :, 4:12, 4:12]  # crop the 16x16 digits to 8x8 centers
y4 = y % 4  # tiny model has 4 classes
result = train_classifier(model, x8[:160], y4[:160], epochs=5, lr=0.05, seed=0)
print(f"training loss: {result.losses[0]:.3f} -> {result.losses[-1]:.3f}")

# 3. Compile and simulate a batch of 5 images, cycle by cycle.
weights = extract_weights(design, model)
batch = x8[160:165]
report = run_batch(design, weights, batch, reference=model)

# 4. Results: functional correctness + pipeline timing.
print(f"simulated {report.images} images in {report.total_cycles} cycles")
print(f"max |dataflow - reference| = {report.max_abs_error:.2e}")
print(f"measured steady-state interval: {report.measured_interval:.0f} cycles/image")

perf = network_perf(design)
print(f"analytical model interval:      {perf.interval} cycles/image "
      f"(bottleneck: {perf.bottleneck})")
print(f"mean time per image at batch 5: {report.mean_us_per_image():.2f} us @ 100 MHz")

assert report.max_abs_error < 1e-4, "dataflow output must match the reference"
print("OK")
