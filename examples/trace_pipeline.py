"""Observing the high-level pipeline: activity traces and waveforms.

The paper's key dynamic claim is that "at steady state, all the different
layers of the network will be concurrently active and computing". This
example attaches a tracer to the simulated USPS design, prints per-actor
activity strips and a steady-state utilization table that make the claim
visible, checks the graph's reconvergent branches for buffering problems,
and writes a VCD waveform of every FIFO's occupancy for GTKWave.

Run:  python examples/trace_pipeline.py       (writes trace.vcd)
"""

import numpy as np

from repro.core import extract_weights, usps_design, usps_model
from repro.core.builder import build_network
from repro.dataflow import Tracer
from repro.dataflow.deadlock import buffering_report
from repro.report import format_table

design = usps_design()
model = usps_model(np.random.default_rng(1))
batch = np.random.default_rng(2).uniform(0, 1, (8, 1, 16, 16)).astype(np.float32)

built = build_network(design, extract_weights(design, model), batch)
tracer = Tracer()
built.run(tracer=tracer)

total = built.result.cycles
print(f"simulated {batch.shape[0]} images in {total} cycles\n")

# Activity strips: one row per actor, '#' = working, '.' = stalled.
print(tracer.activity_strips(width=64))
print()

# Steady-state utilization (middle third of the run, fill/drain excluded).
start, end = total // 3, 2 * total // 3
util = tracer.utilization(start, end)
rows = sorted(
    ([name, frac * 100] for name, frac in util.items()),
    key=lambda r: -r[1],
)
print(format_table(
    ["actor", "busy %"],
    rows,
    title=f"steady-state utilization (cycles {start}..{end})",
    float_fmt="{:.0f}",
))
print()

active = tracer.concurrently_active(threshold=0.3, start=start, end=end)
layers = sorted({a.split(".")[0] for a in active if "." in a})
print(f"concurrently active pipeline stages: {layers}")
print("-> the paper's Section IV-C claim, observed directly\n")

# Static buffering check of the parallel branches.
print(buffering_report(built.graph))

# Waveform export.
with open("trace.vcd", "w") as fh:
    fh.write(tracer.to_vcd())
print("\nwrote trace.vcd (FIFO occupancies; open with any VCD viewer)")
