"""Test case 1 end to end: the paper's USPS network (Figure 4).

Trains the 4-layer USPS CNN on the synthetic 16x16 digit dataset, compiles
it with the paper's parallelization (conv1 + pool1 fully parallel, conv2
with a single output port), simulates a batch cycle-accurately, and
reports classification accuracy, the Figure-6-style batch amortization and
the Table I/II figures for this design.

Run:  python examples/usps_pipeline.py
"""

import numpy as np

from repro.core import (
    design_resources,
    extract_weights,
    network_perf,
    run_batch,
    simulated_batch_sweep,
    usps_design,
    usps_model,
)
from repro.datasets import generate_usps, train_test_split
from repro.fpga import PAPER_POWER, VC707, XC7VX485T
from repro.nn import accuracy, train_classifier
from repro.report import format_kv, format_table

# --- offline training --------------------------------------------------------
x, y = generate_usps(500, seed=11)
x_train, y_train, x_test, y_test = train_test_split(x, y, 0.2, seed=11)
model = usps_model(np.random.default_rng(11))
train = train_classifier(
    model, x_train, y_train, epochs=6, batch_size=32, lr=0.08,
    x_test=x_test, y_test=y_test, seed=11,
)
print(f"offline training: test accuracy {train.test_accuracy:.3f}")

# --- the hardware design ------------------------------------------------------
design = usps_design()
print()
print(design.block_design())

# --- cycle-accurate simulation of a batch -------------------------------------
weights = extract_weights(design, model)
batch = x_test[:8]
report = run_batch(design, weights, batch, reference=model)
sim_pred = np.argmax(report.outputs, axis=-1)
print()
print(format_kv(
    "simulated batch",
    [
        ("images", report.images),
        ("total cycles", report.total_cycles),
        ("max |sim - reference|", f"{report.max_abs_error:.2e}"),
        ("simulated-accelerator accuracy", f"{accuracy(sim_pred, y_test[:8]):.3f}"),
        ("steady-state interval", f"{report.measured_interval:.0f} cycles"),
    ],
))

# --- Figure 6 for this design (simulated) --------------------------------------
rows = simulated_batch_sweep(design, weights, x_test[0], [1, 2, 5, 10, 20], VC707)
print()
print(format_table(
    ["batch", "mean us/image"],
    [[r["batch"], r["mean_us"]] for r in rows],
    title="batch amortization (cycle-simulated)",
    float_fmt="{:.3f}",
))

# --- Table I / II figures for this design ---------------------------------------
perf = network_perf(design)
res = design_resources(design)
util = res.utilization(XC7VX485T)
ips = perf.images_per_second(VC707)
gflops = design.flops_per_image() * ips / 1e9
print()
print(format_kv(
    "design figures (test case 1)",
    [
        ("bottleneck stage", perf.bottleneck),
        ("images/s", f"{ips:,.0f}"),
        ("GFLOPS", f"{gflops:.1f}"),
        ("GFLOPS/W", f"{PAPER_POWER.efficiency_gflops_per_w(gflops, res.total):.2f}"),
        ("FF / LUT / BRAM / DSP",
         " / ".join(f"{util[k] * 100:.1f}%" for k in ("ff", "lut", "bram", "dsp"))),
    ],
))
