"""Designer workflow: synthesis report, layer-wise verification, handoff.

Walks what a user of the methodology does before committing a design:

1. read the HLS-style synthesis report (II, depth, resources per core);
2. run layer-wise verification, which simulates every prefix of the chain
   and pinpoints the first diverging layer if anything is wrong;
3. serialize the design (JSON) and trained weights (NPZ) as the artifacts
   the elaboration step consumes, and prove they reload identically.

Run:  python examples/verify_and_report.py
"""

import os
import tempfile

import numpy as np

from repro.core import (
    design_from_json,
    design_to_json,
    extract_weights,
    load_weights,
    render_report,
    save_weights,
    tiny_design,
    tiny_model,
    verify_layerwise,
)
from repro.core.builder import build_network

design = tiny_design()
model = tiny_model()
weights = extract_weights(design, model)
batch = np.random.default_rng(0).uniform(0, 1, (2, 1, 8, 8)).astype(np.float32)

# 1. Synthesis-style report.
print(render_report(design))
print()

# 2. Layer-wise verification (every prefix simulated and compared).
report = verify_layerwise(design, weights, batch)
print(report.render())
print()

# 3. Serialization round trip.
with tempfile.TemporaryDirectory() as tmp:
    design_path = os.path.join(tmp, "design.json")
    weights_path = os.path.join(tmp, "weights.npz")
    with open(design_path, "w") as fh:
        fh.write(design_to_json(design))
    save_weights(weights_path, weights)

    with open(design_path) as fh:
        design2 = design_from_json(fh.read())
    weights2 = load_weights(weights_path)

    a = build_network(design, weights, batch)
    a.run_functional()
    b = build_network(design2, weights2, batch)
    b.run_functional()
    identical = np.array_equal(a.outputs(), b.outputs())

print(f"serialized design + weights reload bit-identically: {identical}")
assert report.passed and identical
print("OK")
