"""repro — dataflow CNN-on-FPGA reproduction (Bacis et al., IPDPSW 2017).

A pipelined, scalable dataflow implementation of CNNs on a *simulated*
FPGA: cycle-level dataflow engine, SST-style sliding-window memory
systems, HLS cost models, a from-scratch NumPy CNN library, synthetic
USPS/CIFAR-10 datasets, the paper's two test-case designs, and the
performance/resource models behind every table and figure.

Quick start::

    import numpy as np
    from repro import usps_design, usps_model, run_trained
    from repro.datasets import generate_usps

    x, y = generate_usps(8, seed=0)
    report = run_trained(usps_design(), usps_model(), x[:3])
    print(report.measured_interval, "cycles/image at steady state")

Subpackages: :mod:`repro.dataflow`, :mod:`repro.sst`, :mod:`repro.hls`,
:mod:`repro.nn`, :mod:`repro.datasets`, :mod:`repro.fpga`,
:mod:`repro.core`, :mod:`repro.baselines`, :mod:`repro.dse`,
:mod:`repro.report`.
"""

from repro._version import __version__
from repro.core import (
    ConvLayerSpec,
    FCLayerSpec,
    NetworkDesign,
    PoolLayerSpec,
    batch_sweep,
    build_network,
    cifar10_design,
    cifar10_model,
    design_resources,
    extract_weights,
    network_perf,
    random_weights,
    run_batch,
    run_trained,
    simulated_batch_sweep,
    tiny_design,
    tiny_model,
    usps_design,
    usps_model,
)
from repro.errors import ReproError

__all__ = [
    "ConvLayerSpec",
    "FCLayerSpec",
    "NetworkDesign",
    "PoolLayerSpec",
    "ReproError",
    "__version__",
    "batch_sweep",
    "build_network",
    "cifar10_design",
    "cifar10_model",
    "design_resources",
    "extract_weights",
    "network_perf",
    "random_weights",
    "run_batch",
    "run_trained",
    "simulated_batch_sweep",
    "tiny_design",
    "tiny_model",
    "usps_design",
    "usps_model",
]
