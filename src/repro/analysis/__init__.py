"""Static dataflow-network verification (``repro check``).

A rule-based analyzer that catches rate, adapter, buffering and
initiation-interval bugs *before* simulation: design-level rules check the
layer-spec chain against the paper's balance equations, port-adapter cases
and Eq. 4; graph-level rules check the elaborated dataflow graph for
mis-wired adapters, under-buffered reconvergent branches and full-buffering
violations. See DESIGN.md section 9 for the rule catalog.
"""

from repro.analysis.checker import (
    ELABORATE_WEIGHT_LIMIT,
    analyze_chain,
    analyze_design,
    analyze_graph,
    check_design_dict,
    check_network,
    placeholder_weights,
)
from repro.analysis.depths import (
    DepthCertificate,
    DepthPlan,
    ShrinkReport,
    apply_depth_plan,
    bisect_channel_floor,
    bisect_plan,
    chain_run_ahead,
    infer_depth_plan,
    load_depth_plan,
    probe_tight_certificate,
    run_shrink,
    validate_plan,
)
from repro.analysis.design_rules import SpecChain
from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity, make
from repro.analysis.graph_rules import actor_skew_latency
from repro.analysis.rules import DESIGN_RULES, GRAPH_RULES, RULES, RuleInfo, render_catalog

__all__ = [
    "ELABORATE_WEIGHT_LIMIT",
    "AnalysisReport",
    "DepthCertificate",
    "DepthPlan",
    "Diagnostic",
    "Severity",
    "ShrinkReport",
    "SpecChain",
    "RuleInfo",
    "RULES",
    "DESIGN_RULES",
    "GRAPH_RULES",
    "actor_skew_latency",
    "analyze_chain",
    "analyze_design",
    "analyze_graph",
    "apply_depth_plan",
    "bisect_channel_floor",
    "bisect_plan",
    "chain_run_ahead",
    "check_design_dict",
    "check_network",
    "infer_depth_plan",
    "load_depth_plan",
    "make",
    "placeholder_weights",
    "probe_tight_certificate",
    "render_catalog",
    "run_shrink",
    "validate_plan",
]
