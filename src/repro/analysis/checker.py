"""Entry points of the static dataflow verifier.

The checker composes the design-level rules (:mod:`.design_rules`) with
the graph-level rules (:mod:`.graph_rules`):

* :func:`analyze_chain` — tolerant analysis of a raw, possibly broken
  spec chain (never raises on a bad design; emits diagnostics instead);
* :func:`analyze_design` — full design-level analysis of a valid
  :class:`NetworkDesign`, including the perf-model cross-check;
* :func:`analyze_graph` — graph-level analysis of any elaborated
  :class:`DataflowGraph` (design optional);
* :func:`check_network` — the whole pipeline: design rules, then
  elaborate with placeholder weights and run the graph rules;
* :func:`check_design_dict` — lenient JSON-dict front end used by the
  ``repro check`` CLI: bad specs become SPEC.VALID findings, valid
  designs get the full treatment.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.analysis.design_rules import (
    SpecChain,
    run_bottleneck_rule,
    run_chain_rules,
)
from repro.analysis.diagnostics import AnalysisReport, Severity, make
from repro.analysis.graph_rules import run_graph_rules
from repro.config import DTYPE
from repro.core.builder import DesignWeights, build_network
from repro.core.layer_spec import ConvLayerSpec, FCLayerSpec
from repro.core.network_design import NetworkDesign
from repro.dataflow.graph import DataflowGraph
from repro.errors import ReproError

#: Above this parameter count, ``elaborate="auto"`` skips graph-level
#: analysis: materializing e.g. VGG-16's 100M+ FC weights just to check
#: wiring would dominate the check's runtime and memory for no extra
#: signal (adapters/buffers do not depend on weight values).
ELABORATE_WEIGHT_LIMIT = 2_000_000


def placeholder_weights(design: NetworkDesign) -> DesignWeights:
    """All-zero weights: enough to elaborate, free of RNG cost."""
    out: DesignWeights = {}
    for p in design.placements:
        spec = p.spec
        if isinstance(spec, ConvLayerSpec):
            kw = spec.kw if spec.kw is not None else spec.kh
            out[spec.name] = {
                "weight": np.zeros(
                    (spec.out_fm, spec.in_fm, spec.kh, kw), dtype=DTYPE
                ),
                "bias": np.zeros(spec.out_fm, dtype=DTYPE),
            }
        elif isinstance(spec, FCLayerSpec):
            out[spec.name] = {
                "weight": np.zeros((spec.out_fm, spec.in_fm), dtype=DTYPE),
                "bias": np.zeros(spec.out_fm, dtype=DTYPE),
            }
    return out


def analyze_chain(chain: SpecChain) -> AnalysisReport:
    """Design-level rules over a raw (possibly invalid) spec chain."""
    report = AnalysisReport(chain.name)
    run_chain_rules(chain, report)
    return report


def analyze_design(design: NetworkDesign) -> AnalysisReport:
    """Design-level rules plus the perf-model cross-check."""
    report = analyze_chain(SpecChain.from_design(design))
    run_bottleneck_rule(design, report)
    return report


def analyze_graph(
    graph: DataflowGraph, design: Optional[NetworkDesign] = None
) -> AnalysisReport:
    """Graph-level rules over an elaborated graph."""
    report = AnalysisReport(design.name if design is not None else graph.name)
    run_graph_rules(graph, report, design)
    return report


def check_network(
    design: NetworkDesign,
    elaborate: Union[bool, str] = "auto",
    memory_system: str = "behavioral",
    channel_capacity: int = 4,
) -> AnalysisReport:
    """Full static check of a valid design: spec rules + elaborated graph.

    ``elaborate`` is ``True``/``False`` or ``"auto"`` (elaborate unless
    the design exceeds :data:`ELABORATE_WEIGHT_LIMIT` parameters).
    Elaboration uses zero weights and a single blank image — the graph
    rules only look at structure, never at values.
    """
    report = analyze_design(design)
    if elaborate == "auto":
        do_elaborate = design.weight_count() <= ELABORATE_WEIGHT_LIMIT
        if not do_elaborate:
            report.add(make(
                "GRAPH.STRUCTURE", Severity.INFO, "design",
                f"graph-level rules skipped: {design.weight_count():,} "
                f"parameters exceed the auto-elaboration limit "
                f"({ELABORATE_WEIGHT_LIMIT:,}); pass elaborate=True "
                f"(--elaborate) to force",
            ))
            report.note_rule("GRAPH.STRUCTURE")
    else:
        do_elaborate = bool(elaborate)
    if not do_elaborate:
        return report
    try:
        built = build_network(
            design,
            placeholder_weights(design),
            np.zeros((1,) + design.input_shape, dtype=DTYPE),
            channel_capacity=channel_capacity,
            memory_system=memory_system,
        )
    except ReproError as exc:
        report.add(make(
            "GRAPH.STRUCTURE", Severity.ERROR, "design",
            f"design does not elaborate: {exc}",
        ))
        report.note_rule("GRAPH.STRUCTURE")
        return report
    return report.merge(analyze_graph(built.graph, design))


def check_design_dict(
    d: dict, elaborate: Union[bool, str] = "auto"
) -> AnalysisReport:
    """Lenient front end for design dicts (the ``repro check`` CLI path).

    Specs that fail to construct become SPEC.VALID errors; if the design
    as a whole fails :class:`NetworkDesign` validation, the tolerant
    chain analysis still produces a full per-boundary report.
    """
    from repro.core.serialize import spec_from_dict

    name = str(d.get("name", "design"))
    report = AnalysisReport(name)
    report.note_rule("SPEC.VALID")

    shape = d.get("input_shape")
    if (not isinstance(shape, (list, tuple)) or len(shape) != 3
            or not all(isinstance(v, int) and v > 0 for v in shape)):
        report.add(make(
            "SPEC.VALID", Severity.ERROR, "design",
            f"input_shape must be a positive (C, H, W) triple, got {shape!r}",
        ))
        return report

    specs = []
    spec_errors = False
    for i, sd in enumerate(d.get("layers", [])):
        try:
            specs.append(spec_from_dict(dict(sd)))
        except (ReproError, TypeError, KeyError) as exc:
            spec_errors = True
            report.add(make(
                "SPEC.VALID", Severity.ERROR, f"layer[{i}]",
                f"spec does not construct: {exc}",
                hint="fix this layer's parameters; the remaining layers "
                     "were still analyzed",
            ))

    if not spec_errors:
        construct_error: Optional[ReproError] = None
        try:
            design = NetworkDesign(name, tuple(shape), specs)
        except ReproError as exc:
            construct_error = exc
        else:
            return report.merge(check_network(design, elaborate=elaborate))
        report.merge(analyze_chain(SpecChain(name, tuple(shape), tuple(specs))))
        if report.ok:
            # The chain rules model every NetworkDesign invariant; if one
            # ever slips through, still fail the check with the raw reason.
            report.add(make(
                "SPEC.VALID", Severity.ERROR, "design",
                f"design does not construct: {construct_error}",
            ))
        return report

    if specs:
        report.merge(analyze_chain(SpecChain(name, tuple(shape), tuple(specs))))
    return report
