"""Static FIFO depth inference and deadlock-freedom certification.

The paper sizes every literal SST chain FIFO for worst-case *full
buffering* (``sst/sizing.py``), which is exactly why large networks only
run as pilot downscales.  Following *Memory-Efficient Dataflow Inference
for Deep CNNs on FPGA* (arXiv:2011.07317), this module derives
per-channel **lower-bound depths** from the closed-form steady-state
structure of the elaborated graph and emits a :class:`DepthPlan` whose
every entry carries a machine-checkable :class:`DepthCertificate`.

Prover model
------------
Channels are classified into five certificate methods:

``chain-recursion``
    The FIFOs and tap channels of a literal SST filter chain
    (``X.fifo{i}`` / ``X.tap{t}`` under a ``X.asm``
    :class:`~repro.sst.filter_chain.WindowAssembler`).  For a chain of
    ``n`` filters with full-buffering depths ``d_i`` (``fifo_depths``,
    taps in stream-arrival order) and tap-channel capacities ``T_i``,
    filter ``i`` can run ahead of the assembly step by the *run-ahead
    budget* ``R_i`` given by the max-plus recursion::

        R_{n-1} = T_{n-1}
        R_i     = min(T_i, R_{i+1} + c_i - d_i)

    where ``c_i`` is the capacity of the FIFO between filters ``i`` and
    ``i+1``.  The chain is deadlock-free iff every ``R_i >= 1`` (filter
    ``i`` can deliver the beat the assembler's lock-step tap pop
    demands).  The backward greedy assignment ``T_i = 1``,
    ``c_i = max(1, d_i)`` is the word-minimal solution; a chain FIFO is
    **tight** when ``c_i - 1`` drives ``min_i R_i`` below 1, i.e. the
    prover can show depth-1 deadlocks.

``link-pace``
    The wire channel of a board-to-board link
    (:class:`~repro.dataflow.link.LinkTxActor` writer): the transmitter
    emits at most one word per ``beat`` cycles, so the receiver relay
    always drains it.  Depth 2 sustains the full back-to-back rate at
    ``beat == 1`` (the two-phase commit makes a one-deep FIFO halve the
    rate); depth 1 suffices at ``beat >= 2``.

``bridge``
    A channel that is a bridge of the undirected channel multigraph.  A
    deadlock is a cycle in the wait-for graph (writers blocked on full
    channels, readers on empty ones); such a cycle projects onto an
    undirected cycle of channels, and a bridge lies on no undirected
    cycle — so no deadlock cycle can traverse it and capacity 1 is
    provably sufficient.

``reconvergent-skew``
    A non-bridge channel on an enumerated fork/join path (the
    BUFFER.SKEW model with literal chains contracted to their prime
    latency): each branch must buffer the latency *deficit* against its
    slowest peer, so the floor is ``max(1, skew - own latency)``.

``heuristic-pin``
    Anything the prover cannot classify keeps its built capacity and is
    flagged with a ``BUFFER.DEPTH_CERT`` diagnostic — the plan is still
    applicable, but that channel's bound is heuristic, not proven.

Cross-validation
----------------
:func:`validate_plan` replays the proof empirically, reusing the
FIFO-shrink fault machinery (:mod:`repro.faults`): a certified plan must
simulate deadlock-free under both the event and lockstep engines with
the full-buffering output digest, and depth-1 on every tight certificate
must deadlock the event engine on exactly the certified channel while
the plan-aware analyzer flags it ``BUFFER.DEPTH_UNDERSIZED`` (the PR 3
invariant, now prover-driven).  :func:`bisect_plan` binary-searches each
channel's empirical floor under the simulator for the bench trajectory.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from repro.dataflow.graph import DataflowGraph
from repro.dataflow.link import LinkTxActor
from repro.errors import ConfigurationError, DeadlockError
from repro.fpga.dma import PAPER_DMA, DmaModel
from repro.report.base import Report
from repro.sst.filter_chain import TapFilter, WindowAssembler

#: Certificate methods, strongest structural claim first.
METHOD_CHAIN = "chain-recursion"
METHOD_LINK = "link-pace"
METHOD_BRIDGE = "bridge"
METHOD_SKEW = "reconvergent-skew"
METHOD_PIN = "heuristic-pin"

_METHODS = (METHOD_CHAIN, METHOD_LINK, METHOD_BRIDGE, METHOD_SKEW, METHOD_PIN)

#: Reconvergence enumeration bounds (the stock ``analyze_reconvergence``
#: cutoff of 12 misses the long core-to-core paths threading literal
#: chains, hence the dedicated, chain-contracted enumeration here).
_PATH_CUTOFF = 64
_MAX_PATHS = 16


@dataclass(frozen=True)
class DepthCertificate:
    """One channel's certified depth and the proof obligation behind it."""

    channel: str
    #: Certified capacity (>= 1): provably deadlock-free at this depth
    #: when ``proven``; the pinned built capacity otherwise.
    depth: int
    #: Capacity of the same channel in the full-buffering build.
    full_capacity: int
    #: One of the METHOD_* constants.
    method: str
    #: True when the depth follows from a structural proof; False for
    #: heuristic pins (surfaced as BUFFER.DEPTH_CERT diagnostics).
    proven: bool
    #: True when the prover shows ``depth - 1`` deadlocks (chain FIFOs
    #: whose run-ahead budget hits exactly 1).  Tight certificates are
    #: the bisector's probe targets.
    tight: bool
    #: Human-readable proof sketch.
    detail: str

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ConfigurationError(
                f"{self.channel!r}: certified depth must be >= 1, got "
                f"{self.depth}"
            )
        if self.method not in _METHODS:
            raise ConfigurationError(
                f"{self.channel!r}: unknown certificate method "
                f"{self.method!r}"
            )
        if self.tight and not self.proven:
            raise ConfigurationError(
                f"{self.channel!r}: a tight certificate must be proven"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "channel": self.channel,
            "depth": self.depth,
            "full_capacity": self.full_capacity,
            "method": self.method,
            "proven": self.proven,
            "tight": self.tight,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "DepthCertificate":
        return cls(
            channel=str(d["channel"]),
            depth=int(d["depth"]),
            full_capacity=int(d["full_capacity"]),
            method=str(d["method"]),
            proven=bool(d["proven"]),
            tight=bool(d["tight"]),
            detail=str(d.get("detail", "")),
        )


@dataclass
class DepthPlan:
    """A certified per-channel FIFO depth assignment for one design."""

    design_name: str
    graph_name: str
    #: DMA beat interval the bounds are denominated in (beats, not ns).
    dma_beat: int
    #: Memory system of the build the plan was inferred from.  Depth
    #: plans only exist for ``"literal"`` graphs — chain FIFOs are the
    #: whole point — but the field keeps apply-time misuse detectable.
    memory_system: str
    certificates: Dict[str, DepthCertificate] = field(default_factory=dict)

    # -- aggregate views -----------------------------------------------------

    @property
    def full_words(self) -> int:
        """Total bounded FIFO words of the full-buffering build."""
        return sum(c.full_capacity for c in self.certificates.values())

    @property
    def certified_words(self) -> int:
        """Total bounded FIFO words at the certified depths."""
        return sum(c.depth for c in self.certificates.values())

    @property
    def saved_words(self) -> int:
        return self.full_words - self.certified_words

    @property
    def saved_pct(self) -> float:
        if self.full_words == 0:
            return 0.0
        return 100.0 * self.saved_words / self.full_words

    def capacity(self, channel: str) -> int:
        """Certified capacity of one channel."""
        return self.certificates[channel].depth

    def tight_channels(self) -> List[str]:
        """Channels whose depth-1 provably deadlocks, sorted."""
        return sorted(
            name for name, c in self.certificates.items() if c.tight
        )

    def proven_channels(self) -> List[str]:
        return sorted(
            name for name, c in self.certificates.items() if c.proven
        )

    def heuristic_channels(self) -> List[str]:
        """Channels pinned without a proof (BUFFER.DEPTH_CERT targets)."""
        return sorted(
            name for name, c in self.certificates.items() if not c.proven
        )

    def method_counts(self) -> Dict[str, int]:
        out = {m: 0 for m in _METHODS}
        for c in self.certificates.values():
            out[c.method] += 1
        return {m: n for m, n in out.items() if n}

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "design": self.design_name,
            "graph": self.graph_name,
            "dma_beat": self.dma_beat,
            "memory_system": self.memory_system,
            "words": {
                "full": self.full_words,
                "certified": self.certified_words,
                "saved": self.saved_words,
                "saved_pct": round(self.saved_pct, 2),
            },
            "methods": self.method_counts(),
            "tight_channels": self.tight_channels(),
            "certificates": {
                name: cert.to_dict()
                for name, cert in sorted(self.certificates.items())
            },
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "DepthPlan":
        certs = {
            name: DepthCertificate.from_dict(cd)
            for name, cd in d["certificates"].items()
        }
        return cls(
            design_name=str(d["design"]),
            graph_name=str(d["graph"]),
            dma_beat=int(d["dma_beat"]),
            memory_system=str(d["memory_system"]),
            certificates=certs,
        )

    def summary(self) -> str:
        return (
            f"depth plan {self.design_name}: {len(self.certificates)} "
            f"channels, {self.certified_words}/{self.full_words} words "
            f"({self.saved_pct:.1f}% saved), "
            f"{len(self.tight_channels())} tight"
        )


def load_depth_plan(path: str) -> DepthPlan:
    """Load a plan written by ``repro shrink --apply``."""
    with open(path) as fh:
        d = json.load(fh)
    return DepthPlan.from_dict(d)


# -- graph structure helpers --------------------------------------------------


def _endpoint_actor(endpoint: str) -> str:
    """Actor name of a channel endpoint (ports never contain dots)."""
    return endpoint.rsplit(".", 1)[0]


def _chain_bases(graph: DataflowGraph) -> List[str]:
    """Base names of every literal SST chain (``X`` for actor ``X.asm``)."""
    return sorted(
        name[: -len(".asm")]
        for name, actor in graph.actors.items()
        if isinstance(actor, WindowAssembler) and name.endswith(".asm")
    )


def _chain_prime_latency(asm: WindowAssembler) -> int:
    """Stream beats a literal chain delays before the first window.

    Mirrors ``actor_skew_latency`` for the behavioral
    :class:`~repro.sst.line_buffer.SlidingWindowActor`: the full-buffer
    footprint times the interleave group.
    """
    return asm.spec.footprint(asm.wp) * asm.group


def _bridge_channels(graph: DataflowGraph) -> Set[str]:
    """Channels that are bridges of the undirected channel multigraph.

    A channel with a parallel sibling between the same actor pair is
    never a bridge (the sibling closes an undirected cycle), so only
    multiplicity-1 edges that :func:`networkx.bridges` reports qualify.
    """
    parallel: Dict[Tuple[str, str], List[str]] = {}
    g: "nx.Graph[str]" = nx.Graph()
    for name in graph.actors:
        g.add_node(name)
    for name, ch in graph.channels.items():
        if ch.writer is None or ch.reader is None:
            continue
        u = _endpoint_actor(ch.writer)
        v = _endpoint_actor(ch.reader)
        key = (u, v) if u <= v else (v, u)
        parallel.setdefault(key, []).append(name)
        g.add_edge(*key)
    out: Set[str] = set()
    for u, v in nx.bridges(g):
        key = (u, v) if u <= v else (v, u)
        names = parallel[key]
        if len(names) == 1:
            out.add(names[0])
    return out


def _chain_members(
    graph: DataflowGraph, base: str
) -> Tuple[List[str], List[str], List[int]]:
    """``(fifo names, tap channel names, full depths)`` of one chain.

    Both lists follow chain position (stream-arrival order): tap channel
    ``i`` is the one written by filter ``X.f{i}``'s ``tap`` port — the
    graph itself resolves the sorted-offset-to-tap-index mapping that
    ``build_filter_chain`` applied.
    """
    writers = {
        ch.writer: name
        for name, ch in graph.channels.items()
        if ch.writer is not None
    }
    n = 0
    while f"{base}.f{n}" in graph.actors:
        n += 1
    if n == 0:
        raise ConfigurationError(f"no filters under chain base {base!r}")
    fifos: List[str] = []
    depths: List[int] = []
    for i in range(n - 1):
        name = f"{base}.fifo{i}"
        ch = graph.channels.get(name)
        if ch is None or ch.capacity is None:
            raise ConfigurationError(
                f"literal chain {base!r} is missing bounded FIFO {name!r}"
            )
        fifos.append(name)
        depths.append(ch.capacity - 1)
    taps: List[str] = []
    for i in range(n):
        tap = writers.get(f"{base}.f{i}.tap")
        if tap is None:
            raise ConfigurationError(
                f"literal chain {base!r}: filter {i} has no tap channel"
            )
        taps.append(tap)
    return fifos, taps, depths


def chain_run_ahead(
    depths: Sequence[int],
    fifo_caps: Sequence[int],
    tap_caps: Sequence[int],
) -> List[int]:
    """The max-plus run-ahead budgets ``R_i`` of a literal chain.

    ``depths`` are the full-buffering depths ``d_i`` between consecutive
    taps, ``fifo_caps`` the proposed chain FIFO capacities ``c_i``, and
    ``tap_caps`` the tap-channel capacities ``T_i`` (one per filter).
    The chain is deadlock-free iff every returned budget is >= 1.
    """
    n = len(tap_caps)
    if len(depths) != n - 1 or len(fifo_caps) != n - 1:
        raise ConfigurationError(
            f"chain shape mismatch: {n} taps need {n - 1} FIFOs, got "
            f"{len(depths)} depths / {len(fifo_caps)} capacities"
        )
    budgets = [0] * n
    budgets[n - 1] = tap_caps[n - 1]
    for i in range(n - 2, -1, -1):
        budgets[i] = min(
            tap_caps[i], budgets[i + 1] + fifo_caps[i] - depths[i]
        )
    return budgets


def _certify_chain(
    graph: DataflowGraph,
    base: str,
    certs: Dict[str, DepthCertificate],
) -> None:
    """Prove and record the word-minimal depths of one literal chain."""
    fifos, taps, depths = _chain_members(graph, base)
    tap_caps = [1] * len(taps)
    fifo_caps = [max(1, d) for d in depths]
    budgets = chain_run_ahead(depths, fifo_caps, tap_caps)
    if min(budgets) < 1:  # pragma: no cover - the assignment is feasible
        raise ConfigurationError(
            f"chain {base!r}: minimal assignment violates its own "
            f"recursion (budgets {budgets})"
        )
    for i, name in enumerate(fifos):
        ch = graph.channels[name]
        cap = fifo_caps[i]
        tight = cap >= 2
        if tight:
            shrunk = list(fifo_caps)
            shrunk[i] = cap - 1
            worst = min(chain_run_ahead(depths, shrunk, tap_caps))
            detail = (
                f"max-plus recursion over chain {base!r}: R>=1 at depth "
                f"{cap} (full depth {depths[i]}, unit tap slack); depth "
                f"{cap - 1} drives min R to {worst}"
            )
        else:
            detail = (
                f"max-plus recursion over chain {base!r}: inter-tap "
                f"depth {depths[i]} is within the unit tap slack"
            )
        certs[name] = DepthCertificate(
            channel=name,
            depth=cap,
            full_capacity=int(ch.capacity or 0),
            method=METHOD_CHAIN,
            proven=True,
            tight=tight,
            detail=detail,
        )
    for i, name in enumerate(taps):
        ch = graph.channels[name]
        certs[name] = DepthCertificate(
            channel=name,
            depth=1,
            full_capacity=int(ch.capacity or 0),
            method=METHOD_CHAIN,
            proven=True,
            tight=False,
            detail=(
                f"tap channel of chain {base!r}: the run-ahead budget "
                f"T={1} is folded into the chain FIFO floors"
            ),
        )


def _reduced_topology(
    graph: DataflowGraph, chain_bases: Sequence[str]
) -> Tuple["nx.DiGraph[str]", Dict[Tuple[str, str], List[str]], Dict[str, int]]:
    """Digraph with literal chains contracted to one node each.

    Returns ``(digraph, hop channels, node skew latency)``.  Contracting
    a chain to its prime latency reproduces the behavioral BUFFER.SKEW
    view: tap shortcuts inside a chain are synchronized by the assembler
    and must not leak phantom deficits onto upstream channels.
    """
    from repro.analysis.graph_rules import actor_skew_latency

    def node_of(actor_name: str) -> str:
        for base in chain_bases:
            if actor_name == base or actor_name.startswith(base + "."):
                return base
        return actor_name

    latency: Dict[str, int] = {}
    for name, actor in graph.actors.items():
        node = node_of(name)
        if node != name:
            if isinstance(actor, WindowAssembler):
                latency[node] = _chain_prime_latency(actor)
            continue
        latency[name] = actor_skew_latency(actor)
    g: "nx.DiGraph[str]" = nx.DiGraph()
    g.add_nodes_from(latency)
    hops: Dict[Tuple[str, str], List[str]] = {}
    for name, ch in graph.channels.items():
        if ch.writer is None or ch.reader is None:
            continue
        u = node_of(_endpoint_actor(ch.writer))
        v = node_of(_endpoint_actor(ch.reader))
        if u == v:
            continue  # intra-chain channel, certified by the recursion
        g.add_edge(u, v)
        hops.setdefault((u, v), []).append(name)
    return g, hops, latency


def _certify_reconvergent(
    graph: DataflowGraph,
    chain_bases: Sequence[str],
    certs: Dict[str, DepthCertificate],
) -> None:
    """Floor the channels on fork/join branches by their latency deficit."""
    g, hops, latency = _reduced_topology(graph, chain_bases)
    forks = [n for n in g if g.out_degree(n) >= 2]
    joins = [n for n in g if g.in_degree(n) >= 2]
    needed: Dict[str, int] = {}
    origin: Dict[str, str] = {}
    for f in forks:
        for j in joins:
            if f == j or not nx.has_path(g, f, j):
                continue
            paths: List[Tuple[str, ...]] = []
            for path in nx.all_simple_paths(g, f, j, cutoff=_PATH_CUTOFF):
                paths.append(tuple(path))
                if len(paths) >= _MAX_PATHS:
                    break
            if len(paths) < 2:
                continue
            inner = [set(p[1:-1]) for p in paths]
            if not any(
                not (inner[a] & inner[b])
                for a in range(len(paths))
                for b in range(a + 1, len(paths))
            ):
                continue
            lats = [
                sum(latency[n] for n in path[1:-1]) for path in paths
            ]
            skew = max(lats)
            for path, lat in zip(paths, lats):
                deficit = max(1, skew - lat)
                for a, b in zip(path, path[1:]):
                    for name in hops.get((a, b), []):
                        if name in certs:
                            continue
                        if deficit > needed.get(name, 0):
                            needed[name] = deficit
                            origin[name] = f"{f} -> {j}"
    for name, floor in needed.items():
        ch = graph.channels[name]
        if ch.capacity is None:
            continue
        certs[name] = DepthCertificate(
            channel=name,
            depth=floor,
            full_capacity=int(ch.capacity),
            method=METHOD_SKEW,
            proven=True,
            tight=False,
            detail=(
                f"reconvergent branch of {origin[name]}: must absorb a "
                f"latency deficit of {floor - 1} beats against the "
                f"slowest peer (BUFFER.SKEW bound, chains contracted)"
            ),
        )


def infer_depth_plan(
    graph: DataflowGraph,
    design_name: Optional[str] = None,
    dma: DmaModel = PAPER_DMA,
) -> DepthPlan:
    """Derive a certified :class:`DepthPlan` for an elaborated graph.

    The graph must be a ``repro check``-clean *literal* elaboration
    (chain FIFOs only exist there); every bounded channel receives a
    certificate.  The plan does not mutate ``graph`` — apply it with
    :func:`apply_depth_plan` or ``build_network(depth_plan=...)``.
    """
    bases = _chain_bases(graph)
    certs: Dict[str, DepthCertificate] = {}
    for base in bases:
        _certify_chain(graph, base, certs)
    for name in sorted(graph.channels):
        ch = graph.channels[name]
        if name in certs or ch.capacity is None or ch.writer is None:
            continue
        tx = graph.actors.get(_endpoint_actor(ch.writer))
        if type(tx) is not LinkTxActor:
            continue
        beat = tx.beat
        depth = 2 if beat == 1 else 1
        certs[name] = DepthCertificate(
            channel=name,
            depth=depth,
            full_capacity=int(ch.capacity),
            method=METHOD_LINK,
            proven=True,
            tight=False,
            detail=(
                f"link wire paced at one word per {beat} cycle(s): the "
                f"transmitter never has more than one word in flight"
                + (
                    " per two-phase commit window, so depth 2 sustains "
                    "the full back-to-back rate"
                    if beat == 1
                    else ", and the receiver drains it before the next "
                    "beat, so depth 1 sustains the full link rate"
                )
            ),
        )
    bridges = _bridge_channels(graph)
    for name in sorted(graph.channels):
        ch = graph.channels[name]
        if name in certs or ch.capacity is None or name not in bridges:
            continue
        certs[name] = DepthCertificate(
            channel=name,
            depth=1,
            full_capacity=int(ch.capacity),
            method=METHOD_BRIDGE,
            proven=True,
            tight=False,
            detail=(
                "bridge of the undirected channel multigraph: no "
                "deadlock wait-cycle can traverse it, so capacity 1 "
                "suffices"
            ),
        )
    _certify_reconvergent(graph, bases, certs)
    for name in sorted(graph.channels):
        ch = graph.channels[name]
        if name in certs or ch.capacity is None:
            continue
        certs[name] = DepthCertificate(
            channel=name,
            depth=int(ch.capacity),
            full_capacity=int(ch.capacity),
            method=METHOD_PIN,
            proven=False,
            tight=False,
            detail=(
                "no structural proof (not a chain FIFO, bridge, or "
                "enumerated reconvergent branch): pinned at the built "
                "capacity"
            ),
        )
    design = getattr(graph, "design", None)
    return DepthPlan(
        design_name=design_name
        or (design.name if design is not None else graph.name),
        graph_name=graph.name,
        dma_beat=dma.beat_interval(32),
        memory_system="literal" if bases else "behavioral",
        certificates=certs,
    )


def apply_depth_plan(
    graph: DataflowGraph, plan: DepthPlan, strict: bool = True
) -> None:
    """Re-provision a built graph's channels to the certified depths.

    With ``strict`` (the default) the plan must cover every bounded
    channel of the graph and name no unknown ones — a mismatch means
    the plan was inferred from a different elaboration (wrong design or
    memory system).  The plan is attached as ``graph.depth_plan`` so the
    static verifier's BUFFER.DEPTH_* rules can see it.
    """
    unknown = [
        name for name in plan.certificates if name not in graph.channels
    ]
    missing = [
        name
        for name, ch in graph.channels.items()
        if ch.capacity is not None and name not in plan.certificates
    ]
    if strict and (unknown or missing):
        raise ConfigurationError(
            f"depth plan for {plan.design_name!r} does not match graph "
            f"{graph.name!r}: {len(unknown)} plan channels missing from "
            f"the graph, {len(missing)} graph channels uncovered "
            f"(examples: {sorted(unknown)[:3]} / {sorted(missing)[:3]}); "
            f"was the plan inferred with memory_system="
            f"{plan.memory_system!r}?"
        )
    for name, cert in plan.certificates.items():
        ch = graph.channels.get(name)
        if ch is None or ch.capacity is None:
            continue
        ch.capacity = cert.depth
    graph.depth_plan = plan


# -- empirical cross-validation ----------------------------------------------


@dataclass
class ProbeOutcome:
    """One depth-1 probe of a tight certificate."""

    channel: str
    probe_depth: int
    deadlocked: bool
    #: Channels the event engine reported blocked at the deadlock.
    blocked: List[str]
    #: The certified channel is in the blocked set.
    blamed: bool
    #: The plan-aware analyzer emitted BUFFER.DEPTH_UNDERSIZED for it.
    flagged: bool
    #: match_deadlock_diagnostics paired the deadlock with that finding.
    matched: bool
    cycles: int

    @property
    def ok(self) -> bool:
        return self.deadlocked and self.blamed and self.flagged and self.matched

    def to_dict(self) -> Dict[str, Any]:
        return {
            "channel": self.channel,
            "probe_depth": self.probe_depth,
            "deadlocked": self.deadlocked,
            "blocked": self.blocked,
            "blamed": self.blamed,
            "flagged": self.flagged,
            "matched": self.matched,
            "cycles": self.cycles,
            "ok": self.ok,
        }


@dataclass
class PlanValidation:
    """Dual-engine no-deadlock check plus tight-certificate probes."""

    design: str
    seed: int
    images: int
    baseline_cycles: int
    baseline_digest: str
    #: scheduler -> {"cycles", "digest", "finished", "ok"}.
    runs: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    probes: List[ProbeOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r["ok"] for r in self.runs.values()) and all(
            p.ok for p in self.probes
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "design": self.design,
            "seed": self.seed,
            "images": self.images,
            "baseline_cycles": self.baseline_cycles,
            "baseline_digest": self.baseline_digest,
            "runs": self.runs,
            "probes": [p.to_dict() for p in self.probes],
            "ok": self.ok,
        }


def _seeded_build(
    design: Any,
    plan: Optional[DepthPlan],
    seed: int,
    images: int,
    memory_system: str,
) -> Any:
    """Fresh seeded literal build, optionally with the plan applied."""
    from repro.core.builder import build_network, random_weights

    weights = random_weights(design, seed=seed)
    rng = np.random.default_rng(seed)
    batch = rng.uniform(0, 1, (images,) + design.input_shape).astype(
        np.float32
    )
    return build_network(
        design, weights, batch, memory_system=memory_system,
        depth_plan=plan,
    )


def probe_tight_certificate(
    design: Any,
    plan: DepthPlan,
    channel: str,
    seed: int = 0,
    images: int = 1,
    stall_limit: int = 50_000,
    max_cycles: int = 50_000_000,
) -> ProbeOutcome:
    """Shrink one tight certificate to depth-1 and expect the deadlock.

    Reuses the FIFO-shrink fault machinery: the probe arms a
    ``FifoShrink`` on a fresh plan-applied build, runs the event engine,
    and cross-references the deadlock against the plan-aware analyzer
    exactly like the PR 3 agreement suite.
    """
    from repro.analysis.checker import analyze_graph
    from repro.dataflow.deadlock import match_deadlock_diagnostics
    from repro.faults import FaultScenario, FifoShrink, arm_faults

    cert = plan.certificates[channel]
    if not cert.tight:
        raise ConfigurationError(
            f"{channel!r} is not a tight certificate (depth {cert.depth}, "
            f"method {cert.method})"
        )
    built = _seeded_build(design, plan, seed, images, plan.memory_system)
    scenario = FaultScenario(
        "depth-probe",
        (FifoShrink(channels=channel, capacity=cert.depth - 1),),
    )
    armed = arm_faults(built.graph, scenario, seed)
    sim = built.graph.build_simulator(
        stall_limit=stall_limit, scheduler="event"
    )
    sim.faults = armed
    try:
        result = sim.run(max_cycles=max_cycles)
    except DeadlockError as err:
        report = analyze_graph(built.graph, design)
        blocked = err.blocked_channel_names()
        flagged = any(
            d.rule == "BUFFER.DEPTH_UNDERSIZED"
            and channel in (d.message + d.location)
            for d in report.errors
        )
        matches = match_deadlock_diagnostics(err, report)
        matched = channel in {name for name, _ in matches}
        return ProbeOutcome(
            channel=channel,
            probe_depth=cert.depth - 1,
            deadlocked=True,
            blocked=blocked,
            blamed=channel in blocked,
            flagged=flagged,
            matched=matched,
            cycles=err.cycle,
        )
    return ProbeOutcome(
        channel=channel,
        probe_depth=cert.depth - 1,
        deadlocked=False,
        blocked=[],
        blamed=False,
        flagged=False,
        matched=False,
        cycles=result.cycles,
    )


def validate_plan(
    design: Any,
    plan: DepthPlan,
    seed: int = 0,
    images: int = 1,
    schedulers: Sequence[str] = ("event", "lockstep"),
    probe_channels: Optional[Sequence[str]] = None,
    stall_limit: int = 50_000,
    max_cycles: int = 50_000_000,
) -> PlanValidation:
    """Empirically certify a plan: clean dual-engine runs + tight probes.

    The plan-applied build must finish under every scheduler with the
    same output digest as the full-buffering baseline (Kahn determinism
    makes digest equality a free correctness check), and every tight
    certificate's depth-1 probe must deadlock on exactly the certified
    channel.  ``probe_channels`` restricts the probe set (default: all
    tight certificates).
    """
    from repro.faults import output_digest

    baseline = _seeded_build(design, None, seed, images, plan.memory_system)
    base_res = baseline.run(
        max_cycles=max_cycles, stall_limit=stall_limit, scheduler="event"
    )
    base_digest = output_digest(baseline.outputs())
    val = PlanValidation(
        design=design.name,
        seed=seed,
        images=images,
        baseline_cycles=base_res.cycles,
        baseline_digest=base_digest,
    )
    for scheduler in schedulers:
        built = _seeded_build(design, plan, seed, images, plan.memory_system)
        entry: Dict[str, Any] = {
            "cycles": 0, "digest": None, "finished": False, "ok": False,
        }
        try:
            res = built.run(
                max_cycles=max_cycles, stall_limit=stall_limit,
                scheduler=scheduler,
            )
        except DeadlockError as err:
            entry["cycles"] = err.cycle
            entry["deadlock"] = err.blocked_channel_names()
        else:
            digest = output_digest(built.outputs())
            entry.update(
                cycles=res.cycles,
                digest=digest,
                finished=res.finished,
                ok=bool(res.finished and digest == base_digest),
            )
        val.runs[scheduler] = entry
    targets = (
        list(probe_channels)
        if probe_channels is not None
        else plan.tight_channels()
    )
    for channel in targets:
        val.probes.append(
            probe_tight_certificate(
                design, plan, channel, seed=seed, images=images,
                stall_limit=stall_limit, max_cycles=max_cycles,
            )
        )
    return val


# -- empirical bisect shrinker ------------------------------------------------


def _shrink_trial(
    design: Any,
    plan: DepthPlan,
    channel: str,
    capacity: int,
    seed: int,
    images: int,
    stall_limit: int,
    max_cycles: int,
) -> bool:
    """True when the plan with one channel shrunk to ``capacity`` finishes."""
    from repro.faults import FaultScenario, FifoShrink, arm_faults

    built = _seeded_build(design, plan, seed, images, plan.memory_system)
    armed = arm_faults(
        built.graph,
        FaultScenario(
            "depth-bisect",
            (FifoShrink(channels=channel, capacity=capacity),),
        ),
        seed,
    )
    sim = built.graph.build_simulator(
        stall_limit=stall_limit, scheduler="event"
    )
    sim.faults = armed
    try:
        result = sim.run(max_cycles=max_cycles)
    except DeadlockError:
        return False
    return bool(result.finished)


def bisect_channel_floor(
    design: Any,
    plan: DepthPlan,
    channel: str,
    seed: int = 0,
    images: int = 1,
    stall_limit: int = 50_000,
    max_cycles: int = 50_000_000,
) -> int:
    """Binary-search one channel's empirical deadlock-freedom floor.

    All other channels sit at their certified depths; by Kahn
    monotonicity (more capacity never hurts) feasibility is monotone in
    the probed capacity, so binary search is exact.  Returns the
    smallest capacity that simulates clean.
    """
    cert = plan.certificates[channel]
    if cert.depth == 1:
        return 1
    lo, hi = 1, cert.depth
    if not _shrink_trial(
        design, plan, channel, hi, seed, images, stall_limit, max_cycles
    ):  # pragma: no cover - the certified depth is feasible by validation
        raise ConfigurationError(
            f"{channel!r} deadlocks at its certified depth {hi}: the "
            f"certificate is violated"
        )
    while lo < hi:
        mid = (lo + hi) // 2
        if _shrink_trial(
            design, plan, channel, mid, seed, images, stall_limit,
            max_cycles,
        ):
            hi = mid
        else:
            lo = mid + 1
    return hi


def bisect_plan(
    design: Any,
    plan: DepthPlan,
    channels: Optional[Sequence[str]] = None,
    seed: int = 0,
    images: int = 1,
    stall_limit: int = 50_000,
    max_cycles: int = 50_000_000,
) -> Dict[str, Dict[str, Any]]:
    """Empirical floors for ``channels`` (default: every depth > 1).

    Each row reports the certified depth, the bisected floor, and
    whether they agree: a floor above the certificate would be a
    soundness violation (impossible if validation passed), a floor
    below a *tight* certificate means the prover over-constrained.
    """
    if channels is None:
        channels = sorted(
            name
            for name, c in plan.certificates.items()
            if c.depth > 1
        )
    out: Dict[str, Dict[str, Any]] = {}
    for name in channels:
        cert = plan.certificates[name]
        floor = bisect_channel_floor(
            design, plan, name, seed=seed, images=images,
            stall_limit=stall_limit, max_cycles=max_cycles,
        )
        agrees = floor <= cert.depth and (
            not cert.tight or floor == cert.depth
        )
        out[name] = {
            "certified": cert.depth,
            "floor": floor,
            "tight": cert.tight,
            "agrees": agrees,
        }
    return out


# -- the `repro shrink` experiment --------------------------------------------


class ShrinkReport(Report):
    """One ``repro shrink`` run behind the unified Report envelope."""

    kind = "shrink"

    def __init__(self, data: Dict[str, Any]):
        self._data = data

    def __getitem__(self, key: str) -> Any:
        return self._data[key]

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def to_dict(self) -> Dict[str, Any]:
        return dict(self._data)

    def summary(self) -> str:
        d = self._data
        return (
            f"shrink {d['design']}: {d['words']['saved_pct']}% words "
            f"saved, {'ok' if d['ok'] else 'CERTIFICATE VIOLATION'}"
        )

    def format_text(self) -> str:
        from repro.report import format_kv, format_table

        d = self._data
        pairs: List[Tuple[str, Any]] = [
            ("simulated design",
             d["simulated_design"] + (" (pilot)" if d["pilot"] else "")),
            ("channels certified", d["prover"]["channels"]),
            ("methods", ", ".join(
                f"{m}={n}" for m, n in d["prover"]["methods"].items()
            )),
            ("tight certificates", d["prover"]["tight"]),
            ("heuristic pins", d["prover"]["heuristic"]),
            ("prover runtime", f"{d['prover']['runtime_s']:.3f} s"),
            ("FIFO words (full buffering)", d["words"]["full"]),
            ("FIFO words (certified)", d["words"]["certified"]),
            ("words saved",
             f"{d['words']['saved']} ({d['words']['saved_pct']}%)"),
        ]
        if d.get("validation"):
            v = d["validation"]
            for scheduler, run in v["runs"].items():
                state = (
                    f"{run['cycles']} cycles, digest "
                    f"{'match' if run['ok'] else 'MISMATCH/deadlock'}"
                )
                pairs.append((f"certified run [{scheduler}]", state))
            pairs.append(
                ("cycles vs full buffering",
                 f"{v['runs']['event']['cycles']} vs "
                 f"{v['baseline_cycles']} "
                 f"(x{d['cycles_ratio']})")
            )
            probed = (
                f"{sum(1 for p in v['probes'] if p['ok'])}/"
                f"{len(v['probes'])} agree"
            )
            if v.get("unprobed_tight"):
                probed += f" ({v['unprobed_tight']} unprobed, --probe-limit)"
            pairs.append(("tight probes (depth-1 deadlocks)", probed))
        pairs.append(("verdict", "ok" if d["ok"] else "CERTIFICATE VIOLATION"))
        text = format_kv(f"depth shrink: {d['design']}", pairs)
        if d.get("bisect"):
            rows = [
                [name, row["certified"], row["floor"],
                 "tight" if row["tight"] else "",
                 "ok" if row["agrees"] else "DISAGREES"]
                for name, row in sorted(d["bisect"].items())
            ]
            text += "\n\n" + format_table(
                ["channel", "certified", "bisected floor", "", ""],
                rows, title="empirical bisect",
            )
        if d.get("violations"):
            text += "\n\nviolations:\n" + "\n".join(
                f"  - {v}" for v in d["violations"]
            )
        return text


def run_shrink(
    design: Any,
    seed: int = 0,
    images: int = 1,
    pilot: Optional[bool] = None,
    validate: bool = True,
    bisect: bool = False,
    probe_channels: Optional[Sequence[str]] = None,
    probe_limit: Optional[int] = None,
    stall_limit: int = 50_000,
    max_cycles: int = 50_000_000,
    dma: DmaModel = PAPER_DMA,
) -> ShrinkReport:
    """The full ``repro shrink`` experiment for one design.

    Infers the certified plan from a literal elaboration (huge designs
    are swapped for their deterministic pilot downscale, like
    ``faultsim``), computes the closed-form BRAM savings over the
    original design, and — unless ``validate=False`` — replays the
    certificates empirically.  ``probe_limit`` caps the depth-1 probe
    count (the report records how many tight certificates went
    unprobed — no silent truncation).  ``ok`` is False on any
    certificate violation (the CLI exits nonzero on it).
    """
    from repro.core.block_transform import design_is_blocked
    from repro.core.resource_model import buffering_savings
    from repro.faults import PILOT_WEIGHT_LIMIT, pilot_design

    if pilot or (
        pilot is None
        and design.weight_count() > PILOT_WEIGHT_LIMIT
        and not design_is_blocked(design)
    ):
        sim_design, piloted = pilot_design(design), True
    else:
        sim_design, piloted = design, False
    built = _seeded_build(sim_design, None, seed, 1, "literal")
    t0 = time.perf_counter()
    plan = infer_depth_plan(built.graph, design_name=sim_design.name, dma=dma)
    runtime = time.perf_counter() - t0
    violations: List[str] = []
    data: Dict[str, Any] = {
        "design": design.name,
        "simulated_design": sim_design.name,
        "pilot": piloted,
        "seed": seed,
        "images": images,
        "dma_beat": plan.dma_beat,
        "memory_system": plan.memory_system,
        "prover": {
            "channels": len(plan.certificates),
            "methods": plan.method_counts(),
            "proven": len(plan.proven_channels()),
            "heuristic": len(plan.heuristic_channels()),
            "tight": len(plan.tight_channels()),
            "runtime_s": round(runtime, 4),
        },
        "words": {
            "full": plan.full_words,
            "certified": plan.certified_words,
            "saved": plan.saved_words,
            "saved_pct": round(plan.saved_pct, 2),
        },
        "resources": buffering_savings(design),
        "plan": plan.to_dict(),
    }
    if validate:
        targets = (
            list(probe_channels)
            if probe_channels is not None
            else plan.tight_channels()
        )
        unprobed = 0
        if probe_limit is not None and len(targets) > probe_limit:
            unprobed = len(targets) - probe_limit
            targets = targets[:probe_limit]
        val = validate_plan(
            sim_design, plan, seed=seed, images=images,
            probe_channels=targets, stall_limit=stall_limit,
            max_cycles=max_cycles,
        )
        data["validation"] = val.to_dict()
        data["validation"]["unprobed_tight"] = unprobed
        event_cycles = val.runs.get("event", {}).get("cycles", 0)
        data["cycles_ratio"] = (
            round(event_cycles / val.baseline_cycles, 2)
            if val.baseline_cycles
            else math.nan
        )
        for scheduler, run in val.runs.items():
            if not run["ok"]:
                violations.append(
                    f"certified plan failed under {scheduler}: "
                    f"{run.get('deadlock', 'digest mismatch')}"
                )
        for probe in val.probes:
            if not probe.ok:
                violations.append(
                    f"tight certificate {probe.channel} at depth "
                    f"{probe.probe_depth}: expected a deadlock on that "
                    f"channel, got deadlocked={probe.deadlocked} "
                    f"blamed={probe.blamed} flagged={probe.flagged} "
                    f"matched={probe.matched}"
                )
    if bisect:
        rows = bisect_plan(
            sim_design, plan, seed=seed, images=images,
            stall_limit=stall_limit, max_cycles=max_cycles,
        )
        data["bisect"] = rows
        for name, row in rows.items():
            if not row["agrees"]:
                violations.append(
                    f"bisected floor of {name} is {row['floor']} but the "
                    f"certificate says {row['certified']} "
                    f"(tight={row['tight']})"
                )
    data["violations"] = violations
    data["ok"] = not violations
    return ShrinkReport(data)
