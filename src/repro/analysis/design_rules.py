"""Design-level (spec chain) rules of the static verifier.

These rules operate on a :class:`SpecChain` — a *raw* ``(name,
input_shape, specs)`` triple that, unlike :class:`NetworkDesign`, is never
validated on construction. That lets the verifier walk a broken chain to
the end and report *every* violation with a rule id and a fix hint,
instead of dying on the first exception the way elaboration would.

The walk mirrors :class:`NetworkDesign`'s propagation: shapes flow
forward, every layer boundary is classified into the Section IV-A adapter
cases, and each layer's Eq. 4 initiation interval is recomputed from
first principles. A valid design additionally gets the steady-state
bottleneck cross-check against :mod:`repro.core.perf_model`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.diagnostics import AnalysisReport, Severity, make
from repro.core.layer_spec import ConvLayerSpec, FCLayerSpec, LayerSpec, PoolLayerSpec
from repro.core.network_design import NetworkDesign, PortAdapter, classify_adapter
from repro.errors import PortMismatchError, ReproError
from repro.fpga.board import VC707
from repro.hls.pipeline import ii_bounds

#: Layer kinds the rate/II rules know how to model.
_KNOWN_KINDS = ("conv", "pool", "fc")


@dataclass(frozen=True)
class SpecChain:
    """An unvalidated design: the verifier's tolerant input form."""

    name: str
    #: Nominally (C, H, W); arity is a SPEC.VALID check, not a type bound.
    input_shape: Tuple[int, ...]
    specs: Tuple[LayerSpec, ...]

    @classmethod
    def from_design(cls, design: NetworkDesign) -> "SpecChain":
        return cls(design.name, design.input_shape, tuple(design.specs))


@dataclass
class ResolvedLayer:
    """One chain position with whatever shape facts could be derived."""

    spec: LayerSpec
    index: int
    prev_name: str
    prev_out_ports: int
    #: Spatial size arriving from upstream (None once propagation broke).
    in_hw: Optional[Tuple[int, int]]
    out_shape: Optional[Tuple[int, int, int]]
    adapter: Optional[PortAdapter]


def run_chain_rules(chain: SpecChain, report: AnalysisReport) -> List[ResolvedLayer]:
    """Run all design-level rules except the perf-model cross-check."""
    for rule in ("SPEC.VALID", "RATE.BALANCE", "RATE.GEOMETRY",
                 "ADAPTER.LEGAL", "II.EQ4"):
        report.note_rule(rule)

    resolved: List[ResolvedLayer] = []
    if not chain.specs:
        report.add(make(
            "SPEC.VALID", Severity.ERROR, "design",
            "a network needs at least one layer",
        ))
        return resolved
    if len(chain.input_shape) != 3 or any(d < 1 for d in chain.input_shape):
        report.add(make(
            "SPEC.VALID", Severity.ERROR, "design",
            f"input_shape must be a positive (C, H, W), got {chain.input_shape}",
        ))
        return resolved

    shape: Optional[Tuple[int, ...]] = tuple(chain.input_shape)
    prev_name = "dma_in"
    prev_out_ports = 1
    seen_fc = False
    names = set()
    for index, spec in enumerate(chain.specs):
        loc = f"layer:{spec.name}"
        boundary = f"boundary:{prev_name}->{spec.name}"

        if spec.name in names:
            report.add(make(
                "SPEC.VALID", Severity.ERROR, loc,
                f"duplicate layer name {spec.name!r}",
                hint="give every layer a unique name",
            ))
        names.add(spec.name)
        if spec.kind not in _KNOWN_KINDS:
            report.add(make(
                "SPEC.VALID", Severity.ERROR, loc,
                f"unknown layer kind {spec.kind!r}",
            ))
        if seen_fc and not isinstance(spec, FCLayerSpec):
            report.add(make(
                "SPEC.VALID", Severity.ERROR, loc,
                "feature-extraction layer after the classifier stage",
                hint="move all conv/pool layers before the first FC layer",
            ))
            report.add(make(
                "GRAPH.STRUCTURE", Severity.INFO, loc,
                "analysis of downstream layers skipped (broken chain order)",
            ))
            report.note_rule("GRAPH.STRUCTURE")
            break

        # -- RATE.BALANCE: words/image leaving upstream == words entering here.
        if shape is not None:
            upstream_words = shape[0] * shape[1] * shape[2]
            if isinstance(spec, FCLayerSpec):
                consumed = spec.in_fm
                what = f"IN_FM {spec.in_fm} flattened inputs"
            else:
                consumed = spec.in_fm * shape[1] * shape[2]
                what = (f"IN_FM {spec.in_fm} x {shape[1]}x{shape[2]} = "
                        f"{consumed} words")
            if consumed != upstream_words:
                report.add(make(
                    "RATE.BALANCE", Severity.ERROR, boundary,
                    f"rate imbalance: upstream produces {upstream_words} "
                    f"words/image ({shape[0]} FMs over {shape[1]}x{shape[2]}) "
                    f"but {spec.name!r} consumes {what}",
                    hint=f"set {spec.name}.in_fm to match the upstream "
                         f"output volume",
                ))

        # -- ADAPTER.LEGAL: the Section IV-A port classification must exist.
        adapter: Optional[PortAdapter] = None
        try:
            adapter = classify_adapter(prev_out_ports, spec.in_ports)
        except PortMismatchError as exc:
            report.add(make(
                "ADAPTER.LEGAL", Severity.ERROR, boundary,
                f"no legal port adapter: {exc} "
                f"(OUT_PORTS={prev_out_ports}, IN_PORTS={spec.in_ports})",
                hint="pick port counts where one divides the other "
                     "(direct/demux/widen are the only adapter cases)",
            ))

        # -- II.EQ4: the spec's II must equal Eq. 4 exactly.
        try:
            lo_in, lo_out = ii_bounds(
                spec.in_fm, spec.in_ports, spec.out_fm, spec.out_ports
            )
        except ReproError as exc:
            report.add(make(
                "II.EQ4", Severity.ERROR, loc,
                f"Eq. 4 undefined: {exc}",
                hint="port counts must divide the feature-map counts",
            ))
        else:
            expected = max(lo_in, lo_out, 1)
            actual: Optional[int]
            try:
                actual = spec.ii
            except ReproError as exc:
                actual = None
                report.add(make(
                    "II.EQ4", Severity.ERROR, loc,
                    f"spec cannot report an initiation interval: {exc}",
                ))
            if actual is not None and actual != expected:
                binding = ("input" if lo_in >= lo_out else "output")
                report.add(make(
                    "II.EQ4", Severity.ERROR, loc,
                    f"spec reports II={actual} but Eq. 4 gives "
                    f"max(IN_FM/IN_PORTS={lo_in}, OUT_FM/OUT_PORTS={lo_out}) "
                    f"= {expected}",
                    hint=f"the {binding} side binds; the performance model "
                         f"would silently disagree with this core",
                ))

        # -- RATE.GEOMETRY: the window must fit and should tile the input.
        in_hw = (shape[1], shape[2]) if shape is not None else None
        out_shape: Optional[Tuple[int, int, int]] = None
        if isinstance(spec, FCLayerSpec):
            seen_fc = True
            out_shape = (spec.out_fm, 1, 1)
        elif in_hw is not None:
            h, w = in_hw
            try:
                oh, ow = spec.out_hw(h, w)
            except ReproError as exc:
                report.add(make(
                    "RATE.GEOMETRY", Severity.ERROR, loc,
                    f"window does not fit the {h}x{w} input: {exc}",
                    hint="shrink the kernel/stride or add padding",
                ))
            else:
                out_shape = (spec.out_fm, oh, ow)
                if isinstance(spec, (ConvLayerSpec, PoolLayerSpec)):
                    pad = getattr(spec, "pad", 0)
                    kw = spec.kw if spec.kw is not None else spec.kh
                    rh = (h + 2 * pad - spec.kh) % spec.stride
                    rw = (w + 2 * pad - kw) % spec.stride
                    if rh or rw:
                        report.add(make(
                            "RATE.GEOMETRY", Severity.WARNING, loc,
                            f"window {spec.kh}x{spec.kw}/s{spec.stride} does "
                            f"not tile the padded {h}x{w} input: {rh} "
                            f"trailing row(s) and {rw} column(s) are "
                            f"buffered but never enter any window",
                            hint="adjust stride/padding or crop the input "
                                 "to avoid dead on-chip storage",
                        ))

        resolved.append(ResolvedLayer(
            spec=spec, index=index, prev_name=prev_name,
            prev_out_ports=prev_out_ports, in_hw=in_hw,
            out_shape=out_shape, adapter=adapter,
        ))
        prev_name = spec.name
        prev_out_ports = spec.out_ports
        shape = out_shape
        if shape is None and index + 1 < len(chain.specs):
            report.add(make(
                "GRAPH.STRUCTURE", Severity.INFO, loc,
                "shapes of downstream layers unresolved; their rate/geometry "
                "checks were skipped",
            ))
            report.note_rule("GRAPH.STRUCTURE")
            # Keep walking: per-spec (II/adapter) checks still apply.
            for j, rest in enumerate(chain.specs[index + 1:], index + 1):
                resolved.append(ResolvedLayer(
                    spec=rest, index=j, prev_name=prev_name,
                    prev_out_ports=prev_out_ports, in_hw=None,
                    out_shape=None, adapter=None,
                ))
                prev_name = rest.name
                prev_out_ports = rest.out_ports
            break
    return resolved


# -- II.BOTTLENECK: analyzer vs. performance model ---------------------------


def _stage_intervals(design: NetworkDesign) -> List[Tuple[str, int]]:
    """The verifier's own per-stage steady-state intervals (cycles/image).

    Derived independently of :mod:`repro.core.perf_model` from the stream
    rates and Eq. 4: a stage needs ``max(input beats, core cycles, output
    beats)`` cycles per image; DMA endpoints stream one word per beat
    interval. Cross-checking this against the performance model guarantees
    the two can never diverge silently.
    """
    beat = VC707.dma.beat_interval(32)
    stages: List[Tuple[str, int]] = [
        ("dma_in", design.input_words_per_image() * beat)
    ]
    for p in design.placements:
        spec = p.spec
        _, h, w = p.in_shape
        _, oh, ow = p.out_shape
        in_beats = h * w * spec.in_group
        out_beats = oh * ow * spec.out_group
        if isinstance(spec, ConvLayerSpec):
            plan = spec.block_plan(h, w)
            if plan is not None:
                # Block convolution: the split re-reads halo rows/columns
                # (in_beats amplified to n_tiles*ih*iw words per FM) and
                # the core computes the uniform tile grid including
                # overhang — the blocked Eq. 4 accounting, derived here
                # independently of the perf model.
                in_beats = plan.in_words * spec.in_group
                out_beats = plan.coords * spec.out_group
                core = plan.coords * max(
                    spec.in_fm // spec.in_ports, spec.out_fm // spec.out_ports, 1
                )
            else:
                core = oh * ow * max(
                    spec.in_fm // spec.in_ports, spec.out_fm // spec.out_ports, 1
                )
        elif isinstance(spec, PoolLayerSpec):
            core = out_beats
        elif isinstance(spec, FCLayerSpec):
            core = (spec.in_fm * spec.out_fm if spec.weight_streaming
                    else spec.in_fm)
        else:  # unknown kinds were already flagged by SPEC.VALID
            core = 0
        stages.append((spec.name, max(in_beats, core, out_beats)))
    stages.append(("dma_out", design.output_words_per_image() * beat))
    return stages


def _pick_bottleneck(stages: List[Tuple[str, int]]) -> Tuple[str, int]:
    """Replicates :class:`NetworkPerf`'s tie-breaking: DMA endpoints first,
    then layers in pipeline order, each winning only on a strictly larger
    interval."""
    order = [stages[0], stages[-1]] + stages[1:-1]
    best_name, best = order[0]
    for name, interval in order[1:]:
        if interval > best:
            best_name, best = name, interval
    return best_name, best


def run_bottleneck_rule(design: NetworkDesign, report: AnalysisReport) -> None:
    """Cross-check interval math and bottleneck against the perf model."""
    report.note_rule("II.BOTTLENECK")
    if any(d.rule == "II.EQ4" and d.severity is Severity.ERROR
           for d in report.diagnostics):
        report.add(make(
            "II.BOTTLENECK", Severity.INFO, "design",
            "perf-model cross-check skipped: Eq. 4 violations present",
        ))
        return
    from repro.core.perf_model import network_perf  # heavy; import on use

    stages = _stage_intervals(design)
    name, interval = _pick_bottleneck(stages)
    perf = network_perf(design)
    model_layers = {l.name: l.interval for l in perf.layers}
    analyzer_layers = dict(stages[1:-1])
    for lname, a_int in analyzer_layers.items():
        m_int = model_layers.get(lname)
        if m_int != a_int:
            report.add(make(
                "II.BOTTLENECK", Severity.ERROR, f"layer:{lname}",
                f"analyzer computes a {a_int}-cycle steady-state interval "
                f"but core/perf_model.py reports {m_int}",
                hint="the analyzer and the performance model must agree; "
                     "one of the two rate derivations regressed",
            ))
    if (interval, name) != (perf.interval, perf.bottleneck):
        report.add(make(
            "II.BOTTLENECK", Severity.ERROR, "design",
            f"analyzer bottleneck {name!r} @ {interval} cycles/image "
            f"disagrees with perf model {perf.bottleneck!r} @ "
            f"{perf.interval}",
            hint="the analyzer and the performance model must agree; "
                 "one of the two rate derivations regressed",
        ))
    else:
        report.add(make(
            "II.BOTTLENECK", Severity.INFO, f"stage:{name}",
            f"steady-state bottleneck: {name!r} paces the pipeline at "
            f"{interval} cycles/image (perf model agrees)",
        ))
