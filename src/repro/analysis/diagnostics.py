"""Structured diagnostics emitted by the static dataflow verifier.

Every finding of :mod:`repro.analysis` is a :class:`Diagnostic`: a rule
identifier (from :mod:`repro.analysis.rules`), a severity, a location in
the design or graph, a human-readable message, an actionable fix hint and
the paper section the violated invariant comes from. A whole run is an
:class:`AnalysisReport`, which renders both as terminal text (``repro
check``) and as a machine-readable JSON document (CI artifacts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import ClassVar, Dict, Iterable, List, Optional

from repro.analysis.rules import RULES
from repro.errors import ConfigurationError
from repro.report.base import Report


class Severity(Enum):
    """How bad a finding is."""

    ERROR = "error"      # the design/graph is wrong; simulation would fail
    WARNING = "warning"  # legal but suspicious or wasteful
    INFO = "info"        # analysis facts worth surfacing (bottleneck, skips)

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static verifier."""

    rule: str
    severity: Severity
    #: Where the finding anchors, e.g. ``"layer:conv1"``, ``"boundary:conv1->pool1"``,
    #: ``"channel:a.out->b.in"`` or ``"design"``.
    location: str
    message: str
    #: Actionable suggestion; empty when there is nothing to do.
    hint: str = ""

    def __post_init__(self) -> None:
        if self.rule not in RULES:
            raise ConfigurationError(f"unknown analysis rule id {self.rule!r}")

    @property
    def paper_ref(self) -> str:
        """Paper section the violated invariant comes from."""
        return RULES[self.rule].paper_ref

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
            "paper_ref": self.paper_ref,
        }

    def format(self) -> str:
        """One-to-two-line terminal rendering."""
        head = (
            f"{self.severity.value.upper():7s} {self.rule:16s} "
            f"{self.location}: {self.message} [{self.paper_ref}]"
        )
        if self.hint:
            head += f"\n        hint: {self.hint}"
        return head


@dataclass
class AnalysisReport(Report):
    """All diagnostics of one verifier run over one design/graph."""

    kind: ClassVar[str] = "analysis"

    design_name: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Rule ids that actually ran (a rule can be skipped, e.g. graph rules
    #: when elaboration is disabled).
    rules_run: List[str] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def note_rule(self, rule: str) -> None:
        if rule not in RULES:
            raise ConfigurationError(f"unknown analysis rule id {rule!r}")
        if rule not in self.rules_run:
            self.rules_run.append(rule)

    def merge(self, other: "AnalysisReport") -> "AnalysisReport":
        """Fold ``other``'s findings into this report (returns self)."""
        self.diagnostics.extend(other.diagnostics)
        for r in other.rules_run:
            if r not in self.rules_run:
                self.rules_run.append(r)
        return self

    # -- views ---------------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def ok(self) -> bool:
        """True when the design passed (no errors; warnings allowed)."""
        return not self.errors

    def error_rules(self) -> List[str]:
        """Distinct rule ids with at least one error, in emission order."""
        seen: List[str] = []
        for d in self.errors:
            if d.rule not in seen:
                seen.append(d.rule)
        return seen

    def counts(self) -> Dict[str, int]:
        out = {"error": 0, "warning": 0, "info": 0}
        for d in self.diagnostics:
            out[d.severity.value] += 1
        return out

    # -- rendering -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "design": self.design_name,
            "ok": self.ok,
            "counts": self.counts(),
            "rules_run": list(self.rules_run),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def summary(self) -> str:
        c = self.counts()
        verdict = "PASS" if self.ok else "FAIL"
        return (
            f"check {self.design_name}: {verdict} "
            f"({c['error']} error(s), {c['warning']} warning(s))"
        )

    def format_text(self, show_info: bool = True) -> str:
        """Terminal report: findings sorted most-severe-first, then a verdict."""
        lines = [f"=== repro check: {self.design_name} ==="]
        shown: Iterable[Diagnostic] = sorted(
            self.diagnostics, key=lambda d: -d.severity.rank
        )
        for d in shown:
            if d.severity is Severity.INFO and not show_info:
                continue
            lines.append(d.format())
        c = self.counts()
        lines.append(
            f"{'PASS' if self.ok else 'FAIL'}: {c['error']} error(s), "
            f"{c['warning']} warning(s), {c['info']} info "
            f"({len(self.rules_run)} rules run)"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        c = self.counts()
        return (
            f"AnalysisReport({self.design_name!r}, {c['error']}E/"
            f"{c['warning']}W/{c['info']}I)"
        )


def make(
    rule: str,
    severity: Severity,
    location: str,
    message: str,
    hint: str = "",
) -> Diagnostic:
    """Shorthand constructor used by the rule implementations."""
    return Diagnostic(
        rule=rule, severity=severity, location=location, message=message, hint=hint
    )
