"""Graph-level rules of the static verifier.

These rules run on an *elaborated* :class:`DataflowGraph` — either one the
builder produced from a design (in which case the design is available for
cross-checking the wiring against the spec-level intent) or a hand-built
graph (structure/buffering rules only).

The centerpiece promotes the :mod:`repro.dataflow.deadlock` heuristic into
hard errors: instead of warning on a capacity *imbalance*, BUFFER.SKEW
computes each reconvergent branch's latency skew in stream beats (window
prime latency for memory structures, pipeline depth for cores) and demands
the thin branch buffer at least the skew of its slowest peer — the exact
condition for a fork/join pair of bounded FIFOs not to deadlock.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.diagnostics import AnalysisReport, Severity, make
from repro.core.layer_spec import ConvLayerSpec, PoolLayerSpec
from repro.core.network_design import NetworkDesign
from repro.dataflow.actors import ArraySource, Fork, Interleaver, ScheduleDemux
from repro.dataflow.deadlock import analyze_reconvergence
from repro.dataflow.graph import DataflowGraph
from repro.errors import GraphError
from repro.sst.block import BlockMergeActor, BlockSplitActor
from repro.sst.filter_chain import TapFilter, WindowAssembler
from repro.sst.line_buffer import SlidingWindowActor
from repro.sst.sizing import chain_fifo_capacities, chain_words

#: Actors whose fork/join shape is the *intended* tap parallelism of a
#: literal SST filter chain. Their FIFO depths are checked exactly by
#: BUFFER.FULL against ``sst/sizing.py``; the generic skew model does not
#: apply to their deliberately non-uniform tap rates.
_CHAIN_ACTORS = (TapFilter, WindowAssembler)


def run_graph_rules(
    graph: DataflowGraph,
    report: AnalysisReport,
    design: Optional[NetworkDesign] = None,
) -> None:
    """Run every graph-level rule, folding findings into ``report``."""
    _rule_structure(graph, report)
    _rule_buffer_full(graph, report, design)
    if design is not None:
        _rule_adapter_wiring(graph, report, design)
    _rule_buffer_skew(graph, report)
    _rule_depth_plan(graph, report)


def _actor_of(graph: DataflowGraph, endpoint: str) -> Tuple[str, object]:
    """Resolve a channel endpoint ``"actor.port"`` to its actor.

    Actor names themselves contain dots (``conv1.win0.f2``), so the port is
    always the last component.
    """
    name = endpoint.rsplit(".", 1)[0]
    return name, graph.actors.get(name)


# -- GRAPH.STRUCTURE ---------------------------------------------------------


def _rule_structure(graph: DataflowGraph, report: AnalysisReport) -> None:
    report.note_rule("GRAPH.STRUCTURE")
    try:
        graph.validate()
    except GraphError as exc:
        report.add(make(
            "GRAPH.STRUCTURE", Severity.ERROR, "design", str(exc),
            hint="every channel needs exactly one writer and one reader",
        ))
        return  # a dangling graph makes the remaining structure checks moot
    try:
        graph.topological_layers()
    except GraphError as exc:
        report.add(make(
            "GRAPH.STRUCTURE", Severity.ERROR, "design", str(exc),
            hint="a feed-forward CNN pipeline must be acyclic",
        ))


# -- BUFFER.FULL -------------------------------------------------------------


def _rule_buffer_full(
    graph: DataflowGraph,
    report: AnalysisReport,
    design: Optional[NetworkDesign],
) -> None:
    report.note_rule("BUFFER.FULL")

    # Read-once: the off-chip stream must never be duplicated. A Fork right
    # behind a source replays each word to several consumers — the
    # anti-pattern full buffering exists to avoid (re-reading the input).
    for ch in graph.channels.values():
        if ch.writer is None or ch.reader is None:
            continue
        wname, wactor = _actor_of(graph, ch.writer)
        rname, ractor = _actor_of(graph, ch.reader)
        if isinstance(wactor, ArraySource) and isinstance(ractor, Fork):
            report.add(make(
                "BUFFER.FULL", Severity.ERROR,
                f"channel:{ch.writer}->{ch.reader}",
                f"off-chip stream from {wname!r} is duplicated by fork "
                f"{rname!r}: each input word would be read "
                f"{ractor.n_outputs} times",
                hint="full buffering reads every source element exactly "
                     "once; buffer it on chip instead of re-forking the "
                     "stream",
            ))

    if design is None:
        return

    sources = [a for a in graph.actors.values() if isinstance(a, ArraySource)]
    if len(sources) != 1:
        report.add(make(
            "BUFFER.FULL", Severity.ERROR, "design",
            f"expected exactly one DMA source, found {len(sources)}",
            hint="the paper's pipeline streams one image stream in; extra "
                 "sources mean some elements bypass the full-buffered path",
        ))
    else:
        words = design.input_words_per_image()
        held = len(sources[0].values)
        if held % words:
            report.add(make(
                "BUFFER.FULL", Severity.ERROR, f"channel:{sources[0].name}",
                f"source holds {held} words, not a whole number of "
                f"{words}-word images ({design.input_shape} input)",
                hint="every source element must enter the pipeline exactly "
                     "once per image; truncated batches stall the windows",
            ))

    # Memory structures: each conv/pool port must hold exactly the
    # sst/sizing.py geometry (behavioral line buffer or literal chain).
    # Blocked conv layers run their window stage over *tile* geometry,
    # bracketed by split/merge stages whose plans must match the spec.
    for p in design.placements:
        spec = p.spec
        if not isinstance(spec, (ConvLayerSpec, PoolLayerSpec)):
            continue
        _, h, w = p.in_shape
        group = spec.in_group
        plan = (
            spec.block_plan(h, w) if isinstance(spec, ConvLayerSpec) else None
        )
        if plan is not None:
            win_window, win_h, win_w = plan.tile_window, plan.ih, plan.iw
        else:
            win_window, win_h, win_w = spec.window, h, w
        need = chain_words(win_window, win_w, group)
        loc = f"layer:{spec.name}"
        for port in range(spec.in_ports):
            name = f"{spec.name}.win{port}"
            if plan is not None:
                _check_block_split(
                    graph, report, f"{spec.name}.split{port}", loc, plan, group
                )
            actor = graph.actors.get(name)
            if isinstance(actor, SlidingWindowActor):
                if (actor.spec != win_window
                        or (actor.h, actor.w) != (win_h, win_w)
                        or actor.group != group):
                    report.add(make(
                        "BUFFER.FULL", Severity.ERROR, loc,
                        f"line buffer {name!r} carries window {actor.spec} "
                        f"over {actor.h}x{actor.w} (group {actor.group}) but "
                        f"the placement demands {win_window} over "
                        f"{win_h}x{win_w} (group {group})",
                        hint=f"full buffering needs {need} words per chain "
                             f"(sst/sizing.py chain_words); rebuild the "
                             f"memory structure from the placement",
                    ))
            elif f"{name}.asm" in graph.actors:
                _check_literal_chain(
                    graph, report, name, win_window, win_h, win_w, group
                )
            else:
                report.add(make(
                    "BUFFER.FULL", Severity.ERROR, loc,
                    f"no memory structure found for input port {port} "
                    f"(expected actor {name!r} or a literal chain under it)",
                    hint="every conv/pool input port needs its sliding-"
                         "window buffer (Section II-B)",
                ))
        if plan is not None:
            for port in range(spec.out_ports):
                _check_block_merge(
                    graph, report, f"{spec.name}.merge{port}", loc, plan,
                    spec.out_group,
                )


def _check_block_split(
    graph: DataflowGraph,
    report: AnalysisReport,
    name: str,
    loc: str,
    plan,
    group: int,
) -> None:
    """One blocked conv input port's tile-split stage."""
    actor = graph.actors.get(name)
    if not isinstance(actor, BlockSplitActor):
        report.add(make(
            "BUFFER.FULL", Severity.ERROR, loc,
            f"blocked conv layer has no tile-split stage {name!r} "
            f"({'missing' if actor is None else type(actor).__name__})",
            hint="a blocked layer reads halo-overlapped tiles; without the "
                 "split its window stage sees full-image geometry",
        ))
        return
    if actor.plan != plan or actor.group != group:
        report.add(make(
            "BUFFER.FULL", Severity.ERROR, loc,
            f"tile split {name!r} carries plan "
            f"[{actor.plan.describe()}] (group {actor.group}) but the "
            f"placement demands [{plan.describe()}] (group {group})",
        ))
    if actor.shave_h or actor.shave_w:
        report.add(make(
            "BUFFER.FULL", Severity.ERROR, loc,
            f"tile split {name!r} shaves {actor.shave_h}x{actor.shave_w} "
            f"halo pixels: tiles no longer carry the full "
            f"{plan.halo_h}x{plan.halo_w} overlap",
            hint="halo widths are minimal (kh - stride); any narrower "
                 "halo changes boundary windows and corrupts the output",
        ))


def _check_block_merge(
    graph: DataflowGraph,
    report: AnalysisReport,
    name: str,
    loc: str,
    plan,
    group: int,
) -> None:
    """One blocked conv output port's tile-merge stage."""
    actor = graph.actors.get(name)
    if not isinstance(actor, BlockMergeActor):
        report.add(make(
            "BUFFER.FULL", Severity.ERROR, loc,
            f"blocked conv layer has no tile-merge stage {name!r} "
            f"({'missing' if actor is None else type(actor).__name__})",
            hint="without the merge, downstream layers see tile-major "
                 "coordinate order and overhang values",
        ))
        return
    if actor.plan != plan or actor.group != group:
        report.add(make(
            "BUFFER.FULL", Severity.ERROR, loc,
            f"tile merge {name!r} carries plan "
            f"[{actor.plan.describe()}] (group {actor.group}) but the "
            f"placement demands [{plan.describe()}] (group {group})",
        ))


def _check_literal_chain(
    graph: DataflowGraph,
    report: AnalysisReport,
    name: str,
    window,
    h: int,
    w: int,
    group: int,
) -> None:
    """Exact full-buffering check of one literal SST filter chain.

    ``window``/``h``/``w`` are the chain's own geometry: the layer window
    over the feature map for plain layers, the pad-free tile window over
    block geometry for blocked conv layers.
    """
    loc = f"layer:{name.rsplit('.', 1)[0]}"
    asm = graph.actors[f"{name}.asm"]
    if not isinstance(asm, WindowAssembler) or asm.spec != window \
            or (asm.h, asm.w) != (h, w) or asm.group != group:
        report.add(make(
            "BUFFER.FULL", Severity.ERROR, loc,
            f"window assembler {name}.asm does not match the placement "
            f"(want window {window} over {h}x{w}, group {group})",
        ))
        return
    if window.pad and f"{name}.padder" not in graph.actors:
        report.add(make(
            "BUFFER.FULL", Severity.ERROR, loc,
            f"padded window ({window.pad} px) but no {name}.padder "
            f"actor in the chain",
            hint="literal chains rely on injected padding beats to keep "
                 "the tap offsets aligned",
        ))
    plan = getattr(graph, "depth_plan", None)
    certified = plan.certificates if plan is not None else {}
    expected = chain_fifo_capacities(window, w, group)
    for i, cap in enumerate(expected):
        ch = graph.channels.get(f"{name}.fifo{i}")
        if ch is None:
            report.add(make(
                "BUFFER.FULL", Severity.ERROR, loc,
                f"literal chain is missing FIFO {name}.fifo{i}",
            ))
        elif f"{name}.fifo{i}" in certified:
            # A certified depth plan replaces full buffering for this
            # FIFO; sufficiency is BUFFER.DEPTH_UNDERSIZED's job.
            continue
        elif ch.capacity != cap:
            report.add(make(
                "BUFFER.FULL", Severity.ERROR, loc,
                f"{name}.fifo{i} has capacity {ch.capacity} but full "
                f"buffering requires exactly {cap} "
                f"(fifo_depths + 1 for the in-flight slot)",
                hint="undersized tap FIFOs deadlock the chain; oversized "
                     "ones waste the BRAM the sizing model accounts for",
            ))


# -- ADAPTER.WIRING ----------------------------------------------------------


def _rule_adapter_wiring(
    graph: DataflowGraph,
    report: AnalysisReport,
    design: NetworkDesign,
) -> None:
    report.note_rule("ADAPTER.WIRING")
    writers = {
        ch.writer: ch for ch in graph.channels.values() if ch.writer is not None
    }
    # (adapter prefix, have=upstream ports, want=downstream ports, kind,
    #  blocked: whether the downstream layer is a blocked conv — its port
    #  streams enter the tile-split stage, not the window stage)
    boundaries: List[Tuple[str, int, int, str, bool]] = []
    prev_out = 1
    for p in design.placements:
        blocked = (
            isinstance(p.spec, ConvLayerSpec) and p.spec.block is not None
        )
        boundaries.append(
            (p.spec.name, prev_out, p.spec.in_ports, p.spec.kind, blocked)
        )
        prev_out = p.spec.out_ports
    boundaries.append(("dma_out", prev_out, 1, "dma", False))

    for name, have, want, kind, blocked in boundaries:
        loc = f"boundary:{name}"
        if have == want:
            for i in range(have):
                for spurious in (f"{name}.demux{i}", f"{name}.widen{i}"):
                    if spurious in graph.actors:
                        report.add(make(
                            "ADAPTER.WIRING", Severity.ERROR, loc,
                            f"port counts match ({have}={want}, DIRECT case) "
                            f"but adapter actor {spurious!r} exists",
                            hint="remove the adapter: equal port counts "
                                 "connect streams one-to-one",
                        ))
            continue
        if want > have and want % have == 0:
            ratio = want // have
            for i in range(have):
                aname = f"{name}.demux{i}"
                actor = graph.actors.get(aname)
                if not isinstance(actor, ScheduleDemux):
                    report.add(make(
                        "ADAPTER.WIRING", Severity.ERROR, loc,
                        f"DEMUX case ({have} -> {want} ports) but actor "
                        f"{aname!r} is "
                        f"{'missing' if actor is None else type(actor).__name__}",
                        hint=f"each upstream port needs a {ratio}-way "
                             f"round-robin demux (Section IV-A)",
                    ))
                    continue
                if actor.n_outputs != ratio:
                    report.add(make(
                        "ADAPTER.WIRING", Severity.ERROR, loc,
                        f"{aname!r} fans out {actor.n_outputs} ways but the "
                        f"port ratio demands {ratio}",
                    ))
                    continue
                if kind not in ("conv", "pool"):
                    continue  # downstream port naming differs for FC/DMA
                for m in range(ratio):
                    ch = writers.get(f"{aname}.out{m}")
                    if ch is None or ch.reader is None:
                        report.add(make(
                            "ADAPTER.WIRING", Severity.ERROR, loc,
                            f"{aname}.out{m} is not connected",
                        ))
                        continue
                    reader, _ = _actor_of(graph, ch.reader)
                    idx = i + m * have
                    expect = (
                        f"{name}.split{idx}" if blocked else f"{name}.win{idx}"
                    )
                    if reader != expect and not reader.startswith(expect + "."):
                        report.add(make(
                            "ADAPTER.WIRING", Severity.ERROR, loc,
                            f"{aname}.out{m} feeds {reader!r} but the "
                            f"modulo-interleaved FM mapping assigns it to "
                            f"input port {idx} ({expect!r})",
                            hint="demux output m of upstream port i must "
                                 "feed downstream port i + m*OUT_PORTS(i-1); "
                                 "anything else permutes the feature maps",
                        ))
            continue
        if have > want and have % want == 0:
            ratio = have // want
            for r in range(want):
                aname = f"{name}.widen{r}"
                actor = graph.actors.get(aname)
                if not isinstance(actor, Interleaver):
                    report.add(make(
                        "ADAPTER.WIRING", Severity.ERROR, loc,
                        f"WIDEN case ({have} -> {want} ports) but actor "
                        f"{aname!r} is "
                        f"{'missing' if actor is None else type(actor).__name__}",
                        hint=f"each downstream port needs a {ratio}-way "
                             f"interleaver merging the upstream ports "
                             f"(widened filters, Section IV-A)",
                    ))
                elif actor.n_inputs != ratio:
                    report.add(make(
                        "ADAPTER.WIRING", Severity.ERROR, loc,
                        f"{aname!r} merges {actor.n_inputs} streams but the "
                        f"port ratio demands {ratio}",
                    ))
        # An indivisible ratio is ADAPTER.LEGAL's finding at design level.


# -- BUFFER.SKEW -------------------------------------------------------------


def actor_skew_latency(actor: object) -> int:
    """Beats an actor delays its stream before the first output.

    Memory structures dominate: a sliding window must prime its full
    buffer (``footprint * group`` beats) before the first window emerges.
    Pipelined cores delay by their pipeline depth; plain plumbing actors
    (demux, interleaver, FIFO stages) forward after one beat.
    """
    if isinstance(actor, SlidingWindowActor):
        _, wp = actor.spec.padded_shape(actor.h, actor.w)
        return actor.spec.footprint(wp) * actor.group
    if isinstance(actor, BlockSplitActor):
        # The split stages a full image before the first tile beat.
        return actor.beats_in_per_image
    if isinstance(actor, BlockMergeActor):
        # The merge collects every computed tile coordinate before the
        # first raster beat.
        return actor.beats_in_per_image
    depth = getattr(actor, "pipeline_depth", None)
    if isinstance(depth, int) and depth > 0:
        return depth
    return 1


def _rule_buffer_skew(graph: DataflowGraph, report: AnalysisReport) -> None:
    report.note_rule("BUFFER.SKEW")
    for pair in analyze_reconvergence(graph):
        nodes = {pair.fork, pair.join}
        for path, _ in pair.paths:
            nodes.update(path)
        if any(isinstance(graph.actors.get(n), _CHAIN_ACTORS) for n in nodes):
            continue  # literal SST chains are checked exactly by BUFFER.FULL
        latencies = [
            sum(actor_skew_latency(graph.actors[n]) for n in path[1:-1])
            for path, _ in pair.paths
        ]
        skew = max(latencies)
        for (path, cap), lat in zip(pair.paths, latencies):
            if cap is None:
                continue  # unbounded branches absorb any skew
            deficit = skew - lat
            if cap < deficit:
                route = " -> ".join(path)
                report.add(make(
                    "BUFFER.SKEW", Severity.ERROR,
                    f"channel:{pair.fork}->{pair.join}",
                    f"reconvergent branch [{route}] buffers only {cap} "
                    f"beats but its slowest peer lags by {deficit}: the "
                    f"join starves this side while back-pressure freezes "
                    f"the fork (deadlock)",
                    hint=f"raise the branch's FIFO capacity to at least "
                         f"{deficit} beats or rebalance the branch "
                         f"latencies",
                ))


# -- BUFFER.DEPTH_CERT / BUFFER.DEPTH_UNDERSIZED -----------------------------


def _rule_depth_plan(graph: DataflowGraph, report: AnalysisReport) -> None:
    """Certificate checks of an attached DepthPlan (repro.analysis.depths).

    Runs only when :func:`repro.analysis.depths.apply_depth_plan` left a
    plan on the graph. Heuristic pins are warnings (BUFFER.DEPTH_CERT);
    a bounded channel sitting *below* a proven certificate is a hard
    error (BUFFER.DEPTH_UNDERSIZED) — the prover can exhibit the
    deadlock, so the old heuristic imbalance warning becomes a proof.
    """
    plan = getattr(graph, "depth_plan", None)
    if plan is None:
        return
    report.note_rule("BUFFER.DEPTH_CERT")
    report.note_rule("BUFFER.DEPTH_UNDERSIZED")
    for name, cert in sorted(plan.certificates.items()):
        ch = graph.channels.get(name)
        if ch is None or ch.capacity is None:
            continue
        loc = f"channel:{name}"
        if not cert.proven:
            report.add(make(
                "BUFFER.DEPTH_CERT", Severity.WARNING, loc,
                f"{name} is pinned at capacity {cert.depth} without a "
                f"structural proof ({cert.detail})",
                hint="the depth is a heuristic bound; extend the prover "
                     "or validate empirically with `repro shrink --bisect`",
            ))
        elif ch.capacity < cert.depth:
            report.add(make(
                "BUFFER.DEPTH_UNDERSIZED", Severity.ERROR, loc,
                f"{name} has capacity {ch.capacity} but its "
                f"{cert.method} certificate proves depth {cert.depth} is "
                f"required ({cert.detail})",
                hint=f"raise {name} to at least {cert.depth} beats; the "
                     f"prover exhibits a deadlock below that",
            ))
