"""The rule catalog of the static dataflow verifier.

Each rule encodes one *structural* correctness guarantee the paper relies
on. The registry is the single source of truth for rule ids, the paper
sections they come from, and the level they run at (``design`` rules need
only layer specs; ``graph`` rules need an elaborated dataflow graph).
``repro check --list-rules`` renders this catalog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class RuleInfo:
    """Catalog entry for one verifier rule."""

    id: str
    title: str
    #: ``"design"`` (spec chain) or ``"graph"`` (elaborated dataflow graph).
    level: str
    #: Paper section/equation the checked invariant comes from.
    paper_ref: str
    description: str


_RULES = [
    RuleInfo(
        id="SPEC.VALID",
        title="layer specs are individually well-formed",
        level="design",
        paper_ref="Section IV-A/IV-B",
        description=(
            "Every layer spec must construct cleanly (positive feature-map "
            "and port counts, port counts dividing feature maps, unique "
            "layer names, classifier stage last). Specs that fail to parse "
            "from a design JSON are reported here instead of aborting the "
            "whole check."
        ),
    ),
    RuleInfo(
        id="RATE.BALANCE",
        title="SDF balance equations hold on every inter-layer stream",
        level="design",
        paper_ref="Section II-B / IV-A",
        description=(
            "Per image, the number of stream words a stage produces must "
            "equal the number its consumer ingests: OUT_FM x OH x OW "
            "upstream versus IN_FM x H x W downstream (IN_FM for the "
            "flattened classifier stage). An imbalance means tokens "
            "accumulate without bound or a stage starves forever."
        ),
    ),
    RuleInfo(
        id="RATE.GEOMETRY",
        title="window geometry tiles the (padded) input",
        level="design",
        paper_ref="Section II-A (stride/padding hyper-parameters)",
        description=(
            "The sliding window must fit the padded input, and "
            "(H + 2P - K) should be divisible by the stride: a remainder "
            "means trailing rows/columns are buffered on chip but can "
            "never contribute to any output window."
        ),
    ),
    RuleInfo(
        id="ADAPTER.LEGAL",
        title="consecutive layers admit a legal port adapter",
        level="design",
        paper_ref="Section IV-A",
        description=(
            "OUT_PORTS(i-1) and IN_PORTS(i) must be equal (direct), or one "
            "must divide the other (demux / widened filters). Any other "
            "ratio cannot be routed by the modulo-interleaved FM-to-port "
            "mapping and has no adapter in the paper's methodology."
        ),
    ),
    RuleInfo(
        id="ADAPTER.WIRING",
        title="elaborated adapters match the spec-level classification",
        level="graph",
        paper_ref="Section IV-A",
        description=(
            "The elaborated graph must contain exactly the demux/interleaver "
            "actors the port classification demands, with the right fan-out "
            "ratios, and each demux output must feed the consumer port the "
            "round-robin FM interleaving assigns to it."
        ),
    ),
    RuleInfo(
        id="II.EQ4",
        title="initiation intervals agree with Eq. 4",
        level="design",
        paper_ref="Eq. 4",
        description=(
            "Each compute core's II must equal "
            "max(IN_FM/IN_PORTS, OUT_FM/OUT_PORTS), and the port counts "
            "must divide the feature-map counts so the bound is integral."
        ),
    ),
    RuleInfo(
        id="II.BOTTLENECK",
        title="steady-state bottleneck agrees with the performance model",
        level="design",
        paper_ref="Section IV-C / Figure 6",
        description=(
            "The verifier independently recomputes every stage's per-image "
            "interval (input beats, core cycles via Eq. 4, output beats, DMA "
            "endpoints) and cross-checks interval and bottleneck stage "
            "against core/perf_model.py. Any disagreement is an error: the "
            "analyzer and the performance model must never diverge."
        ),
    ),
    RuleInfo(
        id="BUFFER.SKEW",
        title="reconvergent branches can absorb the schedule skew",
        level="graph",
        paper_ref="Section II-B (bounded FIFOs)",
        description=(
            "Where a fork's parallel branches reconverge at a join, the "
            "lower-latency branch must buffer at least the latency "
            "difference (in stream beats) of its slowest peer; otherwise "
            "back-pressure freezes the fork while the join starves - the "
            "classic bounded-FIFO reconvergence deadlock."
        ),
    ),
    RuleInfo(
        id="BUFFER.FULL",
        title="full buffering: read-once input, exact line-buffer sizing",
        level="graph",
        paper_ref="Section II-B / Figure 2",
        description=(
            "Every off-chip word enters the graph exactly once (no stream "
            "duplication after the DMA source), and every memory structure "
            "matches the sst/sizing.py geometry: behavioral line buffers "
            "carry the layer's window spec over the placement's H x W with "
            "the interleave group IN_FM/IN_PORTS; literal filter chains use "
            "exactly the full-buffering FIFO depths."
        ),
    ),
    RuleInfo(
        id="BUFFER.DEPTH_CERT",
        title="every certified FIFO depth rests on a structural proof",
        level="graph",
        paper_ref=(
            "arXiv:2011.07317 (Memory-Efficient Dataflow Inference) / "
            "Section II-B"
        ),
        description=(
            "Runs when a DepthPlan (repro.analysis.depths) is attached to "
            "the graph. Channels the prover could certify structurally "
            "(chain max-plus recursion, undirected bridge, reconvergent "
            "skew bound) are silent; a channel pinned at its built "
            "capacity without a proof is flagged as a warning — the plan "
            "is still applicable, but that depth is a heuristic bound, "
            "not a deadlock-freedom certificate."
        ),
    ),
    RuleInfo(
        id="BUFFER.DEPTH_UNDERSIZED",
        title="no channel sits below its certified depth",
        level="graph",
        paper_ref=(
            "arXiv:2011.07317 (Memory-Efficient Dataflow Inference) / "
            "arXiv:2105.08937 (Block Convolution)"
        ),
        description=(
            "Runs when a DepthPlan is attached to the graph. A bounded "
            "channel whose capacity is below its proven certificate depth "
            "is a hard error: the prover can exhibit the deadlock (chain "
            "run-ahead budget < 1 or unabsorbed reconvergent skew), so "
            "this promotes the old heuristic imbalance warning to a "
            "machine-checked insufficiency proof. Depths above the "
            "certificate are always safe (Kahn monotonicity)."
        ),
    ),
    RuleInfo(
        id="PROFILE.II_MISMATCH",
        title="measured initiation interval agrees with Eq. 4",
        level="profile",
        paper_ref="Section IV-B, Eq. 4",
        description=(
            "Run by `repro profile` against a cycle simulation, not by the "
            "static checker. Each compute core's *measured* initiation "
            "interval — productive (non-stalled) cycles per output "
            "coordinate, from the schedulers' native counters — must match "
            "the static prediction II = max(IN_FM/IN_PORTS, "
            "OUT_FM/OUT_PORTS) within 5%. A mismatch means the pipelined "
            "implementation does not sustain the paper's per-core rate "
            "(error); the same rule reports steady-state pipeline-interval "
            "disagreements between simulation and the perf model (warning)."
        ),
    ),
    RuleInfo(
        id="GRAPH.STRUCTURE",
        title="the dataflow graph is structurally sound",
        level="graph",
        paper_ref="Section II-B",
        description=(
            "Every channel has exactly one writer and one reader and the "
            "graph is acyclic (a feed-forward CNN pipeline). Also carries "
            "analysis-scope notes, e.g. when graph-level checks are skipped "
            "for very large designs."
        ),
    ),
]

#: Rule id -> catalog entry.
RULES: Dict[str, RuleInfo] = {r.id: r for r in _RULES}

#: Ids of rules operating purely on layer specs.
DESIGN_RULES = [r.id for r in _RULES if r.level == "design"]

#: Ids of rules needing an elaborated dataflow graph.
GRAPH_RULES = [r.id for r in _RULES if r.level == "graph"]


def render_catalog() -> str:
    """The ``repro check --list-rules`` table."""
    lines = ["rule catalog (static dataflow verifier)", ""]
    for r in _RULES:
        lines.append(f"{r.id:16s} [{r.level:6s}] {r.title}  ({r.paper_ref})")
        lines.append(f"    {r.description}")
    return "\n".join(lines)
