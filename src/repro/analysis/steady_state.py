"""Steady-state schedule extraction for the compiled engine.

A graph that has passed the static verifier is a bounded Kahn network
with statically known rates: every process of every actor performs a
fixed, input-independent number of productive beats, and the pipeline's
steady-state cadence is the Eq. 4 / perf-model interval. This module
turns those facts into an explicit :class:`SteadySchedule`:

* a topological actor order (the kernel execution order);
* the exact beat count of every channel (rate solution);
* the closed-form ``fires`` of every process — the same numbers the
  interpreted engines derive as ``lifetime - stalls``, because ``fires``
  counts productive beats only and is therefore timing-independent;
* the analytic timing frame (interval, fill latency, per-image
  completion cycles) from :mod:`repro.core.perf_model`.

Extraction is *checked*: rates must balance on every channel and every
actor type must have a known signature, otherwise
:class:`~repro.errors.CompilationError` is raised and the simulator
falls back to the interpreted event engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.compute_core import ConvCoreActor
from repro.core.fc_core import FCCoreActor
from repro.core.network_design import NetworkDesign
from repro.core.norm_core import NormalizationActor
from repro.core.perf_model import NetworkPerf, layer_perf
from repro.core.pool_core import PoolCoreActor
from repro.dataflow.actors import (
    ArraySource,
    FifoStage,
    Fork,
    Interleaver,
    ListSink,
    MapActor,
    ScheduleDemux,
)
from repro.dataflow.link import LinkRxActor, LinkTxActor
from repro.errors import CompilationError
from repro.sst.block import BlockMergeActor, BlockSplitActor
from repro.sst.line_buffer import SlidingWindowActor


@dataclass(frozen=True)
class SteadySchedule:
    """The solved steady state of one verified design graph."""

    #: Actor names in kernel execution (topological) order.
    order: Tuple[str, ...]
    #: Exact beat count of every channel over the whole run.
    channel_beats: Dict[str, int]
    #: Closed-form productive beats per process, in creation order
    #: (compute before emit for the two-process cores).
    proc_fires: Dict[str, List[int]]
    #: Batch size recovered from the DMA stream length.
    images: int
    #: Steady-state cycles between consecutive image completions.
    interval: int
    #: Cycles from the first input beat to the first image's last output.
    fill_latency: int
    #: Name of the pacing stage (perf-model attribution).
    bottleneck: str
    #: Modeled completion cycle of each image's last output beat.
    completions: Tuple[int, ...]
    #: Total modeled cycles of the run (one past the last output beat).
    cycles: int
    #: Output beats per image at the sink.
    per_image_out: int
    #: Cycle of the DMA source's last beat (for drain accounting).
    dma_last_push: int


def _endpoints(channels) -> Dict[str, Tuple[Tuple[str, str], Tuple[str, str]]]:
    """Channel name -> ((writer actor, port), (reader actor, port))."""
    out = {}
    for ch in channels:
        if ch.writer is None or ch.reader is None:
            raise CompilationError(f"channel {ch.name!r} has a dangling endpoint")
        w_actor, w_port = ch.writer.rsplit(".", 1)
        r_actor, r_port = ch.reader.rsplit(".", 1)
        out[ch.name] = ((w_actor, w_port), (r_actor, r_port))
    return out


def port_maps(actors, channels):
    """Per-actor port -> channel-name routing tables.

    Returns ``(in_ports_of, out_ports_of)``: for every actor name, a dict
    mapping its input (resp. output) port names to the channel bound there.
    Shared by schedule extraction and the kernel runner.
    """
    in_ports_of: Dict[str, Dict[str, str]] = {a.name: {} for a in actors}
    out_ports_of: Dict[str, Dict[str, str]] = {a.name: {} for a in actors}
    for cname, ((w_actor, w_port), (r_actor, r_port)) in _endpoints(
        channels
    ).items():
        if w_actor not in out_ports_of or r_actor not in in_ports_of:
            raise CompilationError(
                f"channel {cname!r} endpoints {w_actor!r}->{r_actor!r} "
                f"missing from the actor set"
            )
        out_ports_of[w_actor][w_port] = cname
        in_ports_of[r_actor][r_port] = cname
    return in_ports_of, out_ports_of


def topological_order(actors, channels) -> Tuple[str, ...]:
    """Kahn topological sort of the actor graph (kernel execution order)."""
    names = [a.name for a in actors]
    indeg = {n: 0 for n in names}
    succ: Dict[str, List[str]] = {n: [] for n in names}
    for (w_actor, _), (r_actor, _) in _endpoints(channels).values():
        if w_actor not in indeg or r_actor not in indeg:
            raise CompilationError(
                f"channel endpoints {w_actor!r}->{r_actor!r} missing from the "
                f"actor set"
            )
        succ[w_actor].append(r_actor)
        indeg[r_actor] += 1
    ready = [n for n in names if indeg[n] == 0]
    order: List[str] = []
    while ready:
        n = ready.pop()
        order.append(n)
        for m in succ[n]:
            indeg[m] -= 1
            if indeg[m] == 0:
                ready.append(m)
    if len(order) != len(names):
        cyclic = sorted(n for n in names if indeg[n] > 0)
        raise CompilationError(
            f"graph contains a cycle through {cyclic}; the compiled engine "
            f"handles feed-forward pipelines only"
        )
    return tuple(order)


def _actor_rates(actor, in_beats: Dict[str, int]):
    """(per-port output beats, per-process fires) of one actor.

    ``in_beats`` maps the actor's input port names to the beat counts
    arriving on them. Raises :class:`CompilationError` when the actor
    type has no known rate signature or the arriving rates contradict
    the actor's static parameters — the rate-balance check that mirrors
    the verifier's bounded-Kahn argument.
    """

    def need(port: str, expected: int) -> None:
        got = in_beats.get(port)
        if got != expected:
            raise CompilationError(
                f"{actor.name!r}: port {port!r} receives {got} beats, "
                f"schedule expects {expected}"
            )

    if type(actor) is ArraySource:
        n = len(actor.values)
        return {actor.port: n}, [n]
    if type(actor) is ListSink:
        n = in_beats.get(actor.port, 0)
        if actor.count is not None and n != actor.count:
            raise CompilationError(
                f"{actor.name!r}: sink expects {actor.count} beats, "
                f"producers deliver {n}"
            )
        return {}, [n]
    if type(actor) is SlidingWindowActor:
        n_in = actor.images * actor.h * actor.w * actor.group
        need("in", n_in)
        n_out = actor.images * actor.windows_per_image
        return {"out": n_out}, [n_in, n_out]
    if type(actor) is BlockSplitActor:
        n_in = actor.images * actor.beats_in_per_image
        need("in", n_in)
        n_out = actor.images * actor.beats_out_per_image
        return {"out": n_out}, [n_in, n_out]
    if type(actor) is BlockMergeActor:
        n_in = actor.images * actor.beats_in_per_image
        need("in", n_in)
        n_out = actor.images * actor.beats_out_per_image
        return {"out": n_out}, [n_in, n_out]
    if type(actor) is ConvCoreActor:
        coords = actor.images * actor.n_coords
        n_in = coords * actor.in_groups
        for p in range(actor.in_ports):
            need(f"in{p}", n_in)
        n_out = coords * actor.out_groups
        return {f"out{p}": n_out for p in range(actor.out_ports)}, [n_in, n_out]
    if type(actor) is PoolCoreActor:
        need("in", actor.count)
        return {"out": actor.count}, [actor.count]
    if type(actor) is FCCoreActor:
        n_in = actor.images * actor.in_fm
        need("in", n_in)
        n_out = actor.images * actor.out_fm
        return {"out": n_out}, [n_in, n_out]
    if type(actor) is NormalizationActor:
        n = actor.images * actor.n_classes
        need("in", n)
        # One productive beat per pop and per push of the single process.
        return {"out": n}, [2 * n]
    if type(actor) is ScheduleDemux:
        n = in_beats.get(actor.src, 0)
        period = len(actor.schedule)
        counts = [0] * actor.n_outputs
        full, rem = divmod(n, period)
        for idx in actor.schedule:
            counts[idx] += full
        for k in range(rem):
            counts[actor.schedule[k]] += 1
        return {f"out{i}": counts[i] for i in range(actor.n_outputs)}, [n]
    if type(actor) is Interleaver:
        lens = {i: in_beats.get(f"in{i}", 0) for i in range(actor.n_inputs)}
        n = sum(lens.values())
        period = len(actor.schedule)
        counts = [0] * actor.n_inputs
        full, rem = divmod(n, period)
        for idx in actor.schedule:
            counts[idx] += full
        for k in range(rem):
            counts[actor.schedule[k]] += 1
        for i in range(actor.n_inputs):
            if counts[i] != lens[i]:
                raise CompilationError(
                    f"{actor.name!r}: schedule consumes {counts[i]} beats "
                    f"from in{i} but {lens[i]} arrive — the interleave "
                    f"would starve or overrun"
                )
        return {actor.dst: n}, [n]
    if type(actor) is Fork:
        n = in_beats.get(actor.src, 0)
        return {f"out{i}": n for i in range(actor.n_outputs)}, [n]
    if type(actor) is FifoStage:
        n = in_beats.get(actor.src, 0)
        return {actor.dst: n}, [n]
    if type(actor) in (LinkTxActor, LinkRxActor):
        # Pass-through word movers: one productive beat per word (the
        # transmitter's pacing waits are WaitCycles parks, excluded from
        # fires on the interpreted engines too).
        n = in_beats.get("in", 0)
        if n % actor.words_per_image:
            raise CompilationError(
                f"{actor.name!r}: {n} beats arrive but the link is sized "
                f"for {actor.words_per_image} words per image"
            )
        return {"out": n}, [n]
    if type(actor) is MapActor:
        n = in_beats.get(actor.src, 0)
        return {actor.dst: n}, [n]
    raise CompilationError(
        f"actor {actor.name!r} of type {type(actor).__name__} has no "
        f"compiled kernel (literal memory systems and custom actors run on "
        f"the interpreted engines)"
    )


def extract_schedule(
    actors, channels, design: NetworkDesign, multi_plan=None
) -> SteadySchedule:
    """Solve the steady-state schedule of a verified design graph.

    ``actors``/``channels`` are the elaborated graph's contents (as held
    by the :class:`~repro.dataflow.simulator.Simulator`), ``design`` the
    :class:`NetworkDesign` they were built from. For a sharded graph,
    ``multi_plan`` is the :class:`~repro.core.multi_fpga.MultiFpgaPlan`
    whose link stages join the interval race and extend the fill by the
    links' first-word traversal latency.
    """
    by_name = {a.name: a for a in actors}
    order = topological_order(actors, channels)

    sources = [a for a in actors if type(a) is ArraySource]
    sinks = [a for a in actors if type(a) is ListSink]
    if len(sources) != 1 or len(sinks) != 1:
        raise CompilationError(
            f"expected exactly one DMA source and one sink, found "
            f"{len(sources)} source(s) / {len(sinks)} sink(s)"
        )
    source, sink = sources[0], sinks[0]

    in_words = design.input_words_per_image()
    out_words = design.output_words_per_image()
    n_values = len(source.values)
    if in_words <= 0 or n_values % in_words:
        raise CompilationError(
            f"DMA stream of {n_values} beats is not a whole number of "
            f"{in_words}-word images"
        )
    images = n_values // in_words

    # -- rate solution: propagate beat counts in topological order -------
    channel_beats: Dict[str, int] = {}
    proc_fires: Dict[str, List[int]] = {}
    in_ports_of, out_ports_of = port_maps(actors, channels)
    for name in order:
        actor = by_name[name]
        in_beats = {
            port: channel_beats[cname]
            for port, cname in in_ports_of[name].items()
        }
        out_beats, fires = _actor_rates(actor, in_beats)
        proc_fires[name] = fires
        for port, n in out_beats.items():
            cname = out_ports_of[name].get(port)
            if cname is None:
                raise CompilationError(
                    f"{name!r}: output port {port!r} is not connected"
                )
            channel_beats[cname] = n
        for port in out_ports_of[name]:
            if port not in out_beats:
                raise CompilationError(
                    f"{name!r}: no beats scheduled for output port {port!r}"
                )

    if sink.count is not None and sink.count != images * out_words:
        raise CompilationError(
            f"sink consumes {sink.count} beats but the design emits "
            f"{images * out_words}"
        )

    # -- analytic timing frame ------------------------------------------
    # The calibration constant is carried by the conv cores themselves.
    overhead = max(
        (a.coord_overhead for a in actors if type(a) is ConvCoreActor),
        default=0,
    )
    beat = source.interval
    perf = NetworkPerf(
        design_name=design.name,
        layers=[layer_perf(p, float(overhead)) for p in design.placements],
        dma_in_cycles=in_words * beat,
        dma_out_cycles=out_words * beat,
    )
    fill = perf.fill_latency
    interval = perf.interval
    bottleneck = perf.bottleneck
    if multi_plan is not None:
        link_beat = multi_plan.link.beat_interval()
        for d in range(multi_plan.n_devices - 1):
            cycles = multi_plan.link_cycles(d)
            if cycles > interval:
                interval, bottleneck = cycles, f"link{d}"
            # First-word traversal latency of one link pair: the
            # serializing interleave, the paced tx beat, the wire
            # register, the rx relay and the deal-out demux.
            fill += 4 + link_beat
    completions = tuple(fill + i * interval for i in range(images))
    return SteadySchedule(
        order=order,
        channel_beats=channel_beats,
        proc_fires=proc_fires,
        images=images,
        interval=interval,
        fill_latency=fill,
        bottleneck=bottleneck,
        completions=completions,
        cycles=completions[-1] + 1,
        per_image_out=out_words,
        dma_last_push=(n_values - 1) * beat,
    )
