"""Comparators: sequential accelerator, published [28] numbers, host CPU."""

from repro.baselines.cpu import CpuBaseline, measure_cpu_inference
from repro.baselines.microsoft import (
    MICROSOFT_CIFAR10,
    PAPER_CLAIMED_SPEEDUP,
    PublishedBaseline,
)
from repro.baselines.sequential import SequentialPerf, sequential_perf

__all__ = [
    "CpuBaseline",
    "MICROSOFT_CIFAR10",
    "PAPER_CLAIMED_SPEEDUP",
    "PublishedBaseline",
    "SequentialPerf",
    "measure_cpu_inference",
    "sequential_perf",
]
