"""Software (CPU) inference baseline.

Measures the NumPy reference network's actual throughput on the host —
the modern stand-in for the paper-era "software implementation on a
2.2 GHz Opteron" comparisons in the related work. Useful to put the
simulated accelerator numbers in context, not a claim about 2017 CPUs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.network import Sequential


@dataclass(frozen=True)
class CpuBaseline:
    """Measured host-CPU inference throughput."""

    images_per_second: float
    batch_size: int
    repeats: int


def measure_cpu_inference(
    net: Sequential,
    batch: np.ndarray,
    repeats: int = 5,
    warmup: int = 1,
) -> CpuBaseline:
    """Time ``repeats`` forward passes of ``batch`` and report images/s."""
    if repeats < 1 or warmup < 0:
        raise ConfigurationError("repeats must be >= 1 and warmup >= 0")
    for _ in range(warmup):
        net.forward(batch)
    t0 = time.perf_counter()
    for _ in range(repeats):
        net.forward(batch)
    dt = time.perf_counter() - t0
    total = repeats * batch.shape[0]
    return CpuBaseline(
        images_per_second=total / dt if dt > 0 else float("inf"),
        batch_size=batch.shape[0],
        repeats=repeats,
    )
