"""Published-number model of the Microsoft CIFAR-10 accelerator [28].

Ovtcharov et al., "Accelerating Deep Convolutional Neural Networks Using
Specialized Hardware", Microsoft Research whitepaper, 2015 — the only
prior FPGA accelerator for the same dataset the paper could compare with
(Table II): a Stratix V D5 running CIFAR-10 classification at 2,318
images/s. The system itself is closed; only its published throughput is
used, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.fpga.device import STRATIX_V_D5, Device


@dataclass(frozen=True)
class PublishedBaseline:
    """An external accelerator known only through its published figures."""

    name: str
    citation: str
    device: Device
    dataset: str
    images_per_second: float

    def speedup_of(self, images_per_second: float) -> float:
        """How much faster a measured throughput is than this baseline."""
        if images_per_second <= 0:
            raise ConfigurationError(
                f"images_per_second must be positive, got {images_per_second}"
            )
        return images_per_second / self.images_per_second


#: Table II's comparison row.
MICROSOFT_CIFAR10 = PublishedBaseline(
    name="microsoft-catapult-cnn",
    citation="Ovtcharov et al., MSR whitepaper 2015 [28]",
    device=STRATIX_V_D5,
    dataset="CIFAR-10",
    images_per_second=2318.0,
)

#: The speedup the paper claims over [28] for test case 2.
PAPER_CLAIMED_SPEEDUP = 3.36
