"""Sequential (layer-at-a-time) accelerator baseline.

The related-work pattern the paper argues against (Section I): accelerate
one layer at a time, shipping intermediate feature maps to off-chip memory
between layers. Such an accelerator can reuse the very same compute cores,
but (a) pays DMA round-trips for every intermediate volume, and (b) cannot
overlap layers, so batches gain nothing — mean time per image is flat in
batch size. This is the ablation (A3) quantifying the value of the
high-level pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.network_design import NetworkDesign
from repro.core.perf_model import layer_perf
from repro.errors import ConfigurationError
from repro.fpga.board import Board, VC707


@dataclass(frozen=True)
class SequentialPerf:
    """Per-image cycle breakdown of the layer-at-a-time execution."""

    design_name: str
    #: Per-layer (load + compute + store) cycles.
    per_layer_cycles: List[int]

    @property
    def cycles_per_image(self) -> int:
        """Total per-image cycles (no inter-layer overlap)."""
        return sum(self.per_layer_cycles)

    def batch_cycles(self, batch: int) -> int:
        """A batch is strictly serial: ``B`` images cost ``B`` times one."""
        if batch < 1:
            raise ConfigurationError(f"batch must be >= 1, got {batch}")
        return batch * self.cycles_per_image

    def mean_cycles_per_image(self, batch: int) -> float:
        """Flat in batch size — the anti-Figure-6."""
        return self.batch_cycles(batch) / batch

    def images_per_second(self, board: Board = VC707) -> float:
        return board.clock.frequency_hz / self.cycles_per_image


def sequential_perf(design: NetworkDesign, board: Board = VC707) -> SequentialPerf:
    """Model ``design`` executed one layer at a time through off-chip memory.

    Every layer's inputs are DMA-loaded and outputs DMA-stored (the
    "data exchange between accelerated and unaccelerated layers" the paper
    criticizes); the compute core itself is identical to the dataflow one.
    """
    beat = board.dma.beat_interval(32)
    per_layer = []
    for placement in design.placements:
        p = layer_perf(placement)
        c, h, w = placement.in_shape
        k, oh, ow = placement.out_shape
        load = c * h * w * beat
        store = k * oh * ow * beat
        compute = p.core_cycles + p.depth_cycles
        per_layer.append(load + compute + store)
    return SequentialPerf(design.name, per_layer)
