"""Command-line interface: ``python -m repro <command> ...``.

Exposes the library's main flows over the preset designs (or a design
JSON produced by :mod:`repro.core.serialize`):

* ``block-design`` — render the Figure 4/5-style block diagram;
* ``report``       — the HLS-style synthesis report;
* ``perf``         — interval / fill / throughput summary;
* ``sweep``        — the Figure-6 batch curve (analytical model);
* ``dse``          — greedy design-space exploration;
* ``simulate``     — cycle-accurate run on random/synthetic data with
  verification against the NumPy reference;
* ``check``        — static dataflow verification: rate balance, port
  adapters, FIFO buffering, Eq. 4 II consistency (nonzero exit on errors).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.core import (
    cifar10_design,
    design_from_json,
    design_resources,
    network_perf,
    random_weights,
    render_report,
    run_batch,
    tiny_design,
    usps_design,
    batch_sweep,
)
from repro.core.reference import design_reference_forward
from repro.dse import greedy_optimize
from repro.errors import ReproError
from repro.fpga import VC707, XC7VX485T
from repro.report import format_kv, format_table

_PRESETS = {
    "usps": usps_design,
    "cifar10": cifar10_design,
    "tiny": tiny_design,
    # Canonical design names (design.name) double as preset spellings so
    # reports and CLI invocations round-trip: `repro loadtest --design
    # cifar10-tc2` works on the name a ServeReport printed.
    "usps-tc1": usps_design,
    "cifar10-tc2": cifar10_design,
}


def _register_zoo() -> None:
    # AlexNet/VGG-16 resolve to the promoted full-size designs
    # (weight-streaming FC + block convolution), simulable on every
    # engine; the '-pilot' spellings are their deterministic downscales
    # for quick fault/profile loops.
    from repro.core.zoo import (
        alexnet_blocked_design,
        alexnet_pilot_design,
        vgg16_blocked_design,
        vgg16_pilot_design,
    )

    _PRESETS.setdefault("alexnet", alexnet_blocked_design)
    _PRESETS.setdefault("vgg16", vgg16_blocked_design)
    _PRESETS.setdefault("alexnet-pilot", alexnet_pilot_design)
    _PRESETS.setdefault("vgg16-pilot", vgg16_pilot_design)


_register_zoo()


def _load_design(arg: str):
    """A preset name or a path to a design JSON file."""
    if arg in _PRESETS:
        return _PRESETS[arg]()
    try:
        with open(arg) as fh:
            return design_from_json(fh.read())
    except FileNotFoundError:
        raise ReproError(
            f"unknown design {arg!r}: not a preset ({sorted(_PRESETS)}) and "
            f"not a readable JSON file"
        ) from None


def _common_options() -> argparse.ArgumentParser:
    """Parent parser shared by ``check``/``faultsim``/``flow``/``profile``.

    ``--design`` is the canonical spelling; the bare positional form is
    kept as a deprecated alias (resolved by :func:`_resolve_design`,
    which notes the deprecation on stderr). ``--json`` and ``--seed``
    are spelled identically across the four commands.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "design_pos", nargs="?", default=None, metavar="DESIGN",
        help="deprecated positional form of --design",
    )
    parent.add_argument(
        "--design", dest="design_opt", default=None, metavar="DESIGN",
        help="preset (usps|cifar10|tiny|alexnet|vgg16|alexnet-pilot|"
             "vgg16-pilot) or design JSON path",
    )
    parent.add_argument("--json", metavar="PATH", default=None,
                        help="also write the machine-readable report to PATH")
    parent.add_argument("--seed", type=int, default=0,
                        help="RNG seed (simulation-backed commands)")
    return parent


def _resolve_design(args, required: bool = True) -> Optional[str]:
    """The design argument from ``--design`` or the deprecated positional."""
    if args.design_pos is not None and args.design_opt is not None:
        if args.design_pos != args.design_opt:
            raise ReproError(
                f"{args.command}: positional design {args.design_pos!r} "
                f"conflicts with --design {args.design_opt!r}"
            )
        return args.design_opt
    if args.design_pos is not None:
        print(
            f"note: '{args.command} DESIGN' is deprecated; "
            f"use '{args.command} --design DESIGN'",
            file=sys.stderr,
        )
        return args.design_pos
    if args.design_opt is not None:
        return args.design_opt
    if required:
        raise ReproError(f"{args.command}: a design is required (--design)")
    return None


def _pilot_override(args, design) -> Optional[bool]:
    """Tri-state pilot override from ``--pilot``/``--no-pilot``.

    Promoted (blocked) designs simulate full-size by default, so
    ``--pilot`` on one is kept only as a deprecated alias for the
    explicit ``<name>-pilot`` preset; it still forces the downscale but
    notes the preferred spelling on stderr.
    """
    from repro.core.block_transform import design_is_blocked

    if args.pilot:
        if design_is_blocked(design):
            print(
                f"note: '--pilot' on promoted design {design.name!r} is "
                f"deprecated; use the '{design.name}-pilot' preset",
                file=sys.stderr,
            )
        return True
    if args.no_pilot:
        return False
    return None


def _cmd_check(args):
    """Static dataflow verification; returns ``(text, exit_code)``."""
    from repro.analysis import check_design_dict, check_network, render_catalog

    if args.list_rules:
        return render_catalog(), 0
    design_arg = _resolve_design(args, required=False)
    if design_arg is None:
        raise ReproError("check: a design (or --list-rules) is required")
    elaborate = "auto"
    if args.no_elaborate:
        elaborate = False
    elif args.elaborate:
        elaborate = True
    if design_arg in _PRESETS:
        report = check_network(_PRESETS[design_arg](), elaborate=elaborate)
    else:
        # Lenient path: a broken design JSON still yields a full report
        # (per-rule diagnostics + nonzero exit) instead of one exception.
        import json

        try:
            with open(design_arg) as fh:
                d = json.load(fh)
        except FileNotFoundError:
            raise ReproError(
                f"unknown design {design_arg!r}: not a preset "
                f"({sorted(_PRESETS)}) and not a readable JSON file"
            ) from None
        except json.JSONDecodeError as exc:
            raise ReproError(f"{design_arg}: not valid JSON ({exc})") from None
        if not isinstance(d, dict):
            raise ReproError(f"{design_arg}: design JSON must be an object")
        report = check_design_dict(d, elaborate=elaborate)
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json() + "\n")
    failed = not report.ok or (args.warnings_as_errors and report.warnings)
    return report.format_text(), 1 if failed else 0


def _cmd_faultsim(args):
    """Fault-injection run(s); returns ``(text, exit_code)``."""
    from repro.faults import faultsim, load_scenario, run_campaign

    if args.campaign:
        names = args.designs or sorted(_PRESETS)
        designs = [(n, _load_design(n)) for n in names]
        scenarios = [load_scenario(s) for s in args.scenarios]
        summary = run_campaign(
            designs, scenarios, args.seeds, images=args.images,
            scheduler=args.scheduler,
        )
        if args.json:
            with open(args.json, "w") as fh:
                fh.write(summary.to_json() + "\n")
        rows = [
            [r["design"], r["scenario"]["name"], r["seed"],
             "pilot" if r["pilot"] else "full", r["verdict"],
             "ok" if r["ok"] else "FAIL"]
            for r in summary["runs"]
        ]
        text = format_table(
            ["design", "scenario", "seed", "scale", "verdict", ""],
            rows,
            title=f"fault campaign: {summary['passed']}/"
                  f"{summary['experiments']} passed",
        )
        return text, 0 if summary["ok"] else 1
    design_arg = _resolve_design(args, required=False)
    if design_arg is None:
        raise ReproError("faultsim: a design (or --campaign) is required")
    design = _load_design(design_arg)
    pilot = _pilot_override(args, design)
    scenario = load_scenario(args.scenario)
    report = faultsim(
        design, scenario, seed=args.seed, images=args.images,
        scheduler=args.scheduler, memory_system=args.memory_system,
        pilot=pilot,
    )
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json() + "\n")
    pairs = [
        ("scenario", scenario.name),
        ("seed", report["seed"]),
        ("simulated design",
         report["simulated_design"] + (" (pilot)" if report["pilot"] else "")),
        ("clean cycles", report["clean"]["cycles"]),
        ("faulty cycles",
         report["faulty"]["cycles"]
         if report["faulty"]["finished"]
         else f"deadlocked at {report['faulty']['cycles']}"),
    ]
    if "cycle_overhead" in report:
        pairs.append(
            ("cycle overhead",
             f"{report['cycle_overhead']} (+{report['cycle_overhead_pct']}%)")
        )
    pairs.append(("clean digest", (report["clean"]["digest"] or "-")[:16]))
    pairs.append(
        ("faulty digest", (report["faulty"]["digest"] or "-")[:16])
    )
    if report["faulty"].get("deadlock"):
        blocked = report["faulty"]["deadlock"]["channels"]
        chans = sorted({c for conds in blocked.values() for c in conds})
        pairs.append(("deadlock channels", ", ".join(chans) or "-"))
    if report.get("shrunk_channels"):
        pairs.append(("shrunk FIFO", ", ".join(report["shrunk_channels"])))
        pairs.append(
            ("matched by analyzer", ", ".join(report["matched_channels"]) or "-")
        )
    pairs.append(("invariant", report.get("invariant", "-")))
    pairs.append(("verdict", report["verdict"]))
    text = format_kv(f"fault injection: {design.name}", pairs)
    return text, 0 if report["ok"] else 1


def _cmd_block_design(args) -> str:
    return _load_design(args.design).block_design()


def _cmd_report(args) -> str:
    return render_report(_load_design(args.design))


def _cmd_perf(args) -> str:
    design = _load_design(args.design)
    perf = network_perf(design)
    ips = perf.images_per_second(VC707)
    text = format_kv(
        f"performance: {design.name}",
        [
            ("steady-state interval", f"{perf.interval} cycles"),
            ("fill latency", f"{perf.fill_latency} cycles"),
            ("bottleneck", perf.bottleneck),
            ("images/s @ 100 MHz", f"{ips:,.0f}"),
            ("GFLOPS", f"{design.flops_per_image() * ips / 1e9:.2f}"),
        ],
    )
    if getattr(args, "breakdown", False):
        from repro.core.perf_model import interval_breakdown

        rows = [
            [r["stage"], r["kind"], r["in_beats"], r["core_cycles"],
             r["out_beats"], r["interval"], "<-" if r["bottleneck"] else ""]
            for r in interval_breakdown(perf)
        ]
        text += "\n\n" + format_table(
            ["stage", "kind", "in beats", "core cycles", "out beats",
             "interval", ""],
            rows,
            title="per-stage breakdown (cycles per image)",
        )
    return text


def _cmd_sweep(args) -> str:
    design = _load_design(args.design)
    rows = batch_sweep(design, args.batches, VC707)
    return format_table(
        ["batch", "mean cycles/img", "mean us/img"],
        [[r["batch"], r["mean_cycles"], r["mean_us"]] for r in rows],
        title=f"batch sweep: {design.name}",
    )


def _cmd_dse(args) -> str:
    design = _load_design(args.design)
    res = greedy_optimize(design)
    before = network_perf(design).interval
    return format_kv(
        f"greedy DSE: {design.name}",
        [
            ("starting interval (given config)", before),
            ("best interval found", res.best.interval),
            ("best ports", res.best.ports),
            ("configurations evaluated", res.evaluated),
            ("fits xc7vx485t", res.best.fits),
        ],
    )


def _cmd_simulate(args) -> str:
    design = _load_design(args.design)
    weights = random_weights(design, seed=args.seed)
    rng = np.random.default_rng(args.seed)
    batch = rng.uniform(0, 1, (args.images,) + design.input_shape).astype(np.float32)
    report = run_batch(design, weights, batch)
    ref = design_reference_forward(design, weights, batch)[-1]
    got = report.outputs
    if ref.shape != got.shape:
        ref = ref.reshape(got.shape)
    err = float(np.max(np.abs(got - ref)))
    return format_kv(
        f"cycle simulation: {design.name}",
        [
            ("images", report.images),
            ("total cycles", report.total_cycles),
            ("measured interval", f"{report.measured_interval:.1f} cycles"),
            ("model interval", network_perf(design).interval),
            ("max |sim - reference|", f"{err:.3e}"),
            ("verified", err < args.tolerance),
        ],
    )


def _cmd_resources(args) -> str:
    design = _load_design(args.design)
    res = design_resources(design)
    util = res.utilization(XC7VX485T)
    total = res.total
    return format_table(
        ["resource", "used", "available", "utilization %"],
        [
            ["FF", int(total.ff), int(XC7VX485T.resources.ff), util["ff"] * 100],
            ["LUT", int(total.lut), int(XC7VX485T.resources.lut), util["lut"] * 100],
            ["BRAM36", round(total.bram, 1), int(XC7VX485T.resources.bram),
             util["bram"] * 100],
            ["DSP", int(total.dsp), int(XC7VX485T.resources.dsp), util["dsp"] * 100],
        ],
        title=f"resources: {design.name} on xc7vx485t",
    )


def _cmd_flow(args) -> str:
    from repro.core import run_flow

    design_arg = _resolve_design(args)
    res = run_flow(design_arg, seed=args.seed, output_dir=args.out,
                   epochs=args.epochs, scheduler=args.scheduler)
    if args.json:
        import json

        from repro.report import SCHEMA_VERSION

        summary = {
            "schema_version": SCHEMA_VERSION,
            "kind": "flow",
            "design": design_arg,
            "seed": args.seed,
            "test_accuracy": res.training.test_accuracy,
            "verified": res.verification.passed,
            "interval": res.interval,
            "fits_device": res.fits_device,
            "ok": res.ok,
            "artifacts": list(res.artifacts),
        }
        with open(args.json, "w") as fh:
            json.dump(summary, fh, indent=2)
            fh.write("\n")
    pairs = [
        ("training loss", f"{res.training.losses[0]:.3f} -> "
                          f"{res.training.losses[-1]:.3f}"),
        ("test accuracy", f"{res.training.test_accuracy:.3f}"),
        ("layer-wise verification",
         "PASSED" if res.verification.passed
         else f"FAILED at {res.verification.first_failure}"),
        ("steady-state interval", f"{res.interval} cycles"),
        ("fits xc7vx485t", res.fits_device),
        ("flow verdict", "OK" if res.ok else "REJECTED"),
    ]
    if res.artifacts:
        pairs.append(("artifacts", ", ".join(res.artifacts)))
    return format_kv(f"automated flow: {design_arg}", pairs)


def _cmd_profile(args):
    """Measured-vs-predicted profile; returns ``(text, exit_code)``."""
    from repro.profiling import profile_design, write_chrome_trace

    design = _load_design(_resolve_design(args))
    pilot = _pilot_override(args, design)
    kwargs = {}
    if args.tolerance is not None:
        kwargs["tolerance"] = args.tolerance
    report = profile_design(
        design, images=args.images, seed=args.seed,
        scheduler=args.scheduler, sample_every=args.sample_every,
        pilot=pilot, **kwargs,
    )
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json() + "\n")
    if args.chrome_trace:
        write_chrome_trace(report, args.chrome_trace)
    return report.format_text(), 0 if report.ok else 1


def _cmd_shrink(args):
    """Certified FIFO depth shrink; returns ``(text, exit_code)``."""
    from repro.analysis import run_shrink

    design = _load_design(_resolve_design(args))
    pilot = _pilot_override(args, design)
    report = run_shrink(
        design, seed=args.seed, images=args.images, pilot=pilot,
        validate=not args.no_validate, bisect=args.bisect,
        probe_limit=args.probe_limit,
    )
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json() + "\n")
    if args.apply:
        import json

        with open(args.apply, "w") as fh:
            json.dump(report["plan"], fh, indent=2)
            fh.write("\n")
    return report.format_text(), 0 if report["ok"] else 1


def _cmd_shard(args):
    """Multi-FPGA sharded co-simulation sweep; returns ``(text, exit_code)``."""
    from repro.core.multi_fpga import LinkModel
    from repro.core.shard import run_shard

    design = _load_design(_resolve_design(args))
    link = None
    if args.link_bandwidth is not None or args.link_clock is not None:
        link = LinkModel(
            bandwidth_bytes_per_s=args.link_bandwidth
            if args.link_bandwidth is not None
            else 1e9,
            clock_hz=args.link_clock if args.link_clock is not None else 100e6,
        )
    throttles = []
    for spec in args.throttle or ():
        try:
            period, burst = spec.split(":")
            throttles.append((int(period), int(burst)))
        except ValueError:
            raise ReproError(
                f"shard: --throttle wants PERIOD:BURST, got {spec!r}"
            ) from None
    report = run_shard(
        design,
        devices=tuple(args.devices),
        images=args.images,
        seed=args.seed,
        link=link,
        fit=not args.no_fit,
        engines=tuple(args.engines),
        throttles=tuple(throttles),
    )
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json() + "\n")
    return report.summary(), 0 if report.ok else 1


def _cmd_loadtest(args):
    """Open-loop serving loadtest; returns ``(text, exit_code)``."""
    from repro.serve import run_loadtest

    design = _load_design(_resolve_design(args))
    report = run_loadtest(
        design,
        requests=args.requests,
        rate=args.rate,
        dist=args.dist,
        seed=args.seed,
        replicas=args.replicas,
        mode=args.mode,
        max_batch=args.max_batch,
        max_wait_us=args.max_wait_us,
        fault=args.fault,
        probe=not args.no_probe,
        verify_digests=not args.no_verify,
    )
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json() + "\n")
    return report.format_text(), 0 if report.ok else 1


def _cmd_serve(args):
    """Run the live asyncio JSON-lines TCP server until interrupted."""
    import asyncio

    from repro.serve import InferenceServer, serve_tcp

    design = _load_design(_resolve_design(args))

    async def _run() -> None:
        server = InferenceServer(
            design,
            replicas=args.replicas,
            seed=args.seed,
            mode=args.mode,
            target_batch=args.target_batch,
            max_batch=args.max_batch,
            max_wait_s=args.max_wait_ms / 1e3,
        )
        async with server:
            tcp = await serve_tcp(server, host=args.host, port=args.port)
            addr = tcp.sockets[0].getsockname()
            print(
                f"serving {design.name} on {addr[0]}:{addr[1]} "
                f"({args.replicas} replica(s), target batch "
                f"{server.target_batch}); one JSON request per line: "
                f'{{"index": <int>}}; Ctrl-C to stop'
            )
            async with tcp:
                await tcp.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return f"{design.name}: server stopped"


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="Dataflow CNN-on-FPGA reproduction toolkit",
    )
    sub = p.add_subparsers(dest="command", required=True)

    def add(name, fn, help_):
        sp = sub.add_parser(name, help=help_)
        sp.add_argument("design", help="preset (usps|cifar10|tiny) or design JSON path")
        sp.set_defaults(fn=fn)
        return sp

    common = _common_options()

    check = sub.add_parser(
        "check", parents=[common],
        help="static dataflow verification (rate/adapter/buffer/II rules)",
    )
    check.add_argument("--elaborate", action="store_true",
                       help="force graph-level rules even on huge designs")
    check.add_argument("--no-elaborate", action="store_true",
                       help="design-level rules only (skip elaboration)")
    check.add_argument("--warnings-as-errors", action="store_true",
                       help="exit nonzero on warnings too")
    check.add_argument("--list-rules", action="store_true",
                       help="print the rule catalog and exit")
    check.set_defaults(fn=_cmd_check)

    add("block-design", _cmd_block_design, "render the block design (Fig. 4/5 style)")
    add("report", _cmd_report, "HLS-style synthesis report")
    perf = add("perf", _cmd_perf, "analytical performance summary")
    perf.add_argument("--breakdown", action="store_true",
                      help="per-stage interval table")
    add("resources", _cmd_resources, "Table-I-style utilization")
    sweep = add("sweep", _cmd_sweep, "Figure-6 batch curve (model)")
    sweep.add_argument("--batches", type=int, nargs="+",
                       default=[1, 2, 5, 10, 20, 50])
    add("dse", _cmd_dse, "greedy design-space exploration")
    sim = add("simulate", _cmd_simulate, "cycle-accurate simulation + verification")
    sim.add_argument("--images", type=int, default=2)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--tolerance", type=float, default=1e-4)
    fault = sub.add_parser(
        "faultsim", parents=[common],
        help="fault injection: prove latency-insensitivity / deadlock "
             "agreement (see repro.faults)",
    )
    fault.add_argument(
        "--scenario", default="jitter",
        help="preset scenario (jitter|dma|slowdown|storm|corrupt|shrink) "
             "or scenario JSON path",
    )
    fault.add_argument("--images", type=int, default=2)
    fault.add_argument("--scheduler",
                       choices=["event", "lockstep", "compiled"],
                       default="event",
                       help="simulation engine; 'compiled' is rejected "
                            "(faults require an interpreted engine)")
    fault.add_argument("--memory-system", choices=["behavioral", "literal"],
                       default="behavioral",
                       help="shrink scenarios force 'literal'")
    fault.add_argument("--pilot", action="store_true",
                       help="force the pilot downscale even for small designs")
    fault.add_argument("--no-pilot", action="store_true",
                       help="forbid the pilot downscale (huge designs will "
                            "simulate at full size)")
    fault.add_argument("--campaign", action="store_true",
                       help="sweep designs x scenarios x seeds instead of "
                            "one run")
    fault.add_argument("--designs", nargs="+", default=None,
                       help="campaign designs (default: every preset)")
    fault.add_argument("--scenarios", nargs="+",
                       default=["jitter", "dma", "slowdown", "storm",
                                "corrupt", "shrink"],
                       help="campaign scenarios")
    fault.add_argument("--seeds", type=int, nargs="+", default=[0],
                       help="campaign seeds")
    fault.set_defaults(fn=_cmd_faultsim)
    flow = sub.add_parser(
        "flow", parents=[common],
        help="automated design flow: train, verify, report, emit artifacts",
    )
    flow.add_argument("--out", default=None, help="artifact output directory")
    flow.add_argument("--epochs", type=int, default=None)
    flow.add_argument("--scheduler",
                      choices=["event", "lockstep", "compiled"],
                      default=None,
                      help="run the layerwise verification cycle-timed on "
                           "this engine (default: untimed functional "
                           "execution)")
    flow.set_defaults(fn=_cmd_flow)
    profile = sub.add_parser(
        "profile", parents=[common],
        help="native-counter profile: measured II / throughput / bottleneck "
             "vs the Eq. 4 performance model",
    )
    profile.add_argument("--images", type=int, default=3)
    profile.add_argument("--scheduler",
                         choices=["event", "lockstep", "compiled"],
                         default="event",
                         help="simulation engine; 'compiled' runs the fused "
                              "steady-state kernels (falls back to 'event' "
                              "with a warning if the graph cannot compile)")
    profile.add_argument("--sample-every", type=int, default=None,
                         metavar="N",
                         help="attach the high-resolution tracer backend "
                              "(sample occupancy every N cycles; disables "
                              "bulk cycle-skipping)")
    profile.add_argument("--chrome-trace", metavar="PATH", default=None,
                         help="write a chrome://tracing / Perfetto JSON "
                              "trace to PATH")
    profile.add_argument("--pilot", action="store_true",
                         help="force the pilot downscale even for small "
                              "designs")
    profile.add_argument("--no-pilot", action="store_true",
                         help="forbid the pilot downscale (huge designs "
                              "will simulate at full size)")
    profile.add_argument("--tolerance", type=float, default=None,
                         help="relative II error treated as a mismatch "
                              "(default 0.05)")
    profile.set_defaults(fn=_cmd_profile)
    shrink = sub.add_parser(
        "shrink", parents=[common],
        help="static FIFO depth inference: certify minimal depths, "
             "validate them under both engines, report BRAM savings "
             "(see repro.analysis.depths)",
    )
    shrink.add_argument("--images", type=int, default=1,
                        help="images per validation run")
    shrink.add_argument("--bisect", action="store_true",
                        help="also binary-search each channel's empirical "
                             "floor under the event engine")
    shrink.add_argument("--apply", metavar="PATH", default=None,
                        help="write the certified DepthPlan JSON to PATH "
                             "(load with repro.analysis.load_depth_plan / "
                             "build_network(depth_plan=...))")
    shrink.add_argument("--probe-limit", type=int, default=None,
                        metavar="N",
                        help="probe at most N tight certificates (the "
                             "report counts the unprobed remainder)")
    shrink.add_argument("--no-validate", action="store_true",
                        help="skip the dual-engine runs and depth-1 probes "
                             "(prover + savings only)")
    shrink.add_argument("--pilot", action="store_true",
                        help="force the pilot downscale even for small "
                             "designs")
    shrink.add_argument("--no-pilot", action="store_true",
                        help="forbid the pilot downscale (huge designs "
                             "will simulate at full size)")
    shrink.set_defaults(fn=_cmd_shrink)
    shard = sub.add_parser(
        "shard", parents=[common],
        help="multi-FPGA sharded co-simulation: cut the verified graph at "
             "the planned boundaries, run each placement as ONE "
             "multi-device simulation, verify digests and plan intervals "
             "(see repro.core.shard)",
    )
    shard.add_argument("--devices", type=int, nargs="+", default=[1, 2, 4],
                       help="device counts to place and co-simulate")
    shard.add_argument("--images", type=int, default=4,
                       help="batch size (>= 2 measures the interval)")
    shard.add_argument("--engines", nargs="+",
                       choices=["event", "lockstep", "compiled"],
                       default=["event", "compiled"],
                       help="simulation engines to cross-check")
    shard.add_argument("--link-bandwidth", type=float, default=None,
                       metavar="BYTES_PER_S",
                       help="board-to-board link bandwidth "
                            "(default 1e9 B/s)")
    shard.add_argument("--link-clock", type=float, default=None,
                       metavar="HZ",
                       help="link clock domain (default 100e6 Hz)")
    shard.add_argument("--throttle", nargs="+", default=None,
                       metavar="PERIOD:BURST",
                       help="fault campaign: hold every PERIOD-th wire "
                            "commit for BURST cycles on every link and "
                            "cross-check the analytical degraded interval")
    shard.add_argument("--no-fit", action="store_true",
                       help="drop the per-segment device capacity "
                            "constraint (full-size zoo members overflow "
                            "even several Virtex-7s)")
    shard.set_defaults(fn=_cmd_shard)
    loadtest = sub.add_parser(
        "loadtest", parents=[common],
        help="open-loop serving loadtest: seeded arrivals, batch-aware "
             "admission, replica fleet, digest verification (see "
             "repro.serve)",
    )
    loadtest.add_argument("--requests", type=int, default=32,
                          help="number of requests in the run")
    loadtest.add_argument("--rate", type=float, default=10000.0,
                          help="offered load in requests per *virtual* "
                               "second (board clock)")
    loadtest.add_argument("--dist", choices=["poisson", "uniform"],
                          default="poisson",
                          help="inter-arrival distribution")
    loadtest.add_argument("--replicas", type=int, default=2)
    loadtest.add_argument("--mode", choices=["process", "inline"],
                          default="process",
                          help="replica isolation: one process per "
                               "replica, or in-process (tests/1-core "
                               "hosts)")
    loadtest.add_argument("--max-batch", type=int, default=None,
                          help="admission batch cap (default 2x knee)")
    loadtest.add_argument("--max-wait-us", type=float, default=None,
                          help="oldest-request wait cap in virtual us "
                               "(default: one knee-batch service time)")
    loadtest.add_argument("--fault", default=None,
                          help="chaos mode: arm this scenario (preset, "
                               "e.g. dma-throttle, or JSON path) on "
                               "replica 0 mid-run and cross-check the "
                               "analytical throttled II")
    loadtest.add_argument("--no-probe", action="store_true",
                          help="skip the event-engine Fig. 6 convergence "
                               "probe")
    loadtest.add_argument("--no-verify", action="store_true",
                          help="skip per-request digest verification vs "
                               "single-shot simulation")
    loadtest.set_defaults(fn=_cmd_loadtest)
    serve = sub.add_parser(
        "serve", parents=[common],
        help="live asyncio inference server (JSON-lines over TCP)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8707)
    serve.add_argument("--replicas", type=int, default=2)
    serve.add_argument("--mode", choices=["process", "inline"],
                       default="process")
    serve.add_argument("--target-batch", type=int, default=None,
                       help="admission target (default: convergence knee)")
    serve.add_argument("--max-batch", type=int, default=None)
    serve.add_argument("--max-wait-ms", type=float, default=50.0,
                       help="wall-clock cap on the oldest queued request")
    serve.set_defaults(fn=_cmd_serve)
    return p


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        out = args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    # Commands that also decide the exit code return (text, code).
    text, code = out if isinstance(out, tuple) else (out, 0)
    print(text)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
