"""Compiled steady-state simulation engine (``scheduler="compiled"``).

Lowers a design graph that passed the static verifier to fused,
vectorized numpy kernels (optionally numba-specialized) and executes the
whole run in one pass — bit-exact with the interpreted engines on output
values, per-process fires, measured II, and bottleneck attribution,
while running orders of magnitude faster. See DESIGN.md section 12.
"""

from repro.compiled.engine import CompiledEngine, CompiledFallbackWarning
from repro.compiled.numba_support import (
    HAVE_NUMBA,
    backend_name,
    numba_version,
)
from repro.compiled.plan_cache import (
    CompiledPlan,
    PlanCache,
    clear_plan_cache,
    design_digest,
    plan_cache_stats,
)
from repro.errors import CompilationError

__all__ = [
    "CompiledEngine",
    "CompiledFallbackWarning",
    "CompilationError",
    "CompiledPlan",
    "HAVE_NUMBA",
    "PlanCache",
    "backend_name",
    "clear_plan_cache",
    "design_digest",
    "numba_version",
    "plan_cache_stats",
]
