"""The compiled steady-state engine.

Third simulation engine next to ``"event"`` and ``"lockstep"``
(:mod:`repro.dataflow.scheduler`): instead of interpreting actor
processes cycle by cycle, it compiles a *verified* design graph down to
a handful of fused numpy kernels and executes whole streams at once.

Two passes keep the fallback contract clean:

* **compile** (at engine construction): the strict-only gate — a
  :class:`~repro.core.network_design.NetworkDesign` must be attached to
  the graph, no tracer may be installed, the static verifier
  (:func:`repro.analysis.analyze_design`) must pass — followed by
  :func:`~repro.analysis.steady_state.extract_schedule`, which solves
  rates, closed-form fires, and the analytic timing frame. Everything
  that can refuse, refuses here, before any actor or channel state is
  touched, so the simulator can transparently fall back to the event
  engine on :class:`~repro.errors.CompilationError`.
* **execute** (at :meth:`run`): the fused kernels
  (:mod:`repro.compiled.kernels`) stream every channel's full beat
  sequence through the pipeline in topological order; only then are the
  sink and channel statistics mutated.

The equivalence contract with the interpreted engines covers values
(sink stream, hence output digests), per-process ``fires`` (hence
measured II and bottleneck attribution), and channel beat totals. Cycle
timing is *modeled* (the perf-model steady state: completions at
``fill + i * interval``) rather than measured — by construction it
matches the prediction the profiler checks measurements against.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis import analyze_design
from repro.analysis.steady_state import (
    SteadySchedule,
    extract_schedule,
    port_maps,
)
from repro.compiled.kernels import run_kernels
from repro.compiled.numba_support import backend_name
from repro.compiled.plan_cache import (
    GLOBAL_PLAN_CACHE,
    CompiledPlan,
    _structure_crc,
    design_digest,
    plan_key,
)
from repro.core.compute_core import ConvCoreActor
from repro.dataflow.actors import ArraySource, ListSink
from repro.errors import CompilationError, ConfigurationError, SimulationError
from repro.profiling.synthesis import (
    synthesize_actor_stats,
    synthesize_channel_stats,
)


class CompiledFallbackWarning(UserWarning):
    """``scheduler="compiled"`` fell back to the interpreted event engine."""


class CompiledEngine:
    """Steady-state execution of one verified design graph.

    Satisfies the engine protocol of
    :class:`~repro.dataflow.simulator.Simulator` (``cycle``, ``run``,
    ``run_cycles``, ``actor_stats``, ``scheduler_stats``) with two
    restrictions, both rejected with :class:`ConfigurationError`:
    ``run_cycles`` / ``run(until=...)`` (no partial execution — the run
    is a single fused pass) and armed faults (checked by the factory in
    :mod:`repro.dataflow.simulator` before this class is reached).
    """

    name = "compiled"

    def __init__(self, sim):
        self.sim = sim
        self.cycle = 0
        self._ran = False

        if sim.tracer is not None:
            raise CompilationError(
                "a tracer is attached; tracing samples interpreted "
                "execution and cannot observe a compiled run"
            )
        design = getattr(sim, "design", None)
        if design is None:
            raise CompilationError(
                "the graph carries no NetworkDesign (hand-built graphs "
                "cannot be compiled; build via repro.core.builder)"
            )
        self.design = design
        plan = self._lower(sim, design)
        self.schedule: SteadySchedule = plan.schedule
        self._in_ports, self._out_ports = plan.in_ports, plan.out_ports
        sources = [a for a in sim.actors if type(a) is ArraySource]
        sinks = [a for a in sim.actors if type(a) is ListSink]
        self._source, self._sink = sources[0], sinks[0]

    @staticmethod
    def _lower(sim, design) -> CompiledPlan:
        """Verify and lower ``design``, through the per-process plan cache.

        The verification verdict is cached per design digest; the solved
        plan per (digest, stream geometry, graph structure) — see
        :mod:`repro.compiled.plan_cache`. Cached failures re-raise the
        same :class:`CompilationError` without re-running the analyzer.
        """
        cache = GLOBAL_PLAN_CACHE
        digest = design_digest(design)
        verdict = cache.get_verdict(digest)
        if verdict is None:
            report = analyze_design(design)
            verdict = tuple(report.error_rules()) if not report.ok else ()
            cache.put_verdict(digest, verdict)
        if verdict:
            raise CompilationError(
                f"design {design.name!r} fails static verification "
                f"(error rule(s) [{', '.join(verdict)}]); only designs "
                f"that pass `repro check` compile"
            )
        sources = [a for a in sim.actors if type(a) is ArraySource]
        overhead = max(
            (a.coord_overhead for a in sim.actors
             if type(a) is ConvCoreActor),
            default=0,
        )
        multi_plan = getattr(sim, "multi_plan", None)
        key = plan_key(
            digest,
            len(sources[0].values) if sources else -1,
            sources[0].interval if sources else -1,
            int(overhead),
            _structure_crc(sim.actors, sim.channels),
            multi_plan.link.beat_interval() if multi_plan is not None else 0,
        )
        plan = cache.get_plan(key)
        if plan is None:
            schedule = extract_schedule(
                sim.actors, sim.channels, design, multi_plan=multi_plan
            )
            in_ports, out_ports = port_maps(sim.actors, sim.channels)
            plan = CompiledPlan(schedule, in_ports, out_ports)
            cache.put_plan(key, plan)
        return plan

    # -- engine protocol ---------------------------------------------------

    def run(self, max_cycles: int = 10_000_000, until=None):
        if until is not None:
            raise ConfigurationError(
                "the compiled engine runs to completion in one pass and "
                "cannot stop on an `until` predicate; use the 'event' or "
                "'lockstep' engine for early stopping"
            )
        sched = self.schedule
        if sched.cycles > max_cycles:
            raise SimulationError(
                f"compiled run of {self.design.name!r} spans "
                f"{sched.cycles} modeled cycles, exceeding "
                f"max_cycles={max_cycles}"
            )
        if not self._ran:
            run_kernels(
                self.sim.actors, self._in_ports, self._out_ports, sched.order
            )
            # Modeled output timing: each image's last beat lands at its
            # perf-model completion cycle, earlier beats back-to-back.
            # interval >= per-image output beats, so images never overlap.
            ts = self._sink.timestamps
            for done in sched.completions:
                ts.extend(range(done - sched.per_image_out + 1, done + 1))
            synthesize_channel_stats(
                sched, self.sim.channels, self._source.name
            )
            self.cycle = sched.cycles
            self._ran = True
        return self.sim._result(self.cycle, True)

    def run_cycles(self, n: int) -> int:
        raise ConfigurationError(
            "the compiled engine cannot single-step; use the 'event' or "
            "'lockstep' engine for run_cycles debugging"
        )

    def actor_stats(self) -> Dict[str, list]:
        return synthesize_actor_stats(self.schedule)

    def scheduler_stats(self) -> Dict[str, object]:
        return {
            "scheduler": "compiled",
            "backend": backend_name(),
            "executed_cycles": 0,
            "skipped_cycles": self.cycle,
            "parks": 0,
            "wakeups": 0,
        }
