"""Fused, bit-exact vectorized kernels for the compiled engine.

Each kernel consumes an actor's *entire* input streams as numpy arrays
(scalars as ``(n,)`` float32 lanes, windows as ``(n, kh, kw)`` stacks)
and produces its entire output streams in one pass, batching over the
``images x coordinates`` lanes of the steady-state schedule.

Bit-exactness with the interpreted engines is a hard contract, kept by
reproducing the per-beat association order exactly:

* the conv kernel runs the same batched product tree
  (``tree_reduce(w_all * wins)``) and the same sequential per-group
  accumulation chain the actor runs per coordinate — only the
  coordinate axis is batched, and float32 elementwise ops are
  bit-identical across broadcast shapes;
* the FC kernel replays the interleaved-lane MAC recurrence input by
  input (lane ``i % acc_lanes``), rounding to float32 after each step
  exactly like the actor, then tree-combines the lanes;
* pool/activation/softmax are elementwise or per-row reductions whose
  numpy reduction order over the trailing axis is the same for one row
  or a batch of rows.

Kernels validate stream lengths against the extracted schedule as they
go; a mismatch is a :class:`~repro.errors.CompilationError` (the graph
was not in steady state after all).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.config import DTYPE
from repro.core.compute_core import ConvCoreActor
from repro.core.fc_core import FCCoreActor
from repro.core.norm_core import NormalizationActor
from repro.core.pool_core import PoolCoreActor
from repro.dataflow.actors import (
    ArraySource,
    FifoStage,
    Fork,
    Interleaver,
    ListSink,
    MapActor,
    ScheduleDemux,
)
from repro.dataflow.link import LinkRxActor, LinkTxActor
from repro.errors import CompilationError
from repro.hls.tree_adder import tree_reduce
from repro.sst.block import BlockMergeActor, BlockSplitActor
from repro.sst.line_buffer import SlidingWindowActor

from repro.compiled.numba_support import HAVE_NUMBA, maybe_njit

#: Target size of one conv product slab (bytes): coordinates are blocked
#: so the slab stays cache-resident. Blocking is bit-neutral (the
#: product tree is elementwise per coordinate) — it only sets how many
#: coordinates one vectorized pass carries.
_CONV_BLOCK_BYTES = 1 << 19

Streams = Dict[str, np.ndarray]


def _expect(actor_name: str, what: str, got: int, want: int) -> None:
    if got != want:
        raise CompilationError(
            f"{actor_name!r}: {what} carries {got} beats, schedule "
            f"expects {want}"
        )


# -- endpoint / routing kernels ------------------------------------------


def k_source(actor: ArraySource, ins: Streams) -> Streams:
    return {actor.port: np.asarray(actor.values)}


def k_sink(actor: ListSink, ins: Streams) -> Streams:
    arr = ins[actor.port]
    if actor.count is not None:
        _expect(actor.name, "sink input", len(arr), actor.count)
    # received gets the per-beat values (numpy scalars / window arrays),
    # matching what the interpreted engines would have appended.
    actor.received.extend(list(arr))
    return {}


def k_fifo(actor: FifoStage, ins: Streams) -> Streams:
    return {actor.dst: ins[actor.src]}


def k_link(actor, ins: Streams) -> Streams:
    # LinkTx/LinkRx move words unchanged; their bandwidth pacing lives
    # entirely in the schedule's timing frame.
    return {"out": ins["in"]}


def k_map(actor: MapActor, ins: Streams) -> Streams:
    # MapActor carries an arbitrary Python callable: apply it per beat
    # (bit-exact by construction, just not vectorized).
    return {actor.dst: np.asarray([actor.fn(v) for v in ins[actor.src]])}


def k_fork(actor: Fork, ins: Streams) -> Streams:
    arr = ins[actor.src]
    return {f"out{i}": arr for i in range(actor.n_outputs)}


def _cyclic_sources(schedule: List[int], n: int) -> np.ndarray:
    sched = np.asarray(schedule, dtype=np.int64)
    return sched[np.arange(n, dtype=np.int64) % len(sched)]


def k_demux(actor: ScheduleDemux, ins: Streams) -> Streams:
    arr = ins[actor.src]
    dst = _cyclic_sources(actor.schedule, len(arr))
    return {f"out{i}": arr[dst == i] for i in range(actor.n_outputs)}


def k_interleave(actor: Interleaver, ins: Streams) -> Streams:
    lanes = [ins[f"in{i}"] for i in range(actor.n_inputs)]
    n = sum(len(l) for l in lanes)
    src = _cyclic_sources(actor.schedule, n)
    first = next((l for l in lanes if len(l)), None)
    if first is None:
        return {actor.dst: np.empty(0, dtype=DTYPE)}
    out = np.empty((n,) + first.shape[1:], dtype=first.dtype)
    for i, lane in enumerate(lanes):
        mask = src == i
        _expect(actor.name, f"in{i} consumption", int(mask.sum()), len(lane))
        out[mask] = lane
    return {actor.dst: out}


# -- memory structure ----------------------------------------------------


def k_window(actor: SlidingWindowActor, ins: Streams) -> Streams:
    spec = actor.spec
    n_in = actor.images * actor.h * actor.w * actor.group
    arr = np.asarray(ins["in"], dtype=DTYPE)
    _expect(actor.name, "pixel stream", len(arr), n_in)
    # Raster-ordered FM-minor stream -> (images, group, h, w) planes.
    px = np.ascontiguousarray(
        arr.reshape(actor.images, actor.h, actor.w, actor.group)
        .transpose(0, 3, 1, 2)
    )
    if spec.pad:
        px = np.pad(px, ((0, 0), (0, 0), (spec.pad,) * 2, (spec.pad,) * 2))
    wins = sliding_window_view(px, (spec.kh, spec.kw), axis=(2, 3))
    wins = wins[:, :, :: spec.stride, :: spec.stride]
    if wins.shape[2] != actor.out_h or wins.shape[3] != actor.out_w:
        raise CompilationError(
            f"{actor.name!r}: window geometry mismatch "
            f"({wins.shape[2]}x{wins.shape[3]} vs "
            f"{actor.out_h}x{actor.out_w})"
        )
    # Emission order: coordinate-major, FM-minor (exactly the actor's).
    out = np.ascontiguousarray(
        wins.transpose(0, 2, 3, 1, 4, 5)
    ).reshape(-1, spec.kh, spec.kw)
    return {"out": out}


def k_block_split(actor: BlockSplitActor, ins: Streams) -> Streams:
    plan = actor.plan
    group = actor.group
    arr = np.asarray(ins["in"], dtype=DTYPE)
    _expect(
        actor.name, "pixel stream", len(arr),
        actor.images * actor.beats_in_per_image,
    )
    # Raster-ordered FM-minor stream -> (images, group, h, w) planes.
    px = np.ascontiguousarray(
        arr.reshape(actor.images, plan.h, plan.w, group).transpose(0, 3, 1, 2)
    )
    # Pad enough to cover the layer padding plus the bottom/right overhang
    # extent of the uniform tile grid (zero-filled, like the actor).
    pad = plan.window.pad
    s = plan.window.stride
    ext_h = (plan.gh - 1) * plan.th * s + plan.ih
    ext_w = (plan.gw - 1) * plan.tw * s + plan.iw
    px = np.pad(px, (
        (0, 0), (0, 0),
        (pad, max(0, ext_h - plan.h - pad)),
        (pad, max(0, ext_w - plan.w - pad)),
    ))
    # Gather each tile's ih x iw block: rows (gh, 1, ih, 1) x cols
    # (1, gw, 1, iw) broadcast into (images, group, gh, gw, ih, iw).
    rows = (np.arange(plan.gh) * plan.th * s)[:, None] + np.arange(plan.ih)
    cols = (np.arange(plan.gw) * plan.tw * s)[:, None] + np.arange(plan.iw)
    tiles = px[:, :, rows[:, None, :, None], cols[None, :, None, :]]
    if actor.shave_h or actor.shave_w:
        # Test hook parity with the actor: zero the shaved halo pixels.
        tiles = tiles.copy()
        if actor.shave_h:
            tiles[..., plan.ih - actor.shave_h :, :] = 0
        if actor.shave_w:
            tiles[..., plan.iw - actor.shave_w :] = 0
    # Emission order: tile-major, raster within the tile, FM-minor.
    out = np.ascontiguousarray(tiles.transpose(0, 2, 3, 4, 5, 1)).reshape(-1)
    return {"out": out}


def k_block_merge(actor: BlockMergeActor, ins: Streams) -> Streams:
    plan = actor.plan
    group = actor.group
    arr = np.asarray(ins["in"], dtype=DTYPE)
    _expect(
        actor.name, "tile stream", len(arr),
        actor.images * actor.beats_in_per_image,
    )
    tiles = arr.reshape(actor.images, plan.gh, plan.gw, plan.th, plan.tw, group)
    # (images, gh, th, gw, tw, group) -> full uniform grid, crop overhang,
    # emit raster FM-minor.
    full = np.ascontiguousarray(tiles.transpose(0, 1, 3, 2, 4, 5)).reshape(
        actor.images, plan.gh * plan.th, plan.gw * plan.tw, group
    )
    return {"out": np.ascontiguousarray(full[:, : plan.oh, : plan.ow]).reshape(-1)}


# -- computation cores ---------------------------------------------------


def _tree_reduce_leading(arr: np.ndarray) -> np.ndarray:
    """:func:`~repro.hls.tree_adder.tree_reduce` over the *leading* axis.

    Same association tree — pad to a power of two with zeros, then pair
    adjacent elements level by level (``t_i = a_{2i} + a_{2i+1}``) — so
    every output bit matches the trailing-axis reduction of the
    transposed array. With the reduced axis leading, each level's views
    carry a large contiguous inner block and the adds run at memory
    bandwidth instead of as stride-2 element loops.
    """
    n = arr.shape[0]
    if n & (n - 1):
        m = 1 << n.bit_length()
        padded = np.zeros((m,) + arr.shape[1:], dtype=arr.dtype)
        padded[:n] = arr
        arr, n = padded, m
    while n > 1:
        arr = arr[0::2] + arr[1::2]
        n >>= 1
    return arr[0]


def k_conv(actor: ConvCoreActor, ins: Streams) -> Streams:
    n_lanes = actor.images * actor.n_coords
    groups = actor.in_groups
    kk = actor.kh * actor.kw
    per_port = []
    for p in range(actor.in_ports):
        arr = np.asarray(ins[f"in{p}"], dtype=DTYPE)
        _expect(actor.name, f"in{p}", len(arr), n_lanes * groups)
        per_port.append(arr.reshape(n_lanes, groups, kk))
    # Per coordinate and group: the raveled windows of every port,
    # concatenated in port order — the actor's `wins[g, 0]` row.
    if actor.in_ports == 1:
        wins = per_port[0]
    else:
        wins = np.concatenate(per_port, axis=-1)
    w_all = actor._w_all  # (G, OUT_FM, P*kh*kw)
    w_t = np.ascontiguousarray(w_all.transpose(2, 0, 1))  # (K, G, OUT_FM)
    wins_t = np.ascontiguousarray(wins.transpose(2, 0, 1))  # (K, N, G)
    bias = actor.bias
    kk_all = w_all.shape[2]
    m = 1 << max(0, kk_all - 1).bit_length()  # tree width (power of two)
    out = np.empty((n_lanes, actor.out_fm), dtype=DTYPE)
    # Block coordinates so one product slab stays cache-resident; the
    # chunking is bit-neutral (per-coordinate ops are independent).
    per_coord = m * groups * actor.out_fm * DTYPE(0).nbytes
    chunk = min(n_lanes, max(1, _CONV_BLOCK_BYTES // max(1, per_coord)))
    # One scratch slab per call; rows kk_all..m are the tree's zero pad
    # and are never written again.
    prod = np.zeros((m, chunk, groups, actor.out_fm), dtype=DTYPE)
    for s in range(0, n_lanes, chunk):
        c = min(chunk, n_lanes - s)
        p = prod[:, :c]
        # Same product tree + accumulation chain as the actor, with the
        # coordinate axis batched and the tree axis leading.
        np.multiply(
            wins_t[:, s : s + c, :, None], w_t[:, None, :, :], out=p[:kk_all]
        )
        trees = _tree_reduce_leading(p)  # (c, G, OUT_FM)
        acc = bias[None, :] + trees[:, 0]
        for g in range(1, groups):
            acc = acc + trees[:, g]
        out[s : s + c] = acc
    out = actor._act(out)
    if actor.out_ports == 1:
        return {"out0": out.reshape(-1)}
    return {
        f"out{p}": np.ascontiguousarray(out[:, p :: actor.out_ports]).reshape(-1)
        for p in range(actor.out_ports)
    }


def k_pool(actor: PoolCoreActor, ins: Streams) -> Streams:
    arr = np.asarray(ins["in"], dtype=DTYPE)
    _expect(actor.name, "window stream", len(arr), actor.count)
    if actor.mode == "max":
        out = arr.max(axis=(1, 2))
    else:
        out = arr.mean(axis=(1, 2), dtype=np.float64).astype(DTYPE)
    return {"out": out}


def _fc_partial_numpy(x: np.ndarray, weight: np.ndarray, lanes: int) -> np.ndarray:
    """The interleaved-lane MAC recurrence, batched over images.

    The actor feeds input ``i`` into accumulator lane ``i % lanes``:
    ``partial[:, lane] = (partial[:, lane] + weight[:, i] * x).astype(f32)``.
    Lane ``l`` therefore performs a *sequential* float32 addition chain
    over the terms ``w[:, l], w[:, l+L], w[:, l+2L], ...`` — an order
    this kernel must not reassociate. It does, however, batch *across*
    lanes (and images): all lanes take their ``j``-th chain step in one
    vectorized add, which is legal because lanes never interact. The
    per-step float32 rounding of each lane's chain is preserved bit for
    bit; only the ``in_fm``-long Python loop collapses to
    ``in_fm / lanes`` array ops.
    """
    batch, in_fm = x.shape
    out_fm = weight.shape[0]
    steps, rem = divmod(in_fm, lanes)
    if steps == 0:
        partial = np.zeros((batch, out_fm, lanes), dtype=DTYPE)
        np.add(
            partial[:, :, :rem],
            weight[None, :, :rem] * x[:, None, :rem],
            out=partial[:, :, :rem],
        )
        return partial
    # terms[b, o, j, l] = w[o, j*L + l] * x[b, j*L + l], float32-rounded
    # exactly like the actor's per-input product.
    w_main = weight[:, : steps * lanes].reshape(out_fm, steps, lanes)
    x_main = x[:, : steps * lanes].reshape(batch, steps, lanes)
    terms = w_main[None] * x_main[:, None]  # (B, O, steps, L)
    # Chain step 0 starts from the actor's zero-initialized accumulator
    # (0 + t, which canonicalizes a -0.0 term like the actor does).
    partial = terms[:, :, 0] + DTYPE(0.0)
    for j in range(1, steps):
        np.add(partial, terms[:, :, j], out=partial)
    if rem:
        tail = weight[None, :, steps * lanes :] * x[:, None, steps * lanes :]
        np.add(partial[:, :, :rem], tail, out=partial[:, :, :rem])
    return partial


def _fc_partial_jit_impl(x, weight, lanes):  # pragma: no cover - numba only
    batch, in_fm = x.shape
    out_fm = weight.shape[0]
    partial = np.zeros((batch, out_fm, lanes), dtype=np.float32)
    for b in range(batch):
        for i in range(in_fm):
            lane = i % lanes
            xv = x[b, i]
            for o in range(out_fm):
                partial[b, o, lane] = partial[b, o, lane] + weight[o, i] * xv
    return partial


_fc_partial_jit = maybe_njit(_fc_partial_jit_impl)


def fc_partial_sums(x: np.ndarray, weight: np.ndarray, lanes: int) -> np.ndarray:
    """Dispatch the FC lane recurrence to the active backend."""
    if HAVE_NUMBA:  # pragma: no cover - exercised on the numba CI leg
        return _fc_partial_jit(
            np.ascontiguousarray(x), np.ascontiguousarray(weight), lanes
        )
    return _fc_partial_numpy(x, weight, lanes)


def k_fc(actor: FCCoreActor, ins: Streams) -> Streams:
    arr = np.asarray(ins["in"], dtype=DTYPE)
    _expect(actor.name, "in", len(arr), actor.images * actor.in_fm)
    x = arr.reshape(actor.images, actor.in_fm)
    partial = fc_partial_sums(x, actor.weight, actor.acc_lanes)
    out = (tree_reduce(partial) + actor.bias).astype(DTYPE)
    out = actor._act(out)
    return {"out": out.reshape(-1)}


def k_norm(actor: NormalizationActor, ins: Streams) -> Streams:
    arr = np.asarray(ins["in"], dtype=DTYPE)
    _expect(actor.name, "in", len(arr), actor.images * actor.n_classes)
    logits = arr.reshape(actor.images, actor.n_classes)
    # Same stable-softmax association order as the actor (per row).
    shifted = logits - np.max(logits, axis=1, keepdims=True)
    exps = np.exp(shifted).astype(DTYPE)
    probs = (exps / exps.sum(axis=1, dtype=DTYPE, keepdims=True)).astype(DTYPE)
    return {"out": probs.reshape(-1)}


#: Exact-type kernel dispatch. Subclasses deliberately do NOT inherit a
#: kernel: an overridden behavior would silently diverge from the fused
#: implementation, so unknown (sub)types refuse to compile instead.
KERNELS: Dict[type, Callable] = {
    ArraySource: k_source,
    ListSink: k_sink,
    FifoStage: k_fifo,
    LinkTxActor: k_link,
    LinkRxActor: k_link,
    MapActor: k_map,
    Fork: k_fork,
    ScheduleDemux: k_demux,
    Interleaver: k_interleave,
    SlidingWindowActor: k_window,
    BlockSplitActor: k_block_split,
    BlockMergeActor: k_block_merge,
    ConvCoreActor: k_conv,
    PoolCoreActor: k_pool,
    FCCoreActor: k_fc,
    NormalizationActor: k_norm,
}


def run_kernels(actors, in_ports_of, out_ports_of, order) -> Streams:
    """Execute every actor's kernel in topological order.

    Returns the full channel-name -> stream mapping (the sink's input
    stream included, so the engine can synthesize timestamps).
    """
    by_name = {a.name: a for a in actors}
    streams: Streams = {}
    for name in order:
        actor = by_name[name]
        kernel = KERNELS.get(type(actor))
        if kernel is None:
            raise CompilationError(
                f"actor {name!r} of type {type(actor).__name__} has no "
                f"compiled kernel"
            )
        ins = {
            port: streams[cname] for port, cname in in_ports_of[name].items()
        }
        outs = kernel(actor, ins)
        for port, arr in outs.items():
            cname = out_ports_of[name].get(port)
            if cname is None:
                raise CompilationError(
                    f"{name!r}: kernel produced unbound port {port!r}"
                )
            streams[cname] = arr
    return streams
