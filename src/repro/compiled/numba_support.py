"""Optional numba specialization for the compiled engine's hot kernels.

The compiled engine is pure numpy by default; when numba is importable
(and not disabled via ``REPRO_NO_NUMBA=1``) the few kernels that keep a
Python-level loop — the FC interleaved-accumulator recurrence — are
``@njit``-specialized. The jitted variants spell out the exact same
float32 operation sequence (no fastmath, no reassociation), so the
bit-exactness contract is independent of whether numba is present.
"""

from __future__ import annotations

import os
from typing import Optional

try:  # pragma: no cover - exercised only where numba is installed
    if os.environ.get("REPRO_NO_NUMBA"):
        raise ImportError("numba disabled via REPRO_NO_NUMBA")
    import numba as _numba

    HAVE_NUMBA = True
except ImportError:
    _numba = None
    HAVE_NUMBA = False


def numba_version() -> Optional[str]:
    """Installed numba version string, or None on the pure-numpy path."""
    return _numba.__version__ if HAVE_NUMBA else None


def maybe_njit(fn):
    """``numba.njit`` when available, identity otherwise.

    ``fastmath`` stays off: the jitted code must round exactly like the
    straight-line numpy formulation it replaces.
    """
    if not HAVE_NUMBA:
        return fn
    return _numba.njit(cache=False, fastmath=False)(fn)  # pragma: no cover


def backend_name() -> str:
    """Reported in scheduler_stats: which specialization path is active."""
    return "numba" if HAVE_NUMBA else "numpy"
