"""Compiled-plan cache: skip re-lowering for repeatedly built designs.

Lowering a design graph for the compiled engine costs two analyses per
:class:`~repro.compiled.engine.CompiledEngine` construction: the static
verifier pass (:func:`repro.analysis.analyze_design`) and the
steady-state schedule extraction
(:func:`repro.analysis.steady_state.extract_schedule`). Both are pure
functions of the design (plus the batch geometry), yet serving workloads
build the *same* design once per request batch — replica workers,
repeated loadtests, warm restarts. This module memoizes the lowering:

* the **verification verdict** is cached per design digest (the design
  alone decides it);
* the **plan** — schedule plus port routing tables — is cached per
  ``(design digest, stream geometry, graph structure)`` key, because the
  solved fires/beat counts depend on the batch size and the elaborated
  actor set (``normalize=True`` adds an actor; ``loop_overhead`` shifts
  the timing frame).

Entries are immutable-by-convention (:class:`SteadySchedule` is frozen;
the port maps are only ever read by the engine), so one cached plan is
shared safely across any number of engine constructions in a process.
Each process (e.g. every serving replica worker) holds its own cache.
"""

from __future__ import annotations

import hashlib
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis.steady_state import SteadySchedule
from repro.core.network_design import NetworkDesign

#: Default number of (design, geometry) plans kept per process.
DEFAULT_MAXSIZE = 32


def design_digest(design: NetworkDesign) -> str:
    """Stable content digest of a design (sha256 over its JSON form).

    Two designs digest identically iff their serialized descriptions
    (name, input shape, every layer spec field) are identical — the same
    round-trip form ``repro.core.serialize`` persists.
    """
    from repro.core.serialize import design_to_json

    h = hashlib.sha256(design_to_json(design, indent=0).encode())
    return f"sha256:{h.hexdigest()}"


def _structure_crc(actors, channels) -> int:
    """CRC over the elaborated graph's actor/channel name sequences.

    Guards the plan key against graph-shape differences the design digest
    cannot see (``normalize=True`` appends an actor, a literal memory
    system elaborates filter chains): same names in the same order means
    the same routing tables and the same rate solution.
    """
    crc = 0
    for a in actors:
        crc = zlib.crc32(a.name.encode(), crc)
        crc = zlib.crc32(b"\x00", crc)
    crc = zlib.crc32(b"\x01", crc)
    for ch in channels:
        crc = zlib.crc32(ch.name.encode(), crc)
        crc = zlib.crc32(b"\x00", crc)
    return crc


@dataclass(frozen=True)
class CompiledPlan:
    """One lowered design: the schedule plus the port routing tables."""

    schedule: SteadySchedule
    in_ports: Dict[str, Dict[str, str]]
    out_ports: Dict[str, Dict[str, str]]


PlanKey = Tuple[str, int, int, int, int, int]


def plan_key(
    digest: str,
    n_values: int,
    beat: int,
    overhead: int,
    structure: int,
    link_beat: int = 0,
) -> PlanKey:
    """The full cache key of one lowered plan.

    ``n_values``/``beat`` pin the DMA stream geometry (batch size and
    source rate), ``overhead`` the conv-core calibration constant, and
    ``structure`` the elaborated graph's name CRC. ``link_beat`` pins the
    board-to-board beat interval of a sharded build (0 when unsharded):
    two shardings of the same design at different link bandwidths share
    every actor and channel name, so the structure CRC alone cannot tell
    their timing frames apart.
    """
    return (digest, n_values, beat, overhead, structure, link_beat)


class PlanCache:
    """A bounded LRU over compiled plans + verification verdicts.

    ``hits``/``misses`` count plan lookups; ``analysis_hits``/
    ``analysis_misses`` count verdict lookups (a plan hit implies the
    verdict was never consulted, so the two pairs move independently).
    """

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._plans: "OrderedDict[PlanKey, CompiledPlan]" = OrderedDict()
        #: digest -> tuple of error-rule ids (empty tuple == verified ok).
        self._verdicts: "OrderedDict[str, Tuple[str, ...]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.analysis_hits = 0
        self.analysis_misses = 0

    # -- plans ------------------------------------------------------------

    def get_plan(self, key: PlanKey) -> Optional[CompiledPlan]:
        plan = self._plans.get(key)
        if plan is None:
            self.misses += 1
            return None
        self._plans.move_to_end(key)
        self.hits += 1
        return plan

    def put_plan(self, key: PlanKey, plan: CompiledPlan) -> None:
        self._plans[key] = plan
        self._plans.move_to_end(key)
        while len(self._plans) > self.maxsize:
            self._plans.popitem(last=False)

    # -- verification verdicts -------------------------------------------

    def get_verdict(self, digest: str) -> Optional[Tuple[str, ...]]:
        verdict = self._verdicts.get(digest)
        if verdict is None:
            self.analysis_misses += 1
            return None
        self._verdicts.move_to_end(digest)
        self.analysis_hits += 1
        return verdict

    def put_verdict(self, digest: str, error_rules: Tuple[str, ...]) -> None:
        self._verdicts[digest] = tuple(error_rules)
        self._verdicts.move_to_end(digest)
        while len(self._verdicts) > self.maxsize:
            self._verdicts.popitem(last=False)

    # -- introspection ----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """JSON-friendly counters (what serving replicas report back)."""
        return {
            "plans": len(self._plans),
            "hits": self.hits,
            "misses": self.misses,
            "analysis_hits": self.analysis_hits,
            "analysis_misses": self.analysis_misses,
        }

    def clear(self) -> None:
        self._plans.clear()
        self._verdicts.clear()
        self.hits = self.misses = 0
        self.analysis_hits = self.analysis_misses = 0


#: The per-process cache the compiled engine uses.
GLOBAL_PLAN_CACHE = PlanCache()


def plan_cache_stats() -> Dict[str, int]:
    """Counters of the process-wide plan cache."""
    return GLOBAL_PLAN_CACHE.stats()


def clear_plan_cache() -> None:
    """Drop every cached plan and verdict (tests, memory pressure)."""
    GLOBAL_PLAN_CACHE.clear()
