"""The paper's contribution: scalable dataflow CNN designs on FPGA.

Layer specs and network designs (Section IV), the Algorithm-1 compute
cores, the elaboration into a simulated dataflow graph, and the
performance/resource models behind every table and figure.
"""

from repro.core.block_transform import (
    blocking_summary,
    design_is_blocked,
    with_blocking,
    without_blocking,
)
from repro.core.builder import (
    BuiltNetwork,
    DesignWeights,
    build_network,
    extract_weights,
    interleave_images,
    random_weights,
)
from repro.core.compute_core import ConvCoreActor
from repro.core.fc_core import FCCoreActor
from repro.core.layer_spec import ConvLayerSpec, FCLayerSpec, LayerSpec, PoolLayerSpec
from repro.core.models import (
    CIFAR_HIDDEN,
    cifar10_design,
    cifar10_model,
    tiny_design,
    tiny_model,
    usps_design,
    usps_model,
)
from repro.core.multi_fpga import (
    LinkModel,
    MultiFpgaPlan,
    Segment,
    load_multi_fpga_plan,
    plan_split,
    segment_egress_words,
)
from repro.core.norm_core import (
    NormalizationActor,
    normalization_depth,
    normalization_resources,
)
from repro.core.network_design import (
    LayerPlacement,
    NetworkDesign,
    PortAdapter,
    classify_adapter,
)
from repro.core.perf_model import (
    LayerPerf,
    NetworkPerf,
    batch_sweep,
    conv_core_depth,
    fc_core_depth,
    layer_perf,
    network_perf,
)
from repro.core.pool_core import PoolCoreActor
from repro.core.resource_model import (
    BASE_DESIGN,
    DesignResources,
    design_resources,
    layer_resources,
)
from repro.core.flow import FLOW_PRESETS, FlowResult, run_flow
from repro.core.hls_report import CoreReport, core_reports, render_report
from repro.core.reference import design_reference_forward
from repro.core.runner import RunReport, run_batch, run_trained, simulated_batch_sweep
from repro.core.shard import ShardReport, run_shard
from repro.core.serialize import (
    design_from_dict,
    design_from_json,
    design_to_dict,
    design_to_json,
    load_weights,
    save_weights,
    spec_from_dict,
    spec_to_dict,
)
from repro.core.verify import LayerCheck, VerifyReport, verify_layerwise
from repro.core.zoo import (
    ALEXNET_TILES,
    VGG16_TILES,
    alexnet_blocked_design,
    alexnet_design,
    alexnet_pilot_design,
    vgg16_blocked_design,
    vgg16_design,
    vgg16_pilot_design,
)
from repro.core.scaling import (
    divisors,
    fully_parallel_design,
    port_options,
    single_port_design,
    with_layer_ports,
)

__all__ = [
    "ALEXNET_TILES",
    "BASE_DESIGN",
    "BuiltNetwork",
    "CIFAR_HIDDEN",
    "ConvCoreActor",
    "ConvLayerSpec",
    "DesignResources",
    "DesignWeights",
    "FCCoreActor",
    "FCLayerSpec",
    "LayerPerf",
    "LayerPlacement",
    "LayerSpec",
    "LinkModel",
    "MultiFpgaPlan",
    "NetworkDesign",
    "NetworkPerf",
    "NormalizationActor",
    "normalization_depth",
    "normalization_resources",
    "PoolCoreActor",
    "PoolLayerSpec",
    "PortAdapter",
    "RunReport",
    "Segment",
    "VGG16_TILES",
    "CoreReport",
    "FLOW_PRESETS",
    "FlowResult",
    "LayerCheck",
    "run_flow",
    "VerifyReport",
    "alexnet_blocked_design",
    "alexnet_design",
    "alexnet_pilot_design",
    "batch_sweep",
    "blocking_summary",
    "build_network",
    "vgg16_blocked_design",
    "vgg16_design",
    "vgg16_pilot_design",
    "cifar10_design",
    "design_is_blocked",
    "core_reports",
    "design_from_dict",
    "design_from_json",
    "design_reference_forward",
    "design_to_dict",
    "design_to_json",
    "load_weights",
    "render_report",
    "save_weights",
    "spec_from_dict",
    "spec_to_dict",
    "verify_layerwise",
    "cifar10_model",
    "classify_adapter",
    "conv_core_depth",
    "design_resources",
    "divisors",
    "extract_weights",
    "fc_core_depth",
    "fully_parallel_design",
    "interleave_images",
    "layer_perf",
    "layer_resources",
    "network_perf",
    "plan_split",
    "load_multi_fpga_plan",
    "segment_egress_words",
    "ShardReport",
    "run_shard",
    "port_options",
    "random_weights",
    "run_batch",
    "run_trained",
    "simulated_batch_sweep",
    "single_port_design",
    "tiny_design",
    "tiny_model",
    "usps_design",
    "usps_model",
    "with_blocking",
    "with_layer_ports",
    "without_blocking",
]
