"""Design-level block-convolution transform (arXiv:2105.08937).

:func:`with_blocking` rewrites selected conv layers of a validated
:class:`~repro.core.network_design.NetworkDesign` into their blocked form
by attaching a :class:`~repro.sst.block.BlockSpec` to each spec. The
builder then elaborates those layers as tile-split -> per-block windowed
conv -> tile-merge, and the analyzers size/verify them on the tile
geometry. The transform is *exact* — output streams are bit-identical to
the unblocked design — and rate-balanced: all SDF rates stay static, so
``repro check`` remains clean.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.core.layer_spec import ConvLayerSpec
from repro.core.network_design import NetworkDesign
from repro.errors import ConfigurationError
from repro.sst.block import BlockSpec
from repro.sst.sizing import layer_buffer_budget

TileLike = Union[int, Tuple[int, int], BlockSpec]


def _coerce(name: str, tile: TileLike) -> BlockSpec:
    if isinstance(tile, BlockSpec):
        return tile
    if isinstance(tile, int):
        return BlockSpec(tile)
    if (
        isinstance(tile, (tuple, list))
        and len(tile) == 2
        and all(isinstance(v, int) for v in tile)
    ):
        return BlockSpec(tile[0], tile[1])
    raise ConfigurationError(
        f"layer {name!r}: tile must be an int, (th, tw) pair or BlockSpec, "
        f"got {tile!r}"
    )


def with_blocking(
    design: NetworkDesign, tiles: Union[TileLike, Mapping[str, Optional[TileLike]]]
) -> NetworkDesign:
    """A copy of ``design`` with block convolution applied.

    ``tiles`` is either a single tile size applied to every conv layer,
    or a mapping from conv layer names to tile sizes (``None`` removes
    blocking from that layer). Naming a layer that does not exist, or one
    that is not convolutional, is an error — a silently ignored tile
    would defeat the sizing the caller asked for.
    """
    by_name = {s.name: s for s in design.specs}
    if isinstance(tiles, Mapping):
        mapping: Dict[str, Optional[TileLike]] = dict(tiles)
        for name in mapping:
            if name not in by_name:
                raise ConfigurationError(
                    f"with_blocking: no layer named {name!r} in design "
                    f"{design.name!r}"
                )
            if not isinstance(by_name[name], ConvLayerSpec):
                raise ConfigurationError(
                    f"with_blocking: layer {name!r} is not convolutional "
                    f"({by_name[name].kind})"
                )
    else:
        mapping = {
            s.name: tiles for s in design.specs if isinstance(s, ConvLayerSpec)
        }

    new_specs: List = []
    for spec in design.specs:
        if spec.name in mapping:
            tile = mapping[spec.name]
            block = None if tile is None else _coerce(spec.name, tile)
            spec = replace(spec, block=block)
        new_specs.append(spec)
    return NetworkDesign(design.name, design.input_shape, new_specs)


def without_blocking(design: NetworkDesign) -> NetworkDesign:
    """The unblocked counterpart: strip every conv layer's block spec."""
    new_specs = [
        replace(s, block=None)
        if isinstance(s, ConvLayerSpec) and s.block is not None
        else s
        for s in design.specs
    ]
    return NetworkDesign(design.name, design.input_shape, new_specs)


def design_is_blocked(design: NetworkDesign) -> bool:
    """Whether any conv layer of ``design`` uses block convolution."""
    return any(
        isinstance(s, ConvLayerSpec) and s.block is not None for s in design.specs
    )


def blocking_summary(design: NetworkDesign) -> List[Dict[str, object]]:
    """Per-blocked-layer geometry and buffer sizing (docs/CLI helper).

    For every blocked conv layer: the resolved tile grid, halo widths,
    the split-stream amplification (halo overhead entering Eq. 4), and
    the full-buffering FIFO words before/after blocking.
    """
    rows: List[Dict[str, object]] = []
    for p in design.placements:
        spec = p.spec
        if not isinstance(spec, ConvLayerSpec) or spec.block is None:
            continue
        _, h, w = p.in_shape
        plan = spec.block_plan(h, w)
        assert plan is not None
        unblocked = layer_buffer_budget(
            spec.window, w, spec.in_fm, spec.in_ports
        ).fifo_words
        blocked = layer_buffer_budget(
            plan.tile_window, plan.iw, spec.in_fm, spec.in_ports
        ).fifo_words
        rows.append({
            "layer": spec.name,
            "tile": [plan.th, plan.tw],
            "grid": [plan.gh, plan.gw],
            "block_in": [plan.ih, plan.iw],
            "halo": [plan.halo_h, plan.halo_w],
            "coords": plan.coords,
            "overhang": [plan.overhang_h, plan.overhang_w],
            "in_words_per_fm": plan.in_words,
            "halo_overhead": round(plan.in_words / (h * w) - 1.0, 4),
            "unblocked_fifo_words": unblocked,
            "blocked_fifo_words": blocked,
        })
    return rows
