"""Compile a :class:`NetworkDesign` + weights into a runnable dataflow graph.

This is the elaboration step the paper performs with Vivado IPI: every
layer becomes its memory structure (per-port sliding-window actors) plus
its computation core, the three port cases of Section IV-A become
round-robin demux/interleaver adapters, and the whole chain is framed by a
DMA-rate source and a sink. The resulting graph runs on the cycle-accurate
simulator (timing + values) or the functional executor (values only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import DTYPE
from repro.core.compute_core import ConvCoreActor
from repro.core.fc_core import FCCoreActor
from repro.core.layer_spec import ConvLayerSpec, FCLayerSpec, PoolLayerSpec
from repro.core.network_design import NetworkDesign
from repro.core.perf_model import conv_core_depth, fc_core_depth
from repro.core.pool_core import PoolCoreActor
from repro.dataflow.actors import ArraySource, Interleaver, ListSink, ScheduleDemux
from repro.dataflow.channel import Channel
from repro.dataflow.functional import FunctionalExecutor
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.link import LinkRxActor, LinkTxActor
from repro.dataflow.simulator import SimulationResult
from repro.errors import ConfigurationError, ShapeError
from repro.fpga.dma import DmaModel, PAPER_DMA
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.linear import Linear
from repro.nn.network import Sequential
from repro.sst.block import BlockMergeActor, BlockSplitActor
from repro.sst.filter_chain import build_filter_chain
from repro.sst.line_buffer import SlidingWindowActor
from repro.sst.padding import PadInserter
from repro.sst.window import WindowSpec


#: Per-layer parameter arrays keyed by the spec's layer name.
DesignWeights = Dict[str, Dict[str, np.ndarray]]


def random_weights(design: NetworkDesign, seed: int = 0) -> DesignWeights:
    """Small random weights for every parameterized layer (tests/examples)."""
    rng = np.random.default_rng(seed)
    out: DesignWeights = {}
    for p in design.placements:
        spec = p.spec
        if isinstance(spec, ConvLayerSpec):
            out[spec.name] = {
                "weight": rng.uniform(
                    -0.5, 0.5, (spec.out_fm, spec.in_fm, spec.kh, spec.kw)
                ).astype(DTYPE),
                "bias": rng.uniform(-0.1, 0.1, spec.out_fm).astype(DTYPE),
            }
        elif isinstance(spec, FCLayerSpec):
            out[spec.name] = {
                "weight": rng.uniform(-0.5, 0.5, (spec.out_fm, spec.in_fm)).astype(
                    DTYPE
                ),
                "bias": rng.uniform(-0.1, 0.1, spec.out_fm).astype(DTYPE),
            }
    return out


def extract_weights(design: NetworkDesign, net: Sequential) -> DesignWeights:
    """Pull trained parameters out of a :class:`Sequential` model.

    Conv specs are matched to ``Conv2D`` layers and FC specs to ``Linear``
    layers in order; shapes are validated. The network's ``Flatten`` order
    (pixel-major, FM-minor) equals the stream order entering the FC core,
    so linear weights transfer without permutation.
    """
    convs = [l for l in net.layers if isinstance(l, Conv2D)]
    linears = [l for l in net.layers if isinstance(l, Linear)]
    out: DesignWeights = {}
    ci = li = 0
    for p in design.placements:
        spec = p.spec
        if isinstance(spec, ConvLayerSpec):
            if ci >= len(convs):
                raise ConfigurationError(
                    f"design has more conv specs than the model has Conv2D layers"
                )
            layer = convs[ci]
            ci += 1
            expected = (spec.out_fm, spec.in_fm, spec.kh, spec.kw)
            if layer.weight.shape != expected:
                raise ShapeError(
                    f"{spec.name!r}: model weight {layer.weight.shape} != "
                    f"spec {expected}"
                )
            out[spec.name] = {"weight": layer.weight.copy(), "bias": layer.bias.copy()}
        elif isinstance(spec, FCLayerSpec):
            if li >= len(linears):
                raise ConfigurationError(
                    f"design has more FC specs than the model has Linear layers"
                )
            layer = linears[li]
            li += 1
            expected = (spec.out_fm, spec.in_fm)
            if layer.weight.shape != expected:
                raise ShapeError(
                    f"{spec.name!r}: model weight {layer.weight.shape} != "
                    f"spec {expected}"
                )
            out[spec.name] = {"weight": layer.weight.copy(), "bias": layer.bias.copy()}
    if ci != len(convs) or li != len(linears):
        raise ConfigurationError(
            f"model has unmatched layers (conv {len(convs) - ci}, "
            f"linear {len(linears) - li} left over)"
        )
    return out


def interleave_images(batch: np.ndarray) -> np.ndarray:
    """Flatten ``(N, C, H, W)`` into the DMA stream order.

    Per image: raster scan, feature maps innermost — the layout every port
    and adapter in the design assumes.
    """
    if batch.ndim != 4:
        raise ShapeError(f"batch must be (N, C, H, W), got {batch.shape}")
    return np.ascontiguousarray(batch.transpose(0, 2, 3, 1)).ravel().astype(DTYPE)


@dataclass
class BuiltNetwork:
    """A compiled design: graph + endpoints + layout bookkeeping."""

    design: NetworkDesign
    graph: DataflowGraph
    source: ArraySource
    sink: ListSink
    images: int
    #: Set after run(): the simulation result.
    result: Optional[SimulationResult] = None

    def run(
        self,
        max_cycles: int = 50_000_000,
        stall_limit: int = 10_000,
        tracer=None,
        scheduler: str = "event",
    ) -> SimulationResult:
        """Cycle-accurate simulation of the whole batch.

        Pass a :class:`~repro.dataflow.trace.Tracer` to sample per-actor
        activity and channel occupancy during the run. ``scheduler``
        selects the simulation engine (``"event"`` or ``"lockstep"``).
        """
        sim = self.graph.build_simulator(
            stall_limit=stall_limit, tracer=tracer, scheduler=scheduler
        )
        self.result = sim.run(max_cycles=max_cycles)
        return self.result

    def run_functional(self, max_cycles: int = 50_000_000) -> SimulationResult:
        """Untimed run (unbounded FIFOs): values only, much faster."""
        self.result = FunctionalExecutor(self.graph).run(max_cycles=max_cycles)
        return self.result

    def outputs(self) -> np.ndarray:
        """Collected outputs reshaped to ``(N, K, OH, OW)`` / ``(N, K)``.

        The sink stream is image-major, coordinate-major, FM-minor.
        """
        k, oh, ow = self.design.output_shape
        vals = np.asarray(self.sink.received, dtype=DTYPE)
        expected = self.images * k * oh * ow
        if vals.size != expected:
            raise ShapeError(
                f"sink holds {vals.size} values, expected {expected}; "
                f"did the simulation run to completion?"
            )
        arr = vals.reshape(self.images, oh, ow, k).transpose(0, 3, 1, 2)
        if (oh, ow) == (1, 1):
            return arr.reshape(self.images, k)
        return arr

    def image_completion_cycles(self) -> List[int]:
        """Cycle at which each image's last output value left the design."""
        k, oh, ow = self.design.output_shape
        per_image = k * oh * ow
        ts = self.sink.timestamps
        if len(ts) != self.images * per_image:
            raise ShapeError("simulation incomplete; no timing available")
        return [ts[(i + 1) * per_image - 1] for i in range(self.images)]


def build_network(
    design: NetworkDesign,
    weights: DesignWeights,
    batch: np.ndarray,
    dma: DmaModel = PAPER_DMA,
    channel_capacity: int = 4,
    memory_system: str = "behavioral",
    loop_overhead: int = 0,
    normalize: bool = False,
    strict: bool = False,
    depth_plan=None,
    multi_plan=None,
) -> BuiltNetwork:
    """Elaborate ``design`` into a dataflow graph processing ``batch``.

    Parameters
    ----------
    design: the validated layer chain.
    weights: per-layer parameter arrays (:func:`random_weights`,
        :func:`extract_weights`, or hand-built).
    batch: ``(N, C, H, W)`` input images; ``C, H, W`` must match the design.
    dma: transfer model setting the source beat rate.
    channel_capacity: default FIFO depth for inter-actor links.
    memory_system: ``"behavioral"`` uses the fast line-buffer actor per
        port; ``"literal"`` elaborates the full SST filter chain (one
        actor per tap, full-buffering FIFO depths, padding injectors) —
        the maximum-fidelity mode, O(kernel-size) more actors.
    loop_overhead: extra stall cycles per conv-core coordinate, the
        calibration constant that reconciles the ideal pipeline with the
        paper's measured board latencies (docs/calibration.md).
    normalize: append the Eq. 3 normalization operator after the last
        layer (requires the design to end in a 1x1-spatial stage), so the
        sink collects class probabilities instead of logits.
    strict: run the static verifier (:mod:`repro.analysis`) over the
        design and the elaborated graph, raising
        :class:`~repro.errors.AnalysisError` (carrying the full report)
        if any rule finds an error — catch rate/adapter/buffering bugs
        here instead of as a mid-simulation deadlock.
    depth_plan: a certified :class:`~repro.analysis.depths.DepthPlan`
        to apply to the elaborated graph (shrinks every bounded channel
        to its certificate depth; the plan must match this elaboration's
        ``memory_system``). The plan stays attached as
        ``graph.depth_plan`` so ``strict`` runs the BUFFER.DEPTH_* rules.
    multi_plan: a :class:`~repro.core.multi_fpga.MultiFpgaPlan` from
        :func:`~repro.core.multi_fpga.plan_split`. The graph is cut at
        the planned segment boundaries: each cut becomes a
        :class:`~repro.dataflow.link.LinkTxActor` /
        :class:`~repro.dataflow.link.LinkRxActor` pair joined by a
        ``link{d}.wire`` channel whose transmitter paces at the plan's
        link beat interval — one multi-device co-simulation in a single
        simulator. A cut at a *blocked* conv layer lands between the
        cores and the merge stages (the merges relocate to the
        downstream device), so the wire carries the uniform tile grid
        the plan's ``egress_words`` prices. The plan stays attached as
        ``graph.multi_plan`` for the compiled engine's timing frame.
    """
    if loop_overhead < 0:
        raise ConfigurationError(
            f"loop_overhead must be >= 0, got {loop_overhead}"
        )
    if memory_system not in ("behavioral", "literal"):
        raise ConfigurationError(
            f"memory_system must be 'behavioral' or 'literal', "
            f"got {memory_system!r}"
        )
    if batch.ndim != 4 or tuple(batch.shape[1:]) != design.input_shape:
        raise ShapeError(
            f"batch shape {batch.shape} does not match design input "
            f"{design.input_shape}"
        )
    images = batch.shape[0]
    g = DataflowGraph(design.name, default_capacity=channel_capacity)
    g.design = design

    # Planned cut points: last layer of each non-final segment -> link index.
    cut_after: Dict[str, int] = {}
    link_beat = 1
    if multi_plan is not None:
        _check_multi_plan(design, multi_plan)
        for d, seg in enumerate(multi_plan.segments[:-1]):
            cut_after[seg.layer_names[-1]] = d
        link_beat = multi_plan.link.beat_interval()
        g.multi_plan = multi_plan

    source = g.add_actor(
        ArraySource("dma_in", interleave_images(batch), interval=dma.beat_interval(32))
    )
    # `streams` holds, per current port, (producer_actor, out_port_name).
    streams: List[Tuple[object, str]] = [(source, "out")]
    shape = design.input_shape

    for p in design.placements:
        spec = p.spec
        if isinstance(spec, FCLayerSpec):
            shape = (spec.in_fm, 1, 1)
        streams = _adapt_ports(g, spec.name, streams, spec.in_ports, spec.in_fm)
        c, h, w = shape
        if isinstance(spec, ConvLayerSpec):
            if spec.name not in weights:
                raise ConfigurationError(f"no weights for layer {spec.name!r}")
            wdict = weights[spec.name]
            oh, ow = spec.out_hw(h, w)
            plan = spec.block_plan(h, w)
            depth = conv_core_depth(spec.in_ports, spec.kh, spec.kw)
            core = g.add_actor(
                ConvCoreActor(
                    f"{spec.name}.core",
                    wdict["weight"],
                    wdict["bias"],
                    spec.in_ports,
                    spec.out_ports,
                    # Blocked layers compute the uniform tile grid, then
                    # drop overhang coordinates at the merge stage.
                    n_coords=plan.coords if plan is not None else oh * ow,
                    images=images,
                    activation=spec.activation,
                    pipeline_depth=depth,
                    # The hardware pipeline keeps depth/II coordinates in
                    # flight; the result queue must hold them or the depth
                    # gate would serialize the loop.
                    queue_depth=depth // max(spec.ii, 1) + 2,
                    coord_overhead=loop_overhead,
                )
            )
            for port, (prod, oport) in enumerate(streams):
                if plan is not None:
                    # Block convolution: stage the image off-chip, re-read
                    # it as halo-overlapped tiles, and run the (pad-free)
                    # per-tile window over block geometry — one "image"
                    # per tile from the memory structure's point of view.
                    split = g.add_actor(
                        BlockSplitActor(
                            f"{spec.name}.split{port}", plan,
                            group=spec.in_group, images=images,
                        )
                    )
                    g.connect(prod, oport, split, "in", capacity=channel_capacity)
                    win, win_out = _window_stage(
                        g, f"{spec.name}.win{port}", plan.tile_window,
                        plan.ih, plan.iw, spec.in_group,
                        images * plan.n_tiles, split, "out",
                        channel_capacity, memory_system,
                    )
                else:
                    win, win_out = _window_stage(
                        g, f"{spec.name}.win{port}", spec.window, h, w,
                        spec.in_group, images, prod, oport, channel_capacity,
                        memory_system,
                    )
                g.connect(win, win_out, core, f"in{port}", capacity=channel_capacity)
            if plan is not None and spec.name not in cut_after:
                merged: List[Tuple[object, str]] = []
                for i in range(spec.out_ports):
                    merge = g.add_actor(
                        BlockMergeActor(
                            f"{spec.name}.merge{i}", plan,
                            group=spec.out_group, images=images,
                        )
                    )
                    g.connect(core, f"out{i}", merge, "in", capacity=channel_capacity)
                    merged.append((merge, "out"))
                streams = merged
            else:
                # A blocked layer at a cut boundary keeps its raw core
                # streams: the merges relocate past the link (below), so
                # the uniform tile grid is what crosses the wire.
                streams = [(core, f"out{i}") for i in range(spec.out_ports)]
        elif isinstance(spec, PoolLayerSpec):
            oh, ow = spec.out_hw(h, w)
            new_streams: List[Tuple[object, str]] = []
            for port, (prod, oport) in enumerate(streams):
                win, win_out = _window_stage(
                    g, f"{spec.name}.win{port}", spec.window, h, w,
                    spec.in_group, images, prod, oport, channel_capacity,
                    memory_system,
                )
                core = g.add_actor(
                    PoolCoreActor(
                        f"{spec.name}.core{port}",
                        spec.mode,
                        count=oh * ow * spec.in_group * images,
                    )
                )
                g.connect(win, win_out, core, "in", capacity=channel_capacity)
                new_streams.append((core, "out"))
            streams = new_streams
        elif isinstance(spec, FCLayerSpec):
            if spec.name not in weights:
                raise ConfigurationError(f"no weights for layer {spec.name!r}")
            wdict = weights[spec.name]
            depth = fc_core_depth(spec.acc_lanes)
            core = g.add_actor(
                FCCoreActor(
                    f"{spec.name}.core",
                    wdict["weight"],
                    wdict["bias"],
                    acc_lanes=spec.acc_lanes,
                    images=images,
                    activation=spec.activation,
                    pipeline_depth=depth,
                    queue_depth=depth // max(spec.in_fm, 1) + 2,
                )
            )
            (prod, oport) = streams[0]
            g.connect(prod, oport, core, "in", capacity=channel_capacity)
            streams = [(core, "out")]
        else:
            raise ConfigurationError(f"unknown layer spec kind {spec.kind!r}")
        if spec.name in cut_after:
            streams = _insert_link(
                g, cut_after[spec.name], multi_plan, streams, p, h, w,
                images, channel_capacity, link_beat,
            )
        shape = p.out_shape

    # DMA out is a single 32-bit stream: widen to one port if needed.
    streams = _adapt_ports(g, "dma_out", streams, 1, design.output_shape[0])
    if normalize:
        k, oh, ow = design.output_shape
        if (oh, ow) != (1, 1):
            raise ConfigurationError(
                f"normalize requires a 1x1-spatial output, got {oh}x{ow}"
            )
        from repro.core.norm_core import NormalizationActor, normalization_depth

        norm = g.add_actor(
            NormalizationActor(
                "normalize", n_classes=k, images=images,
                pipeline_depth=normalization_depth(k),
            )
        )
        prod, oport = streams[0]
        g.connect(prod, oport, norm, "in", capacity=channel_capacity)
        streams = [(norm, "out")]
    sink = g.add_actor(
        ListSink("dma_out_sink", count=images * design.output_words_per_image())
    )
    prod, oport = streams[0]
    g.connect(prod, oport, sink, "in", capacity=channel_capacity)
    if depth_plan is not None:
        # Imported lazily: repro.analysis drives this builder itself.
        from repro.analysis.depths import apply_depth_plan

        apply_depth_plan(g, depth_plan)
    if strict:
        # Imported lazily: repro.analysis drives this builder itself.
        from repro.analysis import analyze_design, analyze_graph
        from repro.errors import AnalysisError

        report = analyze_design(design).merge(analyze_graph(g, design))
        if not report.ok:
            raise AnalysisError(report)
    return BuiltNetwork(design=design, graph=g, source=source, sink=sink, images=images)


def _window_stage(
    g: DataflowGraph,
    name: str,
    window: WindowSpec,
    h: int,
    w: int,
    group: int,
    images: int,
    prod,
    oport: str,
    capacity: int,
    memory_system: str,
) -> Tuple[object, str]:
    """One port's memory structure: behavioral line buffer or literal chain.

    Returns ``(actor, out_port)`` whose stream carries the window beats.
    """
    if memory_system == "behavioral":
        win = g.add_actor(
            SlidingWindowActor(name, window, h, w, group=group, images=images)
        )
        g.connect(prod, oport, win, "in", capacity=capacity)
        return win, "out"
    head, asm = build_filter_chain(g, name, window, h, w, group=group, images=images)
    if window.pad:
        padder = g.add_actor(
            PadInserter(f"{name}.padder", h, w, window.pad, group, images)
        )
        g.connect(prod, oport, padder, "in", capacity=capacity)
        g.connect(padder, "out", head, "in", capacity=capacity)
    else:
        g.connect(prod, oport, head, "in", capacity=capacity)
    return asm, "out"


def _adapt_ports(
    g: DataflowGraph,
    name: str,
    streams: List[Tuple[object, str]],
    want_ports: int,
    n_fm: int,
) -> List[Tuple[object, str]]:
    """Insert the Section IV-A adapter between ``streams`` and ``want_ports``.

    Uses the modulo-interleaved FM-to-port convention: FM ``f`` lives on
    port ``f % P`` in ascending order, both upstream and downstream, which
    makes every adapter a round-robin demux or interleaver.
    """
    have = len(streams)
    if have == want_ports:
        return streams
    if want_ports % have == 0 and want_ports > have:
        # Demux: each producer port deals its FMs out to ratio consumers.
        ratio = want_ports // have
        new: List[Optional[Tuple[object, str]]] = [None] * want_ports
        for i, (prod, oport) in enumerate(streams):
            dem = g.add_actor(ScheduleDemux(f"{name}.demux{i}", n_outputs=ratio))
            g.connect(prod, oport, dem, "in")
            for m in range(ratio):
                # Local output m feeds consumer port i + m*have.
                new[i + m * have] = (dem, f"out{m}")
        return [s for s in new if s is not None]
    if have % want_ports == 0 and have > want_ports:
        # Widen: each consumer port merges ratio producer ports round-robin.
        ratio = have // want_ports
        new = []
        for r in range(want_ports):
            inter = g.add_actor(Interleaver(f"{name}.widen{r}", n_inputs=ratio))
            for m in range(ratio):
                prod, oport = streams[r + m * want_ports]
                g.connect(prod, oport, inter, f"in{m}")
            new.append((inter, "out"))
        return new
    raise ConfigurationError(
        f"{name!r}: cannot adapt {have} ports to {want_ports} "
        f"(counts must divide; n_fm={n_fm})"
    )


def _check_multi_plan(design: NetworkDesign, multi_plan) -> None:
    """Reject a plan that does not partition this exact design."""
    if multi_plan.design_name != design.name:
        raise ConfigurationError(
            f"multi-FPGA plan is for {multi_plan.design_name!r}, "
            f"not {design.name!r}"
        )
    planned = [n for seg in multi_plan.segments for n in seg.layer_names]
    actual = [s.name for s in design.specs]
    if planned != actual:
        raise ConfigurationError(
            f"multi-FPGA plan layers {planned} do not match design "
            f"layers {actual}"
        )


def _insert_link(
    g: DataflowGraph,
    d: int,
    multi_plan,
    streams: List[Tuple[object, str]],
    placement,
    h: int,
    w: int,
    images: int,
    capacity: int,
    link_beat: int,
) -> List[Tuple[object, str]]:
    """Cut the pipeline after ``placement`` with link ``d``.

    The cut is a serial board-to-board stream: the producer ports are
    round-robin-interleaved onto one wire, shipped through a paced
    :class:`~repro.dataflow.link.LinkTxActor` /
    :class:`~repro.dataflow.link.LinkRxActor` pair, and dealt back out to
    the original port count on the far device. Round-robin serialisation
    and deal-out are exact inverses at equal per-port rates, so the far
    shard sees bit-identical per-port streams — only the timing changes.
    For a blocked conv cut the deferred merge stages are re-created here,
    downstream of the link.
    """
    spec = placement.spec
    seg = multi_plan.segments[d]
    words = seg.egress_words
    n_ports = len(streams)
    n_fm = placement.out_shape[0]
    streams = _adapt_ports(g, f"link{d}.pre", streams, 1, n_fm)
    tx = g.add_actor(LinkTxActor(f"link{d}.tx", words, beat=link_beat))
    prod, oport = streams[0]
    g.connect(prod, oport, tx, "in", capacity=capacity)
    rx = g.add_actor(LinkRxActor(f"link{d}.rx", words))
    g.connect(tx, "out", rx, "in", capacity=capacity, name=f"link{d}.wire")
    streams = _adapt_ports(g, f"link{d}.post", [(rx, "out")], n_ports, n_fm)
    if isinstance(spec, ConvLayerSpec):
        plan = spec.block_plan(h, w)
        if plan is not None:
            merged: List[Tuple[object, str]] = []
            for i, (mprod, moport) in enumerate(streams):
                merge = g.add_actor(
                    BlockMergeActor(
                        f"{spec.name}.merge{i}", plan,
                        group=spec.out_group, images=images,
                    )
                )
                g.connect(mprod, moport, merge, "in", capacity=capacity)
                merged.append((merge, "out"))
            return merged
    return streams
