"""The convolutional computation core — Algorithm 1 of the paper.

Two coupled processes mirror the HLS kernel's pipelined loop nest:

* the *compute* process reads ``IN_PORTS`` windows per cycle (one feature
  map group), multiplies them with the hard-coded weights, tree-reduces
  the products, and accumulates into the per-output-FM registers;
* the *emitter* process drains finished coordinates, interleaving the
  ``OUT_FM`` results over the ``OUT_PORTS`` output streams.

Decoupling the two is exactly what lets the core sustain Eq. 4's
``II = max(OUT_FM/OUT_PORTS, IN_FM/IN_PORTS)``: input reads of coordinate
``n+1`` overlap output writes of coordinate ``n``. Arithmetic uses the
same association order as the modeled hardware (per-group product tree,
then one accumulation add), so the simulated outputs carry the datapath's
float32 rounding.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generator, Optional

import numpy as np

from repro.config import DTYPE
from repro.dataflow.actor import Actor
from repro.dataflow.events import CHARGE_EACH, POP, PUSH, ChannelWait, Gate, WaitCycles
from repro.errors import ConfigurationError, ShapeError
from repro.hls.tree_adder import tree_reduce
from repro.nn.layers.activation import activation_fn


class ConvCoreActor(Actor):
    """Computation core of one convolutional layer.

    Ports: ``in0..in{IN_PORTS-1}`` receive ``(kh, kw)`` windows;
    ``out0..out{OUT_PORTS-1}`` emit scalar results.

    Parameters
    ----------
    name: actor name.
    weight: ``(OUT_FM, IN_FM, kh, kw)`` filters (design-time constants).
    bias: ``(OUT_FM,)`` biases.
    in_ports, out_ports: the scalability parameters.
    n_coords: output coordinates per image (``OH * OW``).
    images: number of images to process.
    activation: optional nonlinearity name applied to each output value.
    queue_depth: internal result-queue bound (backpressure realism).
    """

    def __init__(
        self,
        name: str,
        weight: np.ndarray,
        bias: np.ndarray,
        in_ports: int,
        out_ports: int,
        n_coords: int,
        images: int = 1,
        activation: Optional[str] = None,
        queue_depth: int = 2,
        pipeline_depth: int = 0,
        coord_overhead: int = 0,
    ):
        super().__init__(name)
        weight = np.asarray(weight, dtype=DTYPE)
        bias = np.asarray(bias, dtype=DTYPE)
        if weight.ndim != 4:
            raise ShapeError(f"{name!r}: weight must be 4-D, got {weight.shape}")
        self.out_fm, self.in_fm, self.kh, self.kw = weight.shape
        if bias.shape != (self.out_fm,):
            raise ShapeError(
                f"{name!r}: bias must be ({self.out_fm},), got {bias.shape}"
            )
        if self.in_fm % in_ports or self.out_fm % out_ports:
            raise ConfigurationError(
                f"{name!r}: ports must divide FM counts "
                f"({self.in_fm}/{in_ports}, {self.out_fm}/{out_ports})"
            )
        if n_coords < 1 or images < 1 or queue_depth < 1:
            raise ConfigurationError(
                f"{name!r}: n_coords, images and queue_depth must be >= 1"
            )
        self.weight = weight
        self.bias = bias
        self.in_ports = int(in_ports)
        self.out_ports = int(out_ports)
        self.n_coords = int(n_coords)
        self.images = int(images)
        self.activation = activation
        self._act = activation_fn(activation)
        self.queue_depth = int(queue_depth)
        if pipeline_depth < 0:
            raise ConfigurationError(
                f"{name!r}: pipeline_depth must be >= 0, got {pipeline_depth}"
            )
        #: Cycles between a coordinate's last window read and its first
        #: emitted value (multiplier + adder-tree + accumulate latency).
        self.pipeline_depth = int(pipeline_depth)
        if coord_overhead < 0:
            raise ConfigurationError(
                f"{name!r}: coord_overhead must be >= 0, got {coord_overhead}"
            )
        #: Extra stall cycles between coordinates, modeling imperfect HLS
        #: loop flattening (the calibration constant of docs/calibration.md).
        self.coord_overhead = int(coord_overhead)
        # Per input-port FM index lists: port p carries FMs p, p+P, p+2P...
        self._port_fms = [
            list(range(p, self.in_fm, self.in_ports)) for p in range(self.in_ports)
        ]
        self.in_groups = self.in_fm // self.in_ports
        self.out_groups = self.out_fm // self.out_ports
        # Group g of the window stream multiplies weight[:, fms_of_g, :, :];
        # pre-flattening those slices to one contiguous (G, OUT_FM, P*kh*kw)
        # stack removes a fancy-index weight gather from every compute beat
        # and lets one vectorised pass per coordinate do all G product trees.
        # The element order matches the original (P, kh, kw) broadcast exactly.
        self._w_all = np.stack(
            [
                np.ascontiguousarray(
                    weight[:, [self._port_fms[p][g] for p in range(self.in_ports)]]
                ).reshape(self.out_fm, -1)
                for g in range(self.in_groups)
            ]
        )

    def processes(self):
        self._results: deque = deque()
        # Couples the two processes through the result queue: the producer
        # notifies after every append/popleft so the event scheduler can
        # park the other side instead of letting it poll.
        self._gate = Gate()
        return [self._compute(), self._emit()]

    def _compute(self) -> Generator:
        ins = [self.input(f"in{p}") for p in range(self.in_ports)]
        in0 = ins[0] if len(ins) == 1 else None
        win_park = ChannelWait(tuple((POP, ch) for ch in ins), CHARGE_EACH)
        results = self._results
        queue_depth = self.queue_depth
        w_all = self._w_all
        in_groups = self.in_groups
        bias = self.bias
        pipeline_depth = self.pipeline_depth
        # Window beats of the current coordinate, buffered for one batched
        # product-tree pass per coordinate (middle axis broadcasts OUT_FM).
        wins = np.empty((in_groups, 1, w_all.shape[2]), DTYPE)
        for _ in range(self.images * self.n_coords):
            for g in range(in_groups):
                # One group per cycle: read IN_PORTS windows in parallel
                # (Algorithm 1's "buf <- IN_PORTS windows"). The single-port
                # case skips the genexpr — it is the common configuration
                # and this loop is the hottest actor code in the repo.
                while not (
                    in0.can_pop()
                    if in0 is not None
                    else all(ch.can_pop() for ch in ins)
                ):
                    self.blocked_reason = "conv: windows not ready"
                    for ch in ins:
                        if not ch.can_pop():
                            ch.note_empty_stall()
                    yield win_park
                # Model backpressure from the result queue: stall reads
                # when the emitter has fallen queue_depth coordinates behind.
                while len(results) >= queue_depth:
                    self.blocked_reason = "conv: result queue full"
                    yield self._gate.wait()
                self.blocked_reason = None
                if in0 is not None:
                    wins[g, 0] = in0.pop().ravel()
                else:
                    wins[g, 0] = np.concatenate([ch.pop().ravel() for ch in ins])
                yield
            # One vectorised pass does every group's (OUT_FM, P*kh*kw)
            # product tree at once, then the accumulation chain adds the
            # per-group sums in the original order — bit-identical to the
            # per-beat formulation (float32 throughout, no astype needed).
            trees = tree_reduce(w_all * wins)
            acc = bias
            for g in range(in_groups):
                acc = acc + trees[g]
            # Result leaves the datapath pipeline_depth cycles from now.
            results.append((self.now + pipeline_depth, self._act(acc)))
            self._gate.notify()
            if self.coord_overhead:
                yield from self.wait(self.coord_overhead)  # loop entry/exit bubble

    def _emit(self) -> Generator:
        outs = [self.output(f"out{p}") for p in range(self.out_ports)]
        out0 = outs[0] if len(outs) == 1 else None
        out_park = ChannelWait(tuple((PUSH, ch) for ch in outs), CHARGE_EACH)
        for _ in range(self.images * self.n_coords):
            while not self._results or self._results[0][0] > self.now:
                self.blocked_reason = "conv: waiting for a finished coordinate"
                if not self._results:
                    yield self._gate.wait()
                else:
                    yield WaitCycles(self._results[0][0] - self.now)
            acc = self._results[0][1]
            for j in range(self.out_groups):
                # Beat j carries FM j*OUT_PORTS + p on output port p. The
                # accumulator is float32 already, so the single-port path
                # pushes acc[j] without a DTYPE round trip.
                if out0 is not None:
                    while not out0.can_push():
                        self.blocked_reason = "conv: output full"
                        out0.note_full_stall()
                        yield out_park
                    self.blocked_reason = None
                    out0.push(acc[j])
                else:
                    while not all(ch.can_push() for ch in outs):
                        self.blocked_reason = "conv: output full"
                        for ch in outs:
                            if not ch.can_push():
                                ch.note_full_stall()
                        yield out_park
                    self.blocked_reason = None
                    for p, ch in enumerate(outs):
                        ch.push(DTYPE(acc[j * self.out_ports + p]))
                yield
            self._results.popleft()
            self._gate.notify()
