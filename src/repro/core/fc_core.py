"""Fully-connected computation core (Section IV-B).

The FC layer is a single-input-port/single-output-port 1x1 convolution:
each incoming value is one "input channel"; for each of them, all the
``OUT_FM`` multiply-accumulates happen in the same clock cycle. The
floating-point accumulation latency (11 cycles) is hidden by interleaved
accumulator lanes — incoming value ``i`` lands in lane ``i % acc_lanes``
of every output's partial-sum array, and the lanes are tree-combined once
per image. The simulated arithmetic follows that exact association order.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional

import numpy as np

from repro.config import DTYPE
from repro.dataflow.actor import Actor
from repro.dataflow.events import Gate, WaitCycles
from repro.errors import ConfigurationError, ShapeError
from repro.hls.tree_adder import tree_reduce
from repro.nn.layers.activation import activation_fn


class FCCoreActor(Actor):
    """Single-stream fully-connected core with interleaved accumulators.

    Ports: ``in`` (one value per cycle), ``out`` (one value per cycle,
    emitted sequentially after each image's inputs are consumed).

    Parameters
    ----------
    weight: ``(OUT_FM, IN_FM)`` matrix (row = one perceptron).
    bias: ``(OUT_FM,)``.
    acc_lanes: interleaved accumulator count (>= 1).
    images: images to process.
    activation: optional nonlinearity on the outputs.
    """

    def __init__(
        self,
        name: str,
        weight: np.ndarray,
        bias: np.ndarray,
        acc_lanes: int = 12,
        images: int = 1,
        activation: Optional[str] = None,
        queue_depth: int = 2,
        pipeline_depth: int = 0,
    ):
        super().__init__(name)
        weight = np.asarray(weight, dtype=DTYPE)
        bias = np.asarray(bias, dtype=DTYPE)
        if weight.ndim != 2:
            raise ShapeError(f"{name!r}: weight must be 2-D, got {weight.shape}")
        self.out_fm, self.in_fm = weight.shape
        if bias.shape != (self.out_fm,):
            raise ShapeError(
                f"{name!r}: bias must be ({self.out_fm},), got {bias.shape}"
            )
        if acc_lanes < 1 or images < 1 or queue_depth < 1:
            raise ConfigurationError(
                f"{name!r}: acc_lanes, images and queue_depth must be >= 1"
            )
        self.weight = weight
        self.bias = bias
        self.acc_lanes = int(acc_lanes)
        self.images = int(images)
        self.activation = activation
        self._act = activation_fn(activation)
        self.queue_depth = int(queue_depth)
        if pipeline_depth < 0:
            raise ConfigurationError(
                f"{name!r}: pipeline_depth must be >= 0, got {pipeline_depth}"
            )
        #: Cycles of the final lane-combine (tree over acc_lanes + bias).
        self.pipeline_depth = int(pipeline_depth)

    def processes(self):
        self._results: deque = deque()
        # Couples compute and emit through the result queue (see the
        # conv core): notify on every append/popleft so the event
        # scheduler can park the other process.
        self._gate = Gate()
        return [self._compute(), self._emit()]

    def _compute(self) -> Generator:
        in_ch = self.input("in")
        for _ in range(self.images):
            partial = np.zeros((self.out_fm, self.acc_lanes), dtype=DTYPE)
            for i in range(self.in_fm):
                while not in_ch.can_pop():
                    self.blocked_reason = f"fc: {in_ch.name} empty"
                    in_ch.note_empty_stall()
                    yield in_ch.pop_wait()
                while len(self._results) >= self.queue_depth:
                    self.blocked_reason = "fc: result queue full"
                    yield self._gate.wait()
                self.blocked_reason = None
                x = DTYPE(in_ch.pop())
                lane = i % self.acc_lanes
                # All OUT_FM MACs for this input value in one cycle.
                partial[:, lane] = (partial[:, lane] + self.weight[:, i] * x).astype(
                    DTYPE
                )
                yield
            out = (tree_reduce(partial) + self.bias).astype(DTYPE)
            self._results.append((self.now + self.pipeline_depth, self._act(out)))
            self._gate.notify()

    def _emit(self) -> Generator:
        out_ch = self.output("out")
        for _ in range(self.images):
            while not self._results or self._results[0][0] > self.now:
                self.blocked_reason = "fc: waiting for finished image"
                if not self._results:
                    yield self._gate.wait()
                else:
                    yield WaitCycles(self._results[0][0] - self.now)
            out = self._results.popleft()[1]
            self._gate.notify()
            for j in range(self.out_fm):
                while not out_ch.can_push():
                    self.blocked_reason = f"fc: {out_ch.name} full"
                    out_ch.note_full_stall()
                    yield out_ch.push_wait()
                self.blocked_reason = None
                out_ch.push(DTYPE(out[j]))
                yield
