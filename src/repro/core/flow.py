"""Automated design flow (the paper's final future-work item).

Section VI: "we envision the development of an automated design flow and
its integration into industry-standard frameworks." This module chains
the whole methodology into one call: offline training of the software
model on the matching synthetic dataset, weight extraction, layer-wise
verification of the elaborated dataflow design against the model, the
HLS-style synthesis report and the performance/resource summaries —
emitting the artifact set (design JSON, weights NPZ, reports) a downstream
implementation step would consume.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.core.builder import extract_weights
from repro.core.hls_report import render_report
from repro.core.models import (
    cifar10_design,
    cifar10_model,
    tiny_design,
    tiny_model,
    usps_design,
    usps_model,
)
from repro.core.network_design import NetworkDesign
from repro.core.perf_model import network_perf
from repro.core.resource_model import design_resources
from repro.core.serialize import design_to_json, save_weights
from repro.core.verify import VerifyReport, verify_layerwise
from repro.errors import ConfigurationError
from repro.nn.network import Sequential
from repro.nn.train import TrainResult, train_classifier


@dataclass
class FlowResult:
    """Everything one automated-flow run produced."""

    design: NetworkDesign
    model: Sequential
    training: TrainResult
    verification: VerifyReport
    interval: int
    fits_device: bool
    #: Paths of the emitted artifacts (empty when no output_dir given).
    artifacts: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """Flow verdict: verified design that fits the device."""
        return self.verification.passed and self.fits_device


def _usps_data(seed: int):
    from repro.datasets import generate_usps

    return generate_usps(400, seed=seed)


def _cifar_data(seed: int):
    from repro.datasets import generate_cifar10

    return generate_cifar10(400, seed=seed)


def _tiny_data(seed: int):
    from repro.datasets import generate_usps

    x, y = generate_usps(240, seed=seed)
    return x[:, :, 4:12, 4:12], y % 4


#: preset -> (design factory, model factory, dataset factory, epochs, lr)
FLOW_PRESETS = {
    "usps": (usps_design, usps_model, _usps_data, 5, 0.08),
    "cifar10": (cifar10_design, cifar10_model, _cifar_data, 6, 0.02),
    "tiny": (tiny_design, tiny_model, _tiny_data, 4, 0.05),
}


def run_flow(
    preset: str,
    seed: int = 0,
    output_dir: Optional[str] = None,
    epochs: Optional[int] = None,
    verify_images: int = 2,
    scheduler: Optional[str] = None,
) -> FlowResult:
    """Run the end-to-end flow for one preset network.

    Parameters
    ----------
    preset: ``"usps"``, ``"cifar10"`` or ``"tiny"``.
    seed: controls training data, weight init and verification inputs.
    output_dir: when given, emits ``design.json``, ``weights.npz``,
        ``hls_report.txt`` and ``verify.txt`` there.
    epochs: override the preset's training length.
    verify_images: batch size of the layer-wise verification run.
    scheduler: run the layer-wise verification cycle-timed on this
        engine (``"event"``, ``"lockstep"`` or ``"compiled"``) instead
        of the default untimed functional execution.
    """
    try:
        design_fn, model_fn, data_fn, preset_epochs, lr = FLOW_PRESETS[preset]
    except KeyError:
        raise ConfigurationError(
            f"unknown flow preset {preset!r}; available: {sorted(FLOW_PRESETS)}"
        ) from None
    if verify_images < 1:
        raise ConfigurationError(
            f"verify_images must be >= 1, got {verify_images}"
        )

    design = design_fn()
    model = model_fn(np.random.default_rng(seed))
    x, y = data_fn(seed)
    n_test = max(1, len(x) // 5)
    training = train_classifier(
        model, x[:-n_test], y[:-n_test],
        epochs=epochs or preset_epochs, lr=lr, batch_size=32,
        x_test=x[-n_test:], y_test=y[-n_test:], seed=seed,
    )

    weights = extract_weights(design, model)
    batch = x[-verify_images:].astype(np.float32)
    verification = verify_layerwise(design, weights, batch, scheduler=scheduler)
    perf = network_perf(design)
    res = design_resources(design)

    artifacts = ()
    if output_dir is not None:
        os.makedirs(output_dir, exist_ok=True)
        paths = []
        p = os.path.join(output_dir, "design.json")
        with open(p, "w") as fh:
            fh.write(design_to_json(design))
        paths.append(p)
        p = os.path.join(output_dir, "weights.npz")
        save_weights(p, weights)
        paths.append(p)
        p = os.path.join(output_dir, "hls_report.txt")
        with open(p, "w") as fh:
            fh.write(render_report(design) + "\n")
        paths.append(p)
        p = os.path.join(output_dir, "verify.txt")
        with open(p, "w") as fh:
            fh.write(verification.render() + "\n")
        paths.append(p)
        artifacts = tuple(paths)

    return FlowResult(
        design=design,
        model=model,
        training=training,
        verification=verification,
        interval=perf.interval,
        fits_device=res.fits(),
        artifacts=artifacts,
    )
