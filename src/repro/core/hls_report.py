"""Vivado-HLS-style synthesis report for a whole design.

Renders, per layer, what the HLS tool would report for the generated
cores: initiation interval (Eq. 4), datapath depth, trip count, per-image
latency, MAC-lane count and the estimated resources — plus the network
totals and the pipeline verdict. Purely derived from the analytical
models, so it is instant and usable inside DSE loops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.core.layer_spec import ConvLayerSpec, FCLayerSpec, PoolLayerSpec
from repro.core.network_design import NetworkDesign
from repro.core.perf_model import layer_perf, network_perf
from repro.core.resource_model import design_resources
from repro.errors import ConfigurationError
from repro.fpga.device import Device, XC7VX485T
from repro.report.tables import format_table


@dataclass(frozen=True)
class CoreReport:
    """One layer's synthesis-style figures."""

    layer: str
    kind: str
    ii: int
    depth: int
    trip_count: int
    latency: int
    mac_lanes: int
    ff: int
    lut: int
    bram: float
    dsp: int


def core_reports(design: NetworkDesign) -> List[CoreReport]:
    """Per-layer report rows for ``design``."""
    res = design_resources(design, include_base=False)
    out: List[CoreReport] = []
    for placement in design.placements:
        spec = placement.spec
        perf = layer_perf(placement)
        if isinstance(spec, ConvLayerSpec):
            _, oh, ow = placement.out_shape
            trips = oh * ow
            lanes = math.ceil(
                spec.out_fm * spec.in_fm * spec.kh * spec.kw / spec.ii
            )
        elif isinstance(spec, PoolLayerSpec):
            trips = perf.out_beats
            lanes = 0
        elif isinstance(spec, FCLayerSpec):
            trips = spec.in_fm
            lanes = spec.out_fm
        else:
            raise ConfigurationError(f"unknown spec kind {spec.kind!r}")
        r = res.per_layer[spec.name]
        out.append(
            CoreReport(
                layer=spec.name,
                kind=spec.kind,
                ii=spec.ii if not isinstance(spec, PoolLayerSpec) else 1,
                depth=perf.depth_cycles,
                trip_count=trips,
                latency=perf.core_cycles + perf.depth_cycles,
                mac_lanes=lanes,
                ff=int(r.ff),
                lut=int(r.lut),
                bram=round(r.bram, 1),
                dsp=int(r.dsp),
            )
        )
    return out


def render_report(design: NetworkDesign, device: Device = XC7VX485T) -> str:
    """The full multi-section synthesis report as text."""
    rows = [
        [c.layer, c.kind, c.ii, c.depth, c.trip_count, c.latency,
         c.mac_lanes, c.ff, c.lut, c.bram, c.dsp]
        for c in core_reports(design)
    ]
    perf = network_perf(design)
    res = design_resources(design)
    util = res.utilization(device)
    total = res.total
    sections = [
        f"==== HLS report: {design.name} ====",
        format_table(
            ["layer", "kind", "II", "depth", "trips", "latency/img",
             "MAC lanes", "FF", "LUT", "BRAM", "DSP"],
            rows,
            title="per-core synthesis estimates",
        ),
        format_table(
            ["metric", "value"],
            [
                ["steady-state interval (cycles/image)", perf.interval],
                ["fill latency (cycles)", perf.fill_latency],
                ["bottleneck stage", perf.bottleneck],
                ["total FF", int(total.ff)],
                ["total LUT", int(total.lut)],
                ["total BRAM36", round(total.bram, 1)],
                ["total DSP", int(total.dsp)],
                [f"fits {device.name}", res.fits(device)],
            ],
            title="network summary (incl. base design)",
        ),
        format_table(
            ["resource", "utilization %"],
            [[k.upper(), v * 100] for k, v in util.items()],
            title=f"device utilization ({device.name})",
        ),
    ]
    return "\n\n".join(sections)
