"""Parametric layer specifications (the paper's per-module parameters).

A spec captures everything needed to instantiate a layer's memory
structure and computation core: feature-map counts, window geometry,
``IN_PORTS``/``OUT_PORTS`` (the scalability knob of Section IV-A) and the
activation. Specs are pure descriptions — weights are attached by the
builder, costs by the resource/performance models.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.errors import ConfigurationError, ShapeError
from repro.hls.pipeline import initiation_interval
from repro.sst.block import BlockPlan, BlockSpec, plan_blocks
from repro.sst.window import WindowSpec


@dataclass(frozen=True, kw_only=True)
class LayerSpec:
    """Common fields of every layer spec."""

    name: str
    in_fm: int
    out_fm: int
    in_ports: int = 1
    out_ports: int = 1
    activation: Optional[str] = None

    #: Tag used by the builder/resource model to dispatch ("conv"/"pool"/"fc").
    kind = "abstract"

    def __post_init__(self) -> None:
        if self.in_fm < 1 or self.out_fm < 1:
            raise ConfigurationError(
                f"{self.name!r}: feature map counts must be >= 1 "
                f"(got in={self.in_fm}, out={self.out_fm})"
            )
        if self.in_ports < 1 or self.out_ports < 1:
            raise ConfigurationError(
                f"{self.name!r}: port counts must be >= 1 "
                f"(got in={self.in_ports}, out={self.out_ports})"
            )
        if self.in_fm % self.in_ports:
            raise ConfigurationError(
                f"{self.name!r}: IN_FM {self.in_fm} not divisible by "
                f"IN_PORTS {self.in_ports}"
            )
        if self.out_fm % self.out_ports:
            raise ConfigurationError(
                f"{self.name!r}: OUT_FM {self.out_fm} not divisible by "
                f"OUT_PORTS {self.out_ports}"
            )

    # -- geometry --------------------------------------------------------

    @property
    def in_group(self) -> int:
        """Feature maps interleaved per input port."""
        return self.in_fm // self.in_ports

    @property
    def out_group(self) -> int:
        """Feature maps interleaved per output port."""
        return self.out_fm // self.out_ports

    def out_hw(self, h: int, w: int) -> Tuple[int, int]:
        """Output spatial size given the input spatial size."""
        raise NotImplementedError

    def out_shape(self, in_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """``(C, H, W) -> (K, OH, OW)`` with channel-count validation."""
        c, h, w = in_shape
        if c != self.in_fm:
            raise ShapeError(
                f"{self.name!r} expects {self.in_fm} input FMs, got {c}"
            )
        oh, ow = self.out_hw(h, w)
        return (self.out_fm, oh, ow)

    # -- performance-related ---------------------------------------------------

    @property
    def ii(self) -> int:
        """Initiation interval of the computation core (Eq. 4)."""
        return initiation_interval(self.in_fm, self.in_ports, self.out_fm, self.out_ports)

    def macs_per_image(self, h: int, w: int) -> int:
        """Multiply-accumulate operations per image."""
        raise NotImplementedError

    def flops_per_image(self, h: int, w: int) -> int:
        """FLOPs per image at the 2-FLOP-per-MAC convention."""
        return 2 * self.macs_per_image(h, w)

    def weight_count(self) -> int:
        """Trainable scalars baked on chip (weights + biases)."""
        return 0

    def with_ports(self, in_ports: int, out_ports: int) -> "LayerSpec":
        """A copy with different port counts (the scaling knob)."""
        return replace(self, in_ports=in_ports, out_ports=out_ports)

    def describe(self) -> str:
        """One-line block-design label (Figures 4/5 style)."""
        raise NotImplementedError


@dataclass(frozen=True, kw_only=True)
class ConvLayerSpec(LayerSpec):
    """A convolutional layer (Eq. 1): ``kh x kw`` kernels, stride, padding.

    ``block`` enables block convolution (arXiv:2105.08937): the output is
    tiled into ``block.th x block.tw`` blocks that are split, convolved
    and merged as independent sub-images with halo overlap, so line
    buffers scale with the tile width instead of the feature-map width.
    The transform is exact — see :mod:`repro.sst.block`.
    """

    kh: int = 5
    kw: Optional[int] = None
    stride: int = 1
    pad: int = 0
    block: Optional[BlockSpec] = None

    kind = "conv"

    def __post_init__(self) -> None:
        if self.kw is None:
            object.__setattr__(self, "kw", self.kh)  # square kernel default
        super().__post_init__()
        if self.block is not None and not isinstance(self.block, BlockSpec):
            raise ConfigurationError(
                f"{self.name!r}: block must be a BlockSpec, "
                f"got {type(self.block).__name__}"
            )

    @property
    def window(self) -> WindowSpec:
        """The layer's sliding-window geometry."""
        return WindowSpec(self.kh, self.kw, self.stride, self.pad)

    def block_plan(self, h: int, w: int) -> Optional[BlockPlan]:
        """Resolved blocking geometry at input size ``h x w`` (or None)."""
        if self.block is None:
            return None
        return plan_blocks(self.window, h, w, self.block)

    def out_hw(self, h: int, w: int) -> Tuple[int, int]:
        return self.window.out_shape(h, w)

    def macs_per_image(self, h: int, w: int) -> int:
        oh, ow = self.out_hw(h, w)
        return oh * ow * self.out_fm * self.in_fm * self.kh * self.kw

    def weight_count(self) -> int:
        return self.out_fm * self.in_fm * self.kh * self.kw + self.out_fm

    def describe(self) -> str:
        act = f" +{self.activation}" if self.activation else ""
        blk = f" {self.block.describe()}" if self.block is not None else ""
        return (
            f"conv {self.kh}x{self.kw} {self.in_fm}->{self.out_fm} "
            f"[{self.in_ports}in/{self.out_ports}out]{act}{blk}"
        )


@dataclass(frozen=True, kw_only=True)
class PoolLayerSpec(LayerSpec):
    """A sub-sampling layer: per-FM max/mean pooling, no FM combination.

    Ports are symmetric (``in_ports == out_ports``) because the paper
    inserts one parallel pooling core per previous-layer output port.
    ``in_fm`` must equal ``out_fm``.
    """

    kh: int = 2
    kw: Optional[int] = None
    stride: int = 2
    mode: str = "max"

    kind = "pool"

    def __post_init__(self) -> None:
        if self.kw is None:
            object.__setattr__(self, "kw", self.kh)  # square window default
        super().__post_init__()
        if self.in_fm != self.out_fm:
            raise ConfigurationError(
                f"{self.name!r}: pooling preserves FM count "
                f"(got {self.in_fm} -> {self.out_fm})"
            )
        if self.in_ports != self.out_ports:
            raise ConfigurationError(
                f"{self.name!r}: pooling cores are per-port "
                f"(in_ports {self.in_ports} != out_ports {self.out_ports})"
            )
        if self.mode not in ("max", "mean"):
            raise ConfigurationError(f"{self.name!r}: unknown pool mode {self.mode!r}")

    @property
    def window(self) -> WindowSpec:
        return WindowSpec(self.kh, self.kw, self.stride, pad=0)

    def out_hw(self, h: int, w: int) -> Tuple[int, int]:
        return self.window.out_shape(h, w)

    def macs_per_image(self, h: int, w: int) -> int:
        # Pooling performs comparisons/adds, not MACs; Table II counts the
        # convolution/FC work, so pooling contributes zero MACs.
        return 0

    def describe(self) -> str:
        return (
            f"{self.mode}pool {self.kh}x{self.kw}/s{self.stride} "
            f"{self.in_fm}FM [{self.in_ports} ports]"
        )


@dataclass(frozen=True, kw_only=True)
class FCLayerSpec(LayerSpec):
    """A fully-connected layer as a 1x1 convolution (Section IV-B).

    ``in_fm``/``out_fm`` are the feature counts; the paper always uses the
    single-input-port/single-output-port version, which is the default.
    ``acc_lanes`` is the number of interleaved accumulators hiding the
    floating-point addition latency (>= add latency for II=1).

    ``weight_streaming`` selects the extension mode for large models: the
    weight matrix is fetched from off-chip memory per image instead of
    living in on-chip ROMs. It removes the BRAM footprint (which makes
    AlexNet/VGG-class classifiers impossible on chip) at the cost of the
    layer becoming bandwidth-bound — Qiu et al.'s observation that "FC
    layers are memory centric", made quantitative by the perf model.
    """

    acc_lanes: int = 12
    weight_streaming: bool = False

    kind = "fc"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.in_ports != 1 or self.out_ports != 1:
            raise ConfigurationError(
                f"{self.name!r}: the FC core is single-input-port/"
                f"single-output-port (Section IV-B)"
            )
        if self.acc_lanes < 1:
            raise ConfigurationError(
                f"{self.name!r}: acc_lanes must be >= 1, got {self.acc_lanes}"
            )

    def out_hw(self, h: int, w: int) -> Tuple[int, int]:
        if (h, w) != (1, 1):
            raise ShapeError(
                f"{self.name!r}: FC input must be flattened to 1x1 spatial, "
                f"got {h}x{w}"
            )
        return (1, 1)

    def macs_per_image(self, h: int, w: int) -> int:
        return self.in_fm * self.out_fm

    def weight_count(self) -> int:
        return self.in_fm * self.out_fm + self.out_fm

    def describe(self) -> str:
        act = f" +{self.activation}" if self.activation else ""
        return f"fc {self.in_fm}->{self.out_fm} [1in/1out]{act}"
