"""The paper's two test-case networks (Figures 4 and 5) as presets.

Each test case comes as a pair: the :class:`NetworkDesign` (hardware-side
description with the paper's port choices) and a matching
:class:`~repro.nn.network.Sequential` software model for offline training.

Test case 1 (USPS, Figure 4): 16x16x1 input; 5x5 conv 1->6 *fully
parallelized* (6 output ports), 2x2/2 max-pool fully parallel (6 ports),
5x5 conv 6->16 with 6 input ports and a *single output port*, FC 64->10.

Test case 2 (CIFAR-10, Figure 5): 32x32x3 input; 5x5 conv 3->12, 2x2/2
max-pool, 5x5 conv 12->36, 2x2/2 max-pool, FC 900->64, FC 64->10 — all
layers single-input-port/single-output-port (the design was too large to
parallelize). The paper does not state the hidden width of the first
linear layer; 64 is our documented assumption (DESIGN.md Section 6).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.layer_spec import ConvLayerSpec, FCLayerSpec, PoolLayerSpec
from repro.core.network_design import NetworkDesign
from repro.nn.layers import Conv2D, Flatten, Linear, MaxPool2D, Tanh
from repro.nn.network import Sequential

#: Hidden width of test case 2's first linear layer (paper unspecified).
CIFAR_HIDDEN = 64


def usps_design(name: str = "usps-tc1") -> NetworkDesign:
    """Test case 1: the USPS network with the paper's parallelization."""
    return NetworkDesign(
        name,
        input_shape=(1, 16, 16),
        specs=[
            ConvLayerSpec(
                name="conv1", in_fm=1, out_fm=6, kh=5, kw=5,
                in_ports=1, out_ports=6, activation="tanh",
            ),
            PoolLayerSpec(
                name="pool1", in_fm=6, out_fm=6, kh=2, kw=2, stride=2,
                in_ports=6, out_ports=6, mode="max",
            ),
            ConvLayerSpec(
                name="conv2", in_fm=6, out_fm=16, kh=5, kw=5,
                in_ports=6, out_ports=1, activation="tanh",
            ),
            FCLayerSpec(name="fc1", in_fm=64, out_fm=10),
        ],
    )


def usps_model(rng: Optional[np.random.Generator] = None) -> Sequential:
    """Software model matching :func:`usps_design` (for offline training)."""
    rng = rng or np.random.default_rng(0)
    return Sequential(
        [
            Conv2D(1, 6, 5, rng=rng),
            Tanh(),
            MaxPool2D(2),
            Conv2D(6, 16, 5, rng=rng),
            Tanh(),
            Flatten(),
            Linear(64, 10, rng=rng),
        ],
        in_shape=(1, 16, 16),
    )


def cifar10_design(name: str = "cifar10-tc2") -> NetworkDesign:
    """Test case 2: the CIFAR-10 network, all layers single-port."""
    return NetworkDesign(
        name,
        input_shape=(3, 32, 32),
        specs=[
            ConvLayerSpec(
                name="conv1", in_fm=3, out_fm=12, kh=5, kw=5,
                in_ports=1, out_ports=1, activation="tanh",
            ),
            PoolLayerSpec(
                name="pool1", in_fm=12, out_fm=12, kh=2, kw=2, stride=2,
                in_ports=1, out_ports=1, mode="max",
            ),
            ConvLayerSpec(
                name="conv2", in_fm=12, out_fm=36, kh=5, kw=5,
                in_ports=1, out_ports=1, activation="tanh",
            ),
            PoolLayerSpec(
                name="pool2", in_fm=36, out_fm=36, kh=2, kw=2, stride=2,
                in_ports=1, out_ports=1, mode="max",
            ),
            FCLayerSpec(name="fc1", in_fm=900, out_fm=CIFAR_HIDDEN, activation="tanh"),
            FCLayerSpec(name="fc2", in_fm=CIFAR_HIDDEN, out_fm=10),
        ],
    )


def cifar10_model(rng: Optional[np.random.Generator] = None) -> Sequential:
    """Software model matching :func:`cifar10_design`."""
    rng = rng or np.random.default_rng(0)
    return Sequential(
        [
            Conv2D(3, 12, 5, rng=rng),
            Tanh(),
            MaxPool2D(2),
            Conv2D(12, 36, 5, rng=rng),
            Tanh(),
            MaxPool2D(2),
            Flatten(),
            Linear(900, CIFAR_HIDDEN, rng=rng),
            Tanh(),
            Linear(CIFAR_HIDDEN, 10, rng=rng),
        ],
        in_shape=(3, 32, 32),
    )


def tiny_design(
    name: str = "tiny",
    in_shape: Tuple[int, int, int] = (1, 8, 8),
    conv_ports: Tuple[int, int] = (1, 2),
) -> NetworkDesign:
    """A small 3-layer design used by tests and the quickstart example."""
    c, h, w = in_shape
    oh = h - 2  # 3x3 conv
    pw = (oh // 2) * ((w - 2) // 2)
    return NetworkDesign(
        name,
        input_shape=in_shape,
        specs=[
            ConvLayerSpec(
                name="conv1", in_fm=c, out_fm=2, kh=3, kw=3,
                in_ports=conv_ports[0], out_ports=conv_ports[1],
                activation="tanh",
            ),
            PoolLayerSpec(
                name="pool1", in_fm=2, out_fm=2, kh=2, kw=2, stride=2,
                in_ports=conv_ports[1], out_ports=conv_ports[1], mode="max",
            ),
            FCLayerSpec(name="fc1", in_fm=2 * pw, out_fm=4),
        ],
    )


def tiny_model(
    rng: Optional[np.random.Generator] = None,
    in_shape: Tuple[int, int, int] = (1, 8, 8),
) -> Sequential:
    """Software model matching :func:`tiny_design`."""
    rng = rng or np.random.default_rng(0)
    c, h, w = in_shape
    oh, ow = h - 2, w - 2
    flat = 2 * (oh // 2) * (ow // 2)
    return Sequential(
        [
            Conv2D(c, 2, 3, rng=rng),
            Tanh(),
            MaxPool2D(2),
            Flatten(),
            Linear(flat, 4, rng=rng),
        ],
        in_shape=in_shape,
    )
