"""Multi-FPGA partitioning (the paper's Section VI future work).

Splits a design's layer chain into contiguous segments, one per device.
The inter-board links are serial streams with their own bandwidth, so a
split design is still one long pipeline: its steady-state interval is the
slowest element among all layer stages and all link stages. Splitting
never speeds up a fixed configuration by itself — it frees resources so
each segment can be parallelized further, which is exactly the paper's
motivation ("the layers can be totally parallelized given that there are
enough available resources").
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.network_design import NetworkDesign
from repro.core.perf_model import layer_perf, network_perf
from repro.core.resource_model import BASE_DESIGN, layer_resources
from repro.errors import ConfigurationError, ResourceError
from repro.fpga.device import Device, XC7VX485T
from repro.hls.resources import ResourceVector


@dataclass(frozen=True)
class LinkModel:
    """A board-to-board streaming link."""

    bandwidth_bytes_per_s: float = 1e9
    clock_hz: float = 100e6

    def words_per_cycle(self) -> float:
        return self.bandwidth_bytes_per_s / (4 * self.clock_hz)

    def stream_cycles(self, words: int) -> int:
        """Cycles to forward ``words`` 32-bit values per image."""
        if words < 0:
            raise ConfigurationError(f"words must be >= 0, got {words}")
        return math.ceil(words / self.words_per_cycle())


@dataclass(frozen=True)
class Segment:
    """One device's share of the pipeline."""

    device_index: int
    layer_names: Tuple[str, ...]
    resources: ResourceVector
    #: Slowest layer interval within this segment (cycles/image).
    interval: int
    #: Words streamed out of this segment per image (to the next board).
    egress_words: int


@dataclass(frozen=True)
class MultiFpgaPlan:
    """A full partitioning with its end-to-end performance."""

    design_name: str
    segments: List[Segment]
    link: LinkModel

    @property
    def interval(self) -> int:
        """Pipeline steady-state interval including link stages."""
        worst = max(s.interval for s in self.segments)
        for s in self.segments[:-1]:
            worst = max(worst, self.link.stream_cycles(s.egress_words))
        return worst

    def fits(self, device: Device = XC7VX485T) -> bool:
        return all(s.resources.fits_in(device.resources) for s in self.segments)


def plan_split(
    design: NetworkDesign,
    n_devices: int,
    device: Device = XC7VX485T,
    link: LinkModel = LinkModel(),
) -> MultiFpgaPlan:
    """Best contiguous split of ``design`` over ``n_devices`` devices.

    Exhaustively evaluates every cut-point placement (layer counts are
    single digits), keeping splits whose segments fit ``device`` and
    minimizing the resulting pipeline interval; ties break toward lower
    peak resource usage. Raises :class:`~repro.errors.ResourceError` if no
    split fits.
    """
    n = design.n_layers
    if not (1 <= n_devices <= n):
        raise ConfigurationError(
            f"n_devices must be in [1, {n}], got {n_devices}"
        )
    placements = design.placements
    perfs = [layer_perf(p) for p in placements]
    resources = [layer_resources(p) for p in placements]

    best: Tuple[float, float, MultiFpgaPlan] = None  # (interval, peak_dsp, plan)
    for cuts in itertools.combinations(range(1, n), n_devices - 1):
        bounds = [0, *cuts, n]
        segments: List[Segment] = []
        ok = True
        for d in range(n_devices):
            lo, hi = bounds[d], bounds[d + 1]
            seg_res = BASE_DESIGN
            for r in resources[lo:hi]:
                seg_res = seg_res + r
            if not seg_res.fits_in(device.resources):
                ok = False
                break
            seg_interval = max(p.interval for p in perfs[lo:hi])
            last = placements[hi - 1]
            egress = last.out_shape[0] * last.out_shape[1] * last.out_shape[2]
            segments.append(
                Segment(
                    device_index=d,
                    layer_names=tuple(p.spec.name for p in placements[lo:hi]),
                    resources=seg_res,
                    interval=seg_interval,
                    egress_words=egress,
                )
            )
        if not ok:
            continue
        plan = MultiFpgaPlan(design.name, segments, link)
        peak = max(s.resources.dsp for s in segments)
        key = (plan.interval, peak)
        if best is None or key < (best[0], best[1]):
            best = (plan.interval, peak, plan)
    if best is None:
        raise ResourceError(
            f"no {n_devices}-way split of {design.name!r} fits {device.name}"
        )
    return best[2]
