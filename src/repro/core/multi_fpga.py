"""Multi-FPGA partitioning and its runnable plan (paper Section VI).

Splits a design's layer chain into contiguous segments, one per device.
The inter-board links are serial streams with their own bandwidth, so a
split design is still one long pipeline: its steady-state interval is the
slowest element among all layer stages, all link stages, and the two DMA
endpoints. Splitting never speeds up a fixed configuration by itself — it
frees resources so each segment can be parallelized further, which is
exactly the paper's motivation ("the layers can be totally parallelized
given that there are enough available resources").

A :class:`MultiFpgaPlan` is no longer analytical-only: the builder
(:func:`repro.core.builder.build_network` with ``multi_plan=``) elaborates
it into a co-simulation by cutting the graph at the planned boundaries and
inserting :class:`~repro.dataflow.link.LinkTxActor` /
:class:`~repro.dataflow.link.LinkRxActor` pairs whose beat interval comes
from the plan's :class:`LinkModel`. The plan serialises through the
unified :class:`~repro.report.base.Report` envelope (``repro shard
--json``), round-tripping like ``DepthPlan``.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Optional, Tuple

from repro.config import ClockDomain
from repro.core.layer_spec import ConvLayerSpec
from repro.core.network_design import LayerPlacement, NetworkDesign
from repro.core.perf_model import layer_perf
from repro.core.resource_model import BASE_DESIGN, layer_resources
from repro.errors import ConfigurationError, ResourceError
from repro.fpga.device import Device, XC7VX485T
from repro.fpga.dma import DmaModel, PAPER_DMA
from repro.hls.resources import ResourceVector
from repro.report.base import Report


@dataclass(frozen=True)
class LinkModel:
    """A board-to-board streaming link, priced by the shared DMA beat model.

    The link is a serial word stream (Aurora, PCIe peer-to-peer, 10GbE):
    it moves at most one ``word_bits`` word per cycle, paced further down
    by its sustained bandwidth. Both constraints are exactly what
    :meth:`~repro.fpga.dma.DmaModel.beat_interval` computes for the
    ingress DMA, so the link delegates to the same model instead of
    keeping its own arithmetic (the old one hardcoded 4-byte words and
    allowed fractional words per cycle, under-pricing fast links).
    """

    bandwidth_bytes_per_s: float = 1e9
    clock_hz: float = 100e6
    word_bits: int = 32

    @property
    def dma(self) -> DmaModel:
        """The equivalent DMA transfer model (one word per datapath beat)."""
        return DmaModel(
            datapath_bits=self.word_bits,
            bandwidth_bytes_per_s=self.bandwidth_bytes_per_s,
            clock=ClockDomain(self.clock_hz),
        )

    def beat_interval(self) -> int:
        """Cycles between consecutive word beats on the wire (>= 1)."""
        return self.dma.beat_interval(self.word_bits)

    def words_per_cycle(self) -> float:
        """Sustained words per cycle; never exceeds 1 on a serial stream."""
        return 1.0 / self.beat_interval()

    def stream_cycles(self, words: int) -> int:
        """Cycles to forward ``words`` values per image."""
        if words < 0:
            raise ConfigurationError(f"words must be >= 0, got {words}")
        return self.dma.transfer_cycles(words, self.word_bits)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bandwidth_bytes_per_s": self.bandwidth_bytes_per_s,
            "clock_hz": self.clock_hz,
            "word_bits": self.word_bits,
            "beat_interval": self.beat_interval(),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "LinkModel":
        return cls(
            bandwidth_bytes_per_s=float(d["bandwidth_bytes_per_s"]),
            clock_hz=float(d["clock_hz"]),
            word_bits=int(d.get("word_bits", 32)),
        )


def segment_egress_words(placement: LayerPlacement) -> int:
    """Words per image crossing a cut placed after ``placement``.

    For a plain layer this is the output volume ``k * oh * ow``. For a
    *blocked* conv layer the cut sits between the cores and the merge
    stages (the merge — which drops overhang and needs a whole image of
    tile-major coordinates — relocates to the downstream device, where
    its buffering is cheap), so the full uniform tile grid crosses the
    wire: ``BlockPlan.out_words`` coordinates per feature map, overhang
    included.
    """
    spec = placement.spec
    k, oh, ow = placement.out_shape
    if isinstance(spec, ConvLayerSpec):
        plan = spec.block_plan(placement.in_shape[1], placement.in_shape[2])
        if plan is not None:
            return plan.out_words * k
    return k * oh * ow


@dataclass(frozen=True)
class Segment:
    """One device's share of the pipeline."""

    device_index: int
    layer_names: Tuple[str, ...]
    resources: ResourceVector
    #: Slowest layer interval within this segment (cycles/image).
    interval: int
    #: Words streamed out of this segment per image (to the next board).
    egress_words: int

    def to_dict(self) -> Dict[str, Any]:
        r = self.resources
        return {
            "device": self.device_index,
            "layers": list(self.layer_names),
            "interval": self.interval,
            "egress_words": self.egress_words,
            "resources": {"ff": r.ff, "lut": r.lut, "bram": r.bram, "dsp": r.dsp},
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Segment":
        return cls(
            device_index=int(d["device"]),
            layer_names=tuple(str(n) for n in d["layers"]),
            resources=ResourceVector(**d["resources"]),
            interval=int(d["interval"]),
            egress_words=int(d["egress_words"]),
        )


class MultiFpgaPlan(Report):
    """A full partitioning with its end-to-end performance.

    The interval accounting mirrors :class:`~repro.core.perf_model
    .NetworkPerf` exactly — every layer stage, every link stage, and both
    DMA endpoints — so a co-simulated shard run at modeled bandwidth
    settles on this interval with 0.00% Eq. 4 error.
    """

    kind: ClassVar[str] = "multi-fpga-plan"

    def __init__(
        self,
        design_name: str,
        segments: List[Segment],
        link: LinkModel,
        dma_in_cycles: int = 0,
        dma_out_cycles: int = 0,
    ):
        if not segments:
            raise ConfigurationError("a plan needs at least one segment")
        self.design_name = design_name
        self.segments = list(segments)
        self.link = link
        self.dma_in_cycles = int(dma_in_cycles)
        self.dma_out_cycles = int(dma_out_cycles)

    @property
    def n_devices(self) -> int:
        return len(self.segments)

    def link_cycles(self, cut: int) -> int:
        """Per-image cycles of the link stage after segment ``cut``."""
        return self.link.stream_cycles(self.segments[cut].egress_words)

    @property
    def interval(self) -> int:
        """Pipeline steady-state interval including link and DMA stages."""
        worst = max(s.interval for s in self.segments)
        for d in range(self.n_devices - 1):
            worst = max(worst, self.link_cycles(d))
        return max(worst, self.dma_in_cycles, self.dma_out_cycles)

    @property
    def bottleneck(self) -> str:
        """Name of the pacing stage (a layer, ``link{d}``, or a DMA end)."""
        best_name, best = "dma_in", self.dma_in_cycles
        if self.dma_out_cycles > best:
            best_name, best = "dma_out", self.dma_out_cycles
        for d in range(self.n_devices - 1):
            if self.link_cycles(d) > best:
                best_name, best = f"link{d}", self.link_cycles(d)
        for s in self.segments:
            if s.interval > best:
                best_name, best = f"segment{s.device_index}", s.interval
        return best_name

    def cut_layers(self) -> Tuple[str, ...]:
        """Last layer of each non-final segment (the planned cut points)."""
        return tuple(s.layer_names[-1] for s in self.segments[:-1])

    def fits(self, device: Device = XC7VX485T) -> bool:
        return all(s.resources.fits_in(device.resources) for s in self.segments)

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "design": self.design_name,
            "n_devices": self.n_devices,
            "interval": self.interval,
            "bottleneck": self.bottleneck,
            "dma_in_cycles": self.dma_in_cycles,
            "dma_out_cycles": self.dma_out_cycles,
            "link": self.link.to_dict(),
            "cut_layers": list(self.cut_layers()),
            "segments": [s.to_dict() for s in self.segments],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "MultiFpgaPlan":
        return cls(
            design_name=str(d["design"]),
            segments=[Segment.from_dict(s) for s in d["segments"]],
            link=LinkModel.from_dict(d["link"]),
            dma_in_cycles=int(d.get("dma_in_cycles", 0)),
            dma_out_cycles=int(d.get("dma_out_cycles", 0)),
        )

    def summary(self) -> str:
        return (
            f"multi-fpga plan {self.design_name}: {self.n_devices} device(s), "
            f"interval {self.interval} cycles/image, bottleneck {self.bottleneck}"
        )


def load_multi_fpga_plan(path: str) -> MultiFpgaPlan:
    """Load a plan written by ``repro shard --json``."""
    with open(path) as fh:
        d = json.load(fh)
    return MultiFpgaPlan.from_dict(d)


def plan_split(
    design: NetworkDesign,
    n_devices: int,
    device: Device = XC7VX485T,
    link: Optional[LinkModel] = None,
    dma: DmaModel = PAPER_DMA,
    loop_overhead: float = 0.0,
    fit: bool = True,
) -> MultiFpgaPlan:
    """Best contiguous split of ``design`` over ``n_devices`` devices.

    Exhaustively evaluates every cut-point placement (layer counts are
    single digits), keeping splits whose segments fit ``device`` and
    minimizing the resulting pipeline interval; ties break toward lower
    peak resource usage. Raises :class:`~repro.errors.ResourceError` if no
    split fits. ``dma`` prices the batch ingress/egress endpoints so the
    plan interval matches :func:`~repro.core.perf_model.network_perf`
    semantics stage for stage.

    ``fit=False`` drops the per-segment device capacity constraint —
    the full-size zoo members overflow even several Virtex-7s (FC
    weight storage dominates), yet their sharded co-simulation is still
    meaningful; the plan keeps honest resource totals and
    :meth:`MultiFpgaPlan.fits` still reports the overflow.
    """
    n = design.n_layers
    if not (1 <= n_devices <= n):
        raise ConfigurationError(
            f"n_devices must be in [1, {n}], got {n_devices}"
        )
    if link is None:
        link = LinkModel()
    placements = design.placements
    perfs = [layer_perf(p, loop_overhead) for p in placements]
    resources = [layer_resources(p) for p in placements]
    egress = [segment_egress_words(p) for p in placements]
    beat = dma.beat_interval(32)
    dma_in = design.input_words_per_image() * beat
    dma_out = design.output_words_per_image() * beat

    best: Optional[Tuple[float, float, MultiFpgaPlan]] = None
    for cuts in itertools.combinations(range(1, n), n_devices - 1):
        bounds = [0, *cuts, n]
        segments: List[Segment] = []
        ok = True
        for d in range(n_devices):
            lo, hi = bounds[d], bounds[d + 1]
            seg_res = BASE_DESIGN
            for r in resources[lo:hi]:
                seg_res = seg_res + r
            if fit and not seg_res.fits_in(device.resources):
                ok = False
                break
            seg_interval = max(p.interval for p in perfs[lo:hi])
            segments.append(
                Segment(
                    device_index=d,
                    layer_names=tuple(p.spec.name for p in placements[lo:hi]),
                    resources=seg_res,
                    interval=seg_interval,
                    egress_words=egress[hi - 1],
                )
            )
        if not ok:
            continue
        plan = MultiFpgaPlan(design.name, segments, link, dma_in, dma_out)
        peak = max(s.resources.dsp for s in segments)
        key = (plan.interval, peak)
        if best is None or key < (best[0], best[1]):
            best = (plan.interval, peak, plan)
    if best is None:
        raise ResourceError(
            f"no {n_devices}-way split of {design.name!r} fits {device.name}"
        )
    return best[2]
