"""Whole-network designs: validated layer chains and port matching.

:class:`NetworkDesign` is the artifact a designer produces with this
methodology (Figures 4/5): an input shape plus a chain of layer specs. It
propagates shapes, classifies every layer-to-layer connection into the
three port cases of Section IV-A (direct / demux / widen), validates the
divisibility the interleaved routing requires, and renders the textual
block design used to reproduce Figures 4 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError, PortMismatchError, ShapeError
from repro.core.layer_spec import ConvLayerSpec, FCLayerSpec, LayerSpec, PoolLayerSpec


class PortAdapter(Enum):
    """The three inter-layer connection cases of Section IV-A."""

    DIRECT = "direct"   # OUT_PORTS(i-1) == IN_PORTS(i)
    DEMUX = "demux"     # OUT_PORTS(i-1) <  IN_PORTS(i)
    WIDEN = "widen"     # OUT_PORTS(i-1) >  IN_PORTS(i)


def classify_adapter(prev_out_ports: int, next_in_ports: int) -> PortAdapter:
    """Classify a connection and validate routable divisibility.

    The modulo-interleaved FM-to-port mapping routes cleanly only when one
    port count divides the other; other ratios would require re-ordering
    buffers the paper does not describe.
    """
    if prev_out_ports == next_in_ports:
        return PortAdapter.DIRECT
    if prev_out_ports < next_in_ports:
        if next_in_ports % prev_out_ports:
            raise PortMismatchError(
                f"cannot demux {prev_out_ports} ports into {next_in_ports} "
                f"(not a multiple)"
            )
        return PortAdapter.DEMUX
    if prev_out_ports % next_in_ports:
        raise PortMismatchError(
            f"cannot widen {prev_out_ports} ports onto {next_in_ports} "
            f"(not a multiple)"
        )
    return PortAdapter.WIDEN


@dataclass(frozen=True)
class LayerPlacement:
    """A spec plus its resolved input/output shapes within a network."""

    spec: LayerSpec
    in_shape: Tuple[int, int, int]
    out_shape: Tuple[int, int, int]
    #: Adapter between the *previous* stage and this layer.
    adapter: PortAdapter


class NetworkDesign:
    """A validated chain of layer specs over a fixed input shape.

    Parameters
    ----------
    name: design name (e.g. ``"usps"``).
    input_shape: ``(C, H, W)`` of the images fed by the DMA.
    specs: the layer chain, feature extraction first, classifier last.
    """

    def __init__(
        self,
        name: str,
        input_shape: Tuple[int, int, int],
        specs: Sequence[LayerSpec],
    ):
        if len(input_shape) != 3 or any(d < 1 for d in input_shape):
            raise ConfigurationError(
                f"input_shape must be a positive (C, H, W), got {input_shape}"
            )
        if not specs:
            raise ConfigurationError("a network needs at least one layer")
        self.name = str(name)
        self.input_shape = tuple(int(d) for d in input_shape)
        self.placements: List[LayerPlacement] = []

        shape = self.input_shape
        prev_out_ports = 1  # the DMA is a single stream
        seen_fc = False
        names = set()
        for spec in specs:
            if spec.name in names:
                raise ConfigurationError(f"duplicate layer name {spec.name!r}")
            names.add(spec.name)
            if isinstance(spec, FCLayerSpec):
                # Classifier stage: flatten the remaining volume.
                flat = shape[0] * shape[1] * shape[2]
                if flat != spec.in_fm:
                    raise ShapeError(
                        f"{spec.name!r}: expects {spec.in_fm} inputs but the "
                        f"previous stage provides {shape} = {flat}"
                    )
                shape = (flat, 1, 1)
                seen_fc = True
            elif seen_fc:
                raise ConfigurationError(
                    f"{spec.name!r}: feature-extraction layer after the "
                    f"classifier stage"
                )
            adapter = classify_adapter(prev_out_ports, spec.in_ports)
            out_shape = spec.out_shape(shape)
            self.placements.append(
                LayerPlacement(spec, shape, out_shape, adapter)
            )
            shape = out_shape
            prev_out_ports = spec.out_ports

    # -- convenience views ------------------------------------------------------

    @property
    def specs(self) -> List[LayerSpec]:
        return [p.spec for p in self.placements]

    @property
    def n_layers(self) -> int:
        return len(self.placements)

    @property
    def output_shape(self) -> Tuple[int, int, int]:
        return self.placements[-1].out_shape

    @property
    def n_classes(self) -> int:
        """Output feature count of the last layer (classification classes)."""
        return self.output_shape[0]

    def input_words_per_image(self) -> int:
        """Stream words the DMA sends per image."""
        c, h, w = self.input_shape
        return c * h * w

    def output_words_per_image(self) -> int:
        """Stream words the design emits per image."""
        k, oh, ow = self.output_shape
        return k * oh * ow

    def macs_per_image(self) -> int:
        """Total MAC operations per image across all layers."""
        return sum(
            p.spec.macs_per_image(p.in_shape[1], p.in_shape[2])
            for p in self.placements
        )

    def flops_per_image(self) -> int:
        """Total FLOPs per image (2 per MAC)."""
        return 2 * self.macs_per_image()

    def weight_count(self) -> int:
        """Total parameters hard-coded on chip."""
        return sum(p.spec.weight_count() for p in self.placements)

    def full_buffering_words(self) -> int:
        """Total full-buffering FIFO words across all memory structures.

        The worst-case sizing the paper pays (Section II-B); the depth
        prover (:mod:`repro.analysis.depths`) certifies how far below
        this a design can actually run. Blocked conv layers are sized on
        their *tile* geometry — the point of block convolution: line
        buffers span the input-block width ``iw``, not the full
        feature-map width.
        """
        from repro.sst.sizing import layer_buffer_budget

        total = 0
        for p in self.placements:
            spec = p.spec
            if not isinstance(spec, (ConvLayerSpec, PoolLayerSpec)):
                continue
            plan = (
                spec.block_plan(p.in_shape[1], p.in_shape[2])
                if isinstance(spec, ConvLayerSpec)
                else None
            )
            if plan is not None:
                total += layer_buffer_budget(
                    plan.tile_window, plan.iw, spec.in_fm, spec.in_ports
                ).fifo_words
            else:
                total += layer_buffer_budget(
                    spec.window, p.in_shape[2], spec.in_fm, spec.in_ports
                ).fifo_words
        return total

    def with_blocking(self, tiles: "dict | int") -> "NetworkDesign":
        """A copy with block convolution applied to conv layers.

        See :func:`repro.core.block_transform.with_blocking`; ``tiles``
        maps conv layer names to tile sizes (or is one tile size applied
        to every conv layer).
        """
        from repro.core.block_transform import with_blocking

        return with_blocking(self, tiles)

    # -- rendering (Figures 4 / 5) -----------------------------------------------

    def block_design(self) -> str:
        """Textual block design: the reproduction of Figures 4 and 5.

        Each block shows the window size, input/output channel counts and
        the number of windows taken as input, as the figure captions
        describe, plus the resolved shapes and adapters.
        """
        c, h, w = self.input_shape
        lines = [
            f"=== Block design: {self.name} ===",
            f"input: {h}x{w}x{c} (DMA stream, 1 port)",
        ]
        for p in self.placements:
            ci, hi, wi = p.in_shape
            co, ho, wo = p.out_shape
            if p.adapter is not PortAdapter.DIRECT:
                lines.append(f"  |- adapter: {p.adapter.value}")
            windows = (
                p.spec.in_ports
                if isinstance(p.spec, (ConvLayerSpec, PoolLayerSpec))
                else 0
            )
            detail = f"{p.spec.describe()}  in={hi}x{wi}x{ci} out={ho}x{wo}x{co}"
            if windows:
                detail += f"  windows={windows}"
            detail += f"  II={p.spec.ii}"
            lines.append(f"  [{p.spec.name}] {detail}")
        lines.append(f"output: {self.n_classes} classes")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return f"NetworkDesign({self.name!r}, {self.n_layers} layers)"
