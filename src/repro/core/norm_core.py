"""The normalization operator (Eq. 3) as a dataflow core.

Section II-A: "the normalization operator receives the output of the last
linear layer and computes the affinity of the input to the classification
classes as a percentage value" via LogSoftMax. The paper's implemented
designs end at the last linear layer; this core completes the chain on
request (``build_network(..., normalize=True)``): it collects the K
logits of an image, applies the numerically stable softmax in the same
association order the software reference uses, and emits the K
probabilities sequentially.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.config import DTYPE
from repro.dataflow.actor import Actor
from repro.errors import ConfigurationError
from repro.hls.ops import op_cost
from repro.hls.pipeline import tree_depth
from repro.hls.resources import ResourceVector


class NormalizationActor(Actor):
    """Per-image softmax over a K-logit stream (Eq. 3).

    Ports: ``in`` (one logit per cycle), ``out`` (one probability per
    cycle, emitted after the image's K logits arrived and the exp/divide
    datapath latency elapsed).
    """

    def __init__(self, name: str, n_classes: int, images: int = 1,
                 pipeline_depth: int = 0):
        super().__init__(name)
        if n_classes < 1 or images < 1:
            raise ConfigurationError(
                f"{name!r}: n_classes and images must be >= 1"
            )
        if pipeline_depth < 0:
            raise ConfigurationError(
                f"{name!r}: pipeline_depth must be >= 0"
            )
        self.n_classes = int(n_classes)
        self.images = int(images)
        self.pipeline_depth = int(pipeline_depth)

    def run(self) -> Generator:
        in_ch = self.input("in")
        out_ch = self.output("out")
        for _ in range(self.images):
            logits = np.empty(self.n_classes, dtype=DTYPE)
            for i in range(self.n_classes):
                while not in_ch.can_pop():
                    self.blocked_reason = f"norm: {in_ch.name} empty"
                    in_ch.note_empty_stall()
                    yield in_ch.pop_wait()
                self.blocked_reason = None
                logits[i] = in_ch.pop()
                yield
            # Numerically stable Eq. 3 (same order as nn.losses.softmax).
            shifted = logits - np.max(logits)
            exps = np.exp(shifted).astype(DTYPE)
            probs = (exps / exps.sum(dtype=DTYPE)).astype(DTYPE)
            yield from self.wait(self.pipeline_depth)
            for i in range(self.n_classes):
                while not out_ch.can_push():
                    self.blocked_reason = f"norm: {out_ch.name} full"
                    out_ch.note_full_stall()
                    yield out_ch.push_wait()
                self.blocked_reason = None
                out_ch.push(DTYPE(probs[i]))
                yield


def normalization_depth(n_classes: int) -> int:
    """Datapath latency: max-tree + exp + sum-tree + divide."""
    cmp = op_cost("cmp").latency
    return (
        tree_depth(n_classes) * cmp
        + op_cost("exp").latency
        + tree_depth(n_classes) * op_cost("add").latency
        + op_cost("div").latency
    )


def normalization_resources(n_classes: int) -> ResourceVector:
    """One exp lane, one divider, comparison/sum trees over K values."""
    r = op_cost("exp").resources + op_cost("div").resources
    r = r + op_cost("cmp").resources * max(n_classes - 1, 0)
    r = r + op_cost("add").resources * max(n_classes - 1, 0)
    return r + ResourceVector(ff=n_classes * 32)
