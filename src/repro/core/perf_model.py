"""Analytical performance model of a dataflow CNN design.

The network behaves as a high-level pipeline (Section IV-C): at steady
state every layer is busy concurrently, so the per-image interval is the
busiest stage's per-image cycle count, and a batch of ``B`` images takes

    ``T(B) = fill_latency + (B - 1) * interval``

which is exactly the converging mean-time-per-image curve of Figure 6.
The model is validated against the cycle-accurate simulator in
``tests/core/test_perf_vs_sim.py``; the cycle simulator remains the
ground truth, the model its fast closed form for full-scale sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.layer_spec import ConvLayerSpec, FCLayerSpec, LayerSpec, PoolLayerSpec
from repro.core.network_design import LayerPlacement, NetworkDesign
from repro.errors import ConfigurationError
from repro.fpga.board import Board, VC707
from repro.hls.ops import op_cost
from repro.hls.pipeline import tree_depth


@dataclass(frozen=True)
class LayerPerf:
    """Per-image cycle accounting of one pipeline stage."""

    name: str
    kind: str
    #: Input stream beats per port per image.
    in_beats: int
    #: Computation-core busy cycles per image.
    core_cycles: int
    #: Output stream beats per port per image.
    out_beats: int
    #: Cycles from the stage's last input beat to its last output beat
    #: when the core is input-paced (the drain of the final coordinate).
    tail_cycles: int
    #: Input beats needed before the first window/result can be produced.
    prime_beats: int
    #: Datapath pipeline depth (first firing to first emitted value).
    depth_cycles: int

    @property
    def interval(self) -> int:
        """Per-image cycles this stage needs at steady state."""
        return max(self.in_beats, self.core_cycles, self.out_beats)


def conv_core_depth(in_ports: int, kh: int, kw: int) -> int:
    """Datapath depth of the conv core: multiply, product tree, accumulate."""
    fadd = op_cost("add").latency
    fmul = op_cost("mul").latency
    return fmul + tree_depth(in_ports * kh * kw) * fadd + fadd


def fc_core_depth(acc_lanes: int) -> int:
    """Datapath depth of the FC core's final lane combine (plus bias add)."""
    fadd = op_cost("add").latency
    return tree_depth(acc_lanes) * fadd + fadd


def layer_perf(placement: LayerPlacement, loop_overhead: float = 0.0) -> LayerPerf:
    """Cycle accounting for one layer placement.

    ``loop_overhead`` models per-coordinate pipeline overhead of the HLS
    coordinate loop (imperfect loop flattening adds a few cycles between
    iterations of the outer loop in real Vivado HLS kernels). The ideal
    dataflow model uses 0; :func:`fit_loop_overhead` recovers the
    constant implied by a measured board latency.
    """
    if loop_overhead < 0:
        raise ConfigurationError(
            f"loop_overhead must be >= 0, got {loop_overhead}"
        )
    spec = placement.spec
    c, h, w = placement.in_shape
    k, oh, ow = placement.out_shape
    in_beats = h * w * spec.in_group
    out_beats = oh * ow * spec.out_group
    fadd = op_cost("add").latency
    fmul = op_cost("mul").latency
    if isinstance(spec, ConvLayerSpec):
        plan = spec.block_plan(h, w)
        depth = conv_core_depth(spec.in_ports, spec.kh, spec.kw)
        # After the last input pixel: finish the final coordinate (one II),
        # push it through mult + product tree + accumulate, emit its beats.
        tail = spec.ii + depth + spec.out_group
        if plan is not None:
            # Block convolution (Eq. 4 with halo overhead): the split
            # stage re-reads each halo row/column once per adjacent tile,
            # amplifying the input stream from h*w to n_tiles*ih*iw words
            # per FM, and the core computes the uniform tile grid
            # (coords >= oh*ow: overhang is dropped at the merge).
            in_beats = plan.in_words * spec.in_group
            core = int(round(plan.coords * (spec.ii + loop_overhead)))
            out_beats = plan.coords * spec.out_group
            # First window: a full image staged by the split, then the
            # first tile's window primed over block geometry (pad-free).
            prime = (h * w + (spec.kh - 1) * plan.iw + spec.kw) * spec.in_group
        else:
            core = int(round(oh * ow * (spec.ii + loop_overhead)))
            _, wp = spec.window.padded_shape(h, w)
            prime = ((spec.kh - 1) * wp + spec.kw) * spec.in_group
    elif isinstance(spec, PoolLayerSpec):
        core = out_beats  # II = 1 per window beat
        depth = 1
        tail = spec.in_group + 1  # last pixel completes the last windows
        prime = ((spec.kh - 1) * w + spec.kw) * spec.in_group
    elif isinstance(spec, FCLayerSpec):
        if spec.weight_streaming:
            # One MAC per cycle fed by a 1-word/cycle weight stream: the
            # core must ingest the whole matrix per image (memory-centric).
            core = spec.in_fm * spec.out_fm
        else:
            core = spec.in_fm
        depth = fc_core_depth(spec.acc_lanes)
        tail = depth + spec.out_fm
        prime = spec.in_fm  # outputs emitted only after all inputs arrive
    else:
        raise ConfigurationError(f"unknown spec kind {spec.kind!r}")
    return LayerPerf(
        name=spec.name,
        kind=spec.kind,
        in_beats=in_beats,
        core_cycles=core,
        out_beats=out_beats,
        tail_cycles=tail,
        prime_beats=prime,
        depth_cycles=depth,
    )


@dataclass(frozen=True)
class NetworkPerf:
    """Whole-network performance figures (cycles, per image)."""

    design_name: str
    layers: List[LayerPerf]
    #: DMA-in stream cycles per image.
    dma_in_cycles: int
    #: DMA-out stream cycles per image.
    dma_out_cycles: int

    @property
    def interval(self) -> int:
        """Steady-state cycles between consecutive image completions.

        The slowest stage of the pipeline — including the DMA endpoints —
        paces everyone else.
        """
        stages = [l.interval for l in self.layers]
        return max(stages + [self.dma_in_cycles, self.dma_out_cycles])

    @property
    def bottleneck(self) -> str:
        """Name of the pacing stage."""
        best_name, best = "dma_in", self.dma_in_cycles
        if self.dma_out_cycles > best:
            best_name, best = "dma_out", self.dma_out_cycles
        for l in self.layers:
            if l.interval > best:
                best_name, best = l.name, l.interval
        return best_name

    @property
    def fill_latency(self) -> int:
        """Cycles from the first input beat to the first image's last output.

        Recursive stage model: a layer's first output appears once its
        first window is primed and the datapath depth has elapsed; its last
        output is bounded below both by its upstream's last output (plus
        the drain tail) and by its own busy time from the first firing —
        core-bound stages keep working long after their input went quiet.
        """
        # Upstream emission pace (cycles per beat) starts at the DMA rate.
        first_out = 0.0
        last_out = float(self.dma_in_cycles)
        pace = self.dma_in_cycles / max(
            1, self.layers[0].in_beats if self.layers else 1
        )
        for l in self.layers:
            t_first = first_out + l.prime_beats * pace + l.depth_cycles
            t_last = max(
                last_out + l.tail_cycles,
                # Busy from the first firing: compute, and emit out_beats
                # beats at one beat per port per cycle.
                t_first + max(l.core_cycles, l.out_beats),
                # Ingest in_beats beats at one beat per port per cycle,
                # starting when the upstream's first beat arrives — binding
                # when an adapter serialises wider upstream ports into this
                # stage's narrower input.
                first_out + l.in_beats,
            )
            first_out = t_first
            last_out = t_last
            pace = l.interval / max(1, l.out_beats)
        # The output DMA drains the final stream at its own beat rate; a
        # wide output volume can outlast the last layer's compute.
        last_out = max(last_out + 1, first_out + self.dma_out_cycles)
        return int(round(last_out))

    def batch_cycles(self, batch: int) -> int:
        """Total cycles to process a batch of ``batch`` images."""
        if batch < 1:
            raise ConfigurationError(f"batch must be >= 1, got {batch}")
        return self.fill_latency + (batch - 1) * self.interval

    def mean_cycles_per_image(self, batch: int) -> float:
        """Figure 6's y-axis (in cycles; divide by clock for seconds)."""
        return self.batch_cycles(batch) / batch

    def images_per_second(self, board: Board = VC707) -> float:
        """Steady-state throughput."""
        return board.clock.frequency_hz / self.interval

    def image_latency_s(self, board: Board = VC707) -> float:
        """Converged mean time per image (Table II's latency column)."""
        return board.seconds(self.interval)


def network_perf(
    design: NetworkDesign,
    board: Board = VC707,
    loop_overhead: float = 0.0,
    dma_setup_cycles: int = 0,
) -> NetworkPerf:
    """Build the analytical model of ``design`` on ``board``.

    ``dma_setup_cycles`` models a fixed per-image DMA descriptor-setup
    cost on both stream directions (the alternative calibration
    hypothesis examined — and rejected — by
    ``benchmarks/bench_calibration.py``).
    """
    if dma_setup_cycles < 0:
        raise ConfigurationError(
            f"dma_setup_cycles must be >= 0, got {dma_setup_cycles}"
        )
    layers = [layer_perf(p, loop_overhead) for p in design.placements]
    beat = board.dma.beat_interval(32)
    return NetworkPerf(
        design_name=design.name,
        layers=layers,
        dma_in_cycles=design.input_words_per_image() * beat + dma_setup_cycles,
        dma_out_cycles=design.output_words_per_image() * beat + dma_setup_cycles,
    )


def fit_dma_setup(
    design: NetworkDesign,
    measured_interval_cycles: float,
    board: Board = VC707,
    max_setup: int = 20_000,
) -> int:
    """Per-image DMA setup cost implied by a measured interval.

    The competing hypothesis to :func:`fit_loop_overhead`: maybe the paper's
    extra latency is per-image transfer overhead rather than per-coordinate
    loop overhead. Returns the best-fitting constant; the calibration bench
    shows the two test cases imply wildly different constants under this
    hypothesis (324 vs thousands of cycles), which rejects it.
    """
    if measured_interval_cycles <= 0:
        raise ConfigurationError(
            f"measured interval must be positive, got {measured_interval_cycles}"
        )
    best_s, best_err = 0, float("inf")
    lo, hi = 0, max_setup
    # The interval is monotone non-decreasing in the setup cost: bisect on
    # the first value reaching the measurement, then refine around it.
    for s in range(lo, hi + 1, 16):
        interval = network_perf(design, board, dma_setup_cycles=s).interval
        err = abs(interval - measured_interval_cycles)
        if err < best_err:
            best_s, best_err = s, err
        if interval > measured_interval_cycles:
            break
    for s in range(max(0, best_s - 16), best_s + 17):
        interval = network_perf(design, board, dma_setup_cycles=s).interval
        err = abs(interval - measured_interval_cycles)
        if err < best_err:
            best_s, best_err = s, err
    return best_s


def fit_loop_overhead(
    design: NetworkDesign,
    measured_interval_cycles: float,
    board: Board = VC707,
    max_overhead: float = 16.0,
    step: float = 0.05,
) -> float:
    """Per-coordinate loop overhead implied by a measured interval.

    Scans ``loop_overhead`` and returns the value whose modeled interval
    is closest to the measurement. Used to reconcile the ideal dataflow
    model with board measurements (EXPERIMENTS.md): the paper's two test
    cases imply a consistent ~3-4-cycle overhead per coordinate of the
    HLS coordinate loop.
    """
    if measured_interval_cycles <= 0:
        raise ConfigurationError(
            f"measured interval must be positive, got {measured_interval_cycles}"
        )
    best_oh, best_err = 0.0, float("inf")
    oh = 0.0
    while oh <= max_overhead:
        interval = network_perf(design, board, loop_overhead=oh).interval
        err = abs(interval - measured_interval_cycles)
        if err < best_err:
            best_oh, best_err = oh, err
        oh = round(oh + step, 10)
    return best_oh


def interval_breakdown(perf: NetworkPerf) -> List[dict]:
    """Per-stage interval table (the bottleneck analysis a designer reads).

    One row per stage — DMA endpoints included — with the stage's
    per-image cycle budget split into its input, core and output demands,
    and whether it paces the pipeline.
    """
    bottleneck = perf.bottleneck
    rows = [
        {
            "stage": "dma_in",
            "kind": "dma",
            "in_beats": perf.dma_in_cycles,
            "core_cycles": 0,
            "out_beats": perf.dma_in_cycles,
            "interval": perf.dma_in_cycles,
            "bottleneck": bottleneck == "dma_in",
        }
    ]
    for l in perf.layers:
        rows.append(
            {
                "stage": l.name,
                "kind": l.kind,
                "in_beats": l.in_beats,
                "core_cycles": l.core_cycles,
                "out_beats": l.out_beats,
                "interval": l.interval,
                "bottleneck": l.name == bottleneck,
            }
        )
    rows.append(
        {
            "stage": "dma_out",
            "kind": "dma",
            "in_beats": perf.dma_out_cycles,
            "core_cycles": 0,
            "out_beats": perf.dma_out_cycles,
            "interval": perf.dma_out_cycles,
            "bottleneck": bottleneck == "dma_out",
        }
    )
    return rows


def batch_sweep(
    design: NetworkDesign,
    batches: List[int],
    board: Board = VC707,
) -> List[dict]:
    """Figure 6 series: mean time per image (µs) versus batch size."""
    perf = network_perf(design, board)
    rows = []
    for b in batches:
        mean_cycles = perf.mean_cycles_per_image(b)
        rows.append(
            {
                "batch": b,
                "mean_cycles": mean_cycles,
                "mean_us": board.seconds(mean_cycles) * 1e6,
            }
        )
    return rows
