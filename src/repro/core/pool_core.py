"""Sub-sampling (pooling) computation core.

One :class:`PoolCoreActor` per port: the paper inserts "parallel
sub-sampling layer cores, one for each previous layer output port", each a
perfectly pipelined filter (II=1, no FM combination) that replaces every
incoming window with its maximum or mean.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.config import DTYPE
from repro.dataflow.actor import Actor
from repro.errors import ConfigurationError


class PoolCoreActor(Actor):
    """Reduces each ``(kh, kw)`` window beat to one value at full rate.

    Ports: ``in`` (windows), ``out`` (scalars). FM interleaving passes
    through untouched — window beats arrive FM-minor and leave FM-minor.
    """

    def __init__(self, name: str, mode: str, count: int):
        super().__init__(name)
        if mode not in ("max", "mean"):
            raise ConfigurationError(f"{name!r}: unknown pool mode {mode!r}")
        if count < 1:
            raise ConfigurationError(f"{name!r}: count must be >= 1, got {count}")
        self.mode = mode
        #: Total window beats to process (coords x FMs x images).
        self.count = int(count)

    def run(self) -> Generator:
        if self.mode == "max":
            fn = lambda w: DTYPE(w.max())  # noqa: E731 - tight closure
        else:
            fn = lambda w: DTYPE(w.mean(dtype=np.float64))  # noqa: E731
        yield from self.relay("in", "out", count=self.count, fn=fn)
