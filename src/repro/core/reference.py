"""Vectorized NumPy reference of a design's exact semantics.

Independent of the :mod:`repro.nn` layer stack: computes, layer by layer,
what the dataflow design *should* output given its specs and weight
arrays, using the same functional primitives the golden tests rely on.
Used by :mod:`repro.core.verify` to localize divergence to a single layer
and by tests as a second, independent oracle next to ``Sequential``.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.config import DTYPE
from repro.core.builder import DesignWeights
from repro.core.layer_spec import ConvLayerSpec, FCLayerSpec, PoolLayerSpec
from repro.core.network_design import NetworkDesign
from repro.errors import ConfigurationError, ShapeError
from repro.nn.functional import conv2d, im2col
from repro.nn.layers.activation import activation_fn


def _pool(x: np.ndarray, spec: PoolLayerSpec) -> np.ndarray:
    n, c, h, w = x.shape
    oh, ow = spec.out_hw(h, w)
    cols = im2col(x.reshape(n * c, 1, h, w), spec.window)
    if spec.mode == "max":
        out = cols.max(axis=1)
    else:
        out = cols.mean(axis=1)
    return out.reshape(n, c, oh, ow).astype(DTYPE, copy=False)


def design_reference_forward(
    design: NetworkDesign,
    weights: DesignWeights,
    batch: np.ndarray,
    upto: int = -1,
) -> List[np.ndarray]:
    """Per-layer outputs of ``design`` on ``batch`` (layers ``0..upto``).

    Returns one ``(N, C, H, W)`` (or ``(N, F)`` for FC) array per layer.
    ``upto=-1`` runs the whole chain.
    """
    if batch.ndim != 4 or tuple(batch.shape[1:]) != design.input_shape:
        raise ShapeError(
            f"batch shape {batch.shape} does not match design input "
            f"{design.input_shape}"
        )
    if upto == -1:
        upto = design.n_layers - 1
    if not (0 <= upto < design.n_layers):
        raise ConfigurationError(
            f"upto must be in [0, {design.n_layers}), got {upto}"
        )
    x = batch.astype(DTYPE, copy=False)
    outs: List[np.ndarray] = []
    for placement in design.placements[: upto + 1]:
        spec = placement.spec
        if isinstance(spec, ConvLayerSpec):
            if spec.name not in weights:
                raise ConfigurationError(f"no weights for layer {spec.name!r}")
            w = weights[spec.name]
            x = conv2d(x, w["weight"], w["bias"], spec.window)
            x = activation_fn(spec.activation)(x)
        elif isinstance(spec, PoolLayerSpec):
            x = _pool(x, spec)
        elif isinstance(spec, FCLayerSpec):
            if spec.name not in weights:
                raise ConfigurationError(f"no weights for layer {spec.name!r}")
            w = weights[spec.name]
            if x.ndim == 4:
                # Flatten pixel-major, FM-minor: the stream order.
                n = x.shape[0]
                x = np.ascontiguousarray(x.transpose(0, 2, 3, 1)).reshape(n, -1)
            x = (x @ w["weight"].T + w["bias"]).astype(DTYPE, copy=False)
            x = activation_fn(spec.activation)(x)
        else:
            raise ConfigurationError(f"unknown spec kind {spec.kind!r}")
        outs.append(x)
    return outs
