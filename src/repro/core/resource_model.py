"""Analytical resource model: the FF/LUT/BRAM/DSP estimate behind Table I.

The estimate follows how Vivado HLS maps the paper's cores:

* the compute datapath instantiates one multiply lane per MAC the
  initiation interval forces into the same cycle
  (``lanes = ceil(total MACs per coordinate / II)``), each lane a float
  multiplier feeding the adder tree;
* the window buffers are fully partitioned register files (FF);
* weights are hard-coded in on-chip memory — BRAM when deep, LUT-ROM when
  shallow;
* the memory structure's FIFOs take BRAM per the full-buffering footprint
  (:mod:`repro.sst.sizing`), shallow ones fold into LUT-based SRLs;
* a constant *base design* accounts for the Microblaze + AXI DMA +
  interconnect measurement harness included in Table I's numbers.

Operator costs come from :mod:`repro.hls.ops`; every constant is
calibratable in one place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.core.layer_spec import ConvLayerSpec, FCLayerSpec, LayerSpec, PoolLayerSpec
from repro.core.network_design import LayerPlacement, NetworkDesign
from repro.errors import ConfigurationError
from repro.fpga.device import Device, XC7VX485T
from repro.hls.ops import op_cost
from repro.hls.resources import ResourceVector, bram36_for_words
from repro.sst.sizing import layer_buffer_budget

#: Microblaze softcore + AXI DMA + interconnect + timer (Section V-A's
#: "base design ... used as a support for the testing phase").
BASE_DESIGN = ResourceVector(ff=12_000, lut=15_000, bram=30, dsp=6)

#: Control/FSM overhead added per core instance.
CORE_OVERHEAD = ResourceVector(ff=800, lut=1_200, bram=0, dsp=0)

#: LUTs per word of shallow ROM/RAM (32-bit word in distributed memory).
LUT_PER_SHALLOW_WORD = 4

#: Words at or below which storage stays in LUTs instead of BRAM.
SHALLOW_WORDS = 512


def _storage(words: int) -> ResourceVector:
    """Resources for a ``words``-deep 32-bit on-chip memory."""
    if words < 0:
        raise ConfigurationError(f"words must be >= 0, got {words}")
    if words <= SHALLOW_WORDS:
        return ResourceVector(lut=words * LUT_PER_SHALLOW_WORD)
    return ResourceVector(bram=bram36_for_words(words, 32))


def _mac_lanes_resources(lanes: int, dtype: str = "float32") -> ResourceVector:
    """Datapath for ``lanes`` parallel MACs: multipliers + tree adders."""
    mul = op_cost("mul", dtype).resources
    add = op_cost("add", dtype).resources
    return (mul + add) * lanes


def conv_layer_resources(placement: LayerPlacement, dtype: str = "float32") -> ResourceVector:
    """Estimate for one convolutional layer (memory structure + core)."""
    spec = placement.spec
    assert isinstance(spec, ConvLayerSpec)
    c, h, w = placement.in_shape
    macs_per_coord = spec.out_fm * spec.in_fm * spec.kh * spec.kw
    lanes = math.ceil(macs_per_coord / spec.ii)
    total = _mac_lanes_resources(lanes, dtype)
    # Fully partitioned window registers: IN_PORTS x kh x kw x 32 bits.
    total = total + ResourceVector(ff=spec.in_ports * spec.kh * spec.kw * 32)
    # Hard-coded weights + biases.
    total = total + _storage(spec.weight_count())
    # Memory structure FIFOs (full buffering across all chains). A
    # blocked conv buffers one input tile per chain, not the image.
    plan = spec.block_plan(h, w)
    if plan is not None:
        budget = layer_buffer_budget(
            plan.tile_window, plan.iw, spec.in_fm, spec.in_ports
        )
    else:
        budget = layer_buffer_budget(spec.window, w, spec.in_fm, spec.in_ports)
    total = total + _storage(budget.fifo_words)
    return total + CORE_OVERHEAD


def pool_layer_resources(placement: LayerPlacement, dtype: str = "float32") -> ResourceVector:
    """Estimate for one sub-sampling layer (per-port cores)."""
    spec = placement.spec
    assert isinstance(spec, PoolLayerSpec)
    _, _, w = placement.in_shape
    cmp = op_cost("cmp", dtype).resources
    # One comparator tree (kk-1 comparators) per port at II=1.
    per_port = cmp * (spec.kh * spec.kw - 1) + ResourceVector(
        ff=spec.kh * spec.kw * 32
    )
    total = per_port * spec.in_ports
    budget = layer_buffer_budget(spec.window, w, spec.in_fm, spec.in_ports)
    total = total + _storage(budget.fifo_words)
    return total + CORE_OVERHEAD


def fc_layer_resources(placement: LayerPlacement, dtype: str = "float32") -> ResourceVector:
    """Estimate for one FC layer (single-port core, Section IV-B).

    With ``weight_streaming`` the matrix never touches on-chip memory —
    a single stream-fed MAC lane plus a double buffer replaces the ROMs
    and the per-output lane array (the perf model charges the bandwidth).
    """
    spec = placement.spec
    assert isinstance(spec, FCLayerSpec)
    if spec.weight_streaming:
        total = _mac_lanes_resources(1, dtype)
        total = total + ResourceVector(ff=spec.acc_lanes * 32)
        total = total + _storage(2 * spec.out_fm)  # weight-column buffer
        return total + CORE_OVERHEAD
    # One MAC lane per output FM: all OUT_FM 1x1 convolutions of an input
    # value happen in the same clock cycle.
    total = _mac_lanes_resources(spec.out_fm, dtype)
    # Interleaved accumulator registers: OUT_FM x lanes x 32 bits.
    total = total + ResourceVector(ff=spec.out_fm * spec.acc_lanes * 32)
    total = total + _storage(spec.weight_count())
    return total + CORE_OVERHEAD


def layer_resources(placement: LayerPlacement, dtype: str = "float32") -> ResourceVector:
    """Dispatch on the layer kind."""
    spec = placement.spec
    if isinstance(spec, ConvLayerSpec):
        return conv_layer_resources(placement, dtype)
    if isinstance(spec, PoolLayerSpec):
        return pool_layer_resources(placement, dtype)
    if isinstance(spec, FCLayerSpec):
        return fc_layer_resources(placement, dtype)
    raise ConfigurationError(f"unknown spec kind {spec.kind!r}")


@dataclass(frozen=True)
class DesignResources:
    """Per-layer and total resource usage of a design."""

    design_name: str
    per_layer: Dict[str, ResourceVector]
    base: ResourceVector

    @property
    def total(self) -> ResourceVector:
        acc = self.base
        for r in self.per_layer.values():
            acc = acc + r
        return acc

    def utilization(self, device: Device = XC7VX485T) -> Dict[str, float]:
        """Table I row: fractional utilization on ``device``."""
        return self.total.utilization(device.resources)

    def fits(self, device: Device = XC7VX485T) -> bool:
        """Whether the design fits the device."""
        return self.total.fits_in(device.resources)


def design_resources(
    design: NetworkDesign, dtype: str = "float32", include_base: bool = True
) -> DesignResources:
    """Estimate the full design's resources (Table I generator)."""
    per_layer = {
        p.spec.name: layer_resources(p, dtype) for p in design.placements
    }
    base = BASE_DESIGN if include_base else ResourceVector()
    return DesignResources(design.name, per_layer, base)


def buffering_savings(design: NetworkDesign) -> Dict[str, object]:
    """FIFO storage at full buffering vs certified depths, per layer.

    Closed-form companion to the depth prover
    (:mod:`repro.analysis.depths`): for every conv/pool memory structure
    it compares the channel words a full-buffering literal elaboration
    provisions (``chain_channel_words``: full-depth FIFOs + deep taps)
    with the word-minimal certified chain (``certified_chain_words``:
    greedy floors + unit taps), and maps both through :func:`_storage`
    to show where the shrink moves a buffer from BRAM back into LUTs.
    """
    from repro.sst.sizing import certified_chain_words, chain_channel_words

    layers: List[Dict[str, object]] = []
    full_total = 0
    cert_total = 0
    for p in design.placements:
        spec = p.spec
        if not isinstance(spec, (ConvLayerSpec, PoolLayerSpec)):
            continue
        w = p.in_shape[2]
        window = spec.window
        if isinstance(spec, ConvLayerSpec):
            # Blocked convs elaborate their chains over tile geometry.
            plan = spec.block_plan(p.in_shape[1], w)
            if plan is not None:
                window, w = plan.tile_window, plan.iw
        full = chain_channel_words(
            window, w, spec.in_group
        ) * spec.in_ports
        certified = certified_chain_words(
            window, w, spec.in_group
        ) * spec.in_ports
        full_store = _storage(full)
        cert_store = _storage(certified)
        full_total += full
        cert_total += certified
        layers.append({
            "layer": spec.name,
            "chains": spec.in_ports,
            "full_words": full,
            "certified_words": certified,
            "full_bram": full_store.bram,
            "full_lut": full_store.lut,
            "certified_bram": cert_store.bram,
            "certified_lut": cert_store.lut,
        })
    saved = full_total - cert_total
    return {
        "design": design.name,
        "layers": layers,
        "full_words": full_total,
        "certified_words": cert_total,
        "saved_words": saved,
        "saved_pct": round(100.0 * saved / full_total, 2) if full_total else 0.0,
        "full_bram": sum(int(row["full_bram"]) for row in layers),
        "certified_bram": sum(int(row["certified_bram"]) for row in layers),
    }
