"""End-to-end batch runner: simulate a design and verify/measure it.

The one-stop API used by examples, tests and benchmarks: build, run,
compare against the NumPy reference, and extract the measured timing
(per-image completion cycles, steady-state interval, Figure 6 curves from
actual cycle simulation rather than the analytical model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.builder import (
    BuiltNetwork,
    DesignWeights,
    build_network,
    extract_weights,
)
from repro.core.network_design import NetworkDesign
from repro.errors import ConfigurationError, ShapeError
from repro.fpga.board import Board, VC707
from repro.nn.network import Sequential


@dataclass
class RunReport:
    """Everything one simulated batch run produced."""

    design_name: str
    images: int
    total_cycles: int
    outputs: np.ndarray
    completion_cycles: List[int]
    #: Mean steady-state cycles between image completions (NaN if 1 image).
    measured_interval: float
    #: Max |simulated - reference| when a reference model was supplied.
    max_abs_error: Optional[float] = None

    def mean_cycles_per_image(self) -> float:
        """Total cycles divided by batch size (Figure 6's measured y)."""
        return self.completion_cycles[-1] / self.images

    def mean_us_per_image(self, board: Board = VC707) -> float:
        """Figure 6's y-axis in microseconds."""
        return board.seconds(self.mean_cycles_per_image()) * 1e6


def run_batch(
    design: NetworkDesign,
    weights: DesignWeights,
    batch: np.ndarray,
    reference: Optional[Sequential] = None,
    timed: bool = True,
    max_cycles: int = 50_000_000,
) -> RunReport:
    """Build ``design``, stream ``batch`` through it, and report.

    ``timed=True`` runs the cycle-accurate simulation (bounded FIFOs);
    ``timed=False`` runs the untimed functional executor (values only —
    completion cycles are then not meaningful for performance claims).
    ``reference`` optionally checks the outputs against the software model.
    """
    built = build_network(design, weights, batch)
    if timed:
        built.run(max_cycles=max_cycles)
    else:
        built.run_functional(max_cycles=max_cycles)
    outputs = built.outputs()
    completions = built.image_completion_cycles()
    interval = (
        float(np.mean(np.diff(completions))) if len(completions) > 1 else float("nan")
    )
    max_err = None
    if reference is not None:
        ref = reference.forward(batch)
        if ref.shape != outputs.shape:
            raise ShapeError(
                f"reference output {ref.shape} != simulated {outputs.shape}"
            )
        max_err = float(np.max(np.abs(ref - outputs)))
    return RunReport(
        design_name=design.name,
        images=batch.shape[0],
        total_cycles=built.result.cycles,
        outputs=outputs,
        completion_cycles=completions,
        measured_interval=interval,
        max_abs_error=max_err,
    )


def run_trained(
    design: NetworkDesign,
    model: Sequential,
    batch: np.ndarray,
    timed: bool = True,
) -> RunReport:
    """Convenience wrapper: extract ``model``'s weights and verify against it."""
    weights = extract_weights(design, model)
    return run_batch(design, weights, batch, reference=model, timed=timed)


def simulated_batch_sweep(
    design: NetworkDesign,
    weights: DesignWeights,
    image: np.ndarray,
    batches: Sequence[int],
    board: Board = VC707,
    max_cycles: int = 50_000_000,
) -> List[dict]:
    """Figure 6 from actual cycle simulation: one run per batch size.

    ``image`` is a single ``(C, H, W)`` sample replicated ``B`` times per
    run (the timing is data-independent, so replication is sound).
    """
    if image.ndim != 3:
        raise ConfigurationError(f"image must be (C, H, W), got {image.shape}")
    rows = []
    for b in batches:
        batch = np.repeat(image[None], b, axis=0)
        report = run_batch(design, weights, batch, timed=True, max_cycles=max_cycles)
        rows.append(
            {
                "batch": b,
                "mean_cycles": report.mean_cycles_per_image(),
                "mean_us": report.mean_us_per_image(board),
                "interval": report.measured_interval,
            }
        )
    return rows
