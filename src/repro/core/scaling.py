"""Layer-scaling transformations: single-port <-> fully parallel.

Section IV-A's headline property: each layer "scales up ... from
single-input-port/single-output-port to fully parallel if enough
resources are available". These helpers produce rescaled copies of a
design; the search that picks a configuration under a device budget lives
in :mod:`repro.dse`.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.layer_spec import ConvLayerSpec, FCLayerSpec, LayerSpec, PoolLayerSpec
from repro.core.network_design import NetworkDesign
from repro.errors import ConfigurationError


def divisors(n: int) -> List[int]:
    """Sorted positive divisors of ``n`` (valid port counts for ``n`` FMs)."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    return [d for d in range(1, n + 1) if n % d == 0]


def port_options(spec: LayerSpec) -> List[Tuple[int, int]]:
    """All (in_ports, out_ports) configurations a layer supports.

    Pool layers keep symmetric ports; FC layers are fixed single-port
    (Section IV-B); conv layers take any divisor pair.
    """
    if isinstance(spec, ConvLayerSpec):
        return [
            (i, o) for i in divisors(spec.in_fm) for o in divisors(spec.out_fm)
        ]
    if isinstance(spec, PoolLayerSpec):
        return [(p, p) for p in divisors(spec.in_fm)]
    if isinstance(spec, FCLayerSpec):
        return [(1, 1)]
    raise ConfigurationError(f"unknown spec kind {spec.kind!r}")


def with_layer_ports(
    design: NetworkDesign, layer_name: str, in_ports: int, out_ports: int
) -> NetworkDesign:
    """A new design with one layer's port counts replaced (and revalidated).

    Raises if the resulting chain violates the adapter divisibility rules.
    """
    new_specs = []
    found = False
    for spec in design.specs:
        if spec.name == layer_name:
            new_specs.append(spec.with_ports(in_ports, out_ports))
            found = True
        else:
            new_specs.append(spec)
    if not found:
        raise ConfigurationError(f"no layer named {layer_name!r} in {design.name!r}")
    return NetworkDesign(design.name, design.input_shape, new_specs)


def single_port_design(design: NetworkDesign) -> NetworkDesign:
    """Every layer at 1 input / 1 output port (the minimal configuration)."""
    new_specs = [spec.with_ports(1, 1) for spec in design.specs]
    return NetworkDesign(design.name, design.input_shape, new_specs)


def fully_parallel_design(design: NetworkDesign) -> NetworkDesign:
    """Every layer at maximum parallelism (``ports == FM counts``).

    The resulting chain is always adapter-valid because each FM gets its
    own port on both sides. This is the "maxing out the achievable
    performance" endpoint of Section IV-C — it rarely fits a real device.
    """
    new_specs = []
    for spec in design.specs:
        if isinstance(spec, FCLayerSpec):
            new_specs.append(spec)  # FC stays single-port by construction
        else:
            new_specs.append(spec.with_ports(spec.in_fm, spec.out_fm))
    return NetworkDesign(design.name, design.input_shape, new_specs)
