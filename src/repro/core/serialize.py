"""Design and weight serialization: JSON for specs, NPZ for parameters.

A design round-trips through a plain dictionary (and therefore JSON), so
configurations found by DSE can be stored, diffed and reloaded;
weights round-trip through a single ``.npz`` with ``<layer>.<param>``
keys — the artifact the offline-training phase hands to the elaboration
step.
"""

from __future__ import annotations

import json
from typing import Dict, Union

import numpy as np

from repro.config import DTYPE
from repro.core.builder import DesignWeights
from repro.core.layer_spec import ConvLayerSpec, FCLayerSpec, LayerSpec, PoolLayerSpec
from repro.core.network_design import NetworkDesign
from repro.errors import ConfigurationError
from repro.sst.block import BlockSpec

_KINDS = {"conv": ConvLayerSpec, "pool": PoolLayerSpec, "fc": FCLayerSpec}

_COMMON_FIELDS = ("name", "in_fm", "out_fm", "in_ports", "out_ports", "activation")
_EXTRA_FIELDS = {
    "conv": ("kh", "kw", "stride", "pad", "block"),
    "pool": ("kh", "kw", "stride", "mode"),
    "fc": ("acc_lanes", "weight_streaming"),
}


def spec_to_dict(spec: LayerSpec) -> dict:
    """One layer spec as a plain dictionary."""
    if spec.kind not in _KINDS:
        raise ConfigurationError(f"unknown spec kind {spec.kind!r}")
    d = {"kind": spec.kind}
    for f in _COMMON_FIELDS + _EXTRA_FIELDS[spec.kind]:
        d[f] = getattr(spec, f)
    # BlockSpec is not JSON-safe: store it as a [th, tw] pair.
    block = d.get("block")
    if isinstance(block, BlockSpec):
        d["block"] = [block.th, block.tw]
    return d


def spec_from_dict(d: dict) -> LayerSpec:
    """Rebuild a layer spec from :func:`spec_to_dict` output."""
    try:
        kind = d["kind"]
        cls = _KINDS[kind]
    except KeyError:
        raise ConfigurationError(f"missing/unknown spec kind in {d!r}") from None
    kwargs = {f: d[f] for f in _COMMON_FIELDS + _EXTRA_FIELDS[kind] if f in d}
    block = kwargs.get("block")
    if block is not None and not isinstance(block, BlockSpec):
        if isinstance(block, int):
            block = [block, block]
        if not (
            isinstance(block, (list, tuple))
            and len(block) == 2
            and all(isinstance(v, int) for v in block)
        ):
            raise ConfigurationError(
                f"conv block must be [th, tw] or an int, got {block!r}"
            )
        kwargs["block"] = BlockSpec(block[0], block[1])
    return cls(**kwargs)


def design_to_dict(design: NetworkDesign) -> dict:
    """A whole design as a JSON-safe dictionary."""
    return {
        "name": design.name,
        "input_shape": list(design.input_shape),
        "layers": [spec_to_dict(s) for s in design.specs],
    }


def design_from_dict(d: dict) -> NetworkDesign:
    """Rebuild (and re-validate) a design from its dictionary form."""
    try:
        name = d["name"]
        shape = tuple(d["input_shape"])
        layers = d["layers"]
    except KeyError as exc:
        raise ConfigurationError(f"design dict missing key: {exc}") from None
    return NetworkDesign(name, shape, [spec_from_dict(s) for s in layers])


def design_to_json(design: NetworkDesign, indent: int = 2) -> str:
    """The design as a JSON document."""
    return json.dumps(design_to_dict(design), indent=indent)


def design_from_json(text: str) -> NetworkDesign:
    """Rebuild a design from :func:`design_to_json` output."""
    return design_from_dict(json.loads(text))


def save_weights(path: str, weights: DesignWeights) -> None:
    """Persist weights to a single ``.npz`` with ``layer.param`` keys."""
    flat: Dict[str, np.ndarray] = {}
    for layer, params in weights.items():
        for pname, arr in params.items():
            flat[f"{layer}.{pname}"] = np.asarray(arr, dtype=DTYPE)
    np.savez(path, **flat)


def load_weights(path: str) -> DesignWeights:
    """Load weights saved by :func:`save_weights`."""
    out: DesignWeights = {}
    with np.load(path) as data:
        for key in data.files:
            if "." not in key:
                raise ConfigurationError(
                    f"weight key {key!r} is not of the form 'layer.param'"
                )
            layer, pname = key.rsplit(".", 1)
            out.setdefault(layer, {})[pname] = data[key].astype(DTYPE)
    return out
