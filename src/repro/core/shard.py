"""Sharded co-simulation harness: run and verify a multi-FPGA plan.

:func:`run_shard` is the executable counterpart of
:func:`~repro.core.multi_fpga.plan_split`: for each requested device
count it builds the *same* design as one multi-device simulation
(``build_network(multi_plan=...)`` cuts the graph at the planned
boundaries and inserts paced link actors), runs it on the requested
engines, and machine-checks the co-simulation against the plan:

* **value equivalence** — the sharded output digest must equal the
  single-device digest bit for bit, per engine (and the engines agree
  with each other by the existing three-way equivalence contract);
* **timing agreement** — on the compiled engine the measured
  steady-state interval (deltas of per-image completion cycles) must
  equal ``MultiFpgaPlan.interval`` exactly on unthrottled runs, link
  stages included. The interpreted engines carry pipeline-level
  scheduling slack the performance model deliberately excludes (the
  profiler's 10% ``INTERVAL_TOLERANCE``), so their exact contract is
  relative: the sharded interval must equal
  ``max(single-device measured interval, link stage cycles)`` — cutting
  the pipeline adds exactly the planned link stages and nothing else —
  and every compute core must hold the Eq. 4 per-core II identity at
  0.00% (link parks are excluded from fires, so a link at modeled
  bandwidth never perturbs core II);
* **fault campaign** — optional link throttles
  (:class:`~repro.faults.DmaThrottle` on the ``link*.wire`` channels)
  must preserve the digest (timing-only faults) while the degraded
  interval tracks the analytical replay in
  :func:`repro.faults.analytical.throttled_link_rate`, seed-exactly
  phased per wire.

The result is a :class:`ShardReport` behind the unified Report envelope
(``repro shard --json``).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.builder import BuiltNetwork, build_network, random_weights
from repro.core.multi_fpga import LinkModel, MultiFpgaPlan, plan_split
from repro.core.network_design import NetworkDesign
from repro.errors import ConfigurationError
from repro.fpga.device import Device, XC7VX485T
from repro.report.base import Report

#: Engines the harness may run; "lockstep" is allowed but rarely useful.
_ENGINES = ("event", "lockstep", "compiled")


def measured_interval(built: BuiltNetwork) -> Optional[int]:
    """Steady-state cycles/image measured at the sink (max completion
    delta), or ``None`` when the batch has fewer than two images."""
    cc = built.image_completion_cycles()
    if len(cc) < 2:
        return None
    return max(cc[i + 1] - cc[i] for i in range(len(cc) - 1))


@dataclass(frozen=True)
class EngineRun:
    """One engine's verdict on one sharded build."""

    engine: str
    cycles: int
    digest: str
    #: Digest equals the same engine's single-device digest.
    digest_match: bool
    #: Max per-image completion delta (None when images < 2).
    measured_interval: Optional[int]
    #: The exact expectation: ``plan.interval`` on the compiled engine,
    #: ``max(single-device measured, link stages)`` on the interpreted
    #: engines (which carry modeled-out pipeline scheduling slack).
    expected_interval: Optional[int]
    #: |measured - expected| / expected * 100 (None when unmeasurable).
    interval_error_pct: Optional[float]
    #: Worst per-core Eq. 4 relative II error (fires identity); 0.0 on
    #: every engine — link stages never perturb core II.
    core_ii_rel_err: float
    #: True when scheduler="compiled" silently fell back to "event".
    fell_back: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "engine": self.engine,
            "cycles": self.cycles,
            "digest": self.digest,
            "digest_match": self.digest_match,
            "measured_interval": self.measured_interval,
            "expected_interval": self.expected_interval,
            "interval_error_pct": self.interval_error_pct,
            "core_ii_rel_err": self.core_ii_rel_err,
            "fell_back": self.fell_back,
        }


@dataclass(frozen=True)
class DeviceRun:
    """One device count: the plan plus every engine's run."""

    n_devices: int
    plan: MultiFpgaPlan
    engines: Tuple[EngineRun, ...]

    @property
    def ok(self) -> bool:
        return all(
            e.digest_match
            and not e.fell_back
            and e.core_ii_rel_err == 0.0
            and (e.interval_error_pct in (None, 0.0))
            for e in self.engines
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_devices": self.n_devices,
            "ok": self.ok,
            "plan": self.plan.to_dict(),
            "engines": [e.to_dict() for e in self.engines],
        }


@dataclass(frozen=True)
class ThrottleRun:
    """One link-throttle scenario cross-checked against the analytics."""

    n_devices: int
    period: int
    burst: int
    digest_match: bool
    #: max(plan stages, per-wire analytical throttled stream cycles).
    predicted_interval: float
    measured_interval: int
    error_pct: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_devices": self.n_devices,
            "period": self.period,
            "burst": self.burst,
            "digest_match": self.digest_match,
            "predicted_interval": round(self.predicted_interval, 2),
            "measured_interval": self.measured_interval,
            "error_pct": round(self.error_pct, 3),
        }


class ShardReport(Report):
    """Digest/timing verdicts of a sharded co-simulation sweep."""

    kind: ClassVar[str] = "shard"

    def __init__(
        self,
        design_name: str,
        images: int,
        seed: int,
        baseline_digests: Dict[str, str],
        runs: List[DeviceRun],
        throttles: List[ThrottleRun],
    ):
        self.design_name = design_name
        self.images = images
        self.seed = seed
        self.baseline_digests = dict(baseline_digests)
        self.runs = list(runs)
        self.throttles = list(throttles)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.runs) and all(
            t.digest_match for t in self.throttles
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "design": self.design_name,
            "images": self.images,
            "seed": self.seed,
            "ok": self.ok,
            "baseline_digests": self.baseline_digests,
            "runs": [r.to_dict() for r in self.runs],
            "throttles": [t.to_dict() for t in self.throttles],
        }

    def summary(self) -> str:
        lines = [
            f"shard {self.design_name}: {self.images} image(s), "
            f"seed {self.seed}, {'OK' if self.ok else 'MISMATCH'}"
        ]
        for r in self.runs:
            for e in r.engines:
                err = (
                    "n/a"
                    if e.interval_error_pct is None
                    else f"{e.interval_error_pct:.2f}%"
                )
                lines.append(
                    f"  {r.n_devices} device(s) [{e.engine}]: "
                    f"digest {'match' if e.digest_match else 'MISMATCH'}, "
                    f"interval {e.measured_interval} vs expected "
                    f"{e.expected_interval} (err {err}, plan "
                    f"{r.plan.interval}, core II err "
                    f"{e.core_ii_rel_err * 100:.2f}%, "
                    f"bottleneck {r.plan.bottleneck})"
                )
        for t in self.throttles:
            lines.append(
                f"  throttle p={t.period} b={t.burst} on {t.n_devices} "
                f"device(s): digest "
                f"{'match' if t.digest_match else 'MISMATCH'}, interval "
                f"{t.measured_interval} vs predicted "
                f"{t.predicted_interval:.1f} (err {t.error_pct:.2f}%)"
            )
        return "\n".join(lines)


def _core_ii_error(design: NetworkDesign, built: BuiltNetwork, images: int) -> float:
    """Worst per-core Eq. 4 relative II error (the profiler's fires
    identity: measured II = fires / (coords * images))."""
    from repro.profiling.profiler import _core_coords

    worst = 0.0
    stats = built.result.actor_stats
    for placement in design.placements:
        spec = placement.spec
        coords = _core_coords(placement)
        prefix = f"{spec.name}.core"
        for actor in stats:
            if not (actor == prefix or actor.startswith(prefix)):
                continue
            fires = max(p["fires"] for p in stats[actor])
            measured = fires / (coords * images)
            worst = max(worst, abs(measured - float(spec.ii)) / float(spec.ii))
    return worst


def _run_engine(built: BuiltNetwork, engine: str) -> bool:
    """Run one built network; returns True on compiled->event fallback."""
    if engine != "compiled":
        built.run(scheduler=engine)
        return False
    from repro.compiled import CompiledFallbackWarning

    fell_back = False
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", CompiledFallbackWarning)
        built.run(scheduler="compiled")
        fell_back = any(
            issubclass(w.category, CompiledFallbackWarning) for w in caught
        )
    return fell_back


def _throttled_prediction(
    built: BuiltNetwork, plan: MultiFpgaPlan, period: int, burst: int, seed: int
) -> float:
    """Analytical faulted interval: the throttled wires re-priced by the
    exact commit replay, phased with the same seeded RNG the injector
    draws from, against the plan's unthrottled stages."""
    from repro.faults.analytical import throttled_link_rate
    from repro.faults.injectors import target_rng

    beat = plan.link.beat_interval()
    worst = float(
        max(
            max(s.interval for s in plan.segments),
            plan.dma_in_cycles,
            plan.dma_out_cycles,
        )
    )
    for d in range(plan.n_devices - 1):
        name = f"link{d}.wire"
        capacity = built.graph.channels[name].capacity
        phase = target_rng(seed, f"dma:{name}").randrange(period)
        rate = throttled_link_rate(
            period, burst, beat=beat, capacity=capacity, phase=phase
        )
        worst = max(worst, plan.segments[d].egress_words * rate)
    return worst


def run_shard(
    design: NetworkDesign,
    devices: Sequence[int] = (1, 2, 4),
    images: int = 4,
    seed: int = 0,
    link: Optional[LinkModel] = None,
    device: Device = XC7VX485T,
    fit: bool = True,
    engines: Sequence[str] = ("event", "compiled"),
    throttles: Sequence[Tuple[int, int]] = (),
) -> ShardReport:
    """Co-simulate ``design`` at each device count and verify the shards.

    Weights and the batch derive from ``seed`` alone (the
    ``repro.faults.harness.run_design`` convention), so every run in the
    sweep processes identical data. ``throttles`` is a sequence of
    ``(period, burst)`` DMA-throttle parameters applied to every
    ``link*.wire`` channel of each multi-device placement (event engine
    only — faults perturb interpreted execution).
    """
    from repro.faults import DmaThrottle, FaultScenario, arm_faults
    from repro.faults.harness import output_digest

    for engine in engines:
        if engine not in _ENGINES:
            raise ConfigurationError(
                f"unknown engine {engine!r}; expected one of {_ENGINES}"
            )
    if images < 1:
        raise ConfigurationError(f"images must be >= 1, got {images}")
    weights = random_weights(design, seed=seed)
    rng = np.random.default_rng(seed)
    batch = rng.uniform(0, 1, (images,) + design.input_shape).astype(
        np.float32
    )

    def build(plan: Optional[MultiFpgaPlan]) -> BuiltNetwork:
        return build_network(design, weights, batch, multi_plan=plan)

    # Per-engine single-device baselines: the digest reference and the
    # measured monolithic interval (interpreted engines carry pipeline
    # scheduling slack the model excludes; sharding must add exactly the
    # planned link stages on top of it).
    baselines: Dict[str, str] = {}
    baseline_ivs: Dict[str, Optional[int]] = {}
    for engine in engines:
        built = build(None)
        _run_engine(built, engine)
        baselines[engine] = output_digest(built.outputs())
        baseline_ivs[engine] = measured_interval(built)

    plans: Dict[int, MultiFpgaPlan] = {}
    runs: List[DeviceRun] = []
    for n in devices:
        plan = plan_split(design, n, device=device, link=link, fit=fit)
        plans[n] = plan
        link_stages = [plan.link_cycles(d) for d in range(n - 1)]
        engine_runs: List[EngineRun] = []
        for engine in engines:
            built = build(plan if n > 1 else None)
            fell_back = _run_engine(built, engine)
            digest = output_digest(built.outputs())
            measured = measured_interval(built)
            if engine == "compiled" and not fell_back:
                expected: Optional[int] = plan.interval
            else:
                base = baseline_ivs[engine]
                expected = (
                    None if base is None else max([base, *link_stages])
                )
            err = (
                None
                if measured is None or expected is None
                else abs(measured - expected) / expected * 100.0
            )
            engine_runs.append(
                EngineRun(
                    engine=engine,
                    cycles=built.result.cycles,
                    digest=digest,
                    digest_match=digest == baselines[engine],
                    measured_interval=measured,
                    expected_interval=expected,
                    interval_error_pct=err,
                    core_ii_rel_err=_core_ii_error(design, built, images),
                    fell_back=fell_back,
                )
            )
        runs.append(DeviceRun(n_devices=n, plan=plan, engines=tuple(engine_runs)))

    throttle_runs: List[ThrottleRun] = []
    ref_digest = next(iter(baselines.values()), None)
    for n in devices:
        if n < 2:
            continue
        plan = plans[n]
        for period, burst in throttles:
            built = build(plan)
            scenario = FaultScenario(
                name=f"link-throttle-p{period}-b{burst}",
                faults=(
                    DmaThrottle(
                        channels="link*.wire", period=period, burst=burst
                    ),
                ),
            )
            armed = arm_faults(built.graph, scenario, seed)
            sim = built.graph.build_simulator(scheduler="event")
            sim.faults = armed
            built.result = sim.run()
            predicted = _throttled_prediction(built, plan, period, burst, seed)
            cc = built.image_completion_cycles()
            if len(cc) < 2:
                raise ConfigurationError(
                    "a throttle campaign needs images >= 2 to measure the "
                    "degraded interval"
                )
            # Mean delta: periodic throttle phases drift across images,
            # the analytic replay models the long-run rate.
            measured = math.ceil((cc[-1] - cc[0]) / (len(cc) - 1))
            throttle_runs.append(
                ThrottleRun(
                    n_devices=n,
                    period=period,
                    burst=burst,
                    digest_match=output_digest(built.outputs()) == ref_digest,
                    predicted_interval=predicted,
                    measured_interval=measured,
                    error_pct=abs(measured - predicted) / predicted * 100.0,
                )
            )

    return ShardReport(
        design_name=design.name,
        images=images,
        seed=seed,
        baseline_digests=baselines,
        runs=runs,
        throttles=throttle_runs,
    )
