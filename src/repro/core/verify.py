"""Layer-wise verification: localize dataflow/reference divergence.

Given a design, weights and a batch, :func:`verify_layerwise` simulates
every *prefix* of the layer chain as its own dataflow graph and compares
each prefix's streamed output against the NumPy reference of the same
prefix (:mod:`repro.core.reference`). The result pinpoints the first layer
whose hardware elaboration diverges — the debugging workflow a designer
needs when a full-network check merely says "outputs differ".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.builder import DesignWeights, build_network
from repro.core.network_design import NetworkDesign
from repro.core.reference import design_reference_forward
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LayerCheck:
    """Outcome of verifying one prefix of the chain."""

    layer: str
    kind: str
    max_abs_error: float
    passed: bool


@dataclass(frozen=True)
class VerifyReport:
    """All prefix checks plus the overall verdict."""

    design_name: str
    checks: List[LayerCheck]
    tolerance: float

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    @property
    def first_failure(self) -> Optional[str]:
        """Name of the first diverging layer, or ``None``."""
        for c in self.checks:
            if not c.passed:
                return c.layer
        return None

    def render(self) -> str:
        """Human-readable per-layer table."""
        lines = [f"=== layer-wise verification: {self.design_name} "
                 f"(tol {self.tolerance:g}) ==="]
        width = max(len(c.layer) for c in self.checks)
        for c in self.checks:
            mark = "ok " if c.passed else "FAIL"
            lines.append(
                f"  {mark} {c.layer.ljust(width)} [{c.kind}] "
                f"max|err| = {c.max_abs_error:.3e}"
            )
        verdict = "PASSED" if self.passed else f"FAILED at {self.first_failure}"
        lines.append(f"  -> {verdict}")
        return "\n".join(lines)


def _prefix_design(design: NetworkDesign, upto: int) -> NetworkDesign:
    """The sub-design consisting of layers ``0..upto``."""
    return NetworkDesign(
        f"{design.name}[:{upto + 1}]",
        design.input_shape,
        design.specs[: upto + 1],
    )


def verify_layerwise(
    design: NetworkDesign,
    weights: DesignWeights,
    batch: np.ndarray,
    tolerance: float = 1e-4,
    timed: bool = False,
    scheduler: Optional[str] = None,
) -> VerifyReport:
    """Simulate every chain prefix and compare against the reference.

    ``timed=False`` (default) uses the fast functional executor — the
    values are identical to the timed run by construction (and that
    equivalence has its own tests). Passing ``scheduler`` implies a
    timed run on that engine (``"event"``, ``"lockstep"`` or
    ``"compiled"``).
    """
    if tolerance <= 0:
        raise ConfigurationError(f"tolerance must be positive, got {tolerance}")
    refs = design_reference_forward(design, weights, batch)
    checks: List[LayerCheck] = []
    for i, placement in enumerate(design.placements):
        sub = _prefix_design(design, i)
        built = build_network(sub, weights, batch)
        if timed or scheduler is not None:
            built.run(scheduler=scheduler or "event")
        else:
            built.run_functional()
        got = built.outputs()
        ref = refs[i]
        if ref.ndim == 2 and got.ndim == 2:
            pass
        elif ref.shape != got.shape:
            # FC reference is (N, F); conv/pool outputs are (N, C, OH, OW).
            ref = ref.reshape(got.shape)
        err = float(np.max(np.abs(got - ref))) if got.size else 0.0
        checks.append(
            LayerCheck(
                layer=placement.spec.name,
                kind=placement.spec.kind,
                max_abs_error=err,
                passed=err <= tolerance,
            )
        )
    return VerifyReport(design.name, checks, tolerance)
