"""Larger network designs: AlexNet- and VGG-16-class models.

Section VI: "We will then also test the proposed approach on bigger and
more popular CNN models like AlexNet or VGG". These designs exercise the
*analytical* half of the methodology at full scale — shapes, initiation
intervals, per-layer intervals, resource bills, DSE and multi-FPGA
splits — without cycle simulation (a 224x224 simulation is possible but
pointless for the questions these models answer).

Both are faithful to the original topologies up to features the paper's
methodology does not define: local response normalization (AlexNet) is
omitted, the dual-GPU grouping of AlexNet's convolutions is flattened,
and all activations are ReLU as in the originals.

Two tiers per model:

* ``alexnet_design`` / ``vgg16_design`` — the unblocked references.
  Above the pilot weight limit they are cycle-simulated as pilot
  downscales; the full-size designs remain analytically checkable.
* ``alexnet_blocked_design`` / ``vgg16_blocked_design`` — the promoted
  full-size zoo members: block convolution
  (:mod:`repro.core.block_transform`) on every conv, with per-layer
  tile sizes chosen so each memory structure buffers tiles instead of
  full feature maps. These simulate full-size on all three engines
  (weight streaming is deliberately left off: an FC layer that streams
  its matrix needs one beat per weight, which would put tens of
  millions of cycles between images and make cycle simulation
  pointless). ``*_pilot_design`` are their deterministic pilot
  downscales for quick CI fault/profile loops (pilots strip blocking).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.layer_spec import ConvLayerSpec, FCLayerSpec, LayerSpec, PoolLayerSpec
from repro.core.network_design import NetworkDesign

#: Tile heights/widths for the promoted blocked AlexNet: conv1 emits
#: 55x55 (5 tiles of 11), conv2 27x27 (3 tiles of 9), conv3-5 13x13
#: (2 tiles of 7, one overhang row/column dropped by the merge stage).
ALEXNET_TILES: Dict[str, int] = {
    "conv1": 11,
    "conv2": 9,
    "conv3": 7,
    "conv4": 7,
    "conv5": 7,
}

#: Tile sizes for the promoted blocked VGG-16: all outputs are powers
#: of two times 7 (224/112/56/28/14), tiled 28 -> 28 -> 14 -> 14 -> 7 so
#: the deepest, widest layers hold the smallest tiles.
VGG16_TILES: Dict[str, int] = {
    **{f"b1_conv{i}": 28 for i in (1, 2)},
    **{f"b2_conv{i}": 28 for i in (1, 2)},
    **{f"b3_conv{i}": 14 for i in (1, 2, 3)},
    **{f"b4_conv{i}": 14 for i in (1, 2, 3)},
    **{f"b5_conv{i}": 7 for i in (1, 2, 3)},
}


def alexnet_design(
    name: str = "alexnet", weight_streaming: bool = False
) -> NetworkDesign:
    """AlexNet (Krizhevsky et al. 2012), single-port configuration.

    227x227x3 input; the classic 5-conv / 3-pool / 3-FC topology with
    ~60M parameters. ``weight_streaming=True`` streams the FC matrices
    from off-chip memory (extension E7) instead of storing them on chip.
    """
    return NetworkDesign(
        name,
        input_shape=(3, 227, 227),
        specs=[
            ConvLayerSpec(name="conv1", in_fm=3, out_fm=96, kh=11, stride=4,
                          activation="relu"),
            PoolLayerSpec(name="pool1", in_fm=96, out_fm=96, kh=3, stride=2),
            ConvLayerSpec(name="conv2", in_fm=96, out_fm=256, kh=5, pad=2,
                          activation="relu"),
            PoolLayerSpec(name="pool2", in_fm=256, out_fm=256, kh=3, stride=2),
            ConvLayerSpec(name="conv3", in_fm=256, out_fm=384, kh=3, pad=1,
                          activation="relu"),
            ConvLayerSpec(name="conv4", in_fm=384, out_fm=384, kh=3, pad=1,
                          activation="relu"),
            ConvLayerSpec(name="conv5", in_fm=384, out_fm=256, kh=3, pad=1,
                          activation="relu"),
            PoolLayerSpec(name="pool5", in_fm=256, out_fm=256, kh=3, stride=2),
            FCLayerSpec(name="fc6", in_fm=256 * 6 * 6, out_fm=4096,
                        activation="relu", weight_streaming=weight_streaming),
            FCLayerSpec(name="fc7", in_fm=4096, out_fm=4096, activation="relu",
                        weight_streaming=weight_streaming),
            FCLayerSpec(name="fc8", in_fm=4096, out_fm=1000,
                        weight_streaming=weight_streaming),
        ],
    )


def _vgg_block(prefix: str, in_fm: int, out_fm: int, convs: int) -> List[LayerSpec]:
    specs: List[LayerSpec] = []
    fm = in_fm
    for i in range(convs):
        specs.append(
            ConvLayerSpec(name=f"{prefix}_conv{i + 1}", in_fm=fm, out_fm=out_fm,
                          kh=3, pad=1, activation="relu")
        )
        fm = out_fm
    specs.append(
        PoolLayerSpec(name=f"{prefix}_pool", in_fm=out_fm, out_fm=out_fm,
                      kh=2, stride=2)
    )
    return specs


def vgg16_design(
    name: str = "vgg16", weight_streaming: bool = False
) -> NetworkDesign:
    """VGG-16 (Simonyan & Zisserman 2014), single-port configuration.

    224x224x3 input, 13 convolutions in 5 blocks, 3 FC layers, ~138M
    parameters. ``weight_streaming=True`` streams the (dominant) FC
    matrices from off-chip memory (extension E7).
    """
    specs: List[LayerSpec] = []
    specs += _vgg_block("b1", 3, 64, 2)
    specs += _vgg_block("b2", 64, 128, 2)
    specs += _vgg_block("b3", 128, 256, 3)
    specs += _vgg_block("b4", 256, 512, 3)
    specs += _vgg_block("b5", 512, 512, 3)
    specs += [
        FCLayerSpec(name="fc6", in_fm=512 * 7 * 7, out_fm=4096, activation="relu",
                    weight_streaming=weight_streaming),
        FCLayerSpec(name="fc7", in_fm=4096, out_fm=4096, activation="relu",
                    weight_streaming=weight_streaming),
        FCLayerSpec(name="fc8", in_fm=4096, out_fm=1000,
                    weight_streaming=weight_streaming),
    ]
    return NetworkDesign(name, (3, 224, 224), specs)


def alexnet_blocked_design(name: str = "alexnet") -> NetworkDesign:
    """Full-size AlexNet promoted for cycle simulation.

    :data:`ALEXNET_TILES` block convolution on every conv layer; never
    swapped for a pilot by the simulation gates.
    """
    return alexnet_design(name).with_blocking(ALEXNET_TILES)


def vgg16_blocked_design(name: str = "vgg16") -> NetworkDesign:
    """Full-size VGG-16 promoted for cycle simulation.

    :data:`VGG16_TILES` block convolution on every conv layer; never
    swapped for a pilot by the simulation gates.
    """
    return vgg16_design(name).with_blocking(VGG16_TILES)


def alexnet_pilot_design() -> NetworkDesign:
    """Deterministic pilot downscale of the promoted AlexNet."""
    from repro.faults.harness import pilot_design

    return pilot_design(alexnet_blocked_design())


def vgg16_pilot_design() -> NetworkDesign:
    """Deterministic pilot downscale of the promoted VGG-16."""
    from repro.faults.harness import pilot_design

    return pilot_design(vgg16_blocked_design())
