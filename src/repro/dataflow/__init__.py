"""Cycle-level dataflow simulation substrate.

This subpackage is the simulated stand-in for the FPGA fabric: bounded FIFO
:class:`~repro.dataflow.channel.Channel` links, coroutine-based
:class:`~repro.dataflow.actor.Actor` processes, a two-phase cycle-accurate
:class:`~repro.dataflow.simulator.Simulator`, an untimed
:class:`~repro.dataflow.functional.FunctionalExecutor`, and the standard
actor library (sources, sinks, routing adapters).
"""

from repro.dataflow.actor import Actor
from repro.dataflow.actors import (
    ArraySource,
    FifoStage,
    Fork,
    Interleaver,
    ListSink,
    MapActor,
    ScheduleDemux,
)
from repro.dataflow.channel import Channel, ChannelStats
from repro.dataflow.digest import stable_digest
from repro.dataflow.events import ChannelWait, Gate, WaitCycles
from repro.dataflow.functional import FunctionalExecutor
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.simulator import SimulationResult, Simulator
from repro.dataflow.trace import Tracer

__all__ = [
    "Actor",
    "ArraySource",
    "Channel",
    "ChannelStats",
    "ChannelWait",
    "DataflowGraph",
    "FifoStage",
    "Fork",
    "FunctionalExecutor",
    "Gate",
    "Interleaver",
    "ListSink",
    "MapActor",
    "ScheduleDemux",
    "SimulationResult",
    "Simulator",
    "Tracer",
    "WaitCycles",
    "stable_digest",
]
