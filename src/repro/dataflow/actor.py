"""Actor (process) base class for the cycle-level dataflow simulator.

An :class:`Actor` is a hardware module with named input/output stream ports.
Its behaviour is written as one or more Python *generator coroutines*
(returned by :meth:`Actor.processes`); each ``yield`` suspends the process
until the next clock cycle. This mirrors how the paper's cores are written as
independent HLS dataflow processes communicating over AXI4-Stream links.

Timing contract (enforced by :class:`~repro.dataflow.channel.Channel`):

* within a single cycle (one resumption slice between two ``yield``\\ s) a
  process may pop at most one value per input channel and push at most one
  value per output channel — one beat per port per cycle;
* pops observe values committed in earlier cycles; pushes become visible to
  the consumer in the next cycle.

The helper generators (:meth:`recv`, :meth:`send`, :meth:`recv_all`,
:meth:`send_all`, :meth:`wait`, :meth:`relay`) obey this contract and are the
recommended way to write actors. Use them with ``yield from``::

    class Doubler(Actor):
        def run(self):
            while True:
                v = yield from self.recv("in")
                yield from self.send("out", 2 * v)
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
)

from repro.dataflow.channel import Channel
from repro.dataflow.events import (
    CHARGE_EACH,
    CHARGE_FIRST,
    POP,
    PUSH,
    ChannelWait,
    WaitCycles,
)
from repro.errors import GraphError


class Actor:
    """Base class for dataflow actors.

    Subclasses either override :meth:`run` (single-process actors) or
    :meth:`processes` (multi-process actors, e.g. a compute pipeline with a
    separate output emitter).

    Parameters
    ----------
    name:
        Unique name within the graph; used in traces and error reports.
    """

    def __init__(self, name: str):
        self.name = str(name)
        self._inputs: Dict[str, Channel] = {}
        self._outputs: Dict[str, Channel] = {}
        #: Diagnostic only: last reason this actor stalled (or ``None``).
        self.blocked_reason: Optional[str] = None
        #: Daemon actors (e.g. free-running routing stages) never finish on
        #: their own; the simulation completes when all non-daemon processes
        #: have finished, regardless of daemons.
        self.daemon: bool = False
        #: Current simulation cycle, maintained by the simulator before each
        #: resumption; usable by processes to model fixed datapath latencies.
        self.now: int = 0

    # -- port binding ------------------------------------------------------

    def bind_input(self, port: str, channel: Channel) -> None:
        """Connect ``channel`` to the input ``port`` of this actor."""
        if port in self._inputs:
            raise GraphError(f"actor {self.name!r}: input port {port!r} already bound")
        channel.bind_reader(f"{self.name}.{port}")
        self._inputs[port] = channel

    def bind_output(self, port: str, channel: Channel) -> None:
        """Connect ``channel`` to the output ``port`` of this actor."""
        if port in self._outputs:
            raise GraphError(f"actor {self.name!r}: output port {port!r} already bound")
        channel.bind_writer(f"{self.name}.{port}")
        self._outputs[port] = channel

    def input(self, port: str) -> Channel:
        """Return the channel bound to input ``port``."""
        try:
            return self._inputs[port]
        except KeyError:
            raise GraphError(f"actor {self.name!r}: unbound input port {port!r}") from None

    def output(self, port: str) -> Channel:
        """Return the channel bound to output ``port``."""
        try:
            return self._outputs[port]
        except KeyError:
            raise GraphError(f"actor {self.name!r}: unbound output port {port!r}") from None

    @property
    def input_ports(self) -> List[str]:
        """Names of all bound input ports."""
        return list(self._inputs)

    @property
    def output_ports(self) -> List[str]:
        """Names of all bound output ports."""
        return list(self._outputs)

    # -- behaviour ---------------------------------------------------------

    def processes(self) -> Iterable[Generator]:
        """Return the generator coroutines implementing this actor.

        The default implementation returns the single :meth:`run` process.
        """
        return [self.run()]

    def run(self) -> Generator:
        """Single-process behaviour; override in subclasses."""
        raise NotImplementedError(
            f"{type(self).__name__} must override run() or processes()"
        )

    # -- coroutine helpers ---------------------------------------------------

    def recv(self, port: str) -> Generator:
        """Receive one value from ``port`` (>= 1 cycle).

        Stalls while the channel is empty; the successful pop occupies one
        cycle. Use as ``value = yield from self.recv("in")``.
        """
        ch = self.input(port)
        while not ch.can_pop():
            self.blocked_reason = f"recv({port}): {ch.name} empty"
            ch.note_empty_stall()
            yield ch.pop_wait()
        self.blocked_reason = None
        value = ch.pop()
        yield
        return value

    def recv_all(self, ports: Sequence[str]) -> Generator:
        """Receive one value from *each* port in the same cycle (>= 1 cycle).

        Models parallel port reads (Algorithm 1 reads ``IN_PORTS`` windows
        simultaneously). Stalls until every channel has a value.
        """
        chans = [self.input(p) for p in ports]
        park = ChannelWait(tuple((POP, ch) for ch in chans), CHARGE_EACH)
        while not all(ch.can_pop() for ch in chans):
            empties = [ch.name for ch in chans if not ch.can_pop()]
            self.blocked_reason = f"recv_all: empty {empties}"
            for ch in chans:
                if not ch.can_pop():
                    ch.note_empty_stall()
            yield park
        self.blocked_reason = None
        values = [ch.pop() for ch in chans]
        yield
        return values

    def send(self, port: str, value: Any) -> Generator:
        """Send ``value`` on ``port`` (>= 1 cycle). Stalls while full."""
        ch = self.output(port)
        while not ch.can_push():
            self.blocked_reason = f"send({port}): {ch.name} full"
            ch.note_full_stall()
            yield ch.push_wait()
        self.blocked_reason = None
        ch.push(value)
        yield

    def send_all(self, mapping: Mapping[str, Any]) -> Generator:
        """Send one value on each port in the same cycle (>= 1 cycle)."""
        chans = {p: self.output(p) for p in mapping}
        park = ChannelWait(tuple((PUSH, ch) for ch in chans.values()), CHARGE_EACH)
        while not all(ch.can_push() for ch in chans.values()):
            fulls = [ch.name for ch in chans.values() if not ch.can_push()]
            self.blocked_reason = f"send_all: full {fulls}"
            for ch in chans.values():
                if not ch.can_push():
                    ch.note_full_stall()
            yield park
        self.blocked_reason = None
        for p, ch in chans.items():
            ch.push(mapping[p])
        yield

    def wait(self, cycles: int) -> Generator:
        """Idle for ``cycles`` clock cycles (models fixed latencies)."""
        total = int(cycles)
        start = self.now
        elapsed = 0
        while elapsed < total:
            yield WaitCycles(total - elapsed)
            # `now` tracks the clock under either scheduler; the max() keeps
            # hand-driven generators (tests calling next() directly) moving.
            elapsed = max(elapsed + 1, self.now - start)

    def relay(
        self,
        src: str,
        dst: str,
        count: Optional[int] = None,
        fn: Optional[Callable[[Any], Any]] = None,
    ) -> Generator:
        """Move values from input ``src`` to output ``dst`` at II = 1.

        Pops and pushes within the same cycle (full-throughput FIFO stage).
        ``count=None`` relays forever; ``fn`` transforms each value.
        """
        in_ch = self.input(src)
        out_ch = self.output(dst)
        park = ChannelWait(((POP, in_ch), (PUSH, out_ch)), CHARGE_FIRST)
        moved = 0
        while count is None or moved < count:
            while not (in_ch.can_pop() and out_ch.can_push()):
                if not in_ch.can_pop():
                    self.blocked_reason = f"relay: {in_ch.name} empty"
                    in_ch.note_empty_stall()
                else:
                    self.blocked_reason = f"relay: {out_ch.name} full"
                    out_ch.note_full_stall()
                yield park
            self.blocked_reason = None
            out_ch.push(fn(in_ch.pop()) if fn is not None else in_ch.pop())
            moved += 1
            yield

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"
