"""Standard reusable actors: sources, sinks, routing and map stages.

These are the "glue" modules of a dataflow design. The routing actors
(:class:`ScheduleDemux`, :class:`Interleaver`) implement the paper's port
adapters (Section IV-A): when ``OUT_PORTS(i-1) < IN_PORTS(i)`` a demux core
redirects data to the proper input port according to how feature maps are
interleaved on the producer's output port; the symmetric interleaver merges
several producer ports onto one consumer port.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional, Sequence

from repro.dataflow.actor import Actor
from repro.dataflow.events import CHARGE_NONE, POP, PUSH, ChannelWait
from repro.errors import ConfigurationError


class ArraySource(Actor):
    """Streams a pre-defined sequence of values, one beat per ``interval``.

    Models the DMA feeding the first layer. ``interval=1`` is a full-rate
    32-bit/cycle stream (the paper's 400 MB/s datapath at 100 MHz).

    Parameters
    ----------
    name: actor name.
    values: values to stream, in order.
    interval: cycles between consecutive beats (>= 1).
    port: output port name (default ``"out"``).
    """

    def __init__(self, name: str, values: Iterable[Any], interval: int = 1, port: str = "out"):
        super().__init__(name)
        if interval < 1:
            raise ConfigurationError(f"source {name!r}: interval must be >= 1")
        self.values = list(values)
        self.interval = int(interval)
        self.port = port

    def run(self) -> Generator:
        for v in self.values:
            yield from self.send(self.port, v)
            if self.interval > 1:
                yield from self.wait(self.interval - 1)


class ListSink(Actor):
    """Collects values from one input port into :attr:`received`.

    Parameters
    ----------
    count:
        Number of values to consume before finishing; ``None`` consumes
        forever (the simulation then ends when producers finish and the
        sink deadlock-stalls — usually you want an explicit count).
    """

    def __init__(self, name: str, count: Optional[int] = None, port: str = "in"):
        super().__init__(name)
        if count is not None and count < 0:
            raise ConfigurationError(f"sink {name!r}: count must be >= 0")
        self.count = count
        self.port = port
        self.received: List[Any] = []
        #: Cycle at which each value was received (same index as received).
        self.timestamps: List[int] = []

    def run(self) -> Generator:
        ch = self.input(self.port)
        n = 0
        while self.count is None or n < self.count:
            while not ch.can_pop():
                self.blocked_reason = f"sink: {ch.name} empty"
                ch.note_empty_stall()
                yield ch.pop_wait()
            self.blocked_reason = None
            self.received.append(ch.pop())
            self.timestamps.append(self.now)
            n += 1
            yield


class FifoStage(Actor):
    """A pass-through FIFO pipeline stage (II = 1)."""

    def __init__(self, name: str, src: str = "in", dst: str = "out"):
        super().__init__(name)
        self.daemon = True  # free-running; never finishes on its own
        self.src = src
        self.dst = dst

    def run(self) -> Generator:
        yield from self.relay(self.src, self.dst)


class MapActor(Actor):
    """Applies ``fn`` to every value at full rate (II = 1).

    Used e.g. for the non-linear activation applied on each value of a
    convolutional layer's output volume (Section II-A).
    """

    def __init__(self, name: str, fn: Callable[[Any], Any], src: str = "in", dst: str = "out"):
        super().__init__(name)
        self.daemon = True  # free-running; never finishes on its own
        self.fn = fn
        self.src = src
        self.dst = dst

    def run(self) -> Generator:
        yield from self.relay(self.src, self.dst, fn=self.fn)


class Fork(Actor):
    """Copies each input value to every output port in the same cycle.

    Output ports are ``out0 .. out{n-1}``.
    """

    def __init__(self, name: str, n_outputs: int, src: str = "in"):
        super().__init__(name)
        if n_outputs < 1:
            raise ConfigurationError(f"fork {name!r}: n_outputs must be >= 1")
        self.daemon = True  # free-running; never finishes on its own
        self.n_outputs = int(n_outputs)
        self.src = src

    def run(self) -> Generator:
        in_ch = self.input(self.src)
        outs = [self.output(f"out{i}") for i in range(self.n_outputs)]
        park = ChannelWait(
            ((POP, in_ch),) + tuple((PUSH, o) for o in outs), CHARGE_NONE
        )
        while True:
            while not (in_ch.can_pop() and all(o.can_push() for o in outs)):
                self.blocked_reason = "fork: waiting on input/outputs"
                yield park
            self.blocked_reason = None
            v = in_ch.pop()
            for o in outs:
                o.push(v)
            yield


class ScheduleDemux(Actor):
    """Routes one input stream over several outputs following a schedule.

    ``schedule`` is a sequence of output indices applied cyclically: the
    k-th input value goes to output ``schedule[k % len(schedule)]``. With
    ``schedule = range(n)`` this is a round-robin demux, which is exactly
    the paper's demux core for the ``OUT_PORTS(i-1) < IN_PORTS(i)`` case:
    feature maps interleaved on one producer port are dealt out to the
    consumer's input ports.

    Output ports are ``out0 .. out{n-1}``.
    """

    def __init__(self, name: str, n_outputs: int, schedule: Optional[Sequence[int]] = None, src: str = "in"):
        super().__init__(name)
        if n_outputs < 1:
            raise ConfigurationError(f"demux {name!r}: n_outputs must be >= 1")
        self.daemon = True  # free-running; never finishes on its own
        self.n_outputs = int(n_outputs)
        self.schedule = list(schedule) if schedule is not None else list(range(n_outputs))
        if not self.schedule:
            raise ConfigurationError(f"demux {name!r}: empty schedule")
        for idx in self.schedule:
            if not (0 <= idx < self.n_outputs):
                raise ConfigurationError(
                    f"demux {name!r}: schedule index {idx} out of range 0..{n_outputs - 1}"
                )
        self.src = src

    def run(self) -> Generator:
        in_ch = self.input(self.src)
        outs = [self.output(f"out{i}") for i in range(self.n_outputs)]
        parks = [
            ChannelWait(((POP, in_ch), (PUSH, o)), CHARGE_NONE) for o in outs
        ]
        k = 0
        sched = self.schedule
        period = len(sched)
        while True:
            i = sched[k % period]
            dst = outs[i]
            while not (in_ch.can_pop() and dst.can_push()):
                self.blocked_reason = f"demux: waiting ({in_ch.name} -> {dst.name})"
                yield parks[i]
            self.blocked_reason = None
            dst.push(in_ch.pop())
            k += 1
            yield


class Interleaver(Actor):
    """Merges several input streams onto one output following a schedule.

    ``schedule`` is a sequence of input indices applied cyclically. This is
    the paper's adapter for ``OUT_PORTS(i-1) > IN_PORTS(i)``: the consumer's
    filter cycles its reads over the producer's output channels.

    Input ports are ``in0 .. in{n-1}``.
    """

    def __init__(self, name: str, n_inputs: int, schedule: Optional[Sequence[int]] = None, dst: str = "out"):
        super().__init__(name)
        if n_inputs < 1:
            raise ConfigurationError(f"interleaver {name!r}: n_inputs must be >= 1")
        self.daemon = True  # free-running; never finishes on its own
        self.n_inputs = int(n_inputs)
        self.schedule = list(schedule) if schedule is not None else list(range(n_inputs))
        if not self.schedule:
            raise ConfigurationError(f"interleaver {name!r}: empty schedule")
        for idx in self.schedule:
            if not (0 <= idx < self.n_inputs):
                raise ConfigurationError(
                    f"interleaver {name!r}: schedule index {idx} out of range 0..{n_inputs - 1}"
                )
        self.dst = dst

    def run(self) -> Generator:
        ins = [self.input(f"in{i}") for i in range(self.n_inputs)]
        out_ch = self.output(self.dst)
        parks = [
            ChannelWait(((POP, s), (PUSH, out_ch)), CHARGE_NONE) for s in ins
        ]
        k = 0
        sched = self.schedule
        period = len(sched)
        while True:
            i = sched[k % period]
            src = ins[i]
            while not (src.can_pop() and out_ch.can_push()):
                self.blocked_reason = f"interleave: waiting ({src.name} -> {out_ch.name})"
                yield parks[i]
            self.blocked_reason = None
            out_ch.push(src.pop())
            k += 1
            yield
