"""Bounded FIFO channels with cycle-accurate, order-independent semantics.

A :class:`Channel` models a hardware FIFO (the paper's layers communicate via
AXI4-Stream links backed by FIFOs). The key property the simulator needs is
*order independence*: within one simulated cycle, the outcome must not depend
on the order in which actors are resumed. This is achieved with a two-phase
protocol:

* values pushed during cycle *t* are staged and only become visible to the
  reader at cycle *t + 1* (like a registered FIFO);
* ``can_pop``/``can_push`` are answered against the occupancy snapshot taken
  at the start of the cycle, so a pop freeing space mid-cycle never unblocks
  a writer within the same cycle.

Channels are strictly single-writer / single-reader; the graph builder binds
each endpoint exactly once and the channel itself enforces at most one push
and one pop per cycle (one beat per port per cycle, as on real stream links).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, List, Optional

from repro.dataflow.events import CHARGE_EACH, POP, PUSH, ChannelWait
from repro.errors import ChannelProtocolError, ConfigurationError


@dataclass(slots=True)
class ChannelStats:
    """Lifetime statistics of a channel, used for utilisation reports.

    The first/last beat stamps (``-1`` when no beat of that kind ever
    happened) give each link's activity span: the profiler derives
    pipeline fill/drain latency and per-layer activity windows from them
    without sampling every cycle.
    """

    total_pushed: int = 0
    total_popped: int = 0
    high_water: int = 0
    full_stall_cycles: int = 0
    empty_stall_cycles: int = 0
    first_push_cycle: int = -1
    last_push_cycle: int = -1
    first_pop_cycle: int = -1
    last_pop_cycle: int = -1

    def as_dict(self) -> dict:
        """Return the statistics as a plain dictionary."""
        return {
            "total_pushed": self.total_pushed,
            "total_popped": self.total_popped,
            "high_water": self.high_water,
            "full_stall_cycles": self.full_stall_cycles,
            "empty_stall_cycles": self.empty_stall_cycles,
            "first_push_cycle": self.first_push_cycle,
            "last_push_cycle": self.last_push_cycle,
            "first_pop_cycle": self.first_pop_cycle,
            "last_pop_cycle": self.last_pop_cycle,
        }


class _NullClock:
    """Stand-in clock for channels used outside an engine (cycle 0)."""

    __slots__ = ()
    cycle = 0


_NULL_CLOCK = _NullClock()


class Channel:
    """A bounded FIFO stream link between exactly one writer and one reader.

    Parameters
    ----------
    name:
        Human-readable identifier, used in traces and deadlock reports.
    capacity:
        Maximum number of in-flight values. ``None`` means unbounded, which
        is what the :class:`~repro.dataflow.functional.FunctionalExecutor`
        uses to run graphs without timing.
    """

    __slots__ = (
        "name",
        "capacity",
        "_q",
        "_staged",
        "_occ_at_cycle_start",
        "_pushed_this_cycle",
        "_popped_this_cycle",
        "stats",
        "writer",
        "reader",
        "_touched",
        "_pop_waiters",
        "_push_waiters",
        "_pop_wait_desc",
        "_push_wait_desc",
        "_fault",
        "_clock",
    )

    def __init__(self, name: str, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ConfigurationError(
                f"channel {name!r}: capacity must be >= 1 or None, got {capacity}"
            )
        self.name = str(name)
        self.capacity = capacity
        self._q: Deque[Any] = deque()
        self._staged: List[Any] = []
        self._occ_at_cycle_start = 0
        self._pushed_this_cycle = 0
        self._popped_this_cycle = 0
        self.stats = ChannelStats()
        self.writer: Optional[str] = None
        self.reader: Optional[str] = None
        # Event-scheduler hooks. `_touched` aliases the scheduler's
        # active-channel set: every staged push / pop adds this channel so
        # only touched channels get a begin_cycle() next cycle. The waiter
        # lists hold parked (record, cond-index) pairs; both are (re)set by
        # the engine, and None/empty under the lock-step scheduler.
        self._touched: Optional[set] = None
        self._pop_waiters: List[tuple] = []
        self._push_waiters: List[tuple] = []
        self._pop_wait_desc: Optional[ChannelWait] = None
        self._push_wait_desc: Optional[ChannelWait] = None
        # Fault-injection hook (repro.faults). When set, begin_cycle()
        # consults it before committing staged values: the fault may hold
        # the commit for extra cycles (latency jitter, DMA burst stalls)
        # or mutate the staged beats (corruption). None on the no-fault
        # hot path, like `_touched`.
        self._fault: Optional[object] = None
        # Whoever owns the clock: both engines install themselves here so
        # push/pop can stamp first/last beat cycles with two attribute
        # loads and no callback. The null clock reads cycle 0 for channels
        # exercised outside a simulation (unit tests, functional executor).
        self._clock = _NULL_CLOCK

    # -- binding ---------------------------------------------------------

    def bind_writer(self, actor_name: str) -> None:
        """Register ``actor_name`` as the unique writer of this channel."""
        if self.writer is not None:
            raise ChannelProtocolError(
                f"channel {self.name!r} already written by {self.writer!r}; "
                f"cannot also bind {actor_name!r}"
            )
        self.writer = actor_name

    def bind_reader(self, actor_name: str) -> None:
        """Register ``actor_name`` as the unique reader of this channel."""
        if self.reader is not None:
            raise ChannelProtocolError(
                f"channel {self.name!r} already read by {self.reader!r}; "
                f"cannot also bind {actor_name!r}"
            )
        self.reader = actor_name

    # -- cycle protocol ---------------------------------------------------

    def begin_cycle(self) -> None:
        """Commit staged pushes and snapshot occupancy for the new cycle.

        With a fault attached, the commit is gated by the fault's
        ``on_commit`` hook: returning False holds the staged values for
        this cycle (the channel re-registers as touched so the event
        scheduler keeps polling it); returning True commits, possibly
        after mutating the staged beats in place (corruption faults).
        """
        staged = self._staged
        if staged:
            fault = self._fault
            if fault is None or fault.on_commit(self, staged):
                self._q.extend(staged)
                staged.clear()
            elif self._touched is not None:
                self._touched.add(self)
        occ = len(self._q)
        self._occ_at_cycle_start = occ
        stats = self.stats
        if occ > stats.high_water:
            stats.high_water = occ
        self._pushed_this_cycle = 0
        self._popped_this_cycle = 0

    # -- reader/writer API -------------------------------------------------
    # push/pop repeat the can_push/can_pop conditions inline: they run once
    # per simulated beat and the extra method call is measurable.

    def can_push(self) -> bool:
        """Whether the writer may push a value this cycle."""
        if self._pushed_this_cycle:
            return False
        if self.capacity is None:
            return True
        return self._occ_at_cycle_start + len(self._staged) < self.capacity

    def can_pop(self) -> bool:
        """Whether the reader may pop a value this cycle."""
        return not self._popped_this_cycle and self._occ_at_cycle_start > 0

    def push(self, value: Any) -> None:
        """Stage ``value``; it becomes visible to the reader next cycle."""
        cap = self.capacity
        if self._pushed_this_cycle or (
            cap is not None
            and self._occ_at_cycle_start + len(self._staged) >= cap
        ):
            raise ChannelProtocolError(
                f"push on channel {self.name!r} without can_push() "
                f"(occupancy {self._occ_at_cycle_start}, capacity {cap})"
            )
        self._staged.append(value)
        self._pushed_this_cycle = 1
        stats = self.stats
        stats.total_pushed += 1
        c = self._clock.cycle
        if stats.first_push_cycle < 0:
            stats.first_push_cycle = c
        stats.last_push_cycle = c
        touched = self._touched
        if touched is not None:
            touched.add(self)

    def pop(self) -> Any:
        """Remove and return the oldest visible value."""
        if self._popped_this_cycle or not self._occ_at_cycle_start:
            raise ChannelProtocolError(
                f"pop on channel {self.name!r} without can_pop() "
                f"(visible occupancy {self._occ_at_cycle_start})"
            )
        self._popped_this_cycle = 1
        stats = self.stats
        stats.total_popped += 1
        c = self._clock.cycle
        if stats.first_pop_cycle < 0:
            stats.first_pop_cycle = c
        stats.last_pop_cycle = c
        touched = self._touched
        if touched is not None:
            touched.add(self)
        return self._q.popleft()

    def peek(self) -> Any:
        """Return the oldest visible value without removing it."""
        if not self.can_pop():
            raise ChannelProtocolError(f"peek on empty channel {self.name!r}")
        return self._q[0]

    # -- event-scheduler descriptors ---------------------------------------

    def pop_wait(self) -> ChannelWait:
        """Cached single-condition wait-for-pop descriptor.

        Charges an empty stall per blocked cycle (``CHARGE_EACH``), which
        is what every ``note_empty_stall``-calling loop needs. Loops that
        record no stalls must build their own ``CHARGE_NONE`` descriptor.
        """
        w = self._pop_wait_desc
        if w is None:
            w = self._pop_wait_desc = ChannelWait(((POP, self),), CHARGE_EACH)
        return w

    def push_wait(self) -> ChannelWait:
        """Cached single-condition wait-for-push descriptor (full stalls)."""
        w = self._push_wait_desc
        if w is None:
            w = self._push_wait_desc = ChannelWait(((PUSH, self),), CHARGE_EACH)
        return w

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        """Committed + staged occupancy (for debugging, not firing rules)."""
        return len(self._q) + len(self._staged)

    @property
    def occupancy(self) -> int:
        """Number of committed, visible values."""
        return len(self._q)

    def note_full_stall(self) -> None:
        """Record that the writer stalled on a full channel this cycle."""
        self.stats.full_stall_cycles += 1

    def note_empty_stall(self) -> None:
        """Record that the reader stalled on an empty channel this cycle."""
        self.stats.empty_stall_cycles += 1

    def drain(self) -> List[Any]:
        """Remove and return every value (committed and staged), untimed.

        Only intended for post-simulation inspection and the functional
        executor's teardown; never call this from an actor process.
        """
        out = list(self._q) + list(self._staged)
        self._q.clear()
        self._staged.clear()
        self._occ_at_cycle_start = 0
        if self._touched is not None:
            self._touched.add(self)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "inf" if self.capacity is None else self.capacity
        return f"Channel({self.name!r}, occ={len(self)}/{cap})"
