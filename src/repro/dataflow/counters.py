"""Native per-process profiling counters maintained by both engines.

Every process (generator) of every actor owns one :class:`ProcCounters`
record. The counters are *scheduler-native*: the lock-step loop classifies
each yielded descriptor as it sees it, while the event engine charges the
equivalent spans at park/wake time, so neither engine runs a per-cycle
Python callback and the event engine keeps bulk cycle-skipping.

The key identity the profiler builds on: under the lock-step contract a
live process performs exactly one ``yield`` per executed cycle of its
lifetime, and each yield is either a blocked descriptor
(:class:`~repro.dataflow.events.ChannelWait` /
:class:`~repro.dataflow.events.GateWait` /
:class:`~repro.dataflow.events.WaitCycles`) or a bare ``yield`` ending a
productive beat. Hence

    fires = lifetime - (stalled_channel + stalled_gate + stalled_timer)

and ``fires`` never needs to be counted on the hot path — it is derived.
For a compute core's processes, ``fires / (coords * images)`` is exactly
the measured initiation interval of Eq. 4 (see ``repro.profiling``).

Both engines produce identical counters on unfaulted runs (asserted by
``tests/profiling/test_counter_equivalence.py``). Under an armed
actor-slowdown plan the engines legitimately diverge on *actor* stall
counters (lock-step skips the resumption entirely, so no descriptor is
yielded, while the event engine charges the whole parked span); channel
statistics remain equivalent, matching the long-standing contract in
``tests/dataflow/test_scheduler_equivalence.py``.
"""

from __future__ import annotations

from typing import Dict, List


class ProcCounters:
    """Stall/lifetime counters of one process, engine-maintained.

    ``end_cycle`` is the cycle whose resumption raised ``StopIteration``
    (processes start at cycle 0, so it equals the number of yields the
    process performed); ``-1`` while the process is still alive.
    """

    __slots__ = ("stalled_channel", "stalled_gate", "stalled_timer", "end_cycle")

    def __init__(self) -> None:
        self.stalled_channel = 0
        self.stalled_gate = 0
        self.stalled_timer = 0
        self.end_cycle = -1

    def lifetime(self, now: int) -> int:
        """Executed cycles of this process's life (``now`` = engine cycle)."""
        return self.end_cycle if self.end_cycle >= 0 else now

    def fires(self, now: int) -> int:
        """Productive (non-stalled) cycles: lifetime minus every stall."""
        return self.lifetime(now) - (
            self.stalled_channel + self.stalled_gate + self.stalled_timer
        )

    def as_dict(self, now: int) -> dict:
        return {
            "fires": self.fires(now),
            "stalled_channel": self.stalled_channel,
            "stalled_gate": self.stalled_gate,
            "stalled_timer": self.stalled_timer,
            "lifetime": self.lifetime(now),
            "end_cycle": self.end_cycle,
        }


def actor_stats_dict(
    pairs: List[tuple], now: int
) -> Dict[str, List[dict]]:
    """Aggregate ``(actor, ProcCounters)`` pairs into the report shape.

    One list entry per process, in process-creation order (the compute
    cores' compute process precedes their emit process).
    """
    out: Dict[str, List[dict]] = {}
    for actor, cnt in pairs:
        out.setdefault(actor.name, []).append(cnt.as_dict(now))
    return out
