"""Static buffering analysis of reconvergent dataflow paths.

Feed-forward dataflow graphs can still deadlock at runtime when a *fork*
splits a stream over parallel branches that later *join*: if one branch
buffers far less than the schedule skew between the branches, the join
stalls one side while back-pressure freezes the other (the classic
reconvergence deadlock of Kahn-style networks with bounded FIFOs).

The paper's designs contain exactly this shape — a fully parallelized
conv layer fans out over per-FM ports that reconverge at the next
multi-port core — so the elaborated graphs deserve a static check:
:func:`analyze_reconvergence` enumerates fork/join pairs with
edge-disjoint parallel paths and reports each path's total FIFO capacity;
a large imbalance is flagged as a warning. The check is heuristic (true
deadlock freedom depends on schedule skew, which is dynamic) but catches
the under-buffered-branch mistakes designers actually make.

This static analysis complements the *runtime* detection performed by the
simulation engines (:mod:`repro.dataflow.scheduler`): the event scheduler
raises :class:`~repro.errors.DeadlockError` exactly and immediately when no
process can ever run again, and :func:`blocked_snapshot` (re-exported here)
formats the per-actor blocking reasons both engines report. The event
engine additionally records the exact channel conditions of every parked
actor in ``DeadlockError.channels``; :func:`match_deadlock_diagnostics`
cross-references those against a static
:class:`~repro.analysis.AnalysisReport`, which is how the fault-injection
harness (:mod:`repro.faults`) proves that a simulated FIFO-shrink deadlock
lands on the very channel the static verifier flagged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import networkx as nx

from repro.dataflow.graph import DataflowGraph
from repro.dataflow.scheduler import blocked_snapshot  # noqa: F401 - re-export
from repro.errors import ConfigurationError, DeadlockError


@dataclass(frozen=True)
class ReconvergentPair:
    """One fork/join pair with its parallel-path buffering.

    Path capacities are ``None`` when the path traverses an unbounded
    channel (e.g. under the functional executor). Such a path absorbs any
    schedule skew itself, but it can also run arbitrarily far ahead of a
    bounded sibling — so it is carried through the bound computation as
    ``None`` (never flattened into a huge sentinel) and drives the
    imbalance to ``inf`` whenever a bounded sibling exists.
    """

    fork: str
    join: str
    #: Per-path (node tuple, total FIFO capacity or None=unbounded) in
    #: discovery order.
    paths: Tuple[Tuple[Tuple[str, ...], Optional[int]], ...]

    @property
    def bounded_capacities(self) -> List[int]:
        """Capacities of the bounded paths only, in discovery order."""
        return [c for _, c in self.paths if c is not None]

    @property
    def unbounded_paths(self) -> int:
        """Number of paths whose buffering is unbounded."""
        return sum(1 for _, c in self.paths if c is None)

    @property
    def min_capacity(self) -> Optional[int]:
        """Smallest bounded path capacity; None when every path is unbounded."""
        caps = self.bounded_capacities
        return min(caps) if caps else None

    @property
    def max_capacity(self) -> Optional[int]:
        """Largest bounded path capacity; None when every path is unbounded."""
        caps = self.bounded_capacities
        return max(caps) if caps else None

    @property
    def imbalance(self) -> float:
        """max/min capacity ratio across the pair's paths (1.0 = balanced).

        An unbounded path can run arbitrarily far ahead of a bounded
        sibling, so mixing the two is the *worst* imbalance, not a
        reason to stay silent: with at least one bounded and one
        unbounded path the ratio is ``inf``. All-unbounded pairs (or
        fewer than two bounded paths with no unbounded ones) carry no
        imbalance signal and report 1.0.
        """
        caps = self.bounded_capacities
        if caps and self.unbounded_paths:
            return float("inf")
        if len(caps) < 2:
            return 1.0
        return max(caps) / max(min(caps), 1)


def _edge_capacity(g: nx.MultiDiGraph, u: str, v: str) -> Optional[int]:
    """Smallest capacity among parallel edges u->v (worst case).

    ``None`` (unbounded) edges impose no constraint: the result is the
    smallest *bounded* capacity, or ``None`` when every parallel edge is
    unbounded.
    """
    caps = [data["capacity"] for data in g[u][v].values()]
    bounded = [c for c in caps if c is not None]
    return min(bounded) if bounded else None


def analyze_reconvergence(
    graph: DataflowGraph, max_paths: int = 16
) -> List[ReconvergentPair]:
    """Enumerate fork/join pairs with >= 2 node-disjoint parallel paths.

    Paths are simple node paths between a node with out-degree >= 2 and a
    node with in-degree >= 2; path capacity is the sum of the traversed
    FIFO capacities. ``max_paths`` bounds enumeration per pair.
    """
    if max_paths < 2:
        raise ConfigurationError(f"max_paths must be >= 2, got {max_paths}")
    g = graph.to_networkx()
    simple = nx.DiGraph(g)
    forks = [n for n in simple if simple.out_degree(n) >= 2]
    joins = [n for n in simple if simple.in_degree(n) >= 2]
    out: List[ReconvergentPair] = []
    for f in forks:
        for j in joins:
            if f == j or not nx.has_path(simple, f, j):
                continue
            paths = []
            for path in nx.all_simple_paths(simple, f, j, cutoff=12):
                edge_caps = [
                    _edge_capacity(g, path[i], path[i + 1])
                    for i in range(len(path) - 1)
                ]
                # One unbounded hop makes the whole path's buffering unbounded.
                cap: Optional[int] = (
                    None if any(c is None for c in edge_caps) else sum(edge_caps)
                )
                paths.append((tuple(path), cap))
                if len(paths) >= max_paths:
                    break
            # Reconvergence needs >= 2 paths that are internally disjoint.
            if len(paths) >= 2:
                inner_sets = [set(p[1:-1]) for p, _ in paths]
                disjoint = any(
                    not (inner_sets[a] & inner_sets[b])
                    for a in range(len(paths))
                    for b in range(a + 1, len(paths))
                )
                if disjoint:
                    out.append(ReconvergentPair(f, j, tuple(paths)))
    return out


def match_deadlock_diagnostics(err: DeadlockError, report) -> List[tuple]:
    """Cross-reference a runtime deadlock against static diagnostics.

    Returns ``(channel_name, diagnostic)`` pairs for every channel the
    deadlock blocked on (``err.channels``, event scheduler only) that a
    diagnostic of ``report`` (an :class:`~repro.analysis.AnalysisReport`)
    names in its location or message. An empty result for a
    deliberately-broken design means the static verifier and the simulator
    disagree about *where* the network jams — exactly the regression the
    fault-injection agreement suite exists to catch.
    """
    import re

    out: List[tuple] = []
    for name in err.blocked_channel_names():
        # Boundary-checked: "x.fifo1" must not match inside "x.fifo14".
        pat = re.compile(re.escape(name) + r"(?![0-9A-Za-z_])")
        for diag in report.diagnostics:
            if pat.search(diag.message) or pat.search(diag.location):
                out.append((name, diag))
    return out


def buffering_report(
    graph: DataflowGraph, warn_imbalance: float = 4.0
) -> str:
    """Human-readable reconvergence/buffering report with warnings."""
    pairs = analyze_reconvergence(graph)
    if not pairs:
        return f"graph {graph.name!r}: no reconvergent fork/join pairs"
    lines = [f"graph {graph.name!r}: {len(pairs)} reconvergent pair(s)"]
    for p in pairs:
        if p.min_capacity is None:
            span = "unbounded"
        else:
            span = f"{p.min_capacity}..{p.max_capacity}"
            if p.unbounded_paths:
                span += f" (+{p.unbounded_paths} unbounded)"
        lines.append(f"  {p.fork} -> {p.join}: {len(p.paths)} paths, "
                     f"capacity {span}")
        if p.imbalance >= warn_imbalance:
            ratio = (
                "unbounded"
                if p.imbalance == float("inf")
                else f"{p.imbalance:.1f}x"
            )
            lines.append(
                f"    WARNING: capacity imbalance {ratio} — the "
                f"thin branch may stall the join under schedule skew"
            )
    return "\n".join(lines)
