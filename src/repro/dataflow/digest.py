"""Stable output digests for cross-engine equivalence checks.

The benchmark and equivalence tooling used to summarize a run's outputs
as ``float(outputs.sum())`` — a digest that collides trivially (any
permutation of the outputs sums identically) and whose printed decimal
form depends on formatting. :func:`stable_digest` replaces it: a CRC-32
over the array's shape and its exact float32 bit pattern. Two digests
are equal iff shape and every output bit agree, which is precisely the
bit-exactness contract the three engines are held to.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.config import DTYPE


def stable_digest(values) -> str:
    """CRC-32 digest of an array's shape + exact float32 bit pattern.

    ``values`` is anything ``np.asarray`` accepts (the sink's received
    list, a reshaped output tensor, ...). The array is cast to the
    project dtype (float32) first — a bit-preserving no-op for data that
    is already float32 — and hashed in C order, so logically identical
    outputs digest identically regardless of memory layout.

    Returns ``"crc32:xxxxxxxx"`` (8 lowercase hex digits).
    """
    arr = np.ascontiguousarray(np.asarray(values, dtype=DTYPE))
    crc = zlib.crc32(repr(arr.shape).encode())
    crc = zlib.crc32(arr.tobytes(), crc)
    return f"crc32:{crc & 0xFFFFFFFF:08x}"
