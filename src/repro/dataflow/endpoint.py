"""Hardware-shaped stream-endpoint protocols (the stb/ack handshake).

Every transport in the simulator presents the same two half-duplex faces,
named after the AXI4-Stream / migen ``stb``/``ack`` signal pair:

* a :class:`Source` is the face a *consumer* reads from. ``can_pop()`` is
  the producer-driven ``stb`` (valid) signal — a value is present and may
  be taken this cycle; ``pop()`` is the consumer's ``ack``.
* a :class:`Sink` is the face a *producer* writes into. ``can_push()`` is
  the consumer-driven ``ack`` (ready) signal — a slot is free this cycle;
  ``push()`` asserts ``stb`` together with the data.

A beat transfers exactly when both faces agree (``stb & ack``), which is
what :meth:`~repro.dataflow.actor.Actor.relay` and every core loop spell
as ``can_pop() and can_push()``. The protocols are *structural*
(:func:`typing.runtime_checkable`): an actor port accepts anything with
the right surface and never learns what transport sits behind it —

* the bounded in-process FIFO (:class:`~repro.dataflow.channel.Channel`)
  implements both faces;
* a finite-bandwidth board-to-board link is a Sink/Source pair bridged by
  the :mod:`repro.dataflow.link` actors, whose beat interval comes from
  the :class:`~repro.fpga.dma.DmaModel` transfer model;
* an inter-process queue is bridged by :class:`QueueSource` /
  :class:`QueueSink` below, which keep the two-phase cycle contract on
  the simulated side while exchanging values with a foreign
  ``queue.Queue`` / ``multiprocessing.Queue`` / ``deque`` on the other.

The two-phase cycle contract every endpoint must keep (it is what makes
the simulation order-independent): values pushed during cycle ``t``
become visible to ``can_pop`` at ``t + 1``; ``can_push``/``can_pop``
answer against the start-of-cycle occupancy snapshot; at most one push
and one pop per cycle (one beat per port per cycle, as on a real stream
link).
"""

from __future__ import annotations

import queue
from typing import Any, Optional, Protocol, runtime_checkable

from repro.dataflow.channel import Channel
from repro.dataflow.events import ChannelWait
from repro.errors import ConfigurationError


@runtime_checkable
class Source(Protocol):
    """The consumer-facing half of a stream endpoint (``stb`` side).

    Structural protocol over the exact surface
    :meth:`~repro.dataflow.actor.Actor.recv` and
    :meth:`~repro.dataflow.actor.Actor.relay` touch on an input port.
    """

    name: str

    def can_pop(self) -> bool:
        """``stb & !acked``: a value is visible and untaken this cycle."""
        ...

    def pop(self) -> Any:
        """Acknowledge the beat: remove and return the oldest value."""
        ...

    def peek(self) -> Any:
        """Inspect the oldest visible value without acknowledging it."""
        ...

    def pop_wait(self) -> ChannelWait:
        """Event-engine park descriptor for a consumer stalled on empty."""
        ...

    def note_empty_stall(self) -> None:
        """Record one consumer stall cycle (profiling counters)."""
        ...

    def bind_reader(self, actor_name: str) -> None:
        """Register the unique consumer endpoint."""
        ...


@runtime_checkable
class Sink(Protocol):
    """The producer-facing half of a stream endpoint (``ack`` side).

    Structural protocol over the exact surface
    :meth:`~repro.dataflow.actor.Actor.send` and
    :meth:`~repro.dataflow.actor.Actor.relay` touch on an output port.
    """

    name: str

    def can_push(self) -> bool:
        """``ack & !strobed``: a slot is free and unused this cycle."""
        ...

    def push(self, value: Any) -> None:
        """Assert ``stb`` with ``value``; visible to the consumer next cycle."""
        ...

    def push_wait(self) -> ChannelWait:
        """Event-engine park descriptor for a producer stalled on full."""
        ...

    def note_full_stall(self) -> None:
        """Record one producer stall cycle (profiling counters)."""
        ...

    def bind_writer(self, actor_name: str) -> None:
        """Register the unique producer endpoint."""
        ...


@runtime_checkable
class StreamEndpoint(Source, Sink, Protocol):
    """A full-duplex endpoint: both faces of one bounded stream.

    :class:`~repro.dataflow.channel.Channel` is the canonical
    implementation; :class:`QueueSource`/:class:`QueueSink` implement it
    by construction (they subclass Channel), exposing only one useful
    face each — the other face belongs to the foreign process.
    """


def _take_nowait(feed: Any) -> Any:
    """One value from a foreign queue-like object, or raise ``queue.Empty``.

    Accepts anything with ``get_nowait()`` (``queue.Queue``,
    ``queue.SimpleQueue``, ``multiprocessing.Queue``) or ``popleft()``
    (``collections.deque``).
    """
    if hasattr(feed, "get_nowait"):
        return feed.get_nowait()
    try:
        return feed.popleft()
    except IndexError:
        raise queue.Empty from None


class QueueSource(Channel):
    """A :class:`Source` whose producer is a foreign (inter-process) queue.

    The simulated side keeps the full two-phase Channel contract; the
    writer side is the external queue: at each cycle boundary up to
    ``words_per_cycle`` available values are taken from the feed and
    committed with the start-of-cycle snapshot — a value present at the
    boundary "arrived during the previous cycle", exactly like a
    registered push staged by a simulated producer. The writer endpoint
    is pre-bound to a synthetic name so graph validation sees a complete
    link.
    """

    __slots__ = ("feed", "words_per_cycle")

    def __init__(
        self,
        name: str,
        feed: Any,
        capacity: Optional[int] = 4,
        words_per_cycle: int = 1,
    ):
        if words_per_cycle < 1:
            raise ConfigurationError(
                f"{name!r}: words_per_cycle must be >= 1, got {words_per_cycle}"
            )
        super().__init__(name, capacity)
        self.feed = feed
        self.words_per_cycle = words_per_cycle
        self.bind_writer(f"<ipc:{name}>.out")

    def begin_cycle(self) -> None:
        budget = self.words_per_cycle
        cap = self.capacity
        while budget and (cap is None or len(self) < cap):
            try:
                value = _take_nowait(self.feed)
            except queue.Empty:
                break
            self._staged.append(value)
            self.stats.total_pushed += 1
            budget -= 1
        super().begin_cycle()
        # The foreign producer is invisible to the event engine's touched
        # set; keep this endpoint polled so late arrivals still commit.
        if self._touched is not None:
            self._touched.add(self)


class QueueSink(Channel):
    """A :class:`Sink` whose consumer is a foreign (inter-process) queue.

    Producers push under the normal Channel contract; each
    ``begin_cycle`` forwards up to ``words_per_cycle`` committed values
    into the external queue (mirroring a DMA engine draining a stream
    into host memory). The reader endpoint is pre-bound to a synthetic
    name so graph validation sees a complete link.
    """

    __slots__ = ("drain_to", "words_per_cycle")

    def __init__(
        self,
        name: str,
        drain_to: Any,
        capacity: Optional[int] = 4,
        words_per_cycle: int = 1,
    ):
        if words_per_cycle < 1:
            raise ConfigurationError(
                f"{name!r}: words_per_cycle must be >= 1, got {words_per_cycle}"
            )
        super().__init__(name, capacity)
        self.drain_to = drain_to
        self.words_per_cycle = words_per_cycle
        self.bind_reader(f"<ipc:{name}>.in")

    def _give(self, value: Any) -> None:
        if hasattr(self.drain_to, "put_nowait"):
            self.drain_to.put_nowait(value)
        else:
            self.drain_to.append(value)

    def begin_cycle(self) -> None:
        super().begin_cycle()
        budget = self.words_per_cycle
        q = self._q
        while budget and q:
            self._give(q.popleft())
            self.stats.total_popped += 1
            budget -= 1
        # Re-snapshot after the drain: freed slots are visible to the
        # producer this cycle, exactly as if a simulated reader had popped
        # in an earlier cycle.
        self._occ_at_cycle_start = len(q)
        # A backlog beyond this cycle's budget must keep draining even if
        # the producer goes quiet; stay in the event engine's touched set.
        if q and self._touched is not None:
            self._touched.add(self)
