"""Wait descriptors: how actors tell the event scheduler *why* they yield.

Under the original lock-step scheduler every ``yield`` means the same
thing — "resume me next cycle" — and a blocked actor spin-yields until its
firing rule holds. The event-driven scheduler
(:mod:`repro.dataflow.scheduler`) instead parks blocked actors and only
resumes them when the blocking condition can have changed. The value an
actor yields carries that information:

* ``None`` — legacy polling: resume next cycle unconditionally. Any
  hand-written actor that spin-yields keeps working (it just prevents the
  scheduler from skipping cycles while it lives).
* :class:`ChannelWait` — blocked until *every* listed channel condition
  (a pop or a push) is satisfiable at the start of some cycle.
* :class:`WaitCycles` — a fixed-latency sleep; the scheduler wakes the
  process via a wakeup heap keyed by cycle.
* :class:`GateWait` — blocked on an intra-actor :class:`Gate` (an internal
  result queue between two processes of the same actor); woken by
  :meth:`Gate.notify`.

The descriptors are *hints with contracts*: an actor must re-check its
firing rule after waking (the helper loops in :class:`Actor` do), so a
spurious wakeup is harmless, but a missing wakeup would stall the actor
forever. The lock-step scheduler ignores the descriptors entirely, which
is what makes a bit-for-bit equivalence cross-check between the two
schedulers possible.

Stall accounting
----------------
The lock-step loops call :meth:`Channel.note_empty_stall` /
:meth:`Channel.note_full_stall` once per blocked cycle. A parked actor
cannot do that, so each :class:`ChannelWait` names the charging policy the
scheduler must apply retroactively on wakeup to reproduce the exact same
:class:`~repro.dataflow.channel.ChannelStats`:

* ``CHARGE_NONE`` — the loop never records stalls (Fork, demux, ...).
* ``CHARGE_EACH`` — every still-unsatisfiable condition is charged every
  blocked cycle (``recv``/``send``/``recv_all``/``send_all`` and the
  compute cores).
* ``CHARGE_FIRST`` — only the first unsatisfiable condition in listed
  order is charged each cycle (``relay``: input-empty wins over
  output-full).
"""

from __future__ import annotations

from typing import Tuple

#: Channel-condition opcodes used in :class:`ChannelWait` tuples.
POP = 0
PUSH = 1

#: Retroactive stall-charging policies (see module docstring).
CHARGE_NONE = 0
CHARGE_EACH = 1
CHARGE_FIRST = 2


class ChannelWait:
    """Park until every ``(op, channel)`` condition is satisfiable.

    ``conds`` is a tuple of ``(POP, channel)`` / ``(PUSH, channel)`` pairs;
    the actor wakes at the first cycle whose start-of-cycle snapshot
    satisfies all of them. ``charge`` is one of the ``CHARGE_*`` policies.

    Instances are immutable and may be reused across parks (the helper
    loops build one descriptor per call site, outside the spin loop).
    """

    __slots__ = ("conds", "charge")

    def __init__(self, conds: Tuple[tuple, ...], charge: int = CHARGE_NONE):
        self.conds = tuple(conds)
        self.charge = charge

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ops = {POP: "pop", PUSH: "push"}
        parts = ", ".join(f"{ops[op]}:{ch.name}" for op, ch in self.conds)
        return f"ChannelWait({parts})"


class WaitCycles:
    """Park for a fixed number of cycles (``cycles >= 1``)."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int):
        self.cycles = cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WaitCycles({self.cycles})"


class GateWait:
    """Park until the gate's :meth:`Gate.notify` is called."""

    __slots__ = ("gate",)

    def __init__(self, gate: "Gate"):
        self.gate = gate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "GateWait()"


class Gate:
    """Wakeup gate for state shared between processes of one actor.

    The compute cores couple their compute and emit processes through an
    internal result queue; the consumer of that queue cannot be woken by a
    channel commit, so the producer calls :meth:`notify` after mutating
    the queue. Wake timing mirrors lock-step shared-memory visibility: a
    waiter whose process index is *after* the notifier's sees the mutation
    in the same cycle, an earlier one in the next cycle.

    Under the lock-step scheduler the gate is inert: ``notify`` is a no-op
    (no engine ever attaches) and the :class:`GateWait` descriptor is
    ignored, so the waiting loop simply spins as before.
    """

    __slots__ = ("_engine", "_waiters", "_wait")

    def __init__(self):
        self._engine = None
        self._waiters = []
        self._wait = GateWait(self)

    def wait(self) -> GateWait:
        """Descriptor to ``yield`` while the guarded condition is false."""
        return self._wait

    def notify(self) -> None:
        """Wake every parked waiter (spurious wakeups are fine)."""
        if self._engine is not None and self._waiters:
            self._engine._gate_notify(self)
