"""Untimed functional execution of a dataflow graph.

:class:`FunctionalExecutor` runs the *same* actor coroutines as the
cycle-level simulator but lifts every FIFO capacity to unbounded, so the run
cannot stall on backpressure and completes in the minimum number of
scheduler rounds. It is used to check functional correctness of a network
quickly (values only) before paying for a timed simulation, and by tests
asserting timed/untimed output equivalence.
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.dataflow.graph import DataflowGraph
from repro.dataflow.simulator import SimulationResult, Simulator


class FunctionalExecutor:
    """Run a graph with unbounded channels (values preserved, timing not).

    The capacity override is applied in place and restored afterwards, so
    the same :class:`DataflowGraph` instance can subsequently be simulated
    with real capacities. Note however that actors keep their internal
    state; build a fresh graph per run.
    """

    def __init__(self, graph: DataflowGraph):
        self.graph = graph

    def run(self, max_cycles: int = 50_000_000) -> SimulationResult:
        """Execute until all non-daemon processes finish; return the result."""
        saved = {name: ch.capacity for name, ch in self.graph.channels.items()}
        try:
            for ch in self.graph.channels.values():
                ch.capacity = None
            sim = self.graph.build_simulator()
            return sim.run(max_cycles=max_cycles)
        finally:
            for name, cap in saved.items():
                self.graph.channels[name].capacity = cap


def run(
    graph: DataflowGraph,
    max_cycles: int = 50_000_000,
    simulator: Optional[Simulator] = None,
) -> SimulationResult:
    """Deprecated duplicate entry point; use ``Simulator.run`` instead.

    Historically this module exposed its own ``run()`` shortcut next to
    :meth:`Simulator.run`, leaving two subtly different ways to execute a
    graph. It now forwards — to the passed ``simulator`` if given, else
    to an untimed :class:`FunctionalExecutor` pass — and will be removed
    one release after the deprecation.
    """
    warnings.warn(
        "repro.dataflow.functional.run() is deprecated; call "
        "Simulator.run() (timed) or FunctionalExecutor(graph).run() "
        "(untimed) directly",
        DeprecationWarning,
        stacklevel=2,
    )
    if simulator is not None:
        return simulator.run(max_cycles=max_cycles)
    return FunctionalExecutor(graph).run(max_cycles=max_cycles)
