"""Dataflow graph assembly and validation.

:class:`DataflowGraph` owns actors and channels, offers a ``connect``
convenience that creates and binds a channel in one call, validates the
structure (single writer/reader, no dangling endpoints) and exports the
topology to :mod:`networkx` for analysis (topological layering of the layer
pipeline, cycle detection, critical-path style queries).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.dataflow.actor import Actor
from repro.dataflow.channel import Channel
from repro.dataflow.simulator import Simulator
from repro.errors import GraphError


class DataflowGraph:
    """Container and factory for a dataflow design.

    Typical usage::

        g = DataflowGraph("example")
        src = g.add_actor(ArraySource("src", data))
        sink = g.add_actor(ListSink("sink", count=len(data)))
        g.connect(src, "out", sink, "in", capacity=4)
        sim = g.build_simulator()
        sim.run()
    """

    def __init__(self, name: str = "graph", default_capacity: int = 2):
        self.name = str(name)
        self.default_capacity = int(default_capacity)
        self.actors: Dict[str, Actor] = {}
        self.channels: Dict[str, Channel] = {}
        #: The :class:`~repro.core.network_design.NetworkDesign` this graph
        #: was elaborated from (set by ``repro.core.builder``); ``None`` for
        #: hand-built graphs. The compiled engine requires it.
        self.design = None
        #: The :class:`~repro.core.multi_fpga.MultiFpgaPlan` this graph was
        #: sharded with (set by the builder when cutting the pipeline at
        #: device boundaries); ``None`` for single-device graphs. The
        #: compiled engine folds its link stages into the timing frame.
        self.multi_plan = None

    # -- construction ------------------------------------------------------

    def add_actor(self, actor: Actor) -> Actor:
        """Register ``actor`` and return it (for chaining)."""
        if actor.name in self.actors:
            raise GraphError(f"duplicate actor name {actor.name!r}")
        self.actors[actor.name] = actor
        return actor

    def add_channel(self, name: str, capacity: Optional[int] = None) -> Channel:
        """Create and register a channel (unbound)."""
        if name in self.channels:
            raise GraphError(f"duplicate channel name {name!r}")
        ch = Channel(name, capacity)
        self.channels[name] = ch
        return ch

    def connect(
        self,
        producer: Actor,
        out_port: str,
        consumer: Actor,
        in_port: str,
        capacity: Optional[int] = None,
        name: Optional[str] = None,
    ) -> Channel:
        """Create a channel and bind both endpoints.

        ``capacity=None`` uses the graph default; pass an explicit ``0``-free
        positive integer to size the FIFO (the SST sizing module computes
        these depths for memory systems).
        """
        if producer.name not in self.actors:
            raise GraphError(f"producer {producer.name!r} not in graph")
        if consumer.name not in self.actors:
            raise GraphError(f"consumer {consumer.name!r} not in graph")
        cap = self.default_capacity if capacity is None else capacity
        cname = name or f"{producer.name}.{out_port}->{consumer.name}.{in_port}"
        ch = self.add_channel(cname, cap)
        producer.bind_output(out_port, ch)
        consumer.bind_input(in_port, ch)
        return ch

    # -- validation / analysis ----------------------------------------------

    def validate(self) -> None:
        """Check that every channel has both a writer and a reader."""
        for ch in self.channels.values():
            if ch.writer is None:
                raise GraphError(f"channel {ch.name!r} has no writer")
            if ch.reader is None:
                raise GraphError(f"channel {ch.name!r} has no reader")

    def to_networkx(self) -> nx.MultiDiGraph:
        """Export the actor topology as a :class:`networkx.MultiDiGraph`.

        Nodes are actor names; each channel contributes one edge annotated
        with ``channel``, ``capacity``, ``out_port`` and ``in_port``.
        """
        g = nx.MultiDiGraph(name=self.name)
        for a in self.actors.values():
            g.add_node(a.name, actor=a)
        for ch in self.channels.values():
            if ch.writer is None or ch.reader is None:
                continue
            src, out_port = ch.writer.rsplit(".", 1)
            dst, in_port = ch.reader.rsplit(".", 1)
            g.add_edge(
                src,
                dst,
                channel=ch.name,
                capacity=ch.capacity,
                out_port=out_port,
                in_port=in_port,
            )
        return g

    def topological_layers(self) -> List[List[str]]:
        """Actor names grouped by topological generation (pipeline stages).

        Raises :class:`~repro.errors.GraphError` if the graph has a cycle
        (feed-forward CNN pipelines never do).
        """
        g = nx.DiGraph(self.to_networkx())
        try:
            return [sorted(gen) for gen in nx.topological_generations(g)]
        except nx.NetworkXUnfeasible as exc:
            raise GraphError(f"graph {self.name!r} contains a cycle") from exc

    def sources(self) -> List[str]:
        """Actors with no bound input ports."""
        return sorted(a.name for a in self.actors.values() if not a.input_ports)

    def sinks(self) -> List[str]:
        """Actors with no bound output ports."""
        return sorted(a.name for a in self.actors.values() if not a.output_ports)

    # -- execution -----------------------------------------------------------

    def build_simulator(
        self,
        stall_limit: int = 10_000,
        tracer=None,
        scheduler: str = "event",
    ) -> Simulator:
        """Validate and return a cycle-level :class:`Simulator`.

        ``scheduler`` selects the engine (``"event"``, ``"lockstep"``, or
        ``"compiled"``; see :mod:`repro.dataflow.scheduler` and
        :mod:`repro.compiled`). The two interpreted engines are
        bit-equivalent; the compiled engine matches them on outputs and
        fires and needs :attr:`design` to be set.
        """
        self.validate()
        return Simulator(
            list(self.actors.values()),
            list(self.channels.values()),
            stall_limit,
            tracer=tracer,
            scheduler=scheduler,
            design=self.design,
            multi_plan=self.multi_plan,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DataflowGraph({self.name!r}, {len(self.actors)} actors, "
            f"{len(self.channels)} channels)"
        )
