"""Board-to-board link actors: finite-bandwidth bridges between shards.

A multi-FPGA placement (:func:`repro.core.multi_fpga.plan_split`) cuts the
layer pipeline at channel boundaries. Each cut becomes a
:class:`LinkTxActor` / :class:`LinkRxActor` pair joined by a *wire*
channel — the serial board-to-board stream (Aurora / PCIe peer-to-peer /
10GbE, the paper's Section VI scaling path). Both ends speak the same
:class:`~repro.dataflow.endpoint.Sink` / :class:`~repro.dataflow.endpoint.Source`
stream-endpoint protocol as every intra-board FIFO, so nothing downstream
can tell a link from a local channel except by its timing.

Timing model: the transmitter is the pacing end. Its beat interval comes
from the same :class:`~repro.fpga.dma.DmaModel` arithmetic as the ingress
DMA (``max(1, ceil(word_bits / datapath_bits), ceil(word_bytes /
bytes_per_cycle))``), so a link never moves fractional words per cycle.
The receiver is a full-rate deserializer: it forwards at II = 1 and is
only ever throttled by the wire itself. With ``beat == 1`` the pair is
transparent (a two-stage FIFO); with ``beat > 1`` the transmitter becomes
a pipeline stage of ``words_per_image * beat`` cycles per image, which is
exactly the ``stream_cycles`` term the analytical
:class:`~repro.core.multi_fpga.MultiFpgaPlan` charges for that cut.

Both actors are daemons (free-running routing stages, like
:class:`~repro.dataflow.actors.FifoStage`): the co-simulation completes
when the sink has drained, regardless of link state. Their pacing waits
are :class:`~repro.dataflow.events.WaitCycles` parks, which the Eq. 4
utilisation accounting already excludes from fire counts — a link at its
modeled bandwidth therefore never perturbs measured per-core II.
"""

from __future__ import annotations

from repro.dataflow.actor import Actor
from repro.dataflow.events import CHARGE_FIRST, POP, PUSH, ChannelWait
from repro.errors import ConfigurationError


class LinkTxActor(Actor):
    """Serializing transmitter: pops local words, pushes them onto the wire.

    Moves one word per ``beat`` cycles (the word transfer itself plus
    ``beat - 1`` pacing cycles), modeling a link whose per-word transfer
    time comes from :meth:`~repro.fpga.dma.DmaModel.beat_interval`.

    Parameters
    ----------
    name:
        Actor name; shard builders use ``link{d}.tx`` so the profiler
        groups both ends of cut *d* into one ``link{d}`` stage.
    words_per_image:
        Words crossing this cut per image (the plan's egress word count);
        consumed by the compiled engine's rate table, not by ``run``.
    beat:
        Cycles per word on the wire, >= 1.
    """

    def __init__(self, name: str, words_per_image: int, beat: int = 1):
        super().__init__(name)
        if words_per_image < 1:
            raise ConfigurationError(
                f"link {name!r}: words_per_image must be >= 1, got {words_per_image}"
            )
        if beat < 1:
            raise ConfigurationError(
                f"link {name!r}: beat must be >= 1, got {beat}"
            )
        self.words_per_image = int(words_per_image)
        self.beat = int(beat)
        self.daemon = True

    def run(self):
        in_ch = self.input("in")
        out_ch = self.output("out")
        park = ChannelWait(((POP, in_ch), (PUSH, out_ch)), CHARGE_FIRST)
        pace = self.beat - 1
        while True:
            while not (in_ch.can_pop() and out_ch.can_push()):
                if not in_ch.can_pop():
                    self.blocked_reason = f"link-tx: {in_ch.name} empty"
                    in_ch.note_empty_stall()
                else:
                    self.blocked_reason = f"link-tx: {out_ch.name} full"
                    out_ch.note_full_stall()
                yield park
            self.blocked_reason = None
            out_ch.push(in_ch.pop())
            yield
            if pace:
                yield from self.wait(pace)


class LinkRxActor(Actor):
    """Deserializing receiver: forwards wire words to the far shard at II = 1.

    A plain full-rate relay; the transmitter's pacing is the only
    bandwidth limit on the pair. Kept as a distinct actor (rather than
    wiring the far shard straight to the wire channel) so each device
    boundary has a named ingress stage for profiling and skew analysis.
    """

    def __init__(self, name: str, words_per_image: int):
        super().__init__(name)
        if words_per_image < 1:
            raise ConfigurationError(
                f"link {name!r}: words_per_image must be >= 1, got {words_per_image}"
            )
        self.words_per_image = int(words_per_image)
        self.daemon = True

    def run(self):
        yield from self.relay("in", "out")
