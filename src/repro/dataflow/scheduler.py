"""Simulation engines: the lock-step reference loop and the event scheduler.

Two interchangeable engines drive a :class:`~repro.dataflow.simulator.Simulator`:

* :class:`LockstepEngine` — the original reference loop. Every cycle it calls
  ``begin_cycle()`` on every channel and resumes every live process, so one
  cycle costs O(actors + channels) regardless of how much actually happens.
  Blocked actors spin-yield; wait descriptors are ignored entirely.
* :class:`EventEngine` — does work proportional to *activity*. Actors blocked
  on a channel register on its wait-list and are only re-examined when that
  channel commits a beat; fixed-latency waits go into a wakeup heap; when no
  process is runnable the clock jumps straight to the next wakeup; and
  ``begin_cycle()`` runs only over the incrementally maintained set of
  channels touched in the previous cycle.

Both engines produce bit-for-bit identical results on well-formed graphs:
cycle counts, output values and timestamps, channel high-water marks, and
stall statistics (see :mod:`repro.dataflow.events` for how retroactive stall
charging reproduces the lock-step counters). The differences are confined to
error paths: the event engine raises :class:`~repro.errors.DeadlockError`
*immediately* when no process can ever run again (no runnables, no pending
wakeups, no channel activity) instead of after ``stall_limit`` wasted cycles,
and it does not false-positive on fixed-latency waits longer than the stall
limit. A lock-step-compatible stall counter is kept as a backstop for legacy
actors that poll with bare ``yield`` (those always stay runnable, so the
exact condition alone would never fire for them).

Equivalence notes (why the event engine is exact, not approximate):

* Resumption order: runnable processes execute in their creation order
  (``seq``) within a cycle, identical to the lock-step list order, so
  intra-actor shared state (the compute cores' result queues) is seen in
  the same relative order.
* Monotone readiness: channels are single-writer/single-reader, so while the
  blocked endpoint is parked its condition can only become — and then stay —
  satisfiable. A parked condition therefore has a single well-defined
  "became ready" cycle, which is what makes retroactive stall charging and
  wait-list wakeups sound.
* Active-set invariant: a channel's per-cycle counters are nonzero only if
  the channel is in the active set, so skipping ``begin_cycle()`` for
  untouched channels never leaves a stale snapshot behind, and the tracer
  reads consistent state.
* With a tracer or an ``until`` predicate attached the engine still parks
  and tracks active channels but executes every cycle sequentially (no bulk
  skipping), so per-cycle samples and early-stop checks match exactly.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from typing import Dict, Generator, Iterable, List, Optional, Tuple

from repro.dataflow.actor import Actor
from repro.dataflow.counters import ProcCounters, actor_stats_dict
from repro.dataflow.events import (
    CHARGE_EACH,
    CHARGE_NONE,
    POP,
    ChannelWait,
    GateWait,
    WaitCycles,
)
from repro.errors import DeadlockError, SimulationError


def blocked_snapshot(actors: Iterable[Actor]) -> Dict[str, str]:
    """Deadlock report: each live non-daemon actor's last blocking reason."""
    return {
        a.name: (a.blocked_reason or "running (no channel beat)")
        for a in actors
        if not a.daemon
    }


def _actor_plan_of(sim) -> Optional[object]:
    """The armed actor-slowdown plan of ``sim.faults``, if any.

    Both engines consult the plan before resuming a process: a process
    whose actor sits inside a stall window is simply not resumed this
    cycle (the fault model of ``repro.faults``). The plan is a pure
    function of ``(actor name, cycle)`` so both schedulers defer the
    exact same resumptions.
    """
    armed = getattr(sim, "faults", None)
    if armed is None:
        return None
    return getattr(armed, "actor_plan", None)


class LockstepEngine:
    """The original O(cycles x (actors + channels)) reference loop.

    Kept verbatim (modulo the shared per-cycle step helper) so the event
    engine can be cross-checked against it; select it with
    ``Simulator(..., scheduler="lockstep")``.
    """

    def __init__(self, sim):
        self.sim = sim
        self.cycle = 0
        self._stall = 0
        self._actor_plan = _actor_plan_of(sim)
        self._live: List[Tuple[Actor, Generator, ProcCounters]] = [
            (a, gen, ProcCounters()) for a in sim.actors for gen in a.processes()
        ]
        #: Full (actor, counters) roster, surviving process completion, for
        #: the end-of-run actor_stats report.
        self._counters: List[Tuple[Actor, ProcCounters]] = [
            (a, cnt) for a, _, cnt in self._live
        ]
        # Make sure no event-engine hooks linger from a previous engine on
        # the same graph: descriptors must be inert under lock-step.
        for ch in sim.channels:
            ch._touched = None
            ch._pop_waiters.clear()
            ch._push_waiters.clear()
            ch._clock = self

    def _nondaemon_live(self) -> bool:
        return any(not a.daemon for a, _, _ in self._live)

    def _step(self) -> None:
        """One cycle: commit all channels, resume all processes, trace."""
        sim = self.sim
        for ch in sim.channels:
            ch.begin_cycle()
        still: List[Tuple[Actor, Generator, ProcCounters]] = []
        plan = self._actor_plan
        for actor, proc, cnt in self._live:
            if plan is not None and plan.free_cycle(actor.name, self.cycle) > self.cycle:
                still.append((actor, proc, cnt))  # stalled by an injected fault
                continue
            actor.now = self.cycle
            try:
                y = next(proc)
            except StopIteration:
                cnt.end_cycle = self.cycle
                continue
            # Native stall classification: one yield per executed cycle,
            # so counting blocked descriptors here reproduces exactly what
            # the event engine charges as park/wake spans.
            if y is not None:
                t = type(y)
                if t is ChannelWait:
                    cnt.stalled_channel += 1
                elif t is WaitCycles:
                    cnt.stalled_timer += 1
                elif t is GateWait:
                    cnt.stalled_gate += 1
            still.append((actor, proc, cnt))
        self._live = still
        if sim.tracer is not None:
            sim.tracer.record(self.cycle, sim.actors, sim.channels)
        self.cycle += 1

    def actor_stats(self) -> Dict[str, List[dict]]:
        """Per-actor, per-process counter report (see ProcCounters)."""
        return actor_stats_dict(self._counters, self.cycle)

    def scheduler_stats(self) -> dict:
        """Engine-specific scheduling metrics (not part of equivalence)."""
        return {
            "scheduler": "lockstep",
            "executed_cycles": self.cycle,
            "skipped_cycles": 0,
            "parks": 0,
            "wakeups": 0,
        }

    def _check_stall(self) -> None:
        if not self._nondaemon_live():
            return
        activity = sum(
            ch._pushed_this_cycle + ch._popped_this_cycle
            for ch in self.sim.channels
        )
        if activity == 0:
            self._stall += 1
            if self._stall >= self.sim.stall_limit:
                raise DeadlockError(
                    self.cycle, blocked_snapshot(a for a, _, _ in self._live)
                )
        else:
            self._stall = 0

    def run(self, max_cycles: int, until):
        sim = self.sim
        while self._nondaemon_live():
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"simulation exceeded max_cycles={max_cycles} with "
                    f"{len(self._live)} live processes"
                )
            self._step()
            if until is not None and until():
                return sim._result(self.cycle, False)
            self._check_stall()
        return sim._result(self.cycle, True)

    def run_cycles(self, n: int) -> int:
        for _ in range(int(n)):
            if not self._live:
                break
            self._step()
            self._check_stall()
        return len(self._live)


class _Proc:
    """One live generator: its actor, stable resumption rank, liveness."""

    __slots__ = ("actor", "gen", "seq", "alive", "key", "cnt")

    def __init__(self, actor: Actor, gen: Generator, seq: int):
        self.actor = actor
        self.gen = gen
        self.seq = seq
        self.alive = True
        #: Preallocated run-list entry; scheduling containers reuse it so
        #: the hot loop never builds tuples.
        self.key = (seq, self)
        self.cnt = ProcCounters()


class _WaitRec:
    """A parked :class:`ChannelWait`: per-condition readiness bookkeeping.

    ``ready[i]`` is the cycle at which condition ``i`` became satisfiable
    (``park`` itself if it already was at park time, ``None`` while still
    blocked); ``pending`` counts the ``None`` entries. The record wakes when
    ``pending`` hits zero, at which point the stall cycles the lock-step
    loop would have recorded are charged retroactively from ``ready``.

    ``park`` and ``apark`` start equal but rebase differently at an
    end-of-run flush: channel charging owes ``ready - park - 1`` (the
    actor's loop charged the park cycle itself before yielding) and
    rebases to ``end - 1``, while the actor's own stall counter owes the
    full ``wake - apark`` span and rebases to ``end``.
    """

    __slots__ = ("proc", "park", "apark", "conds", "charge", "ready", "pending")

    def __init__(self, proc: _Proc, park: int, conds, charge: int):
        self.proc = proc
        self.park = park
        self.apark = park
        self.conds = conds
        self.charge = charge
        self.ready: List[Optional[int]] = [None] * len(conds)
        self.pending = 0


class EventEngine:
    """Event-driven scheduler: work proportional to activity, not cycles.

    State (all cycle numbers refer to ``self.cycle``, the next cycle to
    execute):

    * ``_current`` — sorted ``(seq, proc)`` run list for the cycle being
      executed (built, sorted once, then consumed by index; mid-cycle gate
      wakes are bisect-inserted past the consumption point). Empty between
      cycles;
    * ``_next_ready`` — processes runnable next cycle (a bare ``yield``);
    * ``_timers`` — min-heap of ``(wake_cycle, seq, proc)`` fixed waits;
    * ``_active`` — channels touched last cycle, needing ``begin_cycle()``
      (each channel's ``_touched`` aliases this very set);
    * ``_parked`` — outstanding channel wait records, for end-of-run stall
      flushing; gate waiters live on their :class:`Gate`.

    Every scheduling container holds only live processes: a process dies
    only inside its own resumption (``StopIteration``), at which point it is
    in no container, so the hot loop needs no liveness filtering.
    """

    def __init__(self, sim):
        self.sim = sim
        self.cycle = 0
        self._stall = 0
        self._in_cycle = False
        self._cur_seq = -1
        self._actor_plan = _actor_plan_of(sim)
        self._active: set = set()
        self._current: List[Tuple[int, _Proc]] = []
        self._next_ready: List[_Proc] = []
        # Timer heap entries are (wake_cycle, seq, proc, park_cycle); the
        # park cycle pays the proc's stalled_timer charge when the timer
        # fires. Entries pushed by the fault plan's resumption deferral
        # carry park=None: a deferred resumption is not a stall the
        # lock-step loop would have counted (it skips the resumption too).
        self._timers: List[Tuple[int, int, _Proc, Optional[int]]] = []
        self._parked: set = set()
        #: Gates that ever parked a waiter, for the end-of-run flush.
        self._gates: set = set()
        self._executed = 0
        self._parks = 0
        self._wakeups = 0
        self._procs: List[_Proc] = []
        for a in sim.actors:
            for gen in a.processes():
                self._procs.append(_Proc(a, gen, len(self._procs)))
        self._live_total = len(self._procs)
        self._live_nondaemon = sum(
            1 for p in self._procs if not p.actor.daemon
        )
        self._next_ready.extend(self._procs)
        for ch in sim.channels:
            ch._touched = self._active
            ch._pop_waiters.clear()
            ch._push_waiters.clear()
            ch._clock = self
        # Cycle 0 commits every channel (pre-staged values, initial
        # high-water marks), exactly like the lock-step loop's first cycle.
        self._active.update(sim.channels)

    # -- cycle execution ---------------------------------------------------

    def _exec_cycle(self, c: int) -> None:
        # The hottest loop in the whole reproduction: every simulated beat of
        # every benchmark passes through here, hence the inlined dispatch,
        # exact type checks and local bindings.
        # Publish the executing cycle before any channel work: push/pop
        # stamp their first/last beats off this attribute (the caller sets
        # cycle back to c + 1 on return, preserving "next to execute").
        self.cycle = c
        self._executed += 1
        current = self._current
        active = self._active
        if active:
            # Snapshot-then-clear: a channel whose fault hook *holds* its
            # staged commit re-adds itself to the active set from inside
            # begin_cycle(), and that registration must survive into the
            # next cycle rather than be wiped by a post-loop clear.
            pending_chs = list(active)
            active.clear()
            for ch in pending_chs:
                ch.begin_cycle()
                if ch._pop_waiters and ch.can_pop():
                    waiters = ch._pop_waiters
                    ch._pop_waiters = []
                    self._satisfy(waiters, c)
                if ch._push_waiters and ch.can_push():
                    waiters = ch._push_waiters
                    ch._push_waiters = []
                    self._satisfy(waiters, c)
        nr = self._next_ready
        if nr:
            for p in nr:
                current.append(p.key)
            nr.clear()
        timers = self._timers
        if timers and timers[0][0] <= c:
            while timers and timers[0][0] <= c:
                _w, _s, p, park = heappop(timers)
                if park is not None:
                    p.cnt.stalled_timer += c - park
                    self._wakeups += 1
                current.append(p.key)
        current.sort()
        nr_append = nr.append
        plan = self._actor_plan
        self._in_cycle = True
        pos = 0
        while pos < len(current):
            seq, p = current[pos]
            pos += 1
            if plan is not None:
                # Injected actor slow-down: defer resumption to the first
                # fault-free cycle (lock-step skips the same resumptions,
                # so both engines release the actor on the same cycle).
                wake = plan.free_cycle(p.actor.name, c)
                if wake > c:
                    heappush(timers, (wake, seq, p, None))
                    continue
            self._cur_seq = seq
            p.actor.now = c
            try:
                y = next(p.gen)
            except StopIteration:
                p.alive = False
                p.cnt.end_cycle = c
                self._live_total -= 1
                if not p.actor.daemon:
                    self._live_nondaemon -= 1
                continue
            if y is None:
                nr_append(p)
            elif type(y) is ChannelWait:
                self._park(p, y, c)
            elif type(y) is WaitCycles:
                n = y.cycles
                heappush(timers, (c + (n if n >= 1 else 1), seq, p, c))
                self._parks += 1
            elif type(y) is GateWait:
                gate = y.gate
                if gate._engine is not self:
                    gate._engine = self
                    self._gates.add(gate)
                gate._waiters.append((p, c))
                self._parks += 1
            else:
                self._reject(p, y)
        self._in_cycle = False
        current.clear()
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.record(c, self.sim.actors, self.sim.channels)

    def _reject(self, p: _Proc, y) -> None:
        raise SimulationError(
            f"process of actor {p.actor.name!r} yielded unsupported "
            f"value {y!r}; yield None, a wait descriptor, or use the "
            f"Actor helpers"
        )

    def _park(self, p: _Proc, w: ChannelWait, c: int) -> None:
        rec = _WaitRec(p, c, w.conds, w.charge)
        ready = rec.ready
        pending = 0
        for i, (op, ch) in enumerate(w.conds):
            if ch.can_pop() if op == POP else ch.can_push():
                ready[i] = c
            else:
                pending += 1
                (ch._pop_waiters if op == POP else ch._push_waiters).append(
                    (rec, i)
                )
        if pending == 0:
            # Everything is already satisfiable: behave like a bare yield
            # (the actor's loop re-checks and proceeds next cycle). The
            # lock-step loop still saw one blocked-descriptor yield.
            p.cnt.stalled_channel += 1
            self._next_ready.append(p)
            return
        rec.pending = pending
        self._parked.add(rec)
        self._parks += 1

    def _satisfy(self, waiters: List[tuple], c: int) -> None:
        # Phase 1 only: _current is still under construction (sorted later).
        for rec, i in waiters:
            if rec.ready[i] is None:
                rec.ready[i] = c
                rec.pending -= 1
                if rec.pending == 0:
                    self._parked.discard(rec)
                    self._apply_charges(rec, c)
                    # The lock-step loop yielded the descriptor on every
                    # cycle of the park span (the wake cycle itself fires).
                    rec.proc.cnt.stalled_channel += c - rec.apark
                    self._wakeups += 1
                    self._current.append(rec.proc.key)

    def _gate_notify(self, gate) -> None:
        """Wake gate waiters; same-cycle iff they resume after the notifier.

        Mirrors lock-step shared-memory visibility: a process later in the
        resumption order sees this cycle's mutation in its own slice, an
        earlier one only next cycle. The stall charge mirrors that split:
        a same-cycle waker's lock-step twin last yielded ``GateWait`` at
        ``c - 1`` (at ``c`` it runs after the notifier and proceeds), so
        it owes ``c - park`` yields; a next-cycle waker ran *before* the
        notifier at ``c``, yielded once more, and owes ``c + 1 - park``.
        """
        waiters = gate._waiters
        gate._waiters = []
        cur = self._cur_seq if self._in_cycle else -1
        c = self.cycle
        for p, park in waiters:
            if not p.alive:
                continue
            self._wakeups += 1
            if p.seq > cur:
                # Insert into the still-unconsumed tail of the run list
                # (every consumed entry has seq <= cur < p.seq).
                p.cnt.stalled_gate += c - park
                insort(self._current, p.key)
            else:
                p.cnt.stalled_gate += c + 1 - park
                self._next_ready.append(p)

    # -- retroactive stall accounting --------------------------------------

    def _apply_charges(self, rec: _WaitRec, default: int) -> None:
        """Charge the stall cycles lock-step would have recorded.

        The actor's own loop already charged the park cycle before
        yielding, so for ``CHARGE_EACH`` condition *i* owes
        ``max(0, ready[i] - park - 1)`` further cycles. ``CHARGE_FIRST``
        (relay) charges only the first still-blocked condition per cycle,
        which the running ``m`` cursor reproduces. ``default`` substitutes
        for conditions that never became ready (end-of-run flush).
        """
        charge = rec.charge
        if charge == CHARGE_NONE:
            return
        park = rec.park
        if charge == CHARGE_EACH:
            for (op, ch), r in zip(rec.conds, rec.ready):
                n = (default if r is None else r) - park - 1
                if n > 0:
                    if op == POP:
                        ch.stats.empty_stall_cycles += n
                    else:
                        ch.stats.full_stall_cycles += n
        else:  # CHARGE_FIRST
            m = park + 1
            for (op, ch), r in zip(rec.conds, rec.ready):
                if r is None:
                    r = default
                n = r - m
                if n > 0:
                    if op == POP:
                        ch.stats.empty_stall_cycles += n
                    else:
                        ch.stats.full_stall_cycles += n
                if r > m:
                    m = r

    def _flush(self, end: int) -> None:
        """Bring stall stats of still-parked actors up to cycle ``end - 1``.

        Under lock-step, parked daemons (and actors observed mid-run via
        ``run_cycles``) keep recording stalls every executed cycle; charge
        those now, then rebase each record's park cycle so a later
        continuation charges only cycles from ``end`` on.
        """
        rebase = end - 1
        for rec in self._parked:
            self._apply_charges(rec, end)
            rec.park = rebase
            # Actor-side counter: a lock-step twin yielded the descriptor
            # on every executed cycle apark..end-1; rebase to end so a
            # continuation charges from there.
            rec.proc.cnt.stalled_channel += end - rec.apark
            rec.apark = end
        for gate in self._gates:
            waiters = gate._waiters
            if waiters:
                gate._waiters = [
                    (p, end) for p, park in waiters if p.alive
                ]
                for p, park in waiters:
                    if p.alive:
                        p.cnt.stalled_gate += end - park
        if self._timers:
            # Rebase pending timer parks; the (wake, seq) heap keys are
            # untouched, so the list stays a valid heap. Plan-deferral
            # entries (park=None) are never charged.
            timers = []
            for wake, seq, p, park in self._timers:
                if park is not None:
                    p.cnt.stalled_timer += end - park
                    park = end
                timers.append((wake, seq, p, park))
            self._timers = timers

    # -- counter reports ---------------------------------------------------

    def actor_stats(self) -> Dict[str, List[dict]]:
        """Per-actor, per-process counter report (see ProcCounters)."""
        return actor_stats_dict(
            [(p.actor, p.cnt) for p in self._procs], self.cycle
        )

    def scheduler_stats(self) -> dict:
        """Engine-specific scheduling metrics (not part of equivalence)."""
        return {
            "scheduler": "event",
            "executed_cycles": self._executed,
            "skipped_cycles": self.cycle - self._executed,
            "parks": self._parks,
            "wakeups": self._wakeups,
        }

    # -- clock advance and stall/deadlock policy ---------------------------

    def _advance(self, tick: bool) -> Optional[int]:
        """Next cycle to execute; ``None`` if no process can ever run again."""
        if self._next_ready or self._current or self._active:
            return self.cycle
        if self._timers:
            if tick:
                return self.cycle
            wake = self._timers[0][0]
            return wake if wake > self.cycle else self.cycle
        return None

    def _blocked(self) -> Dict[str, str]:
        return blocked_snapshot(p.actor for p in self._procs if p.alive)

    def _blocked_channels(self) -> Dict[str, List[str]]:
        """Per-actor unsatisfied channel conditions of every parked record.

        Unlike :meth:`_blocked` (free-text ``blocked_reason`` strings) this
        names the exact channels a deadlocked actor is waiting on, as
        ``"pop:<name>"`` / ``"push:<name>"`` entries — the data the
        fault-injection harness matches against the static analyzer's
        FIFO-sizing diagnostics.
        """
        out: Dict[str, List[str]] = {}
        for rec in self._parked:
            conds = [
                ("pop:" if op == POP else "push:") + ch.name
                for (op, ch), r in zip(rec.conds, rec.ready)
                if r is None
            ]
            if conds:
                out.setdefault(rec.proc.actor.name, []).extend(conds)
        return {name: sorted(conds) for name, conds in sorted(out.items())}

    def _deadlock(self) -> DeadlockError:
        return DeadlockError(
            self.cycle, self._blocked(), channels=self._blocked_channels()
        )

    def _check_stall(self) -> None:
        """Lock-step-compatible backstop for bare-``yield`` pollers."""
        if self._live_nondaemon <= 0:
            return
        if self._active:
            self._stall = 0
        else:
            self._stall += 1
            if self._stall >= self.sim.stall_limit:
                raise self._deadlock()

    # -- public API --------------------------------------------------------

    def run(self, max_cycles: int, until):
        sim = self.sim
        tick = sim.tracer is not None or until is not None
        stall_limit = sim.stall_limit
        exec_cycle = self._exec_cycle
        timers = self._timers
        while self._live_nondaemon > 0:
            # Inlined _advance(tick): this header runs once per cycle.
            if self._next_ready or self._active or self._current:
                c = self.cycle
            elif timers:
                wake = timers[0][0]
                c = self.cycle if tick or wake <= self.cycle else wake
            elif until is not None:
                # A cycle-based ``until`` may still fire: keep ticking empty
                # cycles; the stall backstop below bounds this.
                c = self.cycle
            else:
                # Exact and immediate: nothing is runnable, no wakeups
                # are pending, and no channel committed anything.
                raise self._deadlock()
            if c >= max_cycles:
                raise SimulationError(
                    f"simulation exceeded max_cycles={max_cycles} with "
                    f"{self._live_total} live processes"
                )
            exec_cycle(c)
            self.cycle = c + 1
            if until is not None and until():
                self._flush(self.cycle)
                return sim._result(self.cycle, False)
            # Inlined _check_stall(): backstop for bare-``yield`` pollers.
            if self._active:
                self._stall = 0
            elif self._live_nondaemon > 0:
                self._stall += 1
                if self._stall >= stall_limit:
                    raise self._deadlock()
        self._flush(self.cycle)
        return sim._result(self.cycle, True)

    def run_cycles(self, n: int) -> int:
        sim = self.sim
        target = self.cycle + int(n)
        tick = sim.tracer is not None
        while self.cycle < target:
            if self._live_total == 0:
                break
            c = self._advance(tick)
            if c is None or c >= target:
                # Nothing can run before the target: the gap is pure stall
                # time for the lock-step accounting.
                gap = target - self.cycle
                self.cycle = target
                if self._live_nondaemon > 0:
                    self._stall += gap
                    if self._stall >= sim.stall_limit:
                        raise self._deadlock()
                break
            self._exec_cycle(c)
            self.cycle = c + 1
            self._check_stall()
        self._flush(self.cycle)
        return self._live_total
