"""Cycle-level simulator driving actors and channels.

The simulator advances a set of :class:`~repro.dataflow.actor.Actor`
processes in clock cycles under a two-phase protocol:

1. channels touched in the previous cycle commit their staged pushes and
   snapshot occupancy (:meth:`Channel.begin_cycle`);
2. each runnable process is resumed once, in creation order; it performs at
   most one beat per port and then yields.

Because channel firing rules are answered against the cycle-start snapshot,
the result (both values *and* timing) is independent of the order in which
processes are resumed within a cycle.

Two interchangeable engines implement this contract (see
:mod:`repro.dataflow.scheduler`): the default ``"event"`` scheduler parks
blocked processes on channel wait-lists and a wakeup heap and skips cycles
in which nothing can run, while the ``"lockstep"`` scheduler is the simple
reference loop that resumes everything every cycle. They produce identical
results; the event engine is asymptotically faster on stalling workloads
and reports deadlocks immediately (no runnable process, no pending wakeup,
no channel activity) instead of after ``stall_limit`` idle cycles.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import ClassVar, Dict, Sequence

from repro.dataflow.actor import Actor
from repro.dataflow.channel import Channel
from repro.dataflow.scheduler import EventEngine, LockstepEngine
from repro.errors import CompilationError, ConfigurationError, SimulationError
from repro.report.base import Report


def _compiled_engine(sim):
    """Factory for the ``"compiled"`` engine with event-engine fallback.

    Imported lazily: :mod:`repro.compiled` depends on the builder and
    analyzer stacks, which in turn import this module. Armed faults are
    rejected outright (faults perturb interpreted execution, which a
    compiled run never performs); every other reason the graph cannot be
    lowered surfaces as :class:`~repro.errors.CompilationError` and
    degrades to the interpreted event engine with a
    :class:`~repro.compiled.CompiledFallbackWarning`.
    """
    from repro.compiled import CompiledEngine, CompiledFallbackWarning

    if sim.faults is not None:
        raise ConfigurationError(
            "faults require an interpreted engine ('event' or 'lockstep'); "
            "the compiled engine executes fused kernels and cannot apply "
            "fault plans"
        )
    try:
        return CompiledEngine(sim)
    except CompilationError as exc:
        warnings.warn(
            f"scheduler='compiled' falling back to the event engine: {exc}",
            CompiledFallbackWarning,
            stacklevel=3,
        )
        return EventEngine(sim)


#: Engine name -> engine factory (see :mod:`repro.dataflow.scheduler` for
#: the interpreted engines, :mod:`repro.compiled` for the compiled one).
SCHEDULERS = {
    "event": EventEngine,
    "lockstep": LockstepEngine,
    "compiled": _compiled_engine,
}


@dataclass
class SimulationResult(Report):
    """Outcome of a simulation run.

    ``actor_stats`` maps actor name to one counter dict per process (see
    :class:`~repro.dataflow.counters.ProcCounters`): fires, per-kind
    stall cycles, lifetime. ``scheduler_stats`` carries engine-specific
    scheduling metrics (parks, wakeups, executed vs skipped cycles) and
    is *not* part of the cross-engine equivalence contract.
    """

    kind: ClassVar[str] = "simulation"

    cycles: int = 0
    finished: bool = False
    channel_stats: Dict[str, dict] = field(default_factory=dict)
    actor_stats: Dict[str, list] = field(default_factory=dict)
    scheduler_stats: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "cycles": self.cycles,
            "finished": self.finished,
            "channel_stats": self.channel_stats,
            "actor_stats": self.actor_stats,
            "scheduler_stats": self.scheduler_stats,
        }

    def summary(self) -> str:
        return str(self)

    def __str__(self) -> str:
        state = "finished" if self.finished else "stopped"
        return f"SimulationResult({state} after {self.cycles} cycles)"


class Simulator:
    """Drives a set of actors and channels cycle by cycle.

    Parameters
    ----------
    actors:
        The actors to simulate. Their ports must already be bound.
    channels:
        All channels in the graph. Channels bound to the actors but missing
        from this list would silently never commit pushes, so the simulator
        cross-checks and raises if it finds an unregistered channel.
    stall_limit:
        Number of consecutive cycles without any channel activity after
        which a deadlock is declared (default 10_000). The event scheduler
        usually detects deadlock exactly and immediately; this limit
        remains the bound for legacy actors that poll with bare ``yield``.
    scheduler:
        ``"event"`` (default) or ``"lockstep"``; both give bit-identical
        results (cycles, outputs, channel stats) on well-formed graphs.
        ``"compiled"`` lowers verified design graphs to fused vectorized
        kernels (see :mod:`repro.compiled`) — bit-identical outputs and
        fires, modeled timing — and falls back to ``"event"`` with a
        :class:`~repro.compiled.CompiledFallbackWarning` when the graph
        cannot be lowered.
    design:
        The :class:`~repro.core.network_design.NetworkDesign` this graph
        was elaborated from, when built via :mod:`repro.core.builder`;
        ``None`` for hand-built graphs. Required by the compiled engine's
        strict-only gate.
    """

    def __init__(
        self,
        actors: Sequence[Actor],
        channels: Sequence[Channel],
        stall_limit: int = 10_000,
        tracer=None,
        scheduler: str = "event",
        design=None,
        multi_plan=None,
    ):
        self.actors = list(actors)
        self.channels = list(channels)
        self.stall_limit = int(stall_limit)
        #: Optional :class:`~repro.dataflow.trace.Tracer` sampling activity.
        self.tracer = tracer
        if scheduler not in SCHEDULERS:
            raise ConfigurationError(
                f"unknown scheduler {scheduler!r}; "
                f"expected one of {sorted(SCHEDULERS)}"
            )
        self.scheduler = scheduler
        #: Design provenance for the compiled engine (None if hand-built).
        self.design = design
        #: Multi-FPGA shard provenance (None for single-device graphs);
        #: the compiled engine folds its link stages into the timing frame.
        self.multi_plan = multi_plan
        #: Optional :class:`repro.faults.ArmedFaults`. Set (by
        #: ``repro.faults.arm_faults``) *before* the first ``run`` /
        #: ``run_cycles`` call; engines read it once at creation. None on
        #: the no-fault hot path.
        self.faults = None
        self._engine = None
        self._validate()

    def _validate(self) -> None:
        names = set()
        for a in self.actors:
            if a.name in names:
                raise SimulationError(f"duplicate actor name {a.name!r}")
            names.add(a.name)
        registered = set(id(c) for c in self.channels)
        for a in self.actors:
            for port in a.input_ports:
                ch = a.input(port)
                if id(ch) not in registered:
                    raise SimulationError(
                        f"channel {ch.name!r} (input of {a.name!r}) not "
                        f"registered with the simulator"
                    )
            for port in a.output_ports:
                ch = a.output(port)
                if id(ch) not in registered:
                    raise SimulationError(
                        f"channel {ch.name!r} (output of {a.name!r}) not "
                        f"registered with the simulator"
                    )

    # -- running -----------------------------------------------------------

    @property
    def cycle(self) -> int:
        """Current simulation cycle (next cycle to execute)."""
        return self._engine.cycle if self._engine is not None else 0

    def _start(self):
        """Create the engine (starting every actor process) on first use."""
        if self._engine is None:
            self._engine = SCHEDULERS[self.scheduler](self)
        return self._engine

    def _result(self, cycles: int, finished: bool) -> SimulationResult:
        """Engine callback packaging the run outcome with channel stats."""
        engine = self._engine
        return SimulationResult(
            cycles=cycles,
            finished=finished,
            channel_stats={ch.name: ch.stats.as_dict() for ch in self.channels},
            actor_stats=engine.actor_stats(),
            scheduler_stats=engine.scheduler_stats(),
        )

    def run(self, max_cycles: int = 10_000_000, until=None) -> SimulationResult:
        """Run until completion, a deadlock, ``until()``, or ``max_cycles``.

        Completion means every process of every *non-daemon* actor has
        finished; free-running daemon actors (routing stages, adapters) do
        not keep the simulation alive. ``until`` is an optional nullary
        predicate checked at the end of each cycle for early stopping.
        Continues from the current cycle if the simulation was already
        started (e.g. by :meth:`run_cycles`).

        Returns
        -------
        SimulationResult
            ``finished`` is True when all non-daemon processes completed
            (not when stopped early by ``until``).
        """
        return self._start().run(int(max_cycles), until)

    def run_cycles(self, n: int) -> int:
        """Advance the simulation by exactly ``n`` cycles (step debugging).

        Starts the processes on first use and shares the engine with
        :meth:`run`, so stats, tracing, and deadlock detection all behave
        as in a full run. Returns the number of still-live processes.
        """
        return self._start().run_cycles(int(n))
