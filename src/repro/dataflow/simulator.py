"""Cycle-level simulator driving actors and channels.

The simulator advances a set of :class:`~repro.dataflow.actor.Actor`
processes in lock-step clock cycles:

1. every channel commits the pushes staged in the previous cycle and
   snapshots its occupancy (:meth:`Channel.begin_cycle`);
2. every live process is resumed once; it performs at most one beat per
   port and then yields.

Because channel firing rules are answered against the cycle-start snapshot,
the result (both values *and* timing) is independent of the order in which
processes are resumed within a cycle.

Deadlock detection: if no channel registers any push or pop for
``stall_limit`` consecutive cycles while live processes remain, a
:class:`~repro.errors.DeadlockError` is raised with each actor's last
blocking reason. Fixed-latency ``wait()`` stalls are far shorter than the
default limit, so they never trip it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.dataflow.actor import Actor
from repro.dataflow.channel import Channel
from repro.errors import DeadlockError, SimulationError


@dataclass
class SimulationResult:
    """Outcome of a simulation run."""

    cycles: int
    finished: bool
    channel_stats: Dict[str, dict] = field(default_factory=dict)

    def __str__(self) -> str:
        state = "finished" if self.finished else "stopped"
        return f"SimulationResult({state} after {self.cycles} cycles)"


class Simulator:
    """Drives a set of actors and channels cycle by cycle.

    Parameters
    ----------
    actors:
        The actors to simulate. Their ports must already be bound.
    channels:
        All channels in the graph. Channels bound to the actors but missing
        from this list would silently never commit pushes, so the simulator
        cross-checks and raises if it finds an unregistered channel.
    stall_limit:
        Number of consecutive cycles without any channel activity after
        which a deadlock is declared (default 10_000).
    """

    def __init__(
        self,
        actors: Sequence[Actor],
        channels: Sequence[Channel],
        stall_limit: int = 10_000,
        tracer=None,
    ):
        self.actors = list(actors)
        self.channels = list(channels)
        self.stall_limit = int(stall_limit)
        #: Optional :class:`~repro.dataflow.trace.Tracer` sampling activity.
        self.tracer = tracer
        self.cycle = 0
        self._procs: List[Tuple[Actor, Generator]] = []
        self._validate()

    def _validate(self) -> None:
        names = set()
        for a in self.actors:
            if a.name in names:
                raise SimulationError(f"duplicate actor name {a.name!r}")
            names.add(a.name)
        registered = set(id(c) for c in self.channels)
        for a in self.actors:
            for port in a.input_ports:
                ch = a.input(port)
                if id(ch) not in registered:
                    raise SimulationError(
                        f"channel {ch.name!r} (input of {a.name!r}) not "
                        f"registered with the simulator"
                    )
            for port in a.output_ports:
                ch = a.output(port)
                if id(ch) not in registered:
                    raise SimulationError(
                        f"channel {ch.name!r} (output of {a.name!r}) not "
                        f"registered with the simulator"
                    )

    # -- running -----------------------------------------------------------

    def _start(self) -> None:
        self._procs = []
        for a in self.actors:
            for gen in a.processes():
                self._procs.append((a, gen))

    def _activity(self) -> int:
        """Total channel beats (pushes + pops) observed this cycle."""
        return sum(
            ch._pushed_this_cycle + ch._popped_this_cycle for ch in self.channels
        )

    def run(self, max_cycles: int = 10_000_000, until=None) -> SimulationResult:
        """Run until completion, a deadlock, ``until()``, or ``max_cycles``.

        Completion means every process of every *non-daemon* actor has
        finished; free-running daemon actors (routing stages, adapters) do
        not keep the simulation alive. ``until`` is an optional nullary
        predicate checked at the end of each cycle for early stopping.

        Returns
        -------
        SimulationResult
            ``finished`` is True when all non-daemon processes completed
            (not when stopped early by ``until``).
        """
        self._start()
        live = self._procs
        stall = 0
        while any(not a.daemon for a, _ in live):
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"simulation exceeded max_cycles={max_cycles} with "
                    f"{len(live)} live processes"
                )
            for ch in self.channels:
                ch.begin_cycle()
            still_live: List[Tuple[Actor, Generator]] = []
            for actor, proc in live:
                actor.now = self.cycle
                try:
                    next(proc)
                except StopIteration:
                    continue
                still_live.append((actor, proc))
            live = still_live
            if self.tracer is not None:
                self.tracer.record(self.cycle, self.actors, self.channels)
            self.cycle += 1
            if until is not None and until():
                return SimulationResult(
                    cycles=self.cycle,
                    finished=False,
                    channel_stats={ch.name: ch.stats.as_dict() for ch in self.channels},
                )
            if any(not a.daemon for a, _ in live):
                if self._activity() == 0:
                    stall += 1
                    if stall >= self.stall_limit:
                        blocked = {
                            a.name: (a.blocked_reason or "running (no channel beat)")
                            for a, _ in live
                            if not a.daemon
                        }
                        raise DeadlockError(self.cycle, blocked)
                else:
                    stall = 0
        return SimulationResult(
            cycles=self.cycle,
            finished=True,
            channel_stats={ch.name: ch.stats.as_dict() for ch in self.channels},
        )

    def run_cycles(self, n: int) -> int:
        """Advance the simulation by exactly ``n`` cycles (for step debugging).

        Starts the processes on first use. Returns the number of still-live
        processes afterwards.
        """
        if not self._procs:
            self._start()
            self._live = list(self._procs)
        live = getattr(self, "_live", list(self._procs))
        for _ in range(int(n)):
            if not live:
                break
            for ch in self.channels:
                ch.begin_cycle()
            nxt: List[Tuple[Actor, Generator]] = []
            for actor, proc in live:
                actor.now = self.cycle
                try:
                    next(proc)
                except StopIteration:
                    continue
                nxt.append((actor, proc))
            live = nxt
            self.cycle += 1
        self._live = live
        return len(live)
