"""Execution tracing: per-actor activity, channel occupancy, VCD export.

A :class:`Tracer` attached to the simulator samples, every cycle, which
actors did useful work (an actor that ends its slice without a
``blocked_reason`` made progress) and how full each channel is. From the
samples it derives:

* per-actor busy fractions over any cycle window — the direct evidence
  for the paper's claim that "at steady state, all the different layers
  of the network will be concurrently active and computing";
* channel occupancy statistics and an ASCII activity strip per actor;
* a Value Change Dump (``.vcd``) of channel occupancies viewable in any
  waveform viewer (GTKWave etc.).

The tracer is the *optional high-resolution backend* of the profiling
stack: the always-on native counters (:mod:`repro.dataflow.counters`)
already give every whole-run quantity for free — per-process fire/stall
splits, channel high-water marks and activity spans —
and :func:`counter_busy_fractions` derives whole-run utilization from
them with no tracer attached. Attach a :class:`Tracer` only to refine
the same quantities over arbitrary cycle windows
(:meth:`Tracer.busy_fraction`) or to see per-cycle occupancy waveforms.

Tracing costs a Python callback per cycle; attach it only when inspecting.
With a tracer attached, the event scheduler disables bulk cycle-skipping
and executes every cycle sequentially (it still parks blocked actors), so
samples are taken for every cycle under either scheduler; the per-cycle
channel counters it reads stay consistent because any channel with a beat
this cycle is by construction in the engine's active set.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.dataflow.actor import Actor
from repro.dataflow.channel import Channel
from repro.errors import ConfigurationError


def counter_busy_fractions(
    actor_stats: Dict[str, List[dict]], cycles: int
) -> Dict[str, float]:
    """Whole-run busy fraction per actor from the native counters alone.

    An actor's busiest process fires once per productive cycle, so
    ``fires / cycles`` is the sampling-free equivalent of
    :meth:`Tracer.busy_fraction` over the full run (the tracer refines
    this to arbitrary windows). ``actor_stats`` is the
    ``SimulationResult.actor_stats`` mapping.
    """
    if cycles <= 0:
        return {name: 0.0 for name in actor_stats}
    return {
        name: max(p["fires"] for p in procs) / cycles
        for name, procs in actor_stats.items()
        if procs
    }


class Tracer:
    """Records per-cycle actor activity and channel occupancy.

    Parameters
    ----------
    sample_every:
        Record one sample every N cycles (1 = every cycle). Coarser
        sampling keeps long simulations cheap while preserving trends.
    """

    def __init__(self, sample_every: int = 1):
        if sample_every < 1:
            raise ConfigurationError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.sample_every = int(sample_every)
        #: cycle numbers at which samples were taken.
        self.cycles: List[int] = []
        #: actor name -> list of 0/1 activity flags, aligned with cycles.
        self.activity: Dict[str, List[int]] = {}
        #: channel name -> list of occupancies, aligned with cycles.
        self.occupancy: Dict[str, List[int]] = {}

    # -- recording (called by the simulator) ------------------------------

    def record(
        self, cycle: int, actors: Sequence[Actor], channels: Sequence[Channel]
    ) -> None:
        """Take one sample if the cycle falls on the sampling grid.

        An actor counts as *active* in a cycle if it moved at least one
        beat on any of its channels (popped an input or pushed an output).
        This is robust for multi-process actors, whose shared
        ``blocked_reason`` would otherwise under-report.
        """
        if cycle % self.sample_every:
            return
        self.cycles.append(cycle)
        active = set()
        for ch in channels:
            if ch._popped_this_cycle and ch.reader:
                active.add(ch.reader.rsplit(".", 1)[0])
            if ch._pushed_this_cycle and ch.writer:
                active.add(ch.writer.rsplit(".", 1)[0])
        for a in actors:
            self.activity.setdefault(a.name, []).append(
                1 if a.name in active else 0
            )
        for ch in channels:
            self.occupancy.setdefault(ch.name, []).append(ch.occupancy)

    # -- analysis ----------------------------------------------------------

    def busy_fraction(
        self,
        actor: str,
        start: Optional[int] = None,
        end: Optional[int] = None,
    ) -> float:
        """Fraction of sampled cycles in ``[start, end)`` the actor worked."""
        try:
            flags = self.activity[actor]
        except KeyError:
            raise ConfigurationError(f"no trace for actor {actor!r}") from None
        pairs = [
            f
            for c, f in zip(self.cycles, flags)
            if (start is None or c >= start) and (end is None or c < end)
        ]
        if not pairs:
            raise ConfigurationError(
                f"no samples for {actor!r} in [{start}, {end})"
            )
        return sum(pairs) / len(pairs)

    def utilization(
        self, start: Optional[int] = None, end: Optional[int] = None
    ) -> Dict[str, float]:
        """Busy fraction of every traced actor over the window."""
        return {
            name: self.busy_fraction(name, start, end) for name in self.activity
        }

    def concurrently_active(
        self, threshold: float = 0.5, start: Optional[int] = None,
        end: Optional[int] = None,
    ) -> List[str]:
        """Actors whose busy fraction exceeds ``threshold`` in the window."""
        return sorted(
            name
            for name, frac in self.utilization(start, end).items()
            if frac > threshold
        )

    def peak_occupancy(self, channel: str) -> int:
        """Highest sampled occupancy of a channel."""
        try:
            return max(self.occupancy[channel])
        except KeyError:
            raise ConfigurationError(f"no trace for channel {channel!r}") from None

    # -- rendering -----------------------------------------------------------

    def activity_strips(self, width: int = 72) -> str:
        """ASCII strip chart: one row per actor, '#' busy / '.' stalled.

        Samples are bucketed down to ``width`` columns; a bucket is busy if
        the actor worked in the majority of its samples.
        """
        if not self.cycles:
            raise ConfigurationError("tracer holds no samples")
        n = len(self.cycles)
        width = min(width, n)
        lines = [f"cycles {self.cycles[0]}..{self.cycles[-1]} "
                 f"({n} samples, {width} buckets)"]
        name_w = max(len(n_) for n_ in self.activity)
        for name in sorted(self.activity):
            flags = self.activity[name]
            strip = []
            for b in range(width):
                lo = b * n // width
                hi = max(lo + 1, (b + 1) * n // width)
                frac = sum(flags[lo:hi]) / (hi - lo)
                strip.append("#" if frac > 0.5 else ("+" if frac > 0 else "."))
            lines.append(f"{name.ljust(name_w)} |{''.join(strip)}|")
        return "\n".join(lines)

    def to_vcd(self) -> str:
        """Render the channel occupancy trace as a VCD document.

        Occupancies are emitted as 16-bit vector signals under a single
        ``channels`` scope; timescale is one nanosecond per cycle (a
        100 MHz cycle rendered at 1 ns keeps viewers readable).
        """
        if not self.cycles:
            raise ConfigurationError("tracer holds no samples")
        names = sorted(self.occupancy)
        idents = {}
        for i, name in enumerate(names):
            # VCD identifier alphabet: printable ASCII 33..126.
            ident = ""
            k = i
            while True:
                ident += chr(33 + (k % 94))
                k //= 94
                if k == 0:
                    break
            idents[name] = ident
        out = [
            "$date repro trace $end",
            "$version repro.dataflow.trace $end",
            "$timescale 1ns $end",
            "$scope module channels $end",
        ]
        for name in names:
            safe = name.replace(" ", "_")
            out.append(f"$var wire 16 {idents[name]} {safe} $end")
        out.append("$upscope $end")
        out.append("$enddefinitions $end")
        last: Dict[str, Optional[int]] = {n: None for n in names}
        for i, cycle in enumerate(self.cycles):
            changes = []
            for name in names:
                val = self.occupancy[name][i]
                if val != last[name]:
                    changes.append(f"b{val:b} {idents[name]}")
                    last[name] = val
            if changes:
                out.append(f"#{cycle}")
                out.extend(changes)
        return "\n".join(out) + "\n"
