"""Deterministic synthetic datasets standing in for USPS and CIFAR-10.

See DESIGN.md Section 3 for why these substitutions preserve the paper's
evaluation: the experiments depend on layer dimensions, data layout and
class count — not on natural-image statistics.
"""

from repro.datasets.batching import iterate_batches, train_test_split
from repro.datasets.cifar10 import generate_cifar10, render_sample
from repro.datasets.usps import generate_usps, render_digit

__all__ = [
    "generate_cifar10",
    "generate_usps",
    "iterate_batches",
    "render_digit",
    "render_sample",
    "train_test_split",
]
