"""Dataset splitting and batching utilities."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.errors import DatasetError


def train_test_split(
    x: np.ndarray, y: np.ndarray, test_fraction: float = 0.2, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split into ``(x_train, y_train, x_test, y_test)``."""
    if len(x) != len(y):
        raise DatasetError(f"x/y length mismatch: {len(x)} vs {len(y)}")
    if not (0.0 < test_fraction < 1.0):
        raise DatasetError(f"test_fraction must be in (0, 1), got {test_fraction}")
    n = len(x)
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise DatasetError(f"test split of {n_test} leaves no training data (n={n})")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    test_idx, train_idx = order[:n_test], order[n_test:]
    return x[train_idx], y[train_idx], x[test_idx], y[test_idx]


def iterate_batches(
    x: np.ndarray, y: np.ndarray, batch_size: int, seed: int = 0, shuffle: bool = True
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(x_batch, y_batch)`` mini-batches (last may be smaller)."""
    if len(x) != len(y):
        raise DatasetError(f"x/y length mismatch: {len(x)} vs {len(y)}")
    if batch_size < 1:
        raise DatasetError(f"batch_size must be >= 1, got {batch_size}")
    order = np.arange(len(x))
    if shuffle:
        np.random.default_rng(seed).shuffle(order)
    for start in range(0, len(x), batch_size):
        idx = order[start : start + batch_size]
        yield x[idx], y[idx]
