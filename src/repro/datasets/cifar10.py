"""Synthetic CIFAR-10-like dataset: 32x32 RGB images in 10 classes.

CIFAR-10 cannot be downloaded offline, so we generate a 10-class 32x32x3
set with the same tensor shapes and value range. Each class is a distinct
parametric texture/shape family (stripes, checker, disc, ring, gradient,
cross, blobs, triangle, dots, diagonal) rendered with per-sample random
colors, frequencies, phases and positions plus pixel noise — separable
enough to train the paper's Test Case 2 network to a meaningful accuracy
while exercising exactly the same compute path as natural images would.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.config import DTYPE
from repro.errors import DatasetError

IMAGE_SIZE = 32
N_CLASSES = 10


def _grid() -> Tuple[np.ndarray, np.ndarray]:
    ys, xs = np.mgrid[0:IMAGE_SIZE, 0:IMAGE_SIZE]
    return xs / (IMAGE_SIZE - 1), ys / (IMAGE_SIZE - 1)


def _mask_h_stripes(rng: np.random.Generator) -> np.ndarray:
    _, y = _grid()
    freq = rng.uniform(2.0, 5.0)
    phase = rng.uniform(0, 2 * np.pi)
    return 0.5 + 0.5 * np.sin(2 * np.pi * freq * y + phase)


def _mask_v_stripes(rng: np.random.Generator) -> np.ndarray:
    x, _ = _grid()
    freq = rng.uniform(2.0, 5.0)
    phase = rng.uniform(0, 2 * np.pi)
    return 0.5 + 0.5 * np.sin(2 * np.pi * freq * x + phase)


def _mask_diag_stripes(rng: np.random.Generator) -> np.ndarray:
    x, y = _grid()
    freq = rng.uniform(2.0, 5.0)
    phase = rng.uniform(0, 2 * np.pi)
    sign = 1.0 if rng.random() < 0.5 else -1.0
    return 0.5 + 0.5 * np.sin(2 * np.pi * freq * (x + sign * y) / np.sqrt(2) + phase)


def _mask_checker(rng: np.random.Generator) -> np.ndarray:
    x, y = _grid()
    freq = rng.uniform(2.0, 4.0)
    px = rng.uniform(0, 1)
    py = rng.uniform(0, 1)
    return (
        (np.sin(2 * np.pi * freq * (x + px)) * np.sin(2 * np.pi * freq * (y + py)))
        > 0
    ).astype(np.float64)


def _mask_disc(rng: np.random.Generator) -> np.ndarray:
    x, y = _grid()
    cx = rng.uniform(0.3, 0.7)
    cy = rng.uniform(0.3, 0.7)
    r = rng.uniform(0.18, 0.32)
    d = np.hypot(x - cx, y - cy)
    return np.clip((r - d) / 0.05, 0.0, 1.0)


def _mask_ring(rng: np.random.Generator) -> np.ndarray:
    x, y = _grid()
    cx = rng.uniform(0.35, 0.65)
    cy = rng.uniform(0.35, 0.65)
    r = rng.uniform(0.2, 0.33)
    width = rng.uniform(0.05, 0.09)
    d = np.abs(np.hypot(x - cx, y - cy) - r)
    return np.clip((width - d) / 0.04, 0.0, 1.0)


def _mask_gradient(rng: np.random.Generator) -> np.ndarray:
    x, y = _grid()
    angle = rng.uniform(0, 2 * np.pi)
    g = x * np.cos(angle) + y * np.sin(angle)
    g -= g.min()
    return g / max(g.max(), 1e-9)


def _mask_cross(rng: np.random.Generator) -> np.ndarray:
    x, y = _grid()
    cx = rng.uniform(0.35, 0.65)
    cy = rng.uniform(0.35, 0.65)
    w = rng.uniform(0.06, 0.12)
    return np.maximum(
        np.clip((w - np.abs(x - cx)) / 0.03, 0, 1),
        np.clip((w - np.abs(y - cy)) / 0.03, 0, 1),
    )


def _mask_blobs(rng: np.random.Generator) -> np.ndarray:
    noise = rng.standard_normal((IMAGE_SIZE, IMAGE_SIZE))
    blurred = gaussian_filter(noise, sigma=rng.uniform(2.5, 4.0))
    blurred -= blurred.min()
    return blurred / max(blurred.max(), 1e-9)


def _mask_triangle(rng: np.random.Generator) -> np.ndarray:
    x, y = _grid()
    # Upright triangle: below a roof of random apex/slope.
    apex = rng.uniform(0.35, 0.65)
    slope = rng.uniform(1.2, 2.0)
    top = rng.uniform(0.15, 0.3)
    base = rng.uniform(0.75, 0.9)
    roof = top + slope * np.abs(x - apex)
    return ((y > roof) & (y < base)).astype(np.float64)


_MASKS: List[Callable[[np.random.Generator], np.ndarray]] = [
    _mask_h_stripes,     # class 0
    _mask_v_stripes,     # class 1
    _mask_diag_stripes,  # class 2
    _mask_checker,       # class 3
    _mask_disc,          # class 4
    _mask_ring,          # class 5
    _mask_gradient,      # class 6
    _mask_cross,         # class 7
    _mask_blobs,         # class 8
    _mask_triangle,      # class 9
]


def render_sample(label: int, rng: np.random.Generator) -> np.ndarray:
    """Render one ``(3, 32, 32)`` image in ``[0, 1]`` for ``label``."""
    if not (0 <= label < N_CLASSES):
        raise DatasetError(f"label must be in [0, {N_CLASSES}), got {label}")
    mask = _MASKS[label](rng)
    # Two random, well-separated colors: background and foreground.
    bg = rng.uniform(0.0, 0.45, size=3)
    fg = rng.uniform(0.55, 1.0, size=3)
    if rng.random() < 0.5:
        bg, fg = fg, bg
    img = bg[:, None, None] + (fg - bg)[:, None, None] * mask[None, :, :]
    img += rng.normal(0.0, 0.04, img.shape)
    return np.clip(img, 0.0, 1.0)


def generate_cifar10(
    n_samples: int, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a balanced synthetic CIFAR-10-like dataset.

    Returns ``(images, labels)``: ``(n, 3, 32, 32)`` float32 in [0, 1] and
    ``(n,)`` int64 labels.
    """
    if n_samples < 1:
        raise DatasetError(f"n_samples must be >= 1, got {n_samples}")
    rng = np.random.default_rng(seed)
    labels = np.arange(n_samples) % N_CLASSES
    rng.shuffle(labels)
    images = np.empty((n_samples, 3, IMAGE_SIZE, IMAGE_SIZE), dtype=DTYPE)
    for i, lab in enumerate(labels):
        images[i] = render_sample(int(lab), rng)
    return images, labels.astype(np.int64)
