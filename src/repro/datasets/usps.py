"""Synthetic USPS-like dataset: 16x16 grayscale handwritten-style digits.

The real USPS dataset (handwritten digits scanned by the U.S. Postal
Service) is not redistributable here, so we render digits procedurally:
seven-segment stroke skeletons drawn as anti-aliased thick lines, with
per-sample random affine jitter (shift, rotation, scale), stroke-width
variation and additive noise. The result is a deterministic, seeded
10-class 16x16 grayscale set with intra-class variation — the same tensor
shapes, value range and classification difficulty profile the paper's
Test Case 1 network consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.config import DTYPE
from repro.errors import DatasetError

#: Normalized segment endpoints in a [0,1]^2 box (x grows right, y down).
_SEGMENTS: Dict[str, Tuple[Tuple[float, float], Tuple[float, float]]] = {
    "A": ((0.2, 0.15), (0.8, 0.15)),  # top
    "B": ((0.8, 0.15), (0.8, 0.5)),   # top-right
    "C": ((0.8, 0.5), (0.8, 0.85)),   # bottom-right
    "D": ((0.2, 0.85), (0.8, 0.85)),  # bottom
    "E": ((0.2, 0.5), (0.2, 0.85)),   # bottom-left
    "F": ((0.2, 0.15), (0.2, 0.5)),   # top-left
    "G": ((0.2, 0.5), (0.8, 0.5)),    # middle
}

#: Classic seven-segment encodings of the ten digits.
_DIGIT_SEGMENTS: List[str] = [
    "ABCDEF",   # 0
    "BC",       # 1
    "ABGED",    # 2
    "ABGCD",    # 3
    "FGBC",     # 4
    "AFGCD",    # 5
    "AFGECD",   # 6
    "ABC",      # 7
    "ABCDEFG",  # 8
    "ABCDFG",   # 9
]

IMAGE_SIZE = 16
N_CLASSES = 10


def _segment_distance(
    px: np.ndarray, py: np.ndarray, a: Tuple[float, float], b: Tuple[float, float]
) -> np.ndarray:
    """Distance from each pixel to the segment ``a``-``b`` (vectorized)."""
    ax, ay = a
    bx, by = b
    dx, dy = bx - ax, by - ay
    length2 = dx * dx + dy * dy
    t = ((px - ax) * dx + (py - ay) * dy) / length2
    t = np.clip(t, 0.0, 1.0)
    cx = ax + t * dx
    cy = ay + t * dy
    return np.hypot(px - cx, py - cy)


def render_digit(
    digit: int,
    rng: np.random.Generator,
    jitter: float = 1.0,
) -> np.ndarray:
    """Render one 16x16 grayscale digit image in ``[0, 1]``.

    ``jitter`` scales all random deformations; 0 renders the canonical
    prototype (useful for debugging and golden tests).
    """
    if not (0 <= digit <= 9):
        raise DatasetError(f"digit must be in [0, 9], got {digit}")
    # Per-sample random affine: small rotation/shear/scale + translation.
    angle = rng.normal(0.0, 0.08) * jitter
    scale = 1.0 + rng.normal(0.0, 0.06) * jitter
    shear = rng.normal(0.0, 0.06) * jitter
    tx = rng.normal(0.0, 0.04) * jitter
    ty = rng.normal(0.0, 0.04) * jitter
    width = max(0.045, 0.07 + rng.normal(0.0, 0.012) * jitter)

    cos_a, sin_a = np.cos(angle), np.sin(angle)
    ys, xs = np.mgrid[0:IMAGE_SIZE, 0:IMAGE_SIZE]
    # Pixel centers in normalized coordinates.
    px = (xs + 0.5) / IMAGE_SIZE
    py = (ys + 0.5) / IMAGE_SIZE
    # Inverse-map pixels into the canonical glyph frame around (0.5, 0.5).
    ux = px - 0.5 - tx
    uy = py - 0.5 - ty
    gx = (cos_a * ux + sin_a * uy) / scale + 0.5
    gy = (-sin_a * ux + cos_a * uy) / scale + shear * (gx - 0.5) + 0.5

    img = np.zeros((IMAGE_SIZE, IMAGE_SIZE), dtype=np.float64)
    for seg in _DIGIT_SEGMENTS[digit]:
        d = _segment_distance(gx, gy, *_SEGMENTS[seg])
        # Smooth stroke profile: 1 inside the stroke, soft falloff outside.
        img = np.maximum(img, np.clip(1.5 - d / width, 0.0, 1.0))
    img += rng.normal(0.0, 0.05 * jitter, img.shape)
    return np.clip(img, 0.0, 1.0)


def generate_usps(
    n_samples: int,
    seed: int = 0,
    jitter: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a balanced synthetic USPS-like dataset.

    Returns
    -------
    ``(images, labels)`` with ``images`` of shape ``(n, 1, 16, 16)``
    (float32 in [0, 1]) and integer ``labels`` of shape ``(n,)``.
    Classes cycle 0..9 then the set is shuffled, so any prefix is near
    balanced.
    """
    if n_samples < 1:
        raise DatasetError(f"n_samples must be >= 1, got {n_samples}")
    rng = np.random.default_rng(seed)
    labels = np.arange(n_samples) % N_CLASSES
    rng.shuffle(labels)
    images = np.empty((n_samples, 1, IMAGE_SIZE, IMAGE_SIZE), dtype=DTYPE)
    for i, d in enumerate(labels):
        images[i, 0] = render_digit(int(d), rng, jitter)
    return images, labels.astype(np.int64)
