"""Automated design-space exploration (the paper's Section IV-C future work)."""

from repro.dse.explorer import (
    Candidate,
    ExplorationResult,
    evaluate,
    exhaustive_search,
    greedy_optimize,
    optimize_for_target,
)
from repro.dse.pareto import pareto_front
from repro.dse.space import (
    Configuration,
    apply_configuration,
    iter_configurations,
    space_size,
)

__all__ = [
    "Candidate",
    "Configuration",
    "ExplorationResult",
    "apply_configuration",
    "evaluate",
    "exhaustive_search",
    "greedy_optimize",
    "iter_configurations",
    "optimize_for_target",
    "pareto_front",
    "space_size",
]
