"""Design-space exploration under a device budget (paper future work).

Two search strategies over the configuration space of
:mod:`repro.dse.space`:

* :func:`exhaustive_search` — evaluate every valid configuration
  (feasible for the paper-scale networks, whose spaces are small);
* :func:`greedy_optimize` — start from single-port everywhere and
  repeatedly parallelize the current bottleneck layer while the design
  still fits, mirroring what a designer does by hand (and what the paper
  reports doing "empirically").

Objective: minimize the steady-state interval (maximize images/s),
subject to fitting the device; ties break toward fewer DSPs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.network_design import NetworkDesign
from repro.core.perf_model import network_perf
from repro.core.resource_model import design_resources
from repro.core.scaling import port_options, with_layer_ports
from repro.dse.space import apply_configuration, iter_configurations
from repro.errors import ResourceError
from repro.fpga.device import Device, XC7VX485T


@dataclass(frozen=True)
class Candidate:
    """One evaluated configuration."""

    design: NetworkDesign
    interval: int
    dsp: float
    fits: bool
    #: All stage intervals (layers + DMA), sorted descending — the greedy
    #: search compares these lexicographically so that relieving one of
    #: several tied bottlenecks still counts as progress.
    profile: Tuple[int, ...] = ()

    @property
    def ports(self) -> Tuple[Tuple[int, int], ...]:
        return tuple((s.in_ports, s.out_ports) for s in self.design.specs)


def evaluate(design: NetworkDesign, device: Device = XC7VX485T) -> Candidate:
    """Score one design: interval + resource fit + stage profile."""
    perf = network_perf(design)
    res = design_resources(design)
    stages = [l.interval for l in perf.layers] + [
        perf.dma_in_cycles,
        perf.dma_out_cycles,
    ]
    return Candidate(
        design=design,
        interval=perf.interval,
        dsp=res.total.dsp,
        fits=res.fits(device),
        profile=tuple(sorted(stages, reverse=True)),
    )


@dataclass
class ExplorationResult:
    """Outcome of a search."""

    best: Candidate
    evaluated: int
    history: List[Candidate] = field(default_factory=list)


def exhaustive_search(
    design: NetworkDesign,
    device: Device = XC7VX485T,
    limit: int = 100_000,
) -> ExplorationResult:
    """Evaluate every valid configuration and keep the best fitting one."""
    best: Optional[Candidate] = None
    n = 0
    for config in iter_configurations(design, limit=limit):
        cand = evaluate(apply_configuration(design, config), device)
        n += 1
        if not cand.fits:
            continue
        if best is None or (cand.interval, cand.dsp) < (best.interval, best.dsp):
            best = cand
    if best is None:
        raise ResourceError(
            f"no configuration of {design.name!r} fits {device.name}"
        )
    return ExplorationResult(best=best, evaluated=n)


def optimize_for_target(
    design: NetworkDesign,
    target_interval: int,
    device: Device = XC7VX485T,
    limit: int = 100_000,
) -> ExplorationResult:
    """Cheapest configuration meeting a throughput target.

    Minimizes DSP usage subject to ``interval <= target_interval`` and
    fitting ``device`` — the dual of :func:`exhaustive_search`, useful
    when a design must merely keep up with a sensor/stream rate and the
    saved resources should go to other logic.
    """
    if target_interval < 1:
        raise ResourceError(
            f"target_interval must be >= 1, got {target_interval}"
        )
    from repro.dse.space import apply_configuration, iter_configurations

    best: Optional[Candidate] = None
    n = 0
    for config in iter_configurations(design, limit=limit):
        cand = evaluate(apply_configuration(design, config), device)
        n += 1
        if not cand.fits or cand.interval > target_interval:
            continue
        if best is None or (cand.dsp, cand.interval) < (best.dsp, best.interval):
            best = cand
    if best is None:
        raise ResourceError(
            f"no configuration of {design.name!r} meets interval "
            f"<= {target_interval} on {device.name}"
        )
    return ExplorationResult(best=best, evaluated=n)


def greedy_optimize(
    design: NetworkDesign,
    device: Device = XC7VX485T,
    max_steps: int = 64,
) -> ExplorationResult:
    """Bottleneck-driven hill climbing from the single-port configuration.

    Each step tries every adapter-valid port upgrade of every layer
    currently sitting at the worst *layer* interval, and takes the move
    with the lexicographically smallest stage profile that still fits
    (ties toward fewer DSPs). Comparing full profiles instead of the bare
    maximum lets the search cross plateaus where several stages are tied
    at the bottleneck. Stops when the DMA paces the pipeline or no move
    improves the profile.
    """
    from repro.core.scaling import single_port_design

    current = evaluate(single_port_design(design), device)
    if not current.fits:
        raise ResourceError(
            f"even the single-port {design.name!r} does not fit {device.name}"
        )
    history = [current]
    evaluated = 1
    for _ in range(max_steps):
        perf = network_perf(current.design)
        worst_layer = max(l.interval for l in perf.layers)
        if worst_layer <= max(perf.dma_in_cycles, perf.dma_out_cycles):
            break  # the off-chip stream paces everything; no layer move helps
        targets = [l.name for l in perf.layers if l.interval == worst_layer]
        best_move: Optional[Candidate] = None
        for name in targets:
            spec = next(s for s in current.design.specs if s.name == name)
            for (i, o) in port_options(spec):
                if (i, o) == (spec.in_ports, spec.out_ports):
                    continue
                try:
                    cand_design = with_layer_ports(current.design, name, i, o)
                except Exception:
                    continue  # adapter-invalid with the neighbours
                cand = evaluate(cand_design, device)
                evaluated += 1
                if not cand.fits:
                    continue
                if best_move is None or (cand.profile, cand.dsp) < (
                    best_move.profile,
                    best_move.dsp,
                ):
                    best_move = cand
        if best_move is None or best_move.profile >= current.profile:
            break
        current = best_move
        history.append(current)
    return ExplorationResult(best=current, evaluated=evaluated, history=history)
