"""Pareto-front extraction over (performance, resource) trade-offs."""

from __future__ import annotations

from typing import List

from repro.dse.explorer import Candidate
from repro.errors import ConfigurationError


def pareto_front(candidates: List[Candidate]) -> List[Candidate]:
    """Non-dominated candidates: minimize interval AND DSP usage.

    A candidate dominates another if it is no worse on both axes and
    strictly better on at least one. Returned sorted by interval.
    """
    if not candidates:
        raise ConfigurationError("pareto_front of an empty candidate list")
    front: List[Candidate] = []
    for c in candidates:
        dominated = False
        for other in candidates:
            if other is c:
                continue
            if (
                other.interval <= c.interval
                and other.dsp <= c.dsp
                and (other.interval < c.interval or other.dsp < c.dsp)
            ):
                dominated = True
                break
        if not dominated:
            front.append(c)
    # Deduplicate identical (interval, dsp) points, keep stable order.
    seen = set()
    unique = []
    for c in sorted(front, key=lambda c: (c.interval, c.dsp)):
        key = (c.interval, c.dsp)
        if key not in seen:
            seen.add(key)
            unique.append(c)
    return unique
