"""Design-space enumeration: valid port configurations of a network.

The paper did no DSE ("we just determined empirically the levels of
parallelization", Section IV-C) and lists its automation as future work;
this subpackage implements it. A *configuration* is a choice of
``(in_ports, out_ports)`` per layer; it is valid when every layer's port
counts divide its FM counts and every adjacent pair satisfies the adapter
divisibility rule.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Sequence, Tuple

from repro.core.network_design import NetworkDesign
from repro.core.scaling import port_options
from repro.errors import ConfigurationError

#: One configuration: ((in_ports, out_ports), ...) aligned with the specs.
Configuration = Tuple[Tuple[int, int], ...]


def _adapter_ok(prev_out: int, next_in: int) -> bool:
    big, small = max(prev_out, next_in), min(prev_out, next_in)
    return big % small == 0


def iter_configurations(
    design: NetworkDesign, limit: int = 100_000
) -> Iterator[Configuration]:
    """Yield every adapter-valid configuration of ``design``.

    Enumerates the per-layer option products with on-the-fly adjacency
    pruning (invalid prefixes are cut early). ``limit`` bounds the yields
    as a runaway guard for very wide networks.
    """
    if limit < 1:
        raise ConfigurationError(f"limit must be >= 1, got {limit}")
    options: List[List[Tuple[int, int]]] = [
        port_options(spec) for spec in design.specs
    ]

    count = 0

    def rec(idx: int, prev_out: int, acc: List[Tuple[int, int]]):
        nonlocal count
        if count >= limit:
            return
        if idx == len(options):
            count += 1
            yield tuple(acc)
            return
        for (i, o) in options[idx]:
            if not _adapter_ok(prev_out, i):
                continue
            acc.append((i, o))
            yield from rec(idx + 1, o, acc)
            acc.pop()
            if count >= limit:
                return

    # The DMA presents a single input stream.
    yield from rec(0, 1, [])


def apply_configuration(
    design: NetworkDesign, config: Configuration
) -> NetworkDesign:
    """A new design with the given per-layer port counts."""
    if len(config) != design.n_layers:
        raise ConfigurationError(
            f"configuration has {len(config)} entries for "
            f"{design.n_layers} layers"
        )
    specs = [
        spec.with_ports(i, o) for spec, (i, o) in zip(design.specs, config)
    ]
    return NetworkDesign(design.name, design.input_shape, specs)


def space_size(design: NetworkDesign, limit: int = 1_000_000) -> int:
    """Number of valid configurations (up to ``limit``)."""
    return sum(1 for _ in iter_configurations(design, limit=limit))
