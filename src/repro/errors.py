"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to discriminate the failure domain (simulation, configuration,
resource fitting, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or invalid parameters."""


class ShapeError(ConfigurationError):
    """Tensor/layer shapes do not line up."""


class PortMismatchError(ConfigurationError):
    """Adjacent layers expose port counts that cannot be adapted."""


class GraphError(ReproError):
    """A dataflow graph is structurally invalid (dangling port, double bind...)."""


class SimulationError(ReproError):
    """The cycle-level simulator failed to make progress or hit a limit."""


class DeadlockError(SimulationError):
    """No actor made progress for the configured number of cycles.

    Attributes
    ----------
    cycle:
        Cycle at which the deadlock was declared.
    blocked:
        Mapping of ``actor_name -> reason`` describing what each live actor
        was waiting on when the deadlock was detected.
    channels:
        Mapping of ``actor_name -> ["pop:<channel>", "push:<channel>", ...]``
        naming the exact channel conditions each parked actor is blocked on.
        Populated by the event scheduler (whose wait records carry the
        channels); empty under the lock-step scheduler, whose actors only
        report free-text ``blocked_reason`` strings.
    """

    def __init__(self, cycle: int, blocked: dict, channels: dict | None = None):
        self.cycle = int(cycle)
        self.blocked = dict(blocked)
        self.channels = {k: list(v) for k, v in (channels or {}).items()}
        detail = "; ".join(f"{k}: {v}" for k, v in sorted(self.blocked.items()))
        super().__init__(f"deadlock at cycle {self.cycle} ({detail or 'no live actors'})")

    def blocked_channel_names(self) -> list:
        """Sorted unique channel names appearing in :attr:`channels`."""
        names = {
            cond.split(":", 1)[1]
            for conds in self.channels.values()
            for cond in conds
        }
        return sorted(names)


class ChannelProtocolError(SimulationError):
    """A channel was used outside its single-reader/single-writer contract."""


class AnalysisError(ReproError):
    """The static verifier found errors (``build_network(strict=True)``).

    Attributes
    ----------
    report:
        The :class:`repro.analysis.AnalysisReport` with the findings.
    """

    def __init__(self, report):
        self.report = report
        rules = ", ".join(report.error_rules())
        super().__init__(
            f"static check of {report.design_name!r} failed: "
            f"{len(report.errors)} error(s) [{rules}]"
        )


class CompilationError(ReproError):
    """A graph cannot be lowered to the compiled steady-state engine.

    Raised by :mod:`repro.compiled` when the strict-only gate fails (no
    design attached, static verification errors, a tracer attached) or
    when the lowering meets an actor type / stream-rate pattern it cannot
    express as a fused kernel. The simulator catches it and falls back to
    the interpreted event engine with a
    :class:`repro.compiled.CompiledFallbackWarning`.
    """


class ResourceError(ReproError):
    """A design does not fit the targeted device."""


class DatasetError(ReproError):
    """A synthetic dataset was requested with invalid parameters."""


class TrainingError(ReproError):
    """Training diverged or was configured inconsistently."""
