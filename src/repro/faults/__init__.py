"""Deterministic fault injection for the dataflow simulator.

Public surface:

* :mod:`repro.faults.scenario` — declarative, JSON-serialisable fault
  scenarios (:class:`FaultScenario` and the five fault spec kinds);
* :mod:`repro.faults.injectors` — runtime injectors and
  :func:`arm_faults`, which wires a scenario into a built graph;
* :mod:`repro.faults.harness` — clean-vs-faulty experiments
  (:func:`faultsim`), campaigns, digests and pilot downscales.

See DESIGN.md section 10 for the fault model and the two invariants
this package machine-checks (latency insensitivity; analyzer/simulator
deadlock agreement).
"""

from repro.faults.analytical import (
    ThrottledPerf,
    throttled_link_rate,
    throttled_perf,
)
from repro.faults.harness import (
    PILOT_WEIGHT_LIMIT,
    RunOutcome,
    faultsim,
    output_digest,
    pilot_design,
    resolve_shrink,
    run_campaign,
    run_design,
    simulable_design,
)
from repro.faults.injectors import (
    ActorStallPlan,
    ArmedFaults,
    CompositeFault,
    CorruptionFault,
    JitterFault,
    ThrottleFault,
    arm_faults,
    disarm_faults,
    target_rng,
)
from repro.faults.scenario import (
    FAULT_KINDS,
    ActorSlowdown,
    BeatCorruption,
    ChannelJitter,
    DmaThrottle,
    FaultScenario,
    FifoShrink,
    load_scenario,
    preset_scenarios,
)

__all__ = [
    "PILOT_WEIGHT_LIMIT",
    "FAULT_KINDS",
    "ActorSlowdown",
    "ActorStallPlan",
    "ArmedFaults",
    "BeatCorruption",
    "ChannelJitter",
    "CompositeFault",
    "CorruptionFault",
    "DmaThrottle",
    "FaultScenario",
    "FifoShrink",
    "JitterFault",
    "RunOutcome",
    "ThrottleFault",
    "ThrottledPerf",
    "arm_faults",
    "disarm_faults",
    "faultsim",
    "load_scenario",
    "output_digest",
    "pilot_design",
    "preset_scenarios",
    "resolve_shrink",
    "run_campaign",
    "run_design",
    "simulable_design",
    "target_rng",
    "throttled_link_rate",
    "throttled_perf",
]
