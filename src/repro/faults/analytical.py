"""Analytical performance model of a DMA-throttled pipeline.

The serving layer's chaos mode arms a :class:`~repro.faults.scenario.
DmaThrottle` on one replica mid-load and must predict how far tail
latency degrades. The clean pipeline's steady state is Eq. 4 (the
busiest stage paces everyone); a throttled DMA input changes exactly one
stage interval — the input stream's cycles per image — so the throttled
II is ``max(clean interval, throttled dma_in cycles)``.

The subtlety is the throttled link's effective rate. A held commit does
*not* simply add ``burst`` cycles every ``period`` beats: while the
commit is held, the writer keeps staging words up to the FIFO capacity
and the release commits them all at once, so a capacity-``c`` channel
absorbs up to ``c - 1`` held cycles per burst. Rather than approximate
that recurrence, :func:`throttled_link_rate` replays the *exact*
channel-commit semantics (the two-phase protocol of
:class:`~repro.dataflow.channel.Channel` with the real
:class:`~repro.faults.injectors.ThrottleFault` hold logic) on a
one-link component model — O(cycles) integer arithmetic, no graph — and
measures the steady cycles-per-word. Validated against full faulted
simulations in ``tests/faults/test_analytical.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.network_design import NetworkDesign
from repro.core.perf_model import NetworkPerf, network_perf
from repro.errors import ConfigurationError
from repro.faults.injectors import ThrottleFault
from repro.faults.scenario import DmaThrottle, FaultScenario


class _FixedPhase:
    """Minimal RNG stand-in: pins the throttle's phase offset.

    ``ThrottleFault`` draws one ``randrange(period)`` at construction;
    the analytic model pins it (``period=1`` scenarios — the serving
    chaos preset — have only phase 0, making the model seed-exact).
    """

    __slots__ = ("phase",)

    def __init__(self, phase: int):
        self.phase = phase

    def randrange(self, period: int) -> int:
        return self.phase % period


def throttled_link_rate(
    period: int,
    burst: int,
    beat: int = 1,
    capacity: int = 4,
    phase: int = 0,
    measure_words: int = 2048,
) -> float:
    """Steady-state cycles per word of one throttled stream link.

    Replays the exact commit recurrence: the writer stages one word per
    ``beat`` cycles whenever the capacity snapshot admits it, the
    throttle holds every ``period``-th commit for ``burst`` cycles
    (releasing the whole staged batch at once), and the reader drains
    one word per cycle — the regime where the throttled link is the
    pipeline bottleneck.
    """
    if capacity < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
    if beat < 1:
        raise ConfigurationError(f"beat must be >= 1, got {beat}")
    fault = ThrottleFault(_FixedPhase(phase), period, burst)
    warm = measure_words // 4
    total = measure_words + warm
    q = 0  # committed occupancy
    staged = 0
    sent = 0  # words the writer has staged so far
    popped = 0
    next_attempt = 0  # earliest cycle the writer tries to push
    warm_cycle = None
    cycle = 0
    # Generous bound: every word can cost at most beat + burst + 1 cycles.
    limit = total * (beat + burst + 2) + burst + 4
    while popped < total and cycle <= limit:
        # Phase 1: commit staged pushes (unless the throttle holds them).
        if staged and fault.on_commit(None, None):
            q += staged
            staged = 0
        occ_start = q
        # Phase 2a: the reader drains one visible word.
        if occ_start > 0:
            q -= 1
            popped += 1
            if popped == warm:
                warm_cycle = cycle
        # Phase 2b: the writer stages one word against the snapshot.
        if (
            sent < total
            and cycle >= next_attempt
            and occ_start + staged < capacity
        ):
            staged += 1
            sent += 1
            next_attempt = cycle + beat
        cycle += 1
    if popped < total:  # pragma: no cover - bound is loose by construction
        raise ConfigurationError(
            f"throttled link did not drain within {limit} cycles"
        )
    if warm_cycle is None:
        warm_cycle = 0
    return (cycle - 1 - warm_cycle) / (total - warm)


@dataclass(frozen=True)
class ThrottledPerf:
    """Predicted steady state of a design under a DMA-input throttle."""

    design_name: str
    #: The unfaulted Eq. 4 steady-state interval (cycles per image).
    clean_interval: int
    #: Modeled cycles per image of the throttled DMA input stream.
    throttled_dma_in_cycles: int
    #: Predicted faulted interval: max(clean stages, throttled input).
    interval: int
    #: Effective cycles per input word on the throttled link.
    cycles_per_word: float

    @property
    def degradation(self) -> float:
        """Predicted II inflation factor (1.0 == fault fully absorbed)."""
        return self.interval / max(self.clean_interval, 1)

    def to_dict(self) -> dict:
        return {
            "design": self.design_name,
            "clean_interval": self.clean_interval,
            "throttled_dma_in_cycles": self.throttled_dma_in_cycles,
            "interval": self.interval,
            "cycles_per_word": round(self.cycles_per_word, 4),
            "degradation": round(self.degradation, 4),
        }


def _dma_throttle_of(scenario: FaultScenario) -> DmaThrottle:
    throttles = [f for f in scenario.faults if isinstance(f, DmaThrottle)]
    if len(throttles) != 1:
        raise ConfigurationError(
            f"scenario {scenario.name!r} must carry exactly one DmaThrottle "
            f"to model analytically, found {len(throttles)}"
        )
    spec = throttles[0]
    if not spec.channels.startswith("dma_in"):
        raise ConfigurationError(
            f"the analytical throttle model covers the DMA input link; "
            f"scenario {scenario.name!r} targets {spec.channels!r}"
        )
    return spec


def throttled_perf(
    design: NetworkDesign,
    scenario: FaultScenario,
    channel_capacity: int = 4,
    perf: Optional[NetworkPerf] = None,
) -> ThrottledPerf:
    """Predict the faulted steady-state interval of ``design``.

    ``scenario`` must contain exactly one :class:`DmaThrottle` targeting
    the DMA input link (the chaos-mode shape). ``channel_capacity`` is
    the builder's FIFO depth on that link (default matches
    :func:`repro.core.builder.build_network`).
    """
    spec = _dma_throttle_of(scenario)
    if perf is None:
        perf = network_perf(design)
    words = design.input_words_per_image()
    beat = perf.dma_in_cycles // max(words, 1)
    rate = throttled_link_rate(
        spec.period, spec.burst, beat=max(beat, 1),
        capacity=channel_capacity,
        measure_words=max(2048, 2 * words),
    )
    throttled_in = int(round(words * max(rate, float(beat))))
    return ThrottledPerf(
        design_name=design.name,
        clean_interval=perf.interval,
        throttled_dma_in_cycles=throttled_in,
        interval=max(perf.interval, throttled_in),
        cycles_per_word=rate,
    )
