"""Fault-injection harness: clean-vs-faulty runs, reports, campaigns.

The harness operationalises the two invariants DESIGN.md section 10
states about the reproduction:

1. **Latency insensitivity** — a correctly buffered design is a Kahn
   network with bounded FIFOs: timing faults (jitter, DMA throttle,
   actor slow-down) may change *when* beats move, never *which values*
   move. For any timing-only scenario, the faulty run's output digest
   must equal the clean run's, under both schedulers.
2. **Analyzer/simulator agreement** — shrinking a literal filter-chain
   FIFO below the sizing model's minimum must (a) be flagged by the
   static verifier's BUFFER.FULL rule and (b) deadlock the simulator
   with the *same channel* named in both reports.

:func:`faultsim` runs one (design, scenario, seed) experiment and emits
a JSON-ready report with the verdict; :func:`run_campaign` sweeps
designs x scenarios x seeds, caching clean runs. Designs too large to
cycle-simulate (AlexNet/VGG-16) are swapped for a deterministic *pilot*
downscale (:func:`pilot_design`) that preserves the layer topology —
every layer kind, kernel, stride and pad — while shrinking feature maps
and input resolution to simulable size; reports carry ``"pilot": true``.
"""

from __future__ import annotations

import hashlib
import re
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import ClassVar, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.block_transform import design_is_blocked
from repro.core.builder import BuiltNetwork, build_network, random_weights
from repro.core.layer_spec import (
    ConvLayerSpec,
    FCLayerSpec,
    LayerSpec,
    PoolLayerSpec,
)
from repro.core.network_design import NetworkDesign
from repro.dataflow.deadlock import match_deadlock_diagnostics
from repro.errors import ConfigurationError, DeadlockError, ReproError
from repro.faults.injectors import ArmedFaults, arm_faults
from repro.faults.scenario import FaultScenario, FifoShrink
from repro.report.base import Report

#: Above this many parameters a design is cycle-simulated as a pilot.
PILOT_WEIGHT_LIMIT = 2_000_000


def output_digest(outputs: np.ndarray) -> str:
    """Stable content hash of a run's output tensor."""
    arr = np.ascontiguousarray(outputs)
    h = hashlib.sha256()
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


# -- pilot designs -----------------------------------------------------------


def _pilot_specs(
    design: NetworkDesign,
    input_shape: Tuple[int, int, int],
    max_fm: int,
    max_classes: int,
) -> List[LayerSpec]:
    """Downscaled spec chain over ``input_shape``; raises if it won't fit."""
    specs: List[LayerSpec] = []
    shape = input_shape
    for spec in design.specs:
        if isinstance(spec, ConvLayerSpec):
            new: LayerSpec = ConvLayerSpec(
                name=spec.name,
                in_fm=shape[0],
                out_fm=min(spec.out_fm, max_fm),
                kh=spec.kh,
                kw=spec.kw,
                stride=spec.stride,
                pad=spec.pad,
                activation=spec.activation,
            )
        elif isinstance(spec, PoolLayerSpec):
            new = PoolLayerSpec(
                name=spec.name,
                in_fm=shape[0],
                out_fm=shape[0],
                kh=spec.kh,
                kw=spec.kw,
                stride=spec.stride,
                mode=spec.mode,
            )
        elif isinstance(spec, FCLayerSpec):
            new = FCLayerSpec(
                name=spec.name,
                in_fm=shape[0] * shape[1] * shape[2],
                out_fm=min(spec.out_fm, max_classes),
                activation=spec.activation,
            )
            shape = (new.in_fm, 1, 1)
        else:  # pragma: no cover - specs are exhaustive
            raise ConfigurationError(f"unknown spec kind {spec.kind!r}")
        shape = new.out_shape(shape)
        specs.append(new)
    return specs


def pilot_design(
    design: NetworkDesign,
    max_fm: int = 4,
    max_classes: int = 8,
    max_input: int = 256,
) -> NetworkDesign:
    """Deterministic simulable downscale preserving the layer topology.

    Keeps every layer's kind, kernel, stride, padding and activation;
    shrinks feature-map counts to ``max_fm`` (``max_classes`` for FC
    outputs) and scans square input sizes ascending for the smallest one
    every window fits — so the pilot is a pure function of the design,
    the same in every process and on every seed.
    """
    c0 = design.input_shape[0]
    for hw in range(4, max_input + 1):
        shape = (c0, hw, hw)
        try:
            specs = _pilot_specs(design, shape, max_fm, max_classes)
            return NetworkDesign(f"{design.name}-pilot{hw}", shape, specs)
        except ReproError:
            continue
    raise ConfigurationError(
        f"no input size up to {max_input} makes a simulable pilot of "
        f"{design.name!r}"
    )


def simulable_design(design: NetworkDesign) -> Tuple[NetworkDesign, bool]:
    """``(design, False)`` or its pilot + True when too large to simulate."""
    if design.weight_count() <= PILOT_WEIGHT_LIMIT or design_is_blocked(
        design
    ):
        return design, False
    return pilot_design(design), True


# -- single runs -------------------------------------------------------------


@dataclass
class RunOutcome:
    """One simulation of one built design, clean or faulted."""

    cycles: int
    finished: bool
    digest: Optional[str]
    scheduler: str
    #: Present only on faulted runs.
    armed: Optional[ArmedFaults] = None
    #: The deadlock, when the run jammed instead of finishing.
    deadlock: Optional[DeadlockError] = None
    #: The built network (weights/graph), for callers needing outputs.
    built: Optional[BuiltNetwork] = field(default=None, repr=False)

    def to_dict(self) -> dict:
        d: dict = {
            "cycles": self.cycles,
            "finished": self.finished,
            "digest": self.digest,
            "scheduler": self.scheduler,
        }
        if self.armed is not None:
            d["armed"] = self.armed.describe()
            d["hold_cycles"] = self.armed.hold_cycles()
            d["corruption_hits"] = self.armed.corruption_hits()
        if self.deadlock is not None:
            d["deadlock"] = {
                "cycle": self.deadlock.cycle,
                "blocked": self.deadlock.blocked,
                "channels": self.deadlock.channels,
            }
        return d


def resolve_shrink(
    scenario: FaultScenario, graph
) -> FaultScenario:
    """Replace ``FifoShrink(channels="auto")`` with a concrete target.

    Picks the alphabetically first literal chain FIFO that a capacity-1
    shrink provably jams — one whose full-buffering depth exceeds the
    downstream tap channel's slack (the criterion of
    ``repro.sst.sizing.deadlock_shrink_targets``: the next filter can run
    at most ``tap_cap`` steps ahead, so the FIFO must hold
    ``depth - tap_cap`` words). No-op for scenarios without an auto
    shrink.
    """
    if not any(
        isinstance(f, FifoShrink) and f.channels == "auto"
        for f in scenario.faults
    ):
        return scenario
    candidates = []
    for name, ch in sorted(graph.channels.items()):
        if ".fifo" not in name or ch.capacity is None:
            continue
        base = name.rsplit(".fifo", 1)[0]
        tap0 = graph.channels.get(f"{base}.tap0")
        tap_cap = tap0.capacity if tap0 is not None and tap0.capacity else 4
        # ch.capacity is depth + 1; eligible when depth >= tap_cap + 2.
        if ch.capacity - 1 >= tap_cap + 2:
            candidates.append(name)
    if not candidates:
        raise ConfigurationError(
            "no provably-deadlocking chain FIFO in the graph (build with "
            "memory_system='literal' and a window tall enough that a line "
            "FIFO exceeds the tap slack)"
        )
    target = candidates[0]
    faults = tuple(
        FifoShrink(channels=target, capacity=1)
        if isinstance(f, FifoShrink) and f.channels == "auto"
        else f
        for f in scenario.faults
    )
    return FaultScenario(scenario.name, faults)


def run_design(
    design: NetworkDesign,
    seed: int = 0,
    images: int = 2,
    scenario: Optional[FaultScenario] = None,
    scheduler: str = "event",
    memory_system: str = "behavioral",
    max_cycles: int = 50_000_000,
    stall_limit: int = 10_000,
) -> RunOutcome:
    """Build, (optionally) arm, and cycle-simulate one design.

    Weights and the input batch are derived from ``seed`` alone, so a
    clean and a faulted run with the same seed process identical data —
    the precondition for digest comparison.
    """
    weights = random_weights(design, seed=seed)
    rng = np.random.default_rng(seed)
    batch = rng.uniform(0, 1, (images,) + design.input_shape).astype(np.float32)
    built = build_network(design, weights, batch, memory_system=memory_system)
    armed = None
    if scenario is not None:
        scenario = resolve_shrink(scenario, built.graph)
        armed = arm_faults(built.graph, scenario, seed)
    sim = built.graph.build_simulator(
        stall_limit=stall_limit, scheduler=scheduler
    )
    sim.faults = armed
    try:
        result = sim.run(max_cycles=max_cycles)
    except DeadlockError as err:
        return RunOutcome(
            cycles=err.cycle,
            finished=False,
            digest=None,
            scheduler=scheduler,
            armed=armed,
            deadlock=err,
            built=built,
        )
    built.result = result
    return RunOutcome(
        cycles=result.cycles,
        finished=result.finished,
        digest=output_digest(built.outputs()) if result.finished else None,
        scheduler=scheduler,
        armed=armed,
        deadlock=None,
        built=built,
    )


# -- report wrappers ---------------------------------------------------------


class _MappingReport(Report, Mapping):
    """A dict-shaped report behind the shared envelope.

    Implements :class:`collections.abc.Mapping`, so every pre-envelope
    consumer that indexed the plain dict (``report["ok"]``,
    ``report.get("verdict")``, iteration) keeps working unchanged; the
    data is read-only from the outside.
    """

    def __init__(self, data: Dict):
        self._data = data

    def __getitem__(self, key: str):
        return self._data[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def to_dict(self) -> Dict:
        return dict(self._data)


class FaultRunReport(_MappingReport):
    """One (design, scenario, seed) faultsim experiment."""

    kind: ClassVar[str] = "faultsim"

    def summary(self) -> str:
        d = self._data
        return (
            f"faultsim {d['design']}/{d['scenario']['name']} "
            f"seed {d['seed']}: {d['verdict']}"
        )


class CampaignReport(_MappingReport):
    """A designs x scenarios x seeds fault-campaign summary."""

    kind: ClassVar[str] = "fault-campaign"

    def to_dict(self) -> Dict:
        d = dict(self._data)
        d["runs"] = [r.envelope() for r in self._data["runs"]]
        return d

    def summary(self) -> str:
        d = self._data
        state = "ok" if d["ok"] else "FAILED"
        return (
            f"fault campaign: {d['passed']}/{d['experiments']} passed "
            f"({state})"
        )


def _stall_delta(clean: RunOutcome, faulty: RunOutcome, top: int = 5) -> dict:
    """Per-channel stall-cycle shift the fault scenario introduced.

    Comes straight from the schedulers' native channel counters: how many
    extra full/empty stall cycles the faulty run paid over the clean one,
    and which channels absorbed the hit.
    """

    def per_channel(outcome: RunOutcome) -> Dict[str, Tuple[int, int]]:
        return {
            name: (ch.stats.full_stall_cycles, ch.stats.empty_stall_cycles)
            for name, ch in outcome.built.graph.channels.items()
        }

    c, f = per_channel(clean), per_channel(faulty)
    deltas = {
        name: (f[name][0] - c.get(name, (0, 0))[0])
        + (f[name][1] - c.get(name, (0, 0))[1])
        for name in f
    }
    hot = sorted(deltas.items(), key=lambda kv: -abs(kv[1]))[:top]
    return {
        "full_delta": sum(fv[0] for fv in f.values())
        - sum(cv[0] for cv in c.values()),
        "empty_delta": sum(fv[1] for fv in f.values())
        - sum(cv[1] for cv in c.values()),
        "clean_total": sum(cv[0] + cv[1] for cv in c.values()),
        "faulty_total": sum(fv[0] + fv[1] for fv in f.values()),
        "top_channels": [[name, delta] for name, delta in hot if delta],
    }


# -- the faultsim experiment -------------------------------------------------


def _shrink_verdict(faulty: RunOutcome, design: NetworkDesign) -> dict:
    """Cross-validate a shrink deadlock against the static verifier."""
    from repro.analysis import analyze_graph

    info: dict = {"expected": "deadlock_matches_analysis"}
    if faulty.deadlock is None:
        info["verdict"] = "shrink_did_not_deadlock"
        info["ok"] = False
        return info
    report = analyze_graph(faulty.built.graph, design)
    shrunk = sorted(faulty.armed.shrunk) if faulty.armed else []
    pats = [
        re.compile(re.escape(name) + r"(?![0-9A-Za-z_])") for name in shrunk
    ]
    flagged = [
        d.to_dict()
        for d in report.errors
        if any(p.search(d.message) or p.search(d.location) for p in pats)
    ]
    matches = match_deadlock_diagnostics(faulty.deadlock, report)
    info["shrunk_channels"] = shrunk
    info["blocked_channels"] = faulty.deadlock.blocked_channel_names()
    info["analysis_flagged"] = flagged
    info["matched_channels"] = sorted({name for name, _ in matches})
    if not flagged:
        info["verdict"] = "analysis_missed_shrink"
        info["ok"] = False
    elif not matches:
        info["verdict"] = "deadlock_channel_mismatch"
        info["ok"] = False
    else:
        info["verdict"] = "deadlock_matches_analysis"
        info["ok"] = True
    return info


def _require_interpreted(scheduler: str) -> None:
    """Fault experiments perturb interpreted execution; reject "compiled".

    Raised up front (not mid-campaign) so the CLI can report the
    configuration problem before any simulation work happens.
    """
    if scheduler == "compiled":
        raise ConfigurationError(
            "faults require an interpreted engine ('event' or 'lockstep'); "
            "the compiled engine executes fused kernels and cannot apply "
            "fault plans"
        )


def faultsim(
    design: NetworkDesign,
    scenario: FaultScenario,
    seed: int = 0,
    images: int = 2,
    scheduler: str = "event",
    memory_system: str = "behavioral",
    max_cycles: int = 50_000_000,
    stall_limit: int = 10_000,
    pilot: Optional[bool] = None,
    _clean_cache: Optional[Dict] = None,
) -> FaultRunReport:
    """One experiment: clean run vs faulted run, verdict, JSON report.

    ``pilot`` forces (True) or forbids (False) the pilot downscale; the
    default decides by parameter count. ``_clean_cache`` lets the
    campaign runner share clean runs across scenarios.
    """
    _require_interpreted(scheduler)
    if pilot or (
        pilot is None
        and design.weight_count() > PILOT_WEIGHT_LIMIT
        and not design_is_blocked(design)
    ):
        sim_design, piloted = pilot_design(design), True
    else:
        sim_design, piloted = design, False
    if scenario.has_kind("shrink"):
        # Shrink targets only exist in the literal SST chains.
        memory_system = "literal"
    key = (sim_design.name, seed, images, scheduler, memory_system)
    clean = _clean_cache.get(key) if _clean_cache is not None else None
    if clean is None:
        clean = run_design(
            sim_design, seed=seed, images=images, scenario=None,
            scheduler=scheduler, memory_system=memory_system,
            max_cycles=max_cycles, stall_limit=stall_limit,
        )
        if _clean_cache is not None:
            _clean_cache[key] = clean
    faulty = run_design(
        sim_design, seed=seed, images=images, scenario=scenario,
        scheduler=scheduler, memory_system=memory_system,
        max_cycles=max_cycles, stall_limit=stall_limit,
    )
    report: dict = {
        "design": design.name,
        "simulated_design": sim_design.name,
        "pilot": piloted,
        "scenario": scenario.to_dict(),
        "seed": seed,
        "images": images,
        "scheduler": scheduler,
        "memory_system": memory_system,
        "clean": clean.to_dict(),
        "faulty": faulty.to_dict(),
        "stall_delta": _stall_delta(clean, faulty),
    }
    if clean.finished and faulty.finished:
        report["cycle_overhead"] = faulty.cycles - clean.cycles
        report["cycle_overhead_pct"] = round(
            100.0 * (faulty.cycles - clean.cycles) / max(clean.cycles, 1), 2
        )
    if scenario.timing_only():
        ok = (
            clean.finished
            and faulty.finished
            and clean.digest == faulty.digest
        )
        report["invariant"] = "latency_insensitive"
        report["verdict"] = (
            "latency_insensitive" if ok else "LATENCY_SENSITIVITY_VIOLATED"
        )
        report["ok"] = ok
    elif scenario.has_kind("shrink"):
        info = _shrink_verdict(faulty, sim_design)
        report["invariant"] = "deadlock_matches_analysis"
        report.update(info)
    else:  # corruption (possibly mixed with timing faults)
        hits = faulty.armed.corruption_hits() if faulty.armed else 0
        if hits == 0:
            report["verdict"] = "corruption_not_injected"
            report["ok"] = False
        elif faulty.finished and faulty.digest != clean.digest:
            report["verdict"] = "corruption_detected"
            report["ok"] = True
        elif not faulty.finished:
            # A corrupted control value can jam the pipeline; the digest
            # check still "detected" the fault (no silent wrong answer).
            report["verdict"] = "corruption_detected"
            report["ok"] = True
        else:
            report["verdict"] = "CORRUPTION_MISSED"
            report["ok"] = False
        report["invariant"] = "corruption_detected"
    return FaultRunReport(report)


def run_campaign(
    designs: Sequence[Tuple[str, NetworkDesign]],
    scenarios: Sequence[FaultScenario],
    seeds: Sequence[int],
    images: int = 2,
    scheduler: str = "event",
) -> CampaignReport:
    """Sweep designs x scenarios x seeds; one report per experiment.

    Clean runs are cached per (design, seed) so an N-scenario campaign
    pays for each baseline once. Returns a :class:`CampaignReport` (a
    read-only mapping) with the full report list, a per-scenario stall
    aggregate, and an overall ``ok``.
    """
    _require_interpreted(scheduler)
    cache: Dict = {}
    runs: List[FaultRunReport] = []
    for name, design in designs:
        for scenario in scenarios:
            for seed in seeds:
                runs.append(
                    faultsim(
                        design, scenario, seed=seed, images=images,
                        scheduler=scheduler, _clean_cache=cache,
                    )
                )
    failed = [r for r in runs if not r.get("ok")]
    by_scenario: Dict[str, List[int]] = {}
    for r in runs:
        delta = r["stall_delta"]
        by_scenario.setdefault(r["scenario"]["name"], []).append(
            delta["full_delta"] + delta["empty_delta"]
        )
    stall_deltas = {
        name: {
            "experiments": len(vals),
            "mean_total_delta": round(sum(vals) / len(vals), 1),
            "max_total_delta": max(vals),
        }
        for name, vals in sorted(by_scenario.items())
    }
    return CampaignReport(
        {
            "experiments": len(runs),
            "passed": len(runs) - len(failed),
            "failed": len(failed),
            "ok": not failed,
            "stall_deltas": stall_deltas,
            "runs": runs,
        }
    )
