"""Runtime fault objects and the arming step that attaches them to a graph.

:func:`arm_faults` turns a declarative :class:`~repro.faults.scenario.
FaultScenario` into live injector objects wired into a built
:class:`~repro.dataflow.graph.DataflowGraph`:

* channel faults implement the ``on_commit(channel, staged) -> bool``
  hook that :meth:`Channel.begin_cycle` consults — returning False holds
  the staged beats one more cycle, returning True commits (possibly after
  mutating them, for corruption);
* actor faults become an :class:`ActorStallPlan` the schedulers consult
  before resuming a process;
* FIFO shrinks mutate channel capacities in place, before simulation.

Determinism is the load-bearing property. Every injector draws from its
own ``random.Random`` keyed by ``(seed, target name)`` — not by arming
order, not by Python's randomised ``hash`` — and channel faults are only
consulted when a channel actually has staged beats. Both facts together
make the consult sequence (and therefore every RNG draw) identical under
the event and lock-step schedulers, which is what the scheduler-
equivalence-under-faults suite verifies.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from fnmatch import fnmatchcase
from random import Random
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dataflow.graph import DataflowGraph
from repro.errors import ConfigurationError
from repro.faults.scenario import (
    ActorSlowdown,
    BeatCorruption,
    ChannelJitter,
    DmaThrottle,
    FaultScenario,
    FifoShrink,
)


def target_rng(seed: int, name: str) -> Random:
    """Deterministic RNG for one (seed, target) pair.

    ``zlib.crc32`` keys on the target *name* so the stream is stable
    across processes and independent of the order targets are armed in
    (``hash(str)`` is randomised per interpreter and would not be).
    """
    return Random((seed * 0x9E3779B1 + zlib.crc32(name.encode())) & 0xFFFFFFFF)


# -- channel faults ----------------------------------------------------------


class JitterFault:
    """Hold each commit for a random 1..max_delay cycles with probability p.

    The hold length is drawn *once* per pending batch of staged beats
    (the ``_armed`` latch), then counted down across the held cycles, so
    the number of RNG draws equals the number of commit attempts — a
    scheduler-independent quantity.
    """

    __slots__ = ("rng", "probability", "max_delay", "_armed", "_hold", "holds")

    def __init__(self, rng: Random, probability: float, max_delay: int):
        self.rng = rng
        self.probability = probability
        self.max_delay = max_delay
        self._armed = False
        self._hold = 0
        #: Total extra cycles injected (for reports).
        self.holds = 0

    def on_commit(self, ch, staged) -> bool:
        if not self._armed:
            self._armed = True
            if self.rng.random() < self.probability:
                self._hold = self.rng.randint(1, self.max_delay)
            else:
                self._hold = 0
        if self._hold > 0:
            self._hold -= 1
            self.holds += 1
            return False
        self._armed = False
        return True


class ThrottleFault:
    """Stall every ``period``-th commit for ``burst`` cycles.

    The phase offset is drawn from the seeded RNG at construction so
    different seeds throttle different beats; after that the pattern is
    purely counter-driven.
    """

    __slots__ = ("period", "burst", "_count", "_armed", "_hold", "holds")

    def __init__(self, rng: Random, period: int, burst: int):
        self.period = period
        self.burst = burst
        self._count = rng.randrange(period)
        self._armed = False
        self._hold = 0
        self.holds = 0

    def on_commit(self, ch, staged) -> bool:
        if not self._armed:
            self._armed = True
            self._count += 1
            if self._count >= self.period:
                self._count = 0
                self._hold = self.burst
            else:
                self._hold = 0
        if self._hold > 0:
            self._hold -= 1
            self.holds += 1
            return False
        self._armed = False
        return True


class CorruptionFault:
    """Perturb one staged numeric beat with probability p per commit.

    Never holds the commit (timing is untouched); non-numeric beats
    (window tuples, control tokens) are skipped so the fault composes
    with any channel. ``hits`` counts actual mutations for the report.
    """

    __slots__ = ("rng", "probability", "magnitude", "hits")

    def __init__(self, rng: Random, probability: float, magnitude: float):
        self.rng = rng
        self.probability = probability
        self.magnitude = magnitude
        self.hits = 0

    def on_commit(self, ch, staged) -> bool:
        if self.rng.random() < self.probability:
            j = self.rng.randrange(len(staged))
            v = staged[j]
            if isinstance(v, (int, float, np.integer, np.floating)):
                staged[j] = v + self.magnitude * (2.0 * self.rng.random() - 1.0)
                self.hits += 1
        return True


class CompositeFault:
    """Several channel faults on one channel, consulted in order.

    The first fault that holds wins the cycle (later faults are not
    consulted until it releases) — a fixed discipline, so the consult
    sequence stays scheduler-independent.
    """

    __slots__ = ("faults",)

    def __init__(self, faults: List):
        self.faults = list(faults)

    def on_commit(self, ch, staged) -> bool:
        for f in self.faults:
            if not f.on_commit(ch, staged):
                return False
        return True


# -- actor faults ------------------------------------------------------------


class _StallWindows:
    """Lazily generated stall windows for one actor: a pure cycle function.

    Windows ``[start, end)`` alternate with free gaps, both drawn from the
    target RNG. Generation extends monotonically to cover any queried
    cycle, so the draw sequence depends only on the furthest cycle ever
    queried — identical whether a scheduler asks every cycle (lock-step)
    or only at resumption cycles (event).
    """

    __slots__ = ("rng", "mean_gap", "max_stall", "_starts", "_ends", "_horizon")

    def __init__(self, rng: Random, mean_gap: int, max_stall: int):
        self.rng = rng
        self.mean_gap = mean_gap
        self.max_stall = max_stall
        self._starts: List[int] = []
        self._ends: List[int] = []
        self._horizon = 0

    def free_cycle(self, c: int) -> int:
        """First cycle >= ``c`` outside every stall window."""
        while self._horizon <= c:
            start = self._horizon + self.rng.randint(1, 2 * self.mean_gap)
            end = start + self.rng.randint(1, self.max_stall)
            self._starts.append(start)
            self._ends.append(end)
            self._horizon = end
        i = bisect_right(self._starts, c) - 1
        if i >= 0 and c < self._ends[i]:
            return self._ends[i]
        return c


class ActorStallPlan:
    """Per-actor stall windows; the schedulers' single query point.

    ``free_cycle(name, c)`` returns ``c`` for unfaulted actors (one dict
    miss — the only overhead a faulted run adds per resumption of a
    clean actor).
    """

    __slots__ = ("_targets",)

    def __init__(self):
        self._targets: Dict[str, _StallWindows] = {}

    def add(self, name: str, rng: Random, mean_gap: int, max_stall: int) -> None:
        self._targets[name] = _StallWindows(rng, mean_gap, max_stall)

    @property
    def actor_names(self) -> List[str]:
        return sorted(self._targets)

    def free_cycle(self, name: str, c: int) -> int:
        t = self._targets.get(name)
        return c if t is None else t.free_cycle(c)


# -- arming ------------------------------------------------------------------


class ArmedFaults:
    """A scenario wired into one graph: live injectors plus bookkeeping.

    Attach to a simulator by assigning ``sim.faults = armed`` *before*
    the first run; engines read :attr:`actor_plan` at creation and the
    channel hooks are already installed on the channels themselves.
    """

    def __init__(self, scenario: FaultScenario, seed: int):
        self.scenario = scenario
        self.seed = seed
        #: channel name -> injector (JitterFault/ThrottleFault/... or
        #: CompositeFault when several specs matched).
        self.channel_faults: Dict[str, object] = {}
        #: None when the scenario has no ActorSlowdown.
        self.actor_plan: Optional[ActorStallPlan] = None
        #: channel name -> (original capacity, shrunk capacity).
        self.shrunk: Dict[str, Tuple[Optional[int], int]] = {}

    def describe(self) -> dict:
        """JSON-friendly summary of what got armed (for reports)."""
        return {
            "scenario": self.scenario.name,
            "seed": self.seed,
            "channels_faulted": sorted(self.channel_faults),
            "actors_stalled": (
                self.actor_plan.actor_names if self.actor_plan else []
            ),
            "fifos_shrunk": {
                name: {"from": old, "to": new}
                for name, (old, new) in sorted(self.shrunk.items())
            },
        }

    def corruption_hits(self) -> int:
        """Beats actually mutated by corruption faults, post-run."""
        total = 0
        for fault in self.channel_faults.values():
            faults = fault.faults if isinstance(fault, CompositeFault) else [fault]
            for f in faults:
                if isinstance(f, CorruptionFault):
                    total += f.hits
        return total

    def hold_cycles(self) -> int:
        """Total extra cycles channel faults injected, post-run."""
        total = 0
        for fault in self.channel_faults.values():
            faults = fault.faults if isinstance(fault, CompositeFault) else [fault]
            for f in faults:
                total += getattr(f, "holds", 0)
        return total


def _matching_channels(graph: DataflowGraph, pattern: str) -> List[str]:
    return sorted(n for n in graph.channels if fnmatchcase(n, pattern))


def arm_faults(
    graph: DataflowGraph, scenario: FaultScenario, seed: int
) -> ArmedFaults:
    """Instantiate ``scenario`` on ``graph`` and install every hook.

    Raises :class:`~repro.errors.ConfigurationError` when a fault spec
    matches nothing (a silently inert scenario would make every
    invariant vacuously true) or when a shrink targets a channel that
    already holds data.
    """
    armed = ArmedFaults(scenario, seed)
    per_channel: Dict[str, List] = {}
    for spec in scenario.faults:
        if isinstance(spec, (ChannelJitter, DmaThrottle, BeatCorruption)):
            names = _matching_channels(graph, spec.channels)
            if not names:
                raise ConfigurationError(
                    f"scenario {scenario.name!r}: {spec.kind} pattern "
                    f"{spec.channels!r} matches no channel"
                )
            for name in names:
                rng = target_rng(seed, f"{spec.kind}:{name}")
                if isinstance(spec, ChannelJitter):
                    fault = JitterFault(rng, spec.probability, spec.max_delay)
                elif isinstance(spec, DmaThrottle):
                    fault = ThrottleFault(rng, spec.period, spec.burst)
                else:
                    fault = CorruptionFault(rng, spec.probability, spec.magnitude)
                per_channel.setdefault(name, []).append(fault)
        elif isinstance(spec, ActorSlowdown):
            names = sorted(
                n for n in graph.actors if fnmatchcase(n, spec.actors)
            )
            if not names:
                raise ConfigurationError(
                    f"scenario {scenario.name!r}: slowdown pattern "
                    f"{spec.actors!r} matches no actor"
                )
            if armed.actor_plan is None:
                armed.actor_plan = ActorStallPlan()
            for name in names:
                armed.actor_plan.add(
                    name,
                    target_rng(seed, f"slowdown:{name}"),
                    spec.mean_gap,
                    spec.max_stall,
                )
        elif isinstance(spec, FifoShrink):
            if spec.channels == "auto":
                raise ConfigurationError(
                    f"scenario {scenario.name!r}: 'auto' shrink targets must "
                    f"be resolved first (repro.faults.harness.resolve_shrink)"
                )
            names = _matching_channels(graph, spec.channels)
            if not names:
                raise ConfigurationError(
                    f"scenario {scenario.name!r}: shrink pattern "
                    f"{spec.channels!r} matches no channel"
                )
            for name in names:
                ch = graph.channels[name]
                if len(ch):
                    raise ConfigurationError(
                        f"cannot shrink channel {name!r}: it already holds "
                        f"{len(ch)} value(s) (arm before simulating)"
                    )
                armed.shrunk[name] = (ch.capacity, spec.capacity)
                ch.capacity = spec.capacity
        else:  # pragma: no cover - FaultScenario validates kinds
            raise ConfigurationError(f"unknown fault spec {spec!r}")
    for name, faults in per_channel.items():
        fault = faults[0] if len(faults) == 1 else CompositeFault(faults)
        armed.channel_faults[name] = fault
        graph.channels[name]._fault = fault
    return armed


def disarm_faults(graph: DataflowGraph, armed: ArmedFaults) -> None:
    """Detach channel hooks and restore shrunk capacities (for reuse)."""
    for name in armed.channel_faults:
        graph.channels[name]._fault = None
    for name, (old, _new) in armed.shrunk.items():
        graph.channels[name].capacity = old
