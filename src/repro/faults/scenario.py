"""Declarative fault scenarios: what to break, where, and how hard.

A :class:`FaultScenario` is a named, JSON-serialisable bundle of fault
specs. Specs are *declarative* — they name targets by fnmatch pattern and
carry distribution parameters; the runtime objects that actually perturb a
graph are created by :func:`repro.faults.injectors.arm_faults`, which
derives one deterministic RNG per (seed, target name) so results are
reproducible and independent of arming order.

The fault taxonomy follows what can go wrong on the paper's board without
changing the netlist:

* :class:`ChannelJitter` — a stream link randomly holds committed beats a
  few extra cycles (clock-domain crossings, AXI handshake bubbles);
* :class:`DmaThrottle` — the off-chip DMA periodically stalls for a burst
  of cycles (memory-controller arbitration, refresh);
* :class:`ActorSlowdown` — a computation core intermittently runs slow
  (e.g. a congested shared multiplier);
* :class:`FifoShrink` — a FIFO is provisioned below the sizing model's
  minimum (the design error the static verifier exists to catch);
* :class:`BeatCorruption` — a data beat is perturbed in flight (the one
  *value* fault, kept for detection tests: digests must flag it).

The first three are **timing-only**: by the Kahn-network argument (see
DESIGN.md section 10) they may shift cycles but can never change output
values. :meth:`FaultScenario.timing_only` is how the harness decides which
invariant a run must satisfy.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Tuple, Type

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ChannelJitter:
    """Randomly hold committed beats on matching channels.

    Each time a channel has staged beats to commit, with probability
    ``probability`` the commit is held for 1..``max_delay`` extra cycles.
    """

    channels: str = "*"
    probability: float = 0.3
    max_delay: int = 3

    kind = "jitter"

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"jitter probability must be in [0, 1], got {self.probability}"
            )
        if self.max_delay < 1:
            raise ConfigurationError(
                f"jitter max_delay must be >= 1, got {self.max_delay}"
            )


@dataclass(frozen=True)
class DmaThrottle:
    """Periodic burst stalls on matching channels (default: the DMA input).

    Every ``period``-th commit is held for ``burst`` cycles; the phase is
    drawn from the seeded RNG so different seeds hit different beats.
    """

    channels: str = "dma_in.*"
    period: int = 7
    burst: int = 5

    kind = "dma"

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ConfigurationError(
                f"throttle period must be >= 1, got {self.period}"
            )
        if self.burst < 1:
            raise ConfigurationError(
                f"throttle burst must be >= 1, got {self.burst}"
            )


@dataclass(frozen=True)
class ActorSlowdown:
    """Intermittent stall windows on matching actors.

    Windows are generated from the seeded RNG as a pure function of the
    actor name: a gap of 1..``2*mean_gap`` free cycles, then a stall of
    1..``max_stall`` cycles, repeated. During a stall window the actor's
    processes are simply not resumed (both schedulers defer identically).
    """

    actors: str = "*"
    mean_gap: int = 50
    max_stall: int = 8

    kind = "slowdown"

    def __post_init__(self) -> None:
        if self.mean_gap < 1:
            raise ConfigurationError(
                f"slowdown mean_gap must be >= 1, got {self.mean_gap}"
            )
        if self.max_stall < 1:
            raise ConfigurationError(
                f"slowdown max_stall must be >= 1, got {self.max_stall}"
            )


@dataclass(frozen=True)
class FifoShrink:
    """Re-provision matching bounded channels to ``capacity`` at arm time.

    ``channels="auto"`` lets the harness pick a provably-deadlocking
    target: the first literal filter-chain FIFO whose full-buffering
    depth admits one (see ``repro.sst.sizing.deadlock_shrink_targets``),
    shrunk two below its analyzer minimum. This is the scenario that
    cross-validates the static verifier against the simulator.
    """

    channels: str = "auto"
    capacity: int = 0

    kind = "shrink"

    def __post_init__(self) -> None:
        if self.channels != "auto" and self.capacity < 1:
            raise ConfigurationError(
                f"shrink capacity must be >= 1, got {self.capacity}"
            )


@dataclass(frozen=True)
class BeatCorruption:
    """Perturb numeric beats in flight on matching channels.

    With probability ``probability`` per commit, one staged numeric beat
    gets ``magnitude * uniform(-1, 1)`` added. Non-numeric beats (window
    tuples, control tokens) are left alone. This is a *value* fault: the
    harness expects the output digest to change and reports how many
    beats were actually hit.
    """

    channels: str = "dma_in.*"
    probability: float = 0.05
    magnitude: float = 1.0

    kind = "corrupt"

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"corruption probability must be in [0, 1], "
                f"got {self.probability}"
            )


#: kind tag -> spec class, for JSON round-tripping.
FAULT_KINDS: Dict[str, Type] = {
    cls.kind: cls
    for cls in (ChannelJitter, DmaThrottle, ActorSlowdown, FifoShrink,
                BeatCorruption)
}

#: Fault kinds that can only shift cycles, never values (Kahn argument).
TIMING_ONLY_KINDS = ("jitter", "dma", "slowdown")


@dataclass(frozen=True)
class FaultScenario:
    """A named bundle of fault specs applied together to one run."""

    name: str
    faults: Tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for f in self.faults:
            if FAULT_KINDS.get(getattr(f, "kind", None)) is not type(f):
                raise ConfigurationError(
                    f"scenario {self.name!r}: unknown fault spec {f!r}"
                )

    def timing_only(self) -> bool:
        """True when every fault is provably value-preserving."""
        return all(f.kind in TIMING_ONLY_KINDS for f in self.faults)

    def has_kind(self, kind: str) -> bool:
        return any(f.kind == kind for f in self.faults)

    # -- JSON round-trip ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "faults": [dict(asdict(f), kind=f.kind) for f in self.faults],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, d: dict) -> "FaultScenario":
        if not isinstance(d, dict) or "name" not in d:
            raise ConfigurationError("scenario dict needs a 'name' key")
        faults = []
        for fd in d.get("faults", ()):
            fd = dict(fd)
            kind = fd.pop("kind", None)
            spec_cls = FAULT_KINDS.get(kind)
            if spec_cls is None:
                raise ConfigurationError(
                    f"scenario {d['name']!r}: unknown fault kind {kind!r}"
                )
            faults.append(spec_cls(**fd))
        return cls(name=str(d["name"]), faults=tuple(faults))

    @classmethod
    def from_json(cls, text: str) -> "FaultScenario":
        return cls.from_dict(json.loads(text))


def preset_scenarios() -> Dict[str, FaultScenario]:
    """The named scenarios the CLI and the CI campaign use."""
    return {
        "jitter": FaultScenario("jitter", (ChannelJitter(),)),
        "dma": FaultScenario("dma", (DmaThrottle(),)),
        # Chaos-mode preset for `repro loadtest --fault dma-throttle`:
        # period=1 pins the throttle phase (seed-independent timing) and
        # burst=16 overwhelms the capacity-4 batch-commit absorption, so
        # the degradation is visible on every design and exactly
        # predictable by repro.faults.analytical.
        "dma-throttle": FaultScenario(
            "dma-throttle", (DmaThrottle(period=1, burst=16),)
        ),
        "slowdown": FaultScenario("slowdown", (ActorSlowdown(),)),
        "storm": FaultScenario(
            "storm", (ChannelJitter(), DmaThrottle(), ActorSlowdown())
        ),
        "corrupt": FaultScenario("corrupt", (BeatCorruption(),)),
        "shrink": FaultScenario("shrink", (FifoShrink(),)),
    }


def load_scenario(arg: str) -> FaultScenario:
    """A preset name or a path to a scenario JSON file."""
    presets = preset_scenarios()
    if arg in presets:
        return presets[arg]
    try:
        with open(arg) as fh:
            return FaultScenario.from_json(fh.read())
    except FileNotFoundError:
        raise ConfigurationError(
            f"unknown scenario {arg!r}: not a preset ({sorted(presets)}) "
            f"and not a readable JSON file"
        ) from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{arg}: not valid JSON ({exc})") from None
