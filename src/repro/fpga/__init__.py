"""FPGA platform models: devices, boards, DMA and power."""

from repro.fpga.board import VC707, Board
from repro.fpga.device import STRATIX_V_D5, XC7VX485T, Device, get_device
from repro.fpga.dma import PAPER_DMA, DmaModel
from repro.fpga.power import PAPER_POWER, PowerModel
from repro.fpga.roofline import (
    RooflinePoint,
    device_compute_roof_gflops,
    roofline_point,
)

__all__ = [
    "RooflinePoint",
    "device_compute_roof_gflops",
    "roofline_point",
    "Board",
    "Device",
    "DmaModel",
    "PAPER_DMA",
    "PAPER_POWER",
    "PowerModel",
    "STRATIX_V_D5",
    "VC707",
    "XC7VX485T",
    "get_device",
]
