"""Board model: device + clock + DMA + power, i.e. the paper's VC707 setup.

The experimental platform of Section V-A — a VC707 carrying the Virtex-7,
clocked at 100 MHz, fed by an AXI DMA (Microblaze softcore and AXI timer
are measurement plumbing subsumed by the simulator's cycle counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import ClockDomain, PAPER_CLOCK
from repro.fpga.device import Device, XC7VX485T
from repro.fpga.dma import DmaModel, PAPER_DMA
from repro.fpga.power import PAPER_POWER, PowerModel


@dataclass(frozen=True)
class Board:
    """A complete evaluation platform."""

    name: str
    device: Device
    clock: ClockDomain = PAPER_CLOCK
    dma: DmaModel = PAPER_DMA
    power: PowerModel = PAPER_POWER

    def seconds(self, cycles: float) -> float:
        """Convert simulated cycles to wall-clock seconds on this board."""
        return self.clock.cycles_to_seconds(cycles)


#: The paper's test platform.
VC707 = Board(name="vc707", device=XC7VX485T)
