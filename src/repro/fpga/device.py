"""FPGA device models: resource budgets for fit checks and Table I.

:data:`XC7VX485T` is the Virtex-7 part on the paper's VC707 board;
:data:`STRATIX_V_D5` is the Altera part of the Microsoft comparison [28]
(modeled loosely — only its identity matters for Table II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ResourceError
from repro.hls.resources import ResourceVector


@dataclass(frozen=True)
class Device:
    """An FPGA part: a name, a vendor/family tag and a resource budget."""

    name: str
    family: str
    resources: ResourceVector

    def check_fit(self, usage: ResourceVector) -> None:
        """Raise :class:`~repro.errors.ResourceError` if ``usage`` overflows."""
        if not usage.fits_in(self.resources):
            util = usage.utilization(self.resources)
            over = {k: f"{v:.1%}" for k, v in util.items() if v > 1.0}
            raise ResourceError(
                f"design does not fit {self.name}: over budget on {over}"
            )

    def utilization(self, usage: ResourceVector) -> Dict[str, float]:
        """Fractional utilization per resource class (a Table I row)."""
        return usage.utilization(self.resources)


#: Xilinx Virtex-7 XC7VX485T (VC707 board): 607,200 FF; 303,600 LUT;
#: 1,030 BRAM36 (37 Mb); 2,800 DSP48E1 slices.
XC7VX485T = Device(
    name="xc7vx485t",
    family="xilinx-virtex7",
    resources=ResourceVector(ff=607_200, lut=303_600, bram=1_030, dsp=2_800),
)

#: Altera Stratix V D5 (the device of ref. [28]); ALMs mapped to the LUT
#: column, M20K blocks to BRAM — used for identification only.
STRATIX_V_D5 = Device(
    name="stratix-v-d5",
    family="altera-stratixv",
    resources=ResourceVector(ff=690_400, lut=172_600, bram=2_014, dsp=1_590),
)

_DEVICES = {d.name: d for d in (XC7VX485T, STRATIX_V_D5)}


def get_device(name: str) -> Device:
    """Look up a device preset by name."""
    try:
        return _DEVICES[name]
    except KeyError:
        raise ResourceError(
            f"unknown device {name!r}; available: {sorted(_DEVICES)}"
        ) from None
