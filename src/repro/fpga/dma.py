"""DMA transfer-time model (the paper's AXI DMA on the VC707).

Section V-C: "the datapath from the DMA towards the CNN is 32 bits wide
and the available bandwidth, for all the performed tests, is 400 MB/s",
and performance is measured with transfers interleaved with computation.
At 100 MHz that is exactly 4 bytes — one float32 — per cycle, so the DMA
feeds the first layer at stream rate and the model below reduces to
"one word per cycle" for the paper's setup while remaining general.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import (
    DMA_BANDWIDTH_BYTES_PER_S,
    DMA_DATAPATH_BITS,
    ClockDomain,
    PAPER_CLOCK,
)
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DmaModel:
    """A streaming DMA engine with a fixed datapath width and bandwidth."""

    datapath_bits: int = DMA_DATAPATH_BITS
    bandwidth_bytes_per_s: float = DMA_BANDWIDTH_BYTES_PER_S
    clock: ClockDomain = PAPER_CLOCK

    def __post_init__(self) -> None:
        if self.datapath_bits % 8:
            raise ConfigurationError(
                f"datapath must be a whole number of bytes, got {self.datapath_bits} bits"
            )
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("bandwidth must be positive")

    @property
    def bytes_per_cycle(self) -> float:
        """Sustained bytes moved per clock cycle."""
        return self.bandwidth_bytes_per_s / self.clock.frequency_hz

    def beat_interval(self, word_bits: int = 32) -> int:
        """Cycles between consecutive word beats on the stream (>= 1).

        The interval is bounded below both by the datapath width (a wide
        word needs several beats) and by the sustained bandwidth.
        """
        if word_bits < 1:
            raise ConfigurationError(f"word_bits must be >= 1, got {word_bits}")
        word_bytes = math.ceil(word_bits / 8)
        width_cycles = math.ceil(word_bits / self.datapath_bits)
        bw_cycles = math.ceil(word_bytes / self.bytes_per_cycle)
        return max(1, width_cycles, bw_cycles)

    def transfer_cycles(self, n_words: int, word_bits: int = 32) -> int:
        """Cycles to stream ``n_words`` (no setup overhead modeled)."""
        if n_words < 0:
            raise ConfigurationError(f"n_words must be >= 0, got {n_words}")
        return n_words * self.beat_interval(word_bits)


#: The paper's DMA: 32-bit datapath, 400 MB/s, 100 MHz -> 1 word/cycle.
PAPER_DMA = DmaModel()
