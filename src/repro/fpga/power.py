"""Board power model for the GFLOPS/W column of Table II.

The paper reports power efficiency (0.25 and 1.19 GFLOPS/W) without
describing its measurement; back-solving Table II puts the two designs
around 21 W and 24 W. We model board power as a static floor (the VC707's
fans, memory, regulators and the FPGA's static draw) plus dynamic terms
proportional to the occupied resources — the standard first-order FPGA
power decomposition. The coefficients are calibrated so the paper's two
operating points fall out of the paper's two utilization profiles; they
live in one place for recalibration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hls.resources import ResourceVector


@dataclass(frozen=True)
class PowerModel:
    """First-order board power: static + per-resource dynamic terms.

    Coefficients are watts per occupied unit at the paper's 100 MHz; the
    optional ``frequency_scale`` lets what-if studies scale the dynamic
    part linearly with clock frequency.
    """

    static_w: float = 14.0
    w_per_ff: float = 4.0e-6
    w_per_lut: float = 1.5e-5
    w_per_bram: float = 1.0e-2
    w_per_dsp: float = 1.5e-3

    def total_power_w(
        self, usage: ResourceVector, frequency_scale: float = 1.0
    ) -> float:
        """Estimated board power in watts for a design using ``usage``."""
        if frequency_scale <= 0:
            raise ConfigurationError(
                f"frequency_scale must be positive, got {frequency_scale}"
            )
        dynamic = (
            usage.ff * self.w_per_ff
            + usage.lut * self.w_per_lut
            + usage.bram * self.w_per_bram
            + usage.dsp * self.w_per_dsp
        )
        return self.static_w + dynamic * frequency_scale

    def efficiency_gflops_per_w(
        self, gflops: float, usage: ResourceVector, frequency_scale: float = 1.0
    ) -> float:
        """GFLOPS per watt — the paper's power-efficiency metric."""
        if gflops < 0:
            raise ConfigurationError(f"gflops must be >= 0, got {gflops}")
        return gflops / self.total_power_w(usage, frequency_scale)


#: Model calibrated against the two operating points implied by Table II.
PAPER_POWER = PowerModel()
