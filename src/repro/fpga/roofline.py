"""Roofline model positioning of dataflow CNN designs.

The related work the paper builds on (Zhang et al., FPGA'15, its ref. [10])
selects designs with the Roofline Model [23]: attainable performance is
the minimum of the *compute roof* (peak MAC throughput of the DSP budget)
and the *bandwidth roof* (off-chip bytes/s times the design's operational
intensity). We provide the same analysis for this methodology's designs:
where each test case sits relative to both roofs, and how far the chosen
configuration is from its roof — the quantitative form of the paper's own
observation that it used the off-chip bandwidth sub-optimally.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.fpga.board import Board, VC707
from repro.hls.ops import mac_cost

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.network_design import NetworkDesign


@dataclass(frozen=True)
class RooflinePoint:
    """One design's position in the roofline plane."""

    design_name: str
    #: FLOP per off-chip byte of the dominant stream direction (the in-
    #: and out-streams run full duplex; weights live on chip).
    operational_intensity: float
    #: Sustained GFLOPS of the actual (modeled) design.
    achieved_gflops: float
    #: Compute roof of the device (GFLOPS).
    compute_roof_gflops: float
    #: Bandwidth roof at this intensity (GFLOPS).
    bandwidth_roof_gflops: float

    @property
    def attainable_gflops(self) -> float:
        """min(compute roof, bandwidth roof): the roofline itself."""
        return min(self.compute_roof_gflops, self.bandwidth_roof_gflops)

    @property
    def bound(self) -> str:
        """Which roof limits this design: ``"compute"`` or ``"bandwidth"``."""
        return (
            "compute"
            if self.compute_roof_gflops <= self.bandwidth_roof_gflops
            else "bandwidth"
        )

    @property
    def roof_fraction(self) -> float:
        """Achieved performance as a fraction of the attainable roof."""
        return self.achieved_gflops / self.attainable_gflops


def device_compute_roof_gflops(board: Board = VC707, dtype: str = "float32") -> float:
    """Peak MAC throughput of the board's DSP budget (GFLOPS, 2 FLOP/MAC).

    One MAC lane costs one multiplier plus one adder of the given dtype;
    the DSP column is the binding resource for floating point on this
    class of device.
    """
    mul, add = mac_cost(dtype)
    dsp_per_lane = mul.resources.dsp + add.resources.dsp
    if dsp_per_lane == 0:
        raise ConfigurationError(
            f"dtype {dtype!r} uses no DSPs; the compute roof is LUT-bound "
            f"and outside this model"
        )
    lanes = board.device.resources.dsp / dsp_per_lane
    return lanes * 2.0 * board.clock.frequency_hz / 1e9


def roofline_point(
    design: "NetworkDesign", board: Board = VC707, dtype: str = "float32"
) -> RooflinePoint:
    """Position ``design`` in the roofline plane of ``board``."""
    # Imported here: repro.core depends on repro.fpga, not the other way
    # round at import time (this function is the one late binding).
    from repro.core.perf_model import network_perf

    flops = design.flops_per_image()
    # Input and output DMA streams are independent (full duplex); the
    # binding off-chip traffic is the larger direction.
    bytes_per_image = 4 * max(
        design.input_words_per_image(), design.output_words_per_image()
    )
    oi = flops / bytes_per_image
    perf = network_perf(design, board)
    achieved = flops * perf.images_per_second(board) / 1e9
    compute_roof = device_compute_roof_gflops(board, dtype)
    bw_roof = board.dma.bandwidth_bytes_per_s * oi / 1e9
    return RooflinePoint(
        design_name=design.name,
        operational_intensity=oi,
        achieved_gflops=achieved,
        compute_roof_gflops=compute_roof,
        bandwidth_roof_gflops=bw_roof,
    )
