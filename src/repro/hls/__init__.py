"""HLS cost model: operator tables, pipeline math, reduction structures.

The simulated counterpart of Vivado HLS: everything the paper gets from
the synthesis tool — initiation intervals (Eq. 4), operator latencies
(11-cycle float add), tree-adder depth, interleaved accumulators, and
per-core resource estimates — is modeled here.
"""

from repro.hls.accumulator import AccumulatorModel, interleaved_sum
from repro.hls.datatypes import DEFAULT_FIXED, FixedPointFormat
from repro.hls.ops import FIXED16_OPS, FIXED32_OPS, FLOAT32_OPS, OpCost, mac_cost, op_cost
from repro.hls.pipeline import PipelineSchedule, initiation_interval, tree_depth
from repro.hls.resources import ZERO, ResourceVector, bram36_for_words
from repro.hls.tree_adder import AdderTreeModel, chain_reduce, tree_reduce

__all__ = [
    "AccumulatorModel",
    "AdderTreeModel",
    "DEFAULT_FIXED",
    "FIXED16_OPS",
    "FIXED32_OPS",
    "FLOAT32_OPS",
    "FixedPointFormat",
    "OpCost",
    "PipelineSchedule",
    "ResourceVector",
    "ZERO",
    "bram36_for_words",
    "chain_reduce",
    "initiation_interval",
    "interleaved_sum",
    "mac_cost",
    "op_cost",
    "tree_depth",
    "tree_reduce",
]
