"""Interleaved floating-point accumulators (Section IV-B).

A single-precision add takes ~11 cycles, so a naive dependent accumulation
loop cannot reach II=1: each iteration must wait for the previous sum. The
paper's fix — "we added more accumulators and interleaved their use by
exploiting a partial unrolling of the main loop" — rotates the incoming
values over ``lanes`` independent partial sums and combines them at the
end. With ``lanes >= add latency`` the loop pipelines at II=1.

:func:`interleaved_sum` reproduces the exact rounding of the lane-rotated
accumulation; :class:`AccumulatorModel` quantifies the latency/resource
trade-off (ablation A2 and the FC-core cost model).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import DTYPE
from repro.errors import ConfigurationError
from repro.hls.ops import op_cost
from repro.hls.pipeline import tree_depth
from repro.hls.resources import ResourceVector
from repro.hls.tree_adder import tree_reduce


def interleaved_sum(values: np.ndarray, lanes: int) -> np.ndarray:
    """Sum along the last axis using ``lanes`` rotating partial sums.

    Element ``i`` is added into lane ``i % lanes``; the lane partials are
    then combined with a balanced tree — the association order of the
    hardware, hence bit-faithful float32 rounding.
    """
    if lanes < 1:
        raise ConfigurationError(f"lanes must be >= 1, got {lanes}")
    arr = np.asarray(values, dtype=DTYPE)
    n = arr.shape[-1]
    if n == 0:
        raise ConfigurationError("interleaved_sum over an empty axis")
    partial = np.zeros(arr.shape[:-1] + (lanes,), dtype=DTYPE)
    for i in range(n):
        lane = i % lanes
        partial[..., lane] = (partial[..., lane] + arr[..., i]).astype(DTYPE)
    return tree_reduce(partial)


@dataclass(frozen=True)
class AccumulatorModel:
    """Cost of accumulating ``n_terms`` with ``lanes`` interleaved adders."""

    n_terms: int
    lanes: int
    dtype: str = "float32"

    def __post_init__(self) -> None:
        if self.n_terms < 1:
            raise ConfigurationError(f"n_terms must be >= 1, got {self.n_terms}")
        if self.lanes < 1:
            raise ConfigurationError(f"lanes must be >= 1, got {self.lanes}")

    @property
    def add_latency(self) -> int:
        return op_cost("add", self.dtype).latency

    @property
    def ii(self) -> int:
        """Initiation interval of the accumulation loop.

        A lane accepts a new term only every ``add_latency`` cycles; with
        ``lanes`` rotating lanes the loop sustains one term every
        ``ceil(add_latency / lanes)`` cycles (II=1 once lanes >= latency).
        """
        return -(-self.add_latency // self.lanes)

    @property
    def loop_latency(self) -> int:
        """Cycles to absorb all terms plus drain the adder pipeline."""
        return self.ii * (self.n_terms - 1) + self.add_latency

    @property
    def combine_latency(self) -> int:
        """Cycles of the final balanced combine across lanes."""
        return tree_depth(self.lanes) * self.add_latency

    @property
    def total_latency(self) -> int:
        """End-to-end accumulation latency."""
        return self.loop_latency + self.combine_latency

    @property
    def resources(self) -> ResourceVector:
        """Adder instances for the lanes (the combine tree reuses them)."""
        return op_cost("add", self.dtype).resources * self.lanes

    def speedup_vs_single(self) -> float:
        """Latency ratio of the single-accumulator loop to this one."""
        single = AccumulatorModel(self.n_terms, 1, self.dtype)
        return single.total_latency / self.total_latency
