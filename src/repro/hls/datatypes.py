"""Numeric datatype models: float32 and ``ap_fixed``-style fixed point.

The paper implements both networks in single precision and leaves the
integer path as future study (Section IV-B). We implement that future path:
:class:`FixedPointFormat` emulates Vivado HLS ``ap_fixed<W, I>`` semantics
(two's-complement, configurable rounding/saturation) on NumPy arrays, and
is used by :mod:`repro.nn.quantize` and the fixed-point benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FixedPointFormat:
    """An ``ap_fixed<width, integer_bits>`` signed fixed-point format.

    ``width`` counts all bits including sign; ``integer_bits`` counts the
    bits left of the binary point including sign (so fractional bits are
    ``width - integer_bits``).

    Parameters mirror HLS: ``rounding`` is "trunc" (``AP_TRN``, default of
    HLS) or "round" (``AP_RND``); saturation is always on (``AP_SAT``),
    matching what a careful designer would pick for CNN inference.
    """

    width: int
    integer_bits: int
    rounding: str = "round"

    def __post_init__(self) -> None:
        if not (2 <= self.width <= 64):
            raise ConfigurationError(f"width must be in [2, 64], got {self.width}")
        if not (1 <= self.integer_bits <= self.width):
            raise ConfigurationError(
                f"integer_bits must be in [1, width], got {self.integer_bits}"
            )
        if self.rounding not in ("round", "trunc"):
            raise ConfigurationError(f"unknown rounding {self.rounding!r}")

    @property
    def frac_bits(self) -> int:
        """Bits right of the binary point."""
        return self.width - self.integer_bits

    @property
    def scale(self) -> float:
        """Value of one LSB."""
        return 2.0 ** (-self.frac_bits)

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return (2 ** (self.width - 1) - 1) * self.scale

    @property
    def min_value(self) -> float:
        """Smallest (most negative) representable value."""
        return -(2 ** (self.width - 1)) * self.scale

    # -- conversions ---------------------------------------------------------

    def to_raw(self, values: np.ndarray) -> np.ndarray:
        """Quantize real values to raw integer codes (int64), saturating."""
        arr = np.asarray(values, dtype=np.float64) / self.scale
        if self.rounding == "round":
            raw = np.floor(arr + 0.5)
        else:
            raw = np.floor(arr)
        lo = -(2 ** (self.width - 1))
        hi = 2 ** (self.width - 1) - 1
        return np.clip(raw, lo, hi).astype(np.int64)

    def from_raw(self, raw: np.ndarray) -> np.ndarray:
        """Convert raw codes back to real values (float64)."""
        return np.asarray(raw, dtype=np.int64) * self.scale

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Round-trip real values through the format (float64 out)."""
        return self.from_raw(self.to_raw(values))

    def quantization_error(self, values: np.ndarray) -> float:
        """Max absolute quantization error over ``values``."""
        v = np.asarray(values, dtype=np.float64)
        return float(np.max(np.abs(self.quantize(v) - v))) if v.size else 0.0

    @property
    def dtype_key(self) -> str:
        """Operator-table key for this width (``fixed16``/``fixed32``)."""
        return "fixed16" if self.width <= 18 else "fixed32"

    def describe(self) -> str:
        """HLS-style name, e.g. ``ap_fixed<16,6>``."""
        return f"ap_fixed<{self.width},{self.integer_bits}>"


#: A sensible default for CNN inference: 16 bits, 6 integer bits.
DEFAULT_FIXED = FixedPointFormat(16, 6)
