"""Per-operator latency and resource tables (the HLS operator library).

The figures approximate Vivado HLS 2016.x floating point operator cores on
Virtex-7 at 100 MHz — the toolchain/board of the paper. The single number
the paper itself states is the 11-cycle single-precision accumulation
latency (Section IV-B); the rest follow the Xilinx Floating-Point Operator
datasheet ballpark (full-DSP implementations) and standard fixed-point
costs. Exactness is not required: Table I reproduction targets utilization
*shape*, and every constant lives here so it can be recalibrated in one
place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.config import FADD_LATENCY_CYCLES, FMUL_LATENCY_CYCLES
from repro.errors import ConfigurationError
from repro.hls.resources import ResourceVector


@dataclass(frozen=True)
class OpCost:
    """Cost of one fully pipelined (II=1) operator instance."""

    latency: int
    resources: ResourceVector


#: name -> OpCost for IEEE-754 single precision (the paper's datatype).
FLOAT32_OPS: Dict[str, OpCost] = {
    "add": OpCost(FADD_LATENCY_CYCLES, ResourceVector(ff=490, lut=320, dsp=2)),
    "mul": OpCost(FMUL_LATENCY_CYCLES, ResourceVector(ff=250, lut=120, dsp=3)),
    "cmp": OpCost(1, ResourceVector(ff=66, lut=94, dsp=0)),
    "div": OpCost(28, ResourceVector(ff=2100, lut=1800, dsp=0)),
    "exp": OpCost(17, ResourceVector(ff=1400, lut=1100, dsp=7)),
}

#: name -> OpCost for 16-bit fixed point (the integer path of Section IV-B).
FIXED16_OPS: Dict[str, OpCost] = {
    "add": OpCost(1, ResourceVector(ff=16, lut=16, dsp=0)),
    "mul": OpCost(1, ResourceVector(ff=33, lut=20, dsp=1)),
    "cmp": OpCost(1, ResourceVector(ff=16, lut=16, dsp=0)),
}

#: name -> OpCost for 32-bit fixed point.
FIXED32_OPS: Dict[str, OpCost] = {
    "add": OpCost(1, ResourceVector(ff=32, lut=32, dsp=0)),
    "mul": OpCost(2, ResourceVector(ff=96, lut=60, dsp=4)),
    "cmp": OpCost(1, ResourceVector(ff=32, lut=32, dsp=0)),
}

_TABLES: Dict[str, Dict[str, OpCost]] = {
    "float32": FLOAT32_OPS,
    "fixed16": FIXED16_OPS,
    "fixed32": FIXED32_OPS,
}


def op_cost(op: str, dtype: str = "float32") -> OpCost:
    """Look up the cost of operator ``op`` (``add``/``mul``/``cmp``/...).

    Raises :class:`~repro.errors.ConfigurationError` for unknown entries so
    typos fail loudly rather than costing zero.
    """
    try:
        table = _TABLES[dtype]
    except KeyError:
        raise ConfigurationError(
            f"unknown dtype {dtype!r}; expected one of {sorted(_TABLES)}"
        ) from None
    try:
        return table[op]
    except KeyError:
        raise ConfigurationError(
            f"dtype {dtype!r} has no operator {op!r}; expected one of {sorted(table)}"
        ) from None


def mac_cost(dtype: str = "float32") -> Tuple[OpCost, OpCost]:
    """(multiply, add) operator pair for one multiply-accumulate lane."""
    return op_cost("mul", dtype), op_cost("add", dtype)
