"""Pipeline scheduling math: initiation interval and loop latency.

Implements Equation 4 of the paper,

    ``II = max(OUT_FM / OUT_PORTS, IN_FM / IN_PORTS)``,

plus the standard HLS pipelined-loop latency formula
``latency = depth + II * (trip_count - 1)`` used by the performance model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


def initiation_interval(
    in_fm: int, in_ports: int, out_fm: int, out_ports: int
) -> int:
    """Equation 4: the pipeline initiation interval of a compute core.

    The core must read ``IN_FM/IN_PORTS`` window groups and emit
    ``OUT_FM/OUT_PORTS`` interleaved outputs per output coordinate; the
    slower of the two bounds the interval. Port counts must divide the
    corresponding feature-map counts (the builder's interleaving assumes
    an integral group size); the result is always >= 1.
    """
    if in_ports < 1 or out_ports < 1:
        raise ConfigurationError(
            f"port counts must be >= 1 (got in={in_ports}, out={out_ports})"
        )
    if in_fm % in_ports:
        raise ConfigurationError(f"IN_FM {in_fm} not a multiple of IN_PORTS {in_ports}")
    if out_fm % out_ports:
        raise ConfigurationError(
            f"OUT_FM {out_fm} not a multiple of OUT_PORTS {out_ports}"
        )
    return max(in_fm // in_ports, out_fm // out_ports, 1)


def ii_bounds(
    in_fm: int, in_ports: int, out_fm: int, out_ports: int
) -> tuple:
    """The two sides of Eq. 4: ``(input bound, output bound)``.

    ``initiation_interval`` is their max; exposing both lets diagnostics
    say *which* side binds (and therefore which port count to raise).
    Port counts must divide the feature-map counts, as in
    :func:`initiation_interval`.
    """
    if in_ports < 1 or out_ports < 1:
        raise ConfigurationError(
            f"port counts must be >= 1 (got in={in_ports}, out={out_ports})"
        )
    if in_fm % in_ports:
        raise ConfigurationError(f"IN_FM {in_fm} not a multiple of IN_PORTS {in_ports}")
    if out_fm % out_ports:
        raise ConfigurationError(
            f"OUT_FM {out_fm} not a multiple of OUT_PORTS {out_ports}"
        )
    return (in_fm // in_ports, out_fm // out_ports)


@dataclass(frozen=True)
class PipelineSchedule:
    """A pipelined loop: initiation interval, pipeline depth, trip count."""

    ii: int
    depth: int
    trip_count: int

    def __post_init__(self) -> None:
        if self.ii < 1:
            raise ConfigurationError(f"II must be >= 1, got {self.ii}")
        if self.depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {self.depth}")
        if self.trip_count < 0:
            raise ConfigurationError(f"trip count must be >= 0, got {self.trip_count}")

    @property
    def latency(self) -> int:
        """Cycles from first input to last output."""
        if self.trip_count == 0:
            return 0
        return self.depth + self.ii * (self.trip_count - 1)

    @property
    def steady_interval(self) -> int:
        """Cycles between consecutive loop completions at steady state."""
        return self.ii

    def throughput(self, clock_hz: float) -> float:
        """Loop iterations per second at steady state."""
        return clock_hz / self.ii


def tree_depth(n: int) -> int:
    """Number of levels of a balanced binary reduction over ``n`` inputs."""
    if n < 1:
        raise ConfigurationError(f"tree over {n} inputs")
    return math.ceil(math.log2(n)) if n > 1 else 0
