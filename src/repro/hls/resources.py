"""FPGA resource vectors (FF / LUT / BRAM / DSP) and helpers.

:class:`ResourceVector` is the unit of account for the whole resource
model: operator tables produce them, core models sum them, and the device
model checks them against the chip budget (Table I's four columns).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ResourceVector:
    """Amounts of the four FPGA resource classes tracked by Table I.

    ``bram`` counts BRAM36 blocks (two BRAM18 = one BRAM36).
    """

    ff: float = 0.0
    lut: float = 0.0
    bram: float = 0.0
    dsp: float = 0.0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.ff + other.ff,
            self.lut + other.lut,
            self.bram + other.bram,
            self.dsp + other.dsp,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.ff - other.ff,
            self.lut - other.lut,
            self.bram - other.bram,
            self.dsp - other.dsp,
        )

    def __mul__(self, k: float) -> "ResourceVector":
        return ResourceVector(self.ff * k, self.lut * k, self.bram * k, self.dsp * k)

    __rmul__ = __mul__

    def fits_in(self, budget: "ResourceVector") -> bool:
        """Whether this usage is within ``budget`` on every class."""
        return (
            self.ff <= budget.ff
            and self.lut <= budget.lut
            and self.bram <= budget.bram
            and self.dsp <= budget.dsp
        )

    def utilization(self, budget: "ResourceVector") -> dict:
        """Fractional utilization per resource class (Table I rows)."""
        def frac(used: float, avail: float) -> float:
            if avail <= 0:
                raise ConfigurationError("budget has a non-positive resource class")
            return used / avail

        return {
            "ff": frac(self.ff, budget.ff),
            "lut": frac(self.lut, budget.lut),
            "bram": frac(self.bram, budget.bram),
            "dsp": frac(self.dsp, budget.dsp),
        }

    def rounded(self) -> "ResourceVector":
        """Round every class up to whole units (for final reporting)."""
        return ResourceVector(
            math.ceil(self.ff), math.ceil(self.lut), math.ceil(self.bram), math.ceil(self.dsp)
        )

    def as_dict(self) -> dict:
        return {"ff": self.ff, "lut": self.lut, "bram": self.bram, "dsp": self.dsp}


#: The zero vector, handy as a sum() start value.
ZERO = ResourceVector()


def bram36_for_words(words: int, width_bits: int = 32) -> int:
    """BRAM36 blocks needed to store ``words`` of ``width_bits`` each.

    A BRAM36 holds 36 Kib; usable capacity for 32-bit words is 1024 words
    (1Kx36 aspect). Small buffers below the LUTRAM threshold cost zero
    block RAM (Vivado maps them to distributed RAM).
    """
    if words < 0:
        raise ConfigurationError(f"words must be >= 0, got {words}")
    if words == 0:
        return 0
    if words * width_bits <= 1024:  # shallow FIFOs become LUTRAM/SRL
        return 0
    words_per_bram = (36 * 1024) // max(width_bits + width_bits // 8, 1)
    # 36Kb with parity lanes: for 32-bit data the practical depth is 1024.
    if width_bits == 32:
        words_per_bram = 1024
    return math.ceil(words / words_per_bram)
