"""Balanced tree adder: functional reduction + latency/resource model.

Section IV-A: "The multiplications results are then fed into a tree adder
(indicated by the reduce function) ... The tree adder is used in order to
improve the initial latency of the core, as it executes the additions on
parallel levels which decrease the pipeline depth."

The functional :func:`tree_reduce` performs the additions in the same
association order as the hardware tree, so the simulated cores round
exactly like the modeled datapath would; the cost model quantifies the
depth advantage over a sequential adder chain (ablation A1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.config import DTYPE
from repro.errors import ConfigurationError
from repro.hls.ops import op_cost
from repro.hls.pipeline import tree_depth
from repro.hls.resources import ResourceVector


def tree_reduce(values: np.ndarray) -> np.ndarray:
    """Sum ``values`` along the last axis in balanced-tree order.

    Pairs adjacent elements level by level (odd element carried through),
    reproducing the floating-point rounding of the hardware adder tree.
    Works on any leading batch shape.
    """
    arr = np.asarray(values, dtype=DTYPE)
    n = arr.shape[-1]
    if n == 0:
        raise ConfigurationError("tree_reduce over an empty axis")
    if n & (n - 1):
        # Pad to the next power of two. At every level the carried odd
        # element then simply pairs with 0.0, and x + 0.0 == x, so the
        # values of the odd-carry tree are reproduced exactly while the
        # loop below stays branch-free.
        m = 1 << n.bit_length()
        pad = np.zeros(arr.shape[:-1] + (m - n,), dtype=arr.dtype)
        arr = np.concatenate([arr, pad], axis=-1)
        n = m
    while n > 1:
        # Adding two DTYPE arrays already rounds in DTYPE, so no astype
        # round trip is needed per level.
        arr = arr[..., 0::2] + arr[..., 1::2]
        n >>= 1
    return arr[..., 0]


@dataclass(frozen=True)
class AdderTreeModel:
    """Latency/resource model of an ``n``-input balanced adder tree."""

    n_inputs: int
    dtype: str = "float32"

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise ConfigurationError(f"adder tree over {self.n_inputs} inputs")

    @property
    def depth_levels(self) -> int:
        """Number of adder levels: ``ceil(log2(n))``."""
        return tree_depth(self.n_inputs)

    @property
    def latency(self) -> int:
        """Cycles from inputs to the single sum (levels x add latency)."""
        return self.depth_levels * op_cost("add", self.dtype).latency

    @property
    def n_adders(self) -> int:
        """Adder instances: ``n - 1`` regardless of shape."""
        return self.n_inputs - 1

    @property
    def resources(self) -> ResourceVector:
        """Total resources of the tree's adders."""
        return op_cost("add", self.dtype).resources * self.n_adders

    @property
    def chain_latency(self) -> int:
        """Latency of the sequential-chain alternative (ablation A1)."""
        return self.n_adders * op_cost("add", self.dtype).latency

    @property
    def depth_advantage(self) -> int:
        """Pipeline-depth cycles saved versus a sequential chain."""
        return self.chain_latency - self.latency


def chain_reduce(values: np.ndarray) -> np.ndarray:
    """Left-to-right sequential sum (float32), the ablation baseline."""
    arr = np.asarray(values, dtype=DTYPE)
    if arr.shape[-1] == 0:
        raise ConfigurationError("chain_reduce over an empty axis")
    acc = arr[..., 0]
    for i in range(1, arr.shape[-1]):
        acc = (acc + arr[..., i]).astype(DTYPE)
    return acc
