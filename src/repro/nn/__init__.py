"""From-scratch NumPy CNN library (training and golden-reference inference).

The software model of the paper's networks: vectorized conv/pool/linear
layers with backprop, an SGD trainer for the offline-training phase, the
Eq. 3 normalization, metrics and fixed-point quantization.
"""

from repro.nn.functional import col2im, conv2d, conv2d_naive, im2col
from repro.nn.layers import (
    Conv2D,
    Flatten,
    Layer,
    Linear,
    MaxPool2D,
    MeanPool2D,
    ReLU,
    Tanh,
    activation_fn,
    make_activation,
)
from repro.nn.losses import cross_entropy, log_softmax, softmax
from repro.nn.metrics import accuracy, confusion_matrix, top_k_accuracy
from repro.nn.network import Sequential
from repro.nn.quantize import (
    QuantizationReport,
    QuantizeActivations,
    quantize_network,
    with_quantized_activations,
)
from repro.nn.train import SGD, TrainResult, train_classifier

__all__ = [
    "Conv2D",
    "Flatten",
    "Layer",
    "Linear",
    "MaxPool2D",
    "MeanPool2D",
    "QuantizationReport",
    "QuantizeActivations",
    "ReLU",
    "SGD",
    "Sequential",
    "Tanh",
    "TrainResult",
    "accuracy",
    "activation_fn",
    "col2im",
    "confusion_matrix",
    "conv2d",
    "conv2d_naive",
    "cross_entropy",
    "im2col",
    "log_softmax",
    "make_activation",
    "quantize_network",
    "softmax",
    "top_k_accuracy",
    "train_classifier",
    "with_quantized_activations",
]
