"""Vectorized tensor primitives: im2col/col2im and direct convolution.

These are the hot paths of the functional library; following the
HPC-Python guidance they are fully vectorized (stride-trick window
extraction, a single matmul per conv) with no per-pixel Python loops.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.config import DTYPE
from repro.errors import ShapeError
from repro.sst.window import WindowSpec


def im2col(x: np.ndarray, spec: WindowSpec) -> np.ndarray:
    """Extract sliding windows of a batch into a column matrix.

    Parameters
    ----------
    x: ``(N, C, H, W)`` input batch.
    spec: window geometry.

    Returns
    -------
    ``(N, C * kh * kw, OH * OW)`` array; column ``(oy * OW + ox)`` holds the
    window at output coordinate ``(oy, ox)``, features ordered ``(c, r, s)``.
    """
    if x.ndim != 4:
        raise ShapeError(f"im2col expects (N, C, H, W), got {x.shape}")
    n, c, h, w = x.shape
    oh, ow = spec.out_shape(h, w)
    if spec.pad:
        x = np.pad(x, ((0, 0), (0, 0), (spec.pad, spec.pad), (spec.pad, spec.pad)))
    s = spec.stride
    # Windowed view: (N, C, OH, OW, kh, kw) without copying.
    sn, sc, sh, sw = x.strides
    shape = (n, c, oh, ow, spec.kh, spec.kw)
    strides = (sn, sc, sh * s, sw * s, sh, sw)
    windows = np.lib.stride_tricks.as_strided(
        x, shape=shape, strides=strides, writeable=False
    )
    # -> (N, C, kh, kw, OH, OW) -> (N, C*kh*kw, OH*OW)
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * spec.kh * spec.kw, oh * ow)
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray, x_shape: Tuple[int, int, int, int], spec: WindowSpec
) -> np.ndarray:
    """Scatter-add columns back to image space (adjoint of :func:`im2col`)."""
    n, c, h, w = x_shape
    oh, ow = spec.out_shape(h, w)
    hp, wp = h + 2 * spec.pad, w + 2 * spec.pad
    if cols.shape != (n, c * spec.kh * spec.kw, oh * ow):
        raise ShapeError(
            f"col2im expects {(n, c * spec.kh * spec.kw, oh * ow)}, got {cols.shape}"
        )
    out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(n, c, spec.kh, spec.kw, oh, ow)
    s = spec.stride
    for r in range(spec.kh):
        y_end = r + s * oh
        for q in range(spec.kw):
            x_end = q + s * ow
            out[:, :, r:y_end:s, q:x_end:s] += cols6[:, :, r, q]
    if spec.pad:
        out = out[:, :, spec.pad : hp - spec.pad, spec.pad : wp - spec.pad]
    return out


def conv2d(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray, spec: WindowSpec
) -> np.ndarray:
    """Batched 2-D convolution (cross-correlation, as in Eq. 1).

    Parameters
    ----------
    x: ``(N, C, H, W)`` input.
    weight: ``(K, C, kh, kw)`` filters.
    bias: ``(K,)`` biases.

    Returns
    -------
    ``(N, K, OH, OW)`` output volume (no nonlinearity).
    """
    if weight.ndim != 4:
        raise ShapeError(f"weight must be (K, C, kh, kw), got {weight.shape}")
    k, c, kh, kw = weight.shape
    if (kh, kw) != (spec.kh, spec.kw):
        raise ShapeError(f"weight kernel {kh}x{kw} != spec {spec.kh}x{spec.kw}")
    if x.shape[1] != c:
        raise ShapeError(f"input has {x.shape[1]} channels, weight expects {c}")
    if bias.shape != (k,):
        raise ShapeError(f"bias must be ({k},), got {bias.shape}")
    n, _, h, w = x.shape
    oh, ow = spec.out_shape(h, w)
    cols = im2col(x, spec)  # (N, C*kh*kw, OH*OW)
    wflat = weight.reshape(k, c * kh * kw)
    out = np.einsum("kf,nfp->nkp", wflat, cols, optimize=True)
    out += bias[None, :, None]
    return out.reshape(n, k, oh, ow).astype(DTYPE, copy=False)


def conv2d_naive(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray, spec: WindowSpec
) -> np.ndarray:
    """Loop-based reference convolution (tests only; O(everything))."""
    n, c, h, w = x.shape
    k = weight.shape[0]
    oh, ow = spec.out_shape(h, w)
    xp = np.pad(x, ((0, 0), (0, 0), (spec.pad, spec.pad), (spec.pad, spec.pad)))
    out = np.zeros((n, k, oh, ow), dtype=np.float64)
    for i in range(n):
        for f in range(k):
            for oy in range(oh):
                for ox in range(ow):
                    ys, xs = oy * spec.stride, ox * spec.stride
                    patch = xp[i, :, ys : ys + spec.kh, xs : xs + spec.kw]
                    out[i, f, oy, ox] = np.sum(patch * weight[f]) + bias[f]
    return out.astype(DTYPE)
