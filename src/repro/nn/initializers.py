"""Weight initialization schemes."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.config import DTYPE
from repro.errors import ConfigurationError


def _fans(shape: Sequence[int]) -> Tuple[int, int]:
    """(fan_in, fan_out) for dense (out, in) or conv (K, C, KH, KW) shapes."""
    if len(shape) == 2:
        out_f, in_f = shape
        return in_f, out_f
    if len(shape) == 4:
        k, c, kh, kw = shape
        return c * kh * kw, k * kh * kw
    raise ConfigurationError(f"unsupported weight shape {tuple(shape)}")


def glorot_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform init, suited to tanh networks (LeNet-style)."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(DTYPE)


def he_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He normal init, suited to ReLU networks."""
    fan_in, _ = _fans(shape)
    return (rng.standard_normal(shape) * np.sqrt(2.0 / fan_in)).astype(DTYPE)


def zeros(shape: Sequence[int]) -> np.ndarray:
    """All-zero init (biases)."""
    return np.zeros(shape, dtype=DTYPE)
