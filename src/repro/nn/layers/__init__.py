"""Layer implementations for the NumPy CNN library."""

from repro.nn.layers.activation import ReLU, Tanh, activation_fn, make_activation
from repro.nn.layers.base import Layer
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.linear import Linear
from repro.nn.layers.pool import MaxPool2D, MeanPool2D

__all__ = [
    "Conv2D",
    "Flatten",
    "Layer",
    "Linear",
    "MaxPool2D",
    "MeanPool2D",
    "ReLU",
    "Tanh",
    "activation_fn",
    "make_activation",
]
