"""Elementwise nonlinearities: tanh and ReLU (Section II-A's examples)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.config import DTYPE
from repro.errors import ShapeError
from repro.nn.layers.base import Layer


class Tanh(Layer):
    """Hyperbolic tangent activation (the classic LeNet choice)."""

    kind = "tanh"

    def __init__(self) -> None:
        self._cache: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        y = np.tanh(x).astype(DTYPE, copy=False)
        if train:
            self._cache = y
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("backward called before forward(train=True)")
        y = self._cache
        return (grad_out * (1.0 - y * y)).astype(DTYPE, copy=False)

    def out_shape(self, in_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return in_shape


class ReLU(Layer):
    """Rectified linear unit, ``max(0, x)``."""

    kind = "relu"

    def __init__(self) -> None:
        self._cache: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if train:
            self._cache = x > 0
        return np.maximum(x, 0).astype(DTYPE, copy=False)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("backward called before forward(train=True)")
        return (grad_out * self._cache).astype(DTYPE, copy=False)

    def out_shape(self, in_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return in_shape


def activation_fn(name: Optional[str]):
    """Scalar/ndarray activation callable by name (for dataflow cores)."""
    if name is None or name == "identity":
        return lambda v: v
    if name == "tanh":
        return lambda v: np.tanh(v).astype(DTYPE, copy=False)
    if name == "relu":
        return lambda v: np.maximum(v, 0).astype(DTYPE, copy=False)
    raise ValueError(f"unknown activation {name!r}")


def make_activation(name: Optional[str]) -> Optional[Layer]:
    """Layer instance by name (``None``/``"identity"`` -> no layer)."""
    if name is None or name == "identity":
        return None
    if name == "tanh":
        return Tanh()
    if name == "relu":
        return ReLU()
    raise ValueError(f"unknown activation {name!r}")
