"""Layer protocol for the NumPy CNN library.

Every layer implements ``forward`` / ``backward`` on batched tensors and
exposes its parameters and gradients by name so optimizers can update them
generically. Convention: feature tensors are ``(N, C, H, W)``; flattened
activations are ``(N, F)``.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import ShapeError


class Layer:
    """Base class: stateless by default, parameterized layers override."""

    #: Human-readable type tag used in network summaries.
    kind: str = "layer"

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        """Compute the layer output; caches what backward needs if ``train``."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Given dL/d(output), accumulate parameter grads, return dL/d(input)."""
        raise NotImplementedError

    def params(self) -> Dict[str, np.ndarray]:
        """Trainable parameter arrays by name (possibly empty)."""
        return {}

    def grads(self) -> Dict[str, np.ndarray]:
        """Gradient arrays matching :meth:`params` keys."""
        return {}

    def out_shape(self, in_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Output shape (without batch) for a given input shape."""
        raise NotImplementedError

    def n_params(self) -> int:
        """Total trainable scalars."""
        return int(sum(p.size for p in self.params().values()))

    def _require_4d(self, x: np.ndarray) -> None:
        if x.ndim != 4:
            raise ShapeError(
                f"{type(self).__name__} expects (N, C, H, W) input, got {x.shape}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
