"""Convolutional layer (Eq. 1) with im2col forward/backward."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.config import DTYPE
from repro.errors import ShapeError
from repro.nn.functional import col2im, im2col
from repro.nn.initializers import glorot_uniform, zeros
from repro.nn.layers.base import Layer
from repro.sst.window import WindowSpec


class Conv2D(Layer):
    """2-D convolution layer: ``(N, C, H, W) -> (N, K, OH, OW)``.

    Parameters
    ----------
    in_channels, out_channels: C and K of Eq. 1.
    kh, kw: kernel size.
    stride, pad: the paper's hyper-parameters S and P.
    rng: generator for weight init (required unless weights are set later).
    """

    kind = "conv"

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kh: int,
        kw: Optional[int] = None,
        stride: int = 1,
        pad: int = 0,
        rng: Optional[np.random.Generator] = None,
    ):
        kw = kh if kw is None else kw
        self.spec = WindowSpec(kh, kw, stride, pad)
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        rng = rng or np.random.default_rng(0)
        self.weight = glorot_uniform(
            (out_channels, in_channels, kh, kw), rng
        )
        self.bias = zeros((out_channels,))
        self.dweight = np.zeros_like(self.weight)
        self.dbias = np.zeros_like(self.bias)
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, int, int, int]]] = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        self._require_4d(x)
        if x.shape[1] != self.in_channels:
            raise ShapeError(
                f"conv expects {self.in_channels} channels, got {x.shape[1]}"
            )
        n, _, h, w = x.shape
        oh, ow = self.spec.out_shape(h, w)
        cols = im2col(x, self.spec)
        k = self.out_channels
        wflat = self.weight.reshape(k, -1)
        out = np.einsum("kf,nfp->nkp", wflat, cols, optimize=True)
        out += self.bias[None, :, None]
        if train:
            self._cache = (cols, x.shape)
        return out.reshape(n, k, oh, ow).astype(DTYPE, copy=False)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("backward called before forward(train=True)")
        cols, x_shape = self._cache
        n, k = grad_out.shape[:2]
        g = grad_out.reshape(n, k, -1)  # (N, K, P)
        self.dweight[...] = np.einsum("nkp,nfp->kf", g, cols, optimize=True).reshape(
            self.weight.shape
        )
        self.dbias[...] = g.sum(axis=(0, 2))
        wflat = self.weight.reshape(k, -1)
        dcols = np.einsum("kf,nkp->nfp", wflat, g, optimize=True)
        return col2im(dcols.astype(DTYPE), x_shape, self.spec)

    def params(self) -> Dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    def grads(self) -> Dict[str, np.ndarray]:
        return {"weight": self.dweight, "bias": self.dbias}

    def out_shape(self, in_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = in_shape
        if c != self.in_channels:
            raise ShapeError(f"conv expects {self.in_channels} channels, got {c}")
        oh, ow = self.spec.out_shape(h, w)
        return (self.out_channels, oh, ow)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Conv2D({self.in_channels}->{self.out_channels}, "
            f"{self.spec.describe()})"
        )
