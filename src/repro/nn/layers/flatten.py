"""Flatten layer bridging the feature extractor and the classifier.

Flattening order is ``(H, W, C)`` raster-major with channels innermost —
the same pixel-major, FM-minor order in which the dataflow pipeline streams
activations into the FC core, so functional and simulated classifiers see
identical input vectors.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.nn.layers.base import Layer


class Flatten(Layer):
    """``(N, C, H, W) -> (N, H*W*C)`` with channels innermost."""

    kind = "flatten"

    def __init__(self) -> None:
        self._cache: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        self._require_4d(x)
        if train:
            self._cache = x.shape
        n = x.shape[0]
        return np.ascontiguousarray(x.transpose(0, 2, 3, 1)).reshape(n, -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("backward called before forward(train=True)")
        n, c, h, w = self._cache
        return np.ascontiguousarray(
            grad_out.reshape(n, h, w, c).transpose(0, 3, 1, 2)
        )

    def out_shape(self, in_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = in_shape
        return (c * h * w,)
