"""Fully-connected (linear / perceptron) layer — Eq. 2."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.config import DTYPE
from repro.errors import ShapeError
from repro.nn.initializers import glorot_uniform, zeros
from repro.nn.layers.base import Layer


class Linear(Layer):
    """Dense layer: ``(N, in_features) -> (N, out_features)``.

    Weight layout is ``(out_features, in_features)`` so a row holds one
    perceptron's weights (matches how the FC core streams them).
    """

    kind = "linear"

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
    ):
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        rng = rng or np.random.default_rng(0)
        self.weight = glorot_uniform((out_features, in_features), rng)
        self.bias = zeros((out_features,))
        self.dweight = np.zeros_like(self.weight)
        self.dbias = np.zeros_like(self.bias)
        self._cache: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"linear expects (N, {self.in_features}), got {x.shape}"
            )
        if train:
            self._cache = x
        return (x @ self.weight.T + self.bias).astype(DTYPE, copy=False)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("backward called before forward(train=True)")
        x = self._cache
        self.dweight[...] = grad_out.T @ x
        self.dbias[...] = grad_out.sum(axis=0)
        return (grad_out @ self.weight).astype(DTYPE, copy=False)

    def params(self) -> Dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    def grads(self) -> Dict[str, np.ndarray]:
        return {"weight": self.dweight, "bias": self.dbias}

    def out_shape(self, in_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if in_shape != (self.in_features,):
            raise ShapeError(f"linear expects ({self.in_features},), got {in_shape}")
        return (self.out_features,)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Linear({self.in_features}->{self.out_features})"
