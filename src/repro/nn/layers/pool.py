"""Sub-sampling (pooling) layers: max-pooling and mean-pooling.

Section II-A: the sub-sampling layer applies its filter on each channel
separately, substituting each input submatrix with its maximum (max-pooling)
or its mean (mean-pooling).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.config import DTYPE
from repro.errors import ShapeError
from repro.nn.functional import col2im, im2col
from repro.nn.layers.base import Layer
from repro.sst.window import WindowSpec


class _Pool2D(Layer):
    """Shared machinery: per-channel im2col over a stride-``s`` window."""

    def __init__(self, kh: int = 2, kw: Optional[int] = None, stride: Optional[int] = None):
        kw = kh if kw is None else kw
        stride = kh if stride is None else stride
        self.spec = WindowSpec(kh, kw, stride, pad=0)
        self._cache = None

    def _window_cols(self, x: np.ndarray) -> np.ndarray:
        """(N*C, kh*kw, P) windows treating channels as batch entries."""
        n, c, h, w = x.shape
        return im2col(x.reshape(n * c, 1, h, w), self.spec)

    def out_shape(self, in_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = in_shape
        oh, ow = self.spec.out_shape(h, w)
        return (c, oh, ow)


class MaxPool2D(_Pool2D):
    """Max-pooling; default 2x2 window with stride 2 (the paper's layers)."""

    kind = "maxpool"

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        self._require_4d(x)
        n, c, h, w = x.shape
        oh, ow = self.spec.out_shape(h, w)
        cols = self._window_cols(x)  # (N*C, kh*kw, P)
        idx = np.argmax(cols, axis=1)  # (N*C, P)
        out = np.take_along_axis(cols, idx[:, None, :], axis=1)[:, 0, :]
        if train:
            self._cache = (idx, x.shape)
        return out.reshape(n, c, oh, ow).astype(DTYPE, copy=False)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("backward called before forward(train=True)")
        idx, x_shape = self._cache
        n, c, h, w = x_shape
        p = idx.shape[1]
        dcols = np.zeros((n * c, self.spec.kh * self.spec.kw, p), dtype=DTYPE)
        np.put_along_axis(
            dcols, idx[:, None, :], grad_out.reshape(n * c, 1, p), axis=1
        )
        dx = col2im(dcols, (n * c, 1, h, w), self.spec)
        return dx.reshape(n, c, h, w)

    def __repr__(self) -> str:  # pragma: no cover
        return f"MaxPool2D({self.spec.describe()})"


class MeanPool2D(_Pool2D):
    """Mean-pooling over each window."""

    kind = "meanpool"

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        self._require_4d(x)
        n, c, h, w = x.shape
        oh, ow = self.spec.out_shape(h, w)
        cols = self._window_cols(x)
        out = cols.mean(axis=1)
        if train:
            self._cache = x.shape
        return out.reshape(n, c, oh, ow).astype(DTYPE, copy=False)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("backward called before forward(train=True)")
        x_shape = self._cache
        n, c, h, w = x_shape
        p = grad_out.shape[2] * grad_out.shape[3]
        kk = self.spec.kh * self.spec.kw
        dcols = np.repeat(
            grad_out.reshape(n * c, 1, p) / kk, kk, axis=1
        ).astype(DTYPE)
        dx = col2im(dcols, (n * c, 1, h, w), self.spec)
        return dx.reshape(n, c, h, w)

    def __repr__(self) -> str:  # pragma: no cover
        return f"MeanPool2D({self.spec.describe()})"
