"""Log-softmax normalization (Eq. 3) and the cross-entropy training loss."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.config import DTYPE
from repro.errors import ShapeError


def log_softmax(x: np.ndarray) -> np.ndarray:
    """Numerically stable log-softmax along the last axis.

    ``exp`` of this is the paper's normalization operator sigma (Eq. 3):
    values in [0, 1] summing to 1 per row.
    """
    shifted = x - np.max(x, axis=-1, keepdims=True)
    return (shifted - np.log(np.sum(np.exp(shifted), axis=-1, keepdims=True))).astype(
        DTYPE, copy=False
    )


def softmax(x: np.ndarray) -> np.ndarray:
    """Eq. 3 exactly: class-affinity probabilities along the last axis."""
    return np.exp(log_softmax(x))


def cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean NLL of ``labels`` under ``softmax(logits)`` and its gradient.

    Parameters
    ----------
    logits: ``(N, K)`` raw scores.
    labels: ``(N,)`` integer class labels in ``[0, K)``.

    Returns
    -------
    ``(loss, dlogits)`` where ``dlogits`` is the gradient with respect to
    ``logits`` (already divided by the batch size).
    """
    if logits.ndim != 2:
        raise ShapeError(f"logits must be (N, K), got {logits.shape}")
    n, k = logits.shape
    labels = np.asarray(labels)
    if labels.shape != (n,):
        raise ShapeError(f"labels must be ({n},), got {labels.shape}")
    if labels.min() < 0 or labels.max() >= k:
        raise ShapeError(f"labels out of range [0, {k})")
    logp = log_softmax(logits)
    loss = float(-logp[np.arange(n), labels].mean())
    grad = np.exp(logp)
    grad[np.arange(n), labels] -= 1.0
    grad /= n
    return loss, grad.astype(DTYPE, copy=False)
