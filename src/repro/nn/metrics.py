"""Classification metrics."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of exact matches between predictions and labels."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ShapeError(
            f"shape mismatch: predictions {predictions.shape} vs labels {labels.shape}"
        )
    if predictions.size == 0:
        raise ShapeError("accuracy of an empty prediction set")
    return float(np.mean(predictions == labels))


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, n_classes: int
) -> np.ndarray:
    """``(n_classes, n_classes)`` counts; rows = true class, cols = predicted."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ShapeError(
            f"shape mismatch: predictions {predictions.shape} vs labels {labels.shape}"
        )
    m = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(m, (labels, predictions), 1)
    return m


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose true class is in the top ``k`` logits."""
    if logits.ndim != 2:
        raise ShapeError(f"logits must be (N, K), got {logits.shape}")
    if k < 1 or k > logits.shape[1]:
        raise ShapeError(f"k must be in [1, {logits.shape[1]}], got {k}")
    topk = np.argpartition(-logits, k - 1, axis=1)[:, :k]
    return float(np.mean(np.any(topk == np.asarray(labels)[:, None], axis=1)))
