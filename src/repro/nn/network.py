"""Sequential network container: the software model a design is trained as.

A :class:`Sequential` chains layers exactly like the paper's CNN structure
(Figure 1): feature extraction (conv / pool / activation), a flatten, then
the classifier's linear layers; the normalization operator (Eq. 3) is
applied by :meth:`predict_proba` rather than stored as a layer, matching
how the paper's designs end at the last linear layer's logits.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.nn.layers.base import Layer
from repro.nn.losses import softmax


class Sequential:
    """An ordered chain of layers with shared forward/backward plumbing."""

    def __init__(self, layers: Sequence[Layer], in_shape: Tuple[int, ...]):
        self.layers: List[Layer] = list(layers)
        self.in_shape = tuple(in_shape)
        # Pre-validate shape propagation once; raises early on mismatch.
        self.shapes = [self.in_shape]
        for layer in self.layers:
            self.shapes.append(layer.out_shape(self.shapes[-1]))

    @property
    def out_shape(self) -> Tuple[int, ...]:
        """Shape of the network output (per sample)."""
        return self.shapes[-1]

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        """Run the full chain; ``train=True`` caches for backward."""
        if tuple(x.shape[1:]) != self.in_shape:
            raise ShapeError(
                f"network expects per-sample shape {self.in_shape}, got {x.shape[1:]}"
            )
        for layer in self.layers:
            x = layer.forward(x, train=train)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad`` through the chain (reverse order)."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities (Eq. 3 applied to the logits)."""
        return softmax(self.forward(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard class predictions."""
        return np.argmax(self.forward(x), axis=-1)

    def n_params(self) -> int:
        """Total trainable scalars across all layers."""
        return sum(layer.n_params() for layer in self.layers)

    def parameters(self):
        """Yield ``(layer_index, name, param, grad)`` for every parameter."""
        for i, layer in enumerate(self.layers):
            grads = layer.grads()
            for name, p in layer.params().items():
                yield i, name, p, grads[name]

    def state_dict(self) -> dict:
        """All parameters as ``{"<layer_index>.<name>": array}`` copies."""
        return {
            f"{i}.{name}": p.copy() for i, name, p, _ in self.parameters()
        }

    def load_state_dict(self, state: dict) -> None:
        """Load parameters saved by :meth:`state_dict` (strict matching)."""
        own = {f"{i}.{name}": p for i, name, p, _ in self.parameters()}
        if set(own) != set(state):
            missing = set(own) - set(state)
            extra = set(state) - set(own)
            raise ShapeError(
                f"state dict mismatch (missing {sorted(missing)}, "
                f"unexpected {sorted(extra)})"
            )
        for key, p in own.items():
            arr = np.asarray(state[key])
            if arr.shape != p.shape:
                raise ShapeError(
                    f"parameter {key!r}: shape {arr.shape} != {p.shape}"
                )
            p[...] = arr

    def summary(self) -> str:
        """Multi-line human-readable structure dump."""
        lines = [f"Sequential(in={self.in_shape})"]
        for i, layer in enumerate(self.layers):
            lines.append(
                f"  [{i}] {layer!r}: {self.shapes[i]} -> {self.shapes[i + 1]} "
                f"({layer.n_params()} params)"
            )
        lines.append(f"  total params: {self.n_params()}")
        return "\n".join(lines)
