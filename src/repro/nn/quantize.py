"""Post-training fixed-point quantization (the paper's integer path).

Section IV-B notes the floating-point accumulation-latency problem "does
not arise when using integer values, and will be subject to further study";
this module is that study: quantize a trained float network's weights,
biases and activations to an ``ap_fixed`` format and evaluate the accuracy
impact, so the fixed-point benchmarks can compare accuracy/resources
against the float32 designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.config import DTYPE
from repro.errors import ConfigurationError
from repro.hls.datatypes import FixedPointFormat
from repro.nn.layers.base import Layer
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.linear import Linear
from repro.nn.network import Sequential


@dataclass(frozen=True)
class QuantizationReport:
    """Summary of one quantization pass."""

    fmt: str
    max_weight_error: float
    n_quantized_layers: int


def quantize_network(net: Sequential, fmt: FixedPointFormat) -> QuantizationReport:
    """Quantize all Conv2D/Linear weights and biases of ``net`` in place.

    Every parameter is rounded to the nearest representable value of
    ``fmt`` (saturating), exactly what baking them into fixed-point
    on-chip ROMs would do.
    """
    max_err = 0.0
    count = 0
    for layer in net.layers:
        if isinstance(layer, (Conv2D, Linear)):
            for p in (layer.weight, layer.bias):
                err = fmt.quantization_error(p)
                max_err = max(max_err, err)
                p[...] = fmt.quantize(p).astype(DTYPE)
            count += 1
    if count == 0:
        raise ConfigurationError("network has no quantizable layers")
    return QuantizationReport(fmt.describe(), max_err, count)


class QuantizeActivations(Layer):
    """Inference-only layer rounding activations to a fixed-point format.

    Insert after every compute layer to emulate a datapath whose stream
    values are ``fmt``-typed end to end.
    """

    kind = "quant"

    def __init__(self, fmt: FixedPointFormat):
        self.fmt = fmt

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        return self.fmt.quantize(x).astype(DTYPE)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        # Straight-through estimator; quantized nets here are inference-only
        # but a pass-through keeps the layer usable in a training chain.
        return grad_out

    def out_shape(self, in_shape):
        return in_shape


def with_quantized_activations(
    net: Sequential, fmt: FixedPointFormat
) -> Sequential:
    """A new network interleaving activation quantization after each layer."""
    layers: List[Layer] = []
    for layer in net.layers:
        layers.append(layer)
        layers.append(QuantizeActivations(fmt))
    return Sequential(layers, net.in_shape)
