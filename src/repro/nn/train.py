"""SGD training loop for the offline-training phase.

The paper trains its networks offline and hard-codes the weights into the
hardware design; this module is that offline phase. Plain mini-batch SGD
with momentum is enough for the small LeNet-style networks involved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import TrainingError
from repro.nn.losses import cross_entropy
from repro.nn.metrics import accuracy
from repro.nn.network import Sequential


class SGD:
    """Mini-batch SGD with classical momentum."""

    def __init__(self, net: Sequential, lr: float = 0.05, momentum: float = 0.9):
        if lr <= 0:
            raise TrainingError(f"learning rate must be positive, got {lr}")
        if not (0.0 <= momentum < 1.0):
            raise TrainingError(f"momentum must be in [0, 1), got {momentum}")
        self.net = net
        self.lr = float(lr)
        self.momentum = float(momentum)
        self._velocity: Dict[Tuple[int, str], np.ndarray] = {}

    def step(self) -> None:
        """Apply one update using the gradients currently stored in layers."""
        for i, name, p, g in self.net.parameters():
            key = (i, name)
            v = self._velocity.get(key)
            if v is None:
                v = np.zeros_like(p)
                self._velocity[key] = v
            v *= self.momentum
            v -= self.lr * g
            p += v


@dataclass
class TrainResult:
    """History of one training run."""

    losses: List[float] = field(default_factory=list)
    train_accuracies: List[float] = field(default_factory=list)
    test_accuracy: Optional[float] = None

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise TrainingError("no epochs were run")
        return self.losses[-1]


def train_classifier(
    net: Sequential,
    x_train: np.ndarray,
    y_train: np.ndarray,
    epochs: int = 5,
    batch_size: int = 32,
    lr: float = 0.05,
    momentum: float = 0.9,
    x_test: Optional[np.ndarray] = None,
    y_test: Optional[np.ndarray] = None,
    seed: int = 0,
    verbose: bool = False,
    lr_decay: float = 1.0,
    lr_decay_every: int = 1,
    patience: Optional[int] = None,
    min_improvement: float = 1e-4,
) -> TrainResult:
    """Train ``net`` with cross-entropy on ``(x_train, y_train)``.

    Returns the per-epoch loss/accuracy history; if a test set is given,
    fills ``test_accuracy`` with the final held-out accuracy.

    Parameters
    ----------
    lr_decay, lr_decay_every:
        Step learning-rate schedule: every ``lr_decay_every`` epochs the
        rate is multiplied by ``lr_decay`` (1.0 = constant).
    patience:
        Early stopping: stop when the epoch loss has not improved by at
        least ``min_improvement`` for ``patience`` consecutive epochs.
        ``None`` disables it.
    """
    if len(x_train) != len(y_train):
        raise TrainingError(
            f"x/y length mismatch: {len(x_train)} vs {len(y_train)}"
        )
    if epochs < 1 or batch_size < 1:
        raise TrainingError("epochs and batch_size must be >= 1")
    if not (0.0 < lr_decay <= 1.0):
        raise TrainingError(f"lr_decay must be in (0, 1], got {lr_decay}")
    if lr_decay_every < 1:
        raise TrainingError(f"lr_decay_every must be >= 1, got {lr_decay_every}")
    if patience is not None and patience < 1:
        raise TrainingError(f"patience must be >= 1, got {patience}")
    opt = SGD(net, lr=lr, momentum=momentum)
    rng = np.random.default_rng(seed)
    n = len(x_train)
    result = TrainResult()
    best_loss = float("inf")
    stalled = 0
    for epoch in range(epochs):
        if epoch and lr_decay < 1.0 and epoch % lr_decay_every == 0:
            opt.lr *= lr_decay
        order = rng.permutation(n)
        epoch_loss = 0.0
        batches = 0
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            logits = net.forward(x_train[idx], train=True)
            loss, grad = cross_entropy(logits, y_train[idx])
            if not np.isfinite(loss):
                raise TrainingError(
                    f"non-finite loss at epoch {epoch}, batch {batches}"
                )
            net.backward(grad)
            opt.step()
            epoch_loss += loss
            batches += 1
        result.losses.append(epoch_loss / batches)
        result.train_accuracies.append(accuracy(net.predict(x_train), y_train))
        if verbose:  # pragma: no cover - console output
            print(
                f"epoch {epoch}: loss={result.losses[-1]:.4f} "
                f"acc={result.train_accuracies[-1]:.3f} lr={opt.lr:.4f}"
            )
        if patience is not None:
            if result.losses[-1] < best_loss - min_improvement:
                best_loss = result.losses[-1]
                stalled = 0
            else:
                stalled += 1
                if stalled >= patience:
                    break
    if x_test is not None and y_test is not None:
        result.test_accuracy = accuracy(net.predict(x_test), y_test)
    return result
