"""Observability: native performance counters -> measured-vs-predicted.

The counters themselves live in the dataflow layer
(:mod:`repro.dataflow.counters`, maintained natively by both schedulers
with no per-cycle callback); this package turns them into a
:class:`ProfileReport` — measured II per compute core cross-checked
against Eq. 4, steady-state throughput, fill/drain latency, bottleneck
attribution — and renders it as text, JSON, or a Chrome trace. Exposed
on the command line as ``repro profile``.
"""

from repro.profiling.chrome import chrome_trace, chrome_trace_json, write_chrome_trace
from repro.profiling.profiler import II_TOLERANCE, INTERVAL_TOLERANCE, profile_design
from repro.profiling.report import ProfileReport

__all__ = [
    "II_TOLERANCE",
    "INTERVAL_TOLERANCE",
    "ProfileReport",
    "chrome_trace",
    "chrome_trace_json",
    "profile_design",
    "write_chrome_trace",
]
