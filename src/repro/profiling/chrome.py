"""Chrome-trace (``chrome://tracing`` / Perfetto JSON) emission.

Builds the trace entirely from the profile's native counters: channel
activity spans come from the first/last beat stamps and actor rows from
process lifetimes — no per-cycle data needed. When the profile ran with
the high-resolution :class:`~repro.dataflow.trace.Tracer` backend
attached, sampled channel occupancies are added as counter ("C") tracks.

Timestamps are simulation cycles (1 cycle = 1 us in the viewer's eyes;
only relative spans matter).
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.profiling.report import ProfileReport

#: Trace pid used for channel activity rows.
PID_CHANNELS = 0
#: Trace pid used for actor process rows.
PID_ACTORS = 1


def chrome_trace(report: ProfileReport) -> Dict[str, object]:
    """The profile as a Chrome trace-event document (a plain dict)."""
    events: List[dict] = []
    events.append(
        {
            "ph": "M", "pid": PID_CHANNELS, "name": "process_name",
            "args": {"name": f"{report.design_name} channels"},
        }
    )
    events.append(
        {
            "ph": "M", "pid": PID_ACTORS, "name": "process_name",
            "args": {"name": f"{report.design_name} actors"},
        }
    )

    for tid, name in enumerate(sorted(report.channel_stats)):
        st = report.channel_stats[name]
        events.append(
            {
                "ph": "M", "pid": PID_CHANNELS, "tid": tid,
                "name": "thread_name", "args": {"name": name},
            }
        )
        first = st["first_push_cycle"]
        if first < 0:
            continue  # channel never carried a beat
        last = max(st["last_pop_cycle"], st["last_push_cycle"])
        events.append(
            {
                "ph": "X", "pid": PID_CHANNELS, "tid": tid,
                "name": name, "cat": "channel",
                "ts": first, "dur": max(last - first, 1),
                "args": st,
            }
        )

    for tid, actor in enumerate(sorted(report.actor_stats)):
        events.append(
            {
                "ph": "M", "pid": PID_ACTORS, "tid": tid,
                "name": "thread_name", "args": {"name": actor},
            }
        )
        for k, proc in enumerate(report.actor_stats[actor]):
            if proc["lifetime"] <= 0:
                continue
            events.append(
                {
                    "ph": "X", "pid": PID_ACTORS, "tid": tid,
                    "name": f"{actor}[{k}]", "cat": "actor",
                    "ts": 0, "dur": proc["lifetime"],
                    "args": proc,
                }
            )

    tracer = report.tracer
    if tracer is not None and getattr(tracer, "cycles", None):
        for name in sorted(tracer.occupancy):
            samples = tracer.occupancy[name]
            for cycle, occ in zip(tracer.cycles, samples):
                events.append(
                    {
                        "ph": "C", "pid": PID_CHANNELS,
                        "name": f"occ:{name}", "ts": cycle,
                        "args": {"occupancy": occ},
                    }
                )

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(report: ProfileReport, path: str) -> None:
    """Serialise :func:`chrome_trace` to ``path``."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(report), fh)


def chrome_trace_json(report: ProfileReport) -> str:
    """The trace document as a JSON string (tests, piping)."""
    return json.dumps(chrome_trace(report))


__all__ = ["chrome_trace", "chrome_trace_json", "write_chrome_trace"]
