"""Profile a design: simulate, read native counters, cross-check Eq. 4.

The measured initiation interval comes from a counter identity rather
than sampling: each compute-core process performs exactly one productive
beat per non-stalled cycle of its life, and each core process touches
each output coordinate once per group. Hence

    measured II = max over the core's processes of
                  fires / (output coordinates x images)

equals ``max(IN_FM/IN_PORTS, OUT_FM/OUT_PORTS)`` (Eq. 4) exactly when
the implementation sustains the paper's per-core rate — independent of
where the pipeline bottleneck sits, because stalled cycles (empty
inputs, full outputs, gate backpressure, fixed-latency waits) are
excluded from ``fires``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.analysis.diagnostics import AnalysisReport, Severity, make
from repro.core.builder import build_network, random_weights
from repro.core.block_transform import design_is_blocked
from repro.core.layer_spec import ConvLayerSpec, FCLayerSpec
from repro.core.network_design import NetworkDesign
from repro.core.perf_model import network_perf
from repro.dataflow.trace import Tracer, counter_busy_fractions
from repro.errors import ConfigurationError
from repro.faults.harness import PILOT_WEIGHT_LIMIT, pilot_design
from repro.profiling.report import ProfileReport

#: Relative II error above which PROFILE.II_MISMATCH is an error.
II_TOLERANCE = 0.05
#: Relative pipeline-interval error above which a warning is issued.
INTERVAL_TOLERANCE = 0.10


def _core_coords(placement) -> int:
    """Output coordinates one core process walks per image.

    Blocked convolutions walk every tile coordinate, including the
    overhang positions of boundary tiles that the merge stage later
    drops, so the measured-II identity must divide by the tile count
    rather than the raster output area.
    """
    spec = placement.spec
    if isinstance(spec, FCLayerSpec):
        return 1
    if isinstance(spec, ConvLayerSpec):
        plan = spec.block_plan(placement.in_shape[1], placement.in_shape[2])
        if plan is not None:
            return plan.coords
    _k, oh, ow = placement.out_shape
    return oh * ow


def _stage_of_actor(name: str) -> str:
    """Map an actor name to its pipeline stage (layer or DMA endpoint)."""
    if name == "dma_in" or name.startswith("dma_in."):
        return "dma_in"
    if name.startswith("dma_out"):
        return "dma_out"
    return name.split(".", 1)[0]


def profile_design(
    design: NetworkDesign,
    images: int = 3,
    seed: int = 0,
    scheduler: str = "event",
    loop_overhead: int = 0,
    sample_every: Optional[int] = None,
    pilot: Optional[bool] = None,
    max_cycles: int = 50_000_000,
    tolerance: float = II_TOLERANCE,
    multi_plan=None,
) -> ProfileReport:
    """Simulate ``design`` and return its :class:`ProfileReport`.

    Weights and inputs are derived from ``seed`` alone (same recipe as
    the fault harness, so profile and faultsim runs are comparable).
    Designs above the pilot weight limit are profiled as their
    deterministic pilot downscale unless ``pilot=False`` forces the full
    design. ``sample_every`` attaches the high-resolution
    :class:`~repro.dataflow.trace.Tracer` backend (disables the event
    engine's bulk cycle-skipping; counters are unaffected).

    ``multi_plan`` profiles the *sharded* co-simulation of a
    :class:`~repro.core.multi_fpga.MultiFpgaPlan`: the link stages enter
    the Eq. 4 interval cross-check (``interval_predicted`` becomes the
    plan interval, which races the link streams against the layer
    stages) and the link actors show up in the per-stage bottleneck
    attribution as ``link{d}``. The per-core II identity is untouched —
    cutting the pipeline never changes productive fire counts.
    """
    if pilot or (
        pilot is None
        and design.weight_count() > PILOT_WEIGHT_LIMIT
        and not design_is_blocked(design)
    ):
        if multi_plan is not None:
            raise ConfigurationError(
                "multi_plan profiles the full design; pass pilot=False "
                "(a plan names the real layers, not the pilot downscale)"
            )
        sim_design, piloted = pilot_design(design), True
    else:
        sim_design, piloted = design, False
    weights = random_weights(sim_design, seed=seed)
    rng = np.random.default_rng(seed)
    batch = rng.uniform(
        0, 1, (images,) + sim_design.input_shape
    ).astype(np.float32)
    built = build_network(
        sim_design, weights, batch, loop_overhead=loop_overhead,
        multi_plan=multi_plan,
    )
    tracer = Tracer(sample_every) if sample_every else None
    result = built.run(
        max_cycles=max_cycles, tracer=tracer, scheduler=scheduler
    )
    perf = network_perf(sim_design, loop_overhead=float(loop_overhead))

    analysis = AnalysisReport(design_name=sim_design.name)
    analysis.note_rule("PROFILE.II_MISMATCH")

    # -- per-core measured II vs Eq. 4 ----------------------------------
    cores: List[dict] = []
    for placement in sim_design.placements:
        spec = placement.spec
        coords = _core_coords(placement)
        prefix = f"{spec.name}.core"
        for actor in sorted(result.actor_stats):
            if not (actor == prefix or actor.startswith(prefix)):
                continue
            procs = result.actor_stats[actor]
            fires = max(p["fires"] for p in procs)
            measured = fires / (coords * images)
            predicted = float(spec.ii)
            rel_err = abs(measured - predicted) / predicted
            within = rel_err <= tolerance
            cores.append(
                {
                    "layer": spec.name,
                    "actor": actor,
                    "kind": spec.kind,
                    "coords": coords,
                    "fires": fires,
                    "measured_ii": measured,
                    "predicted_ii": predicted,
                    "rel_err": rel_err,
                    "within_tolerance": within,
                }
            )
            if not within:
                analysis.add(
                    make(
                        "PROFILE.II_MISMATCH",
                        Severity.ERROR,
                        actor,
                        f"measured II {measured:.3f} deviates from the "
                        f"Eq. 4 prediction {predicted:.3f} by "
                        f"{100.0 * rel_err:.1f}% (> {100.0 * tolerance:.0f}%)",
                        hint=(
                            "the core is not sustaining one group per "
                            "cycle; check port widths, window stage "
                            "pacing, and queue_depth backpressure"
                        ),
                    )
                )

    # -- steady-state throughput and latency ----------------------------
    throughput: Dict[str, object] = {}
    latency: Dict[str, object] = {}
    if result.finished:
        completions = built.image_completion_cycles()
        latency["fill_measured"] = completions[0]
        latency["fill_predicted"] = perf.fill_latency
        dma_last = max(
            (
                st["last_push_cycle"]
                for name, st in result.channel_stats.items()
                if _stage_of_actor(built.graph.channels[name].writer)
                == "dma_in"
            ),
            default=-1,
        )
        if dma_last >= 0:
            latency["drain_measured"] = result.cycles - dma_last
        if len(completions) >= 2:
            intervals = [
                b - a for a, b in zip(completions, completions[1:])
            ]
            measured_iv = intervals[-1]
            predicted_iv = (
                multi_plan.interval if multi_plan is not None
                else perf.interval
            )
            iv_err = abs(measured_iv - predicted_iv) / max(predicted_iv, 1)
            throughput = {
                "interval_measured": measured_iv,
                "interval_predicted": predicted_iv,
                "interval_rel_err": iv_err,
                "completion_cycles": completions,
            }
            if iv_err > INTERVAL_TOLERANCE:
                analysis.add(
                    make(
                        "PROFILE.II_MISMATCH",
                        Severity.WARNING,
                        sim_design.name,
                        f"steady-state pipeline interval {measured_iv} "
                        f"deviates from the perf-model prediction "
                        f"{predicted_iv} by {100.0 * iv_err:.1f}%",
                        hint=(
                            "per-core IIs agree but the pipeline-level "
                            "cadence does not; look at DMA pacing and "
                            "inter-layer buffer skew"
                        ),
                    )
                )

    # -- bottleneck attribution -----------------------------------------
    busy_per_stage: Dict[str, int] = {}
    for actor, procs in result.actor_stats.items():
        stage = _stage_of_actor(actor)
        busy = max(p["fires"] for p in procs)
        if busy > busy_per_stage.get(stage, -1):
            busy_per_stage[stage] = busy
    bottleneck: Dict[str, object] = {}
    if busy_per_stage:
        measured_stage = max(busy_per_stage, key=lambda s: busy_per_stage[s])
        bottleneck = {
            "measured": measured_stage,
            "measured_busy_per_image": busy_per_stage[measured_stage] / images,
            "predicted": perf.bottleneck,
        }

    return ProfileReport(
        design_name=design.name,
        simulated_design=sim_design.name,
        pilot=piloted,
        scheduler=scheduler,
        images=images,
        seed=seed,
        cycles=result.cycles,
        finished=result.finished,
        tolerance=tolerance,
        cores=cores,
        throughput=throughput,
        latency=latency,
        bottleneck=bottleneck,
        utilization=counter_busy_fractions(result.actor_stats, result.cycles),
        channel_stats=result.channel_stats,
        actor_stats=result.actor_stats,
        scheduler_stats=result.scheduler_stats,
        analysis=analysis,
        tracer=tracer,
    )
