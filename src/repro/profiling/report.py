"""ProfileReport: measured-vs-predicted performance of one design.

Everything in here is derived from the schedulers' native counters
(:mod:`repro.dataflow.counters`) plus the static perf model — no
per-cycle sampling is involved unless the optional high-resolution
:class:`~repro.dataflow.trace.Tracer` backend was attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Optional

from repro.analysis.diagnostics import AnalysisReport
from repro.report.base import Report
from repro.report.tables import format_kv, format_table


@dataclass
class ProfileReport(Report):
    """Measured performance of one simulated design run.

    ``cores`` holds one entry per compute-core actor: the measured
    initiation interval (productive cycles per output coordinate, from
    the native counters) against the Eq. 4 prediction. ``throughput``
    and ``latency`` compare the observed pipeline interval and fill
    latency with the perf model. ``analysis`` carries the
    ``PROFILE.II_MISMATCH`` diagnostics; :attr:`ok` is False when any is
    error-level.
    """

    kind: ClassVar[str] = "profile"

    design_name: str = ""
    simulated_design: str = ""
    pilot: bool = False
    scheduler: str = "event"
    images: int = 0
    seed: int = 0
    cycles: int = 0
    finished: bool = False
    tolerance: float = 0.05
    cores: List[dict] = field(default_factory=list)
    throughput: Dict[str, object] = field(default_factory=dict)
    latency: Dict[str, object] = field(default_factory=dict)
    bottleneck: Dict[str, object] = field(default_factory=dict)
    #: Whole-run busy fraction per actor, derived from the counters
    #: (``trace.counter_busy_fractions``) — the paper's "all layers
    #: concurrently active" claim, measured.
    utilization: Dict[str, float] = field(default_factory=dict)
    channel_stats: Dict[str, dict] = field(default_factory=dict)
    actor_stats: Dict[str, list] = field(default_factory=dict)
    scheduler_stats: Dict[str, object] = field(default_factory=dict)
    analysis: Optional[AnalysisReport] = None
    #: High-resolution sample backend, present only when the profiler ran
    #: with ``sample_every``; feeds Chrome-trace counter tracks. Not
    #: serialised (samples scale with cycle count).
    tracer: Optional[object] = field(default=None, repr=False, compare=False)

    @property
    def ok(self) -> bool:
        return self.analysis.ok if self.analysis is not None else True

    def max_ii_error(self) -> float:
        """Worst relative II error across the compute cores."""
        return max((c["rel_err"] for c in self.cores), default=0.0)

    def to_dict(self) -> dict:
        return {
            "design": self.design_name,
            "simulated_design": self.simulated_design,
            "pilot": self.pilot,
            "scheduler": self.scheduler,
            "images": self.images,
            "seed": self.seed,
            "cycles": self.cycles,
            "finished": self.finished,
            "tolerance": self.tolerance,
            "ok": self.ok,
            "cores": self.cores,
            "throughput": self.throughput,
            "latency": self.latency,
            "bottleneck": self.bottleneck,
            "utilization": self.utilization,
            "channel_stats": self.channel_stats,
            "actor_stats": self.actor_stats,
            "scheduler_stats": self.scheduler_stats,
            "analysis": (
                self.analysis.to_dict() if self.analysis is not None else None
            ),
        }

    def summary(self) -> str:
        state = "ok" if self.ok else "II MISMATCH"
        return (
            f"profile {self.design_name}: {len(self.cores)} cores, "
            f"max II error {100.0 * self.max_ii_error():.2f}%, {state}"
        )

    # -- rendering ---------------------------------------------------------

    def _stall_hotspots(self, top: int = 5) -> List[tuple]:
        rows = []
        for name, st in self.channel_stats.items():
            total = st["full_stall_cycles"] + st["empty_stall_cycles"]
            if total:
                rows.append(
                    (name, st["full_stall_cycles"], st["empty_stall_cycles"])
                )
        rows.sort(key=lambda r: -(r[1] + r[2]))
        return rows[:top]

    def format_text(self) -> str:
        parts = [
            format_kv(
                f"profile: {self.design_name}",
                [
                    (
                        "simulated design",
                        self.simulated_design
                        + (" (pilot)" if self.pilot else ""),
                    ),
                    ("scheduler", self.scheduler),
                    ("images", self.images),
                    ("cycles", self.cycles),
                    ("finished", self.finished),
                ],
            )
        ]
        if self.cores:
            parts.append("\nPer-core initiation interval (Eq. 4 cross-check):")
            parts.append(
                format_table(
                    ["core", "measured II", "Eq.4 II", "error %", "verdict"],
                    [
                        [
                            c["actor"],
                            c["measured_ii"],
                            c["predicted_ii"],
                            100.0 * c["rel_err"],
                            "ok" if c["within_tolerance"] else "MISMATCH",
                        ]
                        for c in self.cores
                    ],
                )
            )
        tp = list(self.throughput.items()) + list(self.latency.items())
        if tp:
            parts.append("")
            parts.append(format_kv("throughput and latency", tp))
        if self.bottleneck:
            parts.append("")
            parts.append(
                format_kv("bottleneck attribution", list(self.bottleneck.items()))
            )
        hot = self._stall_hotspots()
        if hot:
            parts.append("\nMost-stalled channels:")
            parts.append(
                format_table(
                    ["channel", "full-stall cycles", "empty-stall cycles"],
                    [list(r) for r in hot],
                )
            )
        if self.analysis is not None and self.analysis.diagnostics:
            parts.append("")
            parts.append(self.analysis.format_text())
        parts.append("")
        parts.append(self.summary())
        return "\n".join(parts)
