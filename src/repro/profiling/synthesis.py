"""Synthesize profiling counters from a closed-form steady-state schedule.

The compiled engine never executes actor processes, so it cannot *count*
fires — it derives them. The derivation is exact, not approximate: under
the two-phase protocol ``fires`` counts productive beats only (stall
cycles of every kind are excluded), and the number of productive beats a
process performs is fixed by the graph's rate solution — it is the same
on every engine and on every legal schedule. The interpreted engines
measure ``fires = lifetime - stalls``; the compiled engine reads the same
number off the :class:`~repro.analysis.steady_state.SteadySchedule`.

Everything the profiler computes from counters therefore agrees across
engines by construction: measured II (``max fires / (coords * images)``,
Eq. 4) and bottleneck attribution (stage with the largest fires).

Stall/lifetime counters, by contrast, are genuinely timing-dependent and
the compiled engine does not model them: stalls are reported as 0 and
``lifetime`` as ``fires`` (an ideal never-stalled pipeline), keeping the
``fires = lifetime - stalls`` identity intact. Channel activity spans are
likewise a *modeled* envelope — exact beat totals, but timestamps only
where the profiler depends on them (the DMA-in drain window).
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.steady_state import SteadySchedule


def synthesize_actor_stats(schedule: SteadySchedule) -> Dict[str, List[dict]]:
    """Per-process counter dicts in the report shape of both engines.

    One entry per process in creation order (compute before emit for the
    two-process cores), each carrying the closed-form ``fires`` with zero
    stalls and ``lifetime == fires``.
    """
    out: Dict[str, List[dict]] = {}
    for name, fires in schedule.proc_fires.items():
        out[name] = [
            {
                "fires": f,
                "stalled_channel": 0,
                "stalled_gate": 0,
                "stalled_timer": 0,
                "lifetime": f,
                "end_cycle": f,
            }
            for f in fires
        ]
    return out


def synthesize_channel_stats(
    schedule: SteadySchedule, channels, source_name: str
) -> None:
    """Write the modeled run's statistics into each channel's ``stats``.

    Beat totals (``total_pushed``/``total_popped``) are exact — they are
    the rate solution. Activity timestamps are modeled: channels written
    by the DMA source get the true input-stream span (cycle 0 through
    ``dma_last_push``, which the profiler's drain-latency calculation
    reads); every other active channel gets the generic pipeline window
    ``[0, cycles - 1]``. ``high_water`` reflects the rate-matched steady
    state (one in flight).
    """
    prefix = source_name + "."
    for ch in channels:
        beats = schedule.channel_beats.get(ch.name, 0)
        st = ch.stats
        st.total_pushed = beats
        st.total_popped = beats
        st.high_water = 1 if beats else 0
        st.full_stall_cycles = 0
        st.empty_stall_cycles = 0
        if not beats:
            continue
        if ch.writer is not None and ch.writer.startswith(prefix):
            st.first_push_cycle = 0
            st.last_push_cycle = schedule.dma_last_push
        else:
            st.first_push_cycle = 0
            st.last_push_cycle = max(0, schedule.cycles - 2)
        # Staged pushes become visible (poppable) one cycle later.
        st.first_pop_cycle = st.first_push_cycle + 1
        st.last_pop_cycle = min(schedule.cycles - 1, st.last_push_cycle + 1)
