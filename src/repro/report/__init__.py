"""Reporting: ASCII tables/plots and the experiment registry."""

from repro.report.base import SCHEMA_VERSION, Report
from repro.report.experiments import Experiment, all_experiments, banner, get_experiment
from repro.report.figures import ascii_plot, to_csv
from repro.report.tables import format_kv, format_table

__all__ = [
    "Experiment",
    "Report",
    "SCHEMA_VERSION",
    "all_experiments",
    "ascii_plot",
    "banner",
    "format_kv",
    "format_table",
    "get_experiment",
    "to_csv",
]
