"""Shared report envelope: one JSON shape for every CLI-facing output.

Every report the toolchain can emit — simulation results, static-analysis
diagnostics, fault-campaign summaries, profiles — derives from
:class:`Report` and serialises through the same envelope::

    {"schema_version": 1, "kind": "<report kind>", ...payload...}

The payload is merged at the top level (not nested under a key) so that
pre-envelope consumers indexing ``d["ok"]`` / ``d["design"]`` keep
working; ``schema_version`` lets them detect shape changes from here on.
"""

from __future__ import annotations

import json
from typing import Any, ClassVar, Dict

#: Bump when any report's JSON shape changes incompatibly.
SCHEMA_VERSION = 1


class Report:
    """Base class for every serialisable report.

    Subclasses set :attr:`kind` and implement :meth:`to_dict` (plain,
    JSON-serialisable payload) and :meth:`summary` (one-line human
    digest). :meth:`envelope` / :meth:`to_json` are shared.
    """

    kind: ClassVar[str] = "report"

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict payload; must be JSON-serialisable."""
        raise NotImplementedError

    def summary(self) -> str:
        """One-line human-readable digest of the report."""
        return f"{self.kind} report"

    def envelope(self) -> Dict[str, Any]:
        """Payload wrapped with the shared version/kind header."""
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": self.kind,
            **self.to_dict(),
        }

    def to_json(self, indent: int = 2) -> str:
        """The envelope as a JSON string."""
        return json.dumps(self.envelope(), indent=indent)
