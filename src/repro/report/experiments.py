"""Registry mapping every paper artifact to its reproduction entry point.

Single source of truth used by the benchmark harness headers and by
EXPERIMENTS.md; keeps experiment identifiers, paper-reported values and
bench targets in one queryable place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Experiment:
    """One table/figure of the paper's evaluation (or a repo ablation)."""

    id: str
    title: str
    bench: str
    paper_values: Dict[str, float] = field(default_factory=dict)
    notes: str = ""


_EXPERIMENTS: List[Experiment] = [
    Experiment(
        id="fig4",
        title="Block design of the USPS CNN (test case 1)",
        bench="benchmarks/bench_fig4_fig5_block_designs.py",
    ),
    Experiment(
        id="fig5",
        title="Block design of the CIFAR-10 CNN (test case 2)",
        bench="benchmarks/bench_fig4_fig5_block_designs.py",
    ),
    Experiment(
        id="fig6",
        title="Mean time per image vs batch size",
        bench="benchmarks/bench_fig6_batch_convergence.py",
        paper_values={"tc1_converged_us": 5.8, "tc2_converged_us": 128.1},
        notes="converges once batch > number of layers",
    ),
    Experiment(
        id="table1",
        title="FPGA resource usage (FF/LUT/BRAM/DSP %)",
        bench="benchmarks/bench_table1_resources.py",
        paper_values={
            "tc1_ff": 41.10, "tc1_lut": 50.86, "tc1_bram": 3.50, "tc1_dsp": 55.04,
            "tc2_ff": 61.77, "tc2_lut": 71.24, "tc2_bram": 22.82, "tc2_dsp": 74.32,
        },
    ),
    Experiment(
        id="table2",
        title="Performance and power efficiency",
        bench="benchmarks/bench_table2_performance.py",
        paper_values={
            "tc1_gflops": 5.2, "tc1_eff": 0.25, "tc1_latency_ms": 0.0058,
            "tc1_images_s": 172414,
            "tc2_gflops": 28.4, "tc2_eff": 1.19, "tc2_latency_ms": 0.128,
            "tc2_images_s": 7809, "microsoft_images_s": 2318, "speedup": 3.36,
        },
    ),
    Experiment(
        id="A1",
        title="Ablation: tree adder vs sequential adder chain",
        bench="benchmarks/bench_ablation_tree_adder.py",
    ),
    Experiment(
        id="A2",
        title="Ablation: interleaved accumulators in the FC core",
        bench="benchmarks/bench_ablation_fc_accumulators.py",
    ),
    Experiment(
        id="A3",
        title="Ablation: dataflow pipeline vs layer-at-a-time baseline",
        bench="benchmarks/bench_ablation_pipeline_vs_sequential.py",
    ),
    Experiment(
        id="A4",
        title="Ablation: port-scaling sweep of the conv layers",
        bench="benchmarks/bench_ablation_port_scaling.py",
    ),
    Experiment(
        id="A5",
        title="Ablation: inter-actor FIFO capacity vs throughput",
        bench="benchmarks/bench_ablation_fifo_capacity.py",
    ),
    Experiment(
        id="A6",
        title="Ablation: behavioral line buffer vs literal SST filter chain",
        bench="benchmarks/bench_ablation_memory_system.py",
    ),
    Experiment(
        id="E1",
        title="Extension: automated DSE (paper future work)",
        bench="benchmarks/bench_ext_dse.py",
    ),
    Experiment(
        id="E2",
        title="Extension: multi-FPGA split (paper future work)",
        bench="benchmarks/bench_ext_multi_fpga.py",
    ),
    Experiment(
        id="E3",
        title="Extension: fixed-point inference (paper further study)",
        bench="benchmarks/bench_ext_fixed_point.py",
    ),
    Experiment(
        id="E4",
        title="Extension: roofline positioning of the designs",
        bench="benchmarks/bench_ext_roofline.py",
    ),
    Experiment(
        id="E5",
        title="Extension: automated design flow (paper future work)",
        bench="benchmarks/bench_ext_flow.py",
    ),
    Experiment(
        id="E6",
        title="Extension: AlexNet/VGG-16 feasibility (paper future work)",
        bench="benchmarks/bench_ext_model_zoo.py",
    ),
    Experiment(
        id="E7",
        title="Extension: FC weight streaming (memory-centric classifiers)",
        bench="benchmarks/bench_ext_weight_streaming.py",
    ),
]

_BY_ID = {e.id: e for e in _EXPERIMENTS}


def get_experiment(exp_id: str) -> Experiment:
    """Look up one experiment by its id (``fig6``, ``table1``, ``A3``...)."""
    try:
        return _BY_ID[exp_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {exp_id!r}; known: {sorted(_BY_ID)}"
        ) from None


def all_experiments() -> List[Experiment]:
    """All registered experiments in paper order."""
    return list(_EXPERIMENTS)


def banner(exp_id: str) -> str:
    """Header line the benches print before their tables."""
    e = get_experiment(exp_id)
    return f"[{e.id}] {e.title}  (paper: {e.paper_values or 'n/a'})"
