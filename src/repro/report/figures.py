"""Plain-text line plots and CSV emission for the figure reproductions."""

from __future__ import annotations

import io
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


def ascii_plot(
    xs: Sequence[float],
    series: Sequence[Tuple[str, Sequence[float]]],
    width: int = 64,
    height: int = 16,
    title: Optional[str] = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more series as an ASCII scatter/line chart.

    Good enough to eyeball the Figure 6 shape in a terminal/log; the CSV
    emitters carry the exact values.
    """
    if not xs or not series:
        raise ConfigurationError("plot needs xs and at least one series")
    for name, ys in series:
        if len(ys) != len(xs):
            raise ConfigurationError(
                f"series {name!r} has {len(ys)} points for {len(xs)} xs"
            )
    markers = "*o+x#@"
    all_y = [y for _, ys in series for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    x_min, x_max = min(xs), max(xs)
    y_span = (y_max - y_min) or 1.0
    x_span = (x_max - x_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series):
        m = markers[si % len(markers)]
        for x, y in zip(xs, ys):
            col = int((x - x_min) / x_span * (width - 1))
            row = height - 1 - int((y - y_min) / y_span * (height - 1))
            grid[row][col] = m
    out = io.StringIO()
    if title:
        out.write(f"=== {title} ===\n")
    for i, row in enumerate(grid):
        label = ""
        if i == 0:
            label = f"{y_max:.3g}"
        elif i == height - 1:
            label = f"{y_min:.3g}"
        out.write(f"{label:>10} |{''.join(row)}|\n")
    out.write(f"{'':>10}  {x_label}: {x_min:g} .. {x_max:g}   ({y_label})\n")
    for si, (name, _) in enumerate(series):
        out.write(f"{'':>10}  {markers[si % len(markers)]} = {name}\n")
    return out.getvalue()


def to_csv(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Simple CSV emission (no quoting needs arise in our numeric tables)."""
    if not headers:
        raise ConfigurationError("csv needs at least one column")
    lines = [",".join(str(h) for h in headers)]
    for r in rows:
        if len(r) != len(headers):
            raise ConfigurationError(
                f"row has {len(r)} cells for {len(headers)} columns"
            )
        lines.append(",".join(f"{v:.6g}" if isinstance(v, float) else str(v) for v in r))
    return "\n".join(lines)
