"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ConfigurationError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned ASCII table.

    Floats go through ``float_fmt``; everything else through ``str``.
    """
    if not headers:
        raise ConfigurationError("table needs at least one column")
    for r in rows:
        if len(r) != len(headers):
            raise ConfigurationError(
                f"row has {len(r)} cells for {len(headers)} columns: {r!r}"
            )

    def cell(v: object) -> str:
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    text_rows = [[cell(v) for v in r] for r in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in text_rows)) if text_rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(f"=== {title} ===")
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in text_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_kv(title: str, pairs: Sequence[Sequence[object]]) -> str:
    """Render key/value pairs under a title (for single-design summaries)."""
    width = max((len(str(k)) for k, _ in pairs), default=0)
    lines = [f"=== {title} ==="]
    for k, v in pairs:
        lines.append(f"{str(k).ljust(width)} : {v}")
    return "\n".join(lines)
