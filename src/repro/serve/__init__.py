"""Async inference serving over the simulated accelerator.

The serving stack turns the repo's engines into a measurable service:
seeded open-loop arrivals (:mod:`repro.serve.arrivals`), a batch-aware
admission controller sized by the Eq. 4 convergence knee
(:mod:`repro.serve.admission`), a warm fleet of per-process
compiled-engine replicas (:mod:`repro.serve.replicas`), a deterministic
loadtest with digest verification and chaos cross-checks
(:mod:`repro.serve.loadtest`), the live asyncio front-end
(:mod:`repro.serve.server`), and the :class:`ServeReport` envelope
(:mod:`repro.serve.report`). See DESIGN.md section 13.
"""

from repro.serve.admission import (
    AdmissionConfig,
    PlannedBatch,
    admission_config,
    convergence_knee,
    cycles_to_us,
    plan_batches,
    replay_batches,
)
from repro.serve.arrivals import DISTRIBUTIONS, arrival_schedule
from repro.serve.loadtest import knee_probe, run_loadtest, single_shot_digests
from repro.serve.replicas import ReplicaFleet, request_image, run_replica_batch
from repro.serve.report import ServeReport, latency_stats, percentile
from repro.serve.server import InferenceServer, serve_tcp

__all__ = [
    "AdmissionConfig",
    "DISTRIBUTIONS",
    "InferenceServer",
    "PlannedBatch",
    "ReplicaFleet",
    "ServeReport",
    "admission_config",
    "arrival_schedule",
    "convergence_knee",
    "cycles_to_us",
    "knee_probe",
    "latency_stats",
    "percentile",
    "plan_batches",
    "replay_batches",
    "request_image",
    "run_loadtest",
    "run_replica_batch",
    "serve_tcp",
    "single_shot_digests",
]
