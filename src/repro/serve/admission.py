"""Batch-aware admission: size batches past the convergence knee.

The paper's throughput argument (Eq. 4, Fig. 6) is that per-image cost
``(fill + (B-1)·II) / B`` converges to the bottleneck initiation
interval II once the batch ``B`` grows past the pipeline depth. The
admission controller turns that into policy: coalesce queued requests
into batches of at least :func:`convergence_knee` images (the point
where the amortized fill overhead drops below a tolerance), capped by
``max_batch`` (bounded queue memory) and ``max_wait_us`` (bounded
latency for the oldest request).

:func:`plan_batches` is the controller run to completion in *virtual
time*: given the full arrival schedule and a modeled per-batch service
time, it produces the exact batch composition, replica assignment, and
timeline. The live asyncio server (:mod:`repro.serve.server`) applies
the same triggers reactively; the loadtest uses the planner so that the
batch composition is a pure function of ``(arrivals, config, model)`` —
deterministic replay — and then re-times the fixed composition with
*measured* service times (:func:`replay_batches`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.network_design import NetworkDesign
from repro.core.perf_model import NetworkPerf, network_perf
from repro.errors import ConfigurationError

#: Fill-overhead tolerance defining "past the knee" (matches the
#: profiler's default II tolerance).
KNEE_TOLERANCE = 0.05


def convergence_knee(
    design: NetworkDesign,
    tolerance: float = KNEE_TOLERANCE,
    perf: Optional[NetworkPerf] = None,
) -> int:
    """Smallest batch whose per-image cost is within ``tolerance`` of II.

    From Eq. 4, ``mean(B) = II + (fill - II) / B``, so
    ``B >= (fill - II) / (tolerance · II)`` puts the amortized fill
    within ``tolerance``. The pipeline depth (layer count) is a floor:
    below it the pipeline never even fills once.
    """
    if tolerance <= 0:
        raise ConfigurationError(
            f"knee tolerance must be positive, got {tolerance}"
        )
    if perf is None:
        perf = network_perf(design)
    interval = max(perf.interval, 1)
    amortize = math.ceil((perf.fill_latency - interval) / (tolerance * interval))
    return max(design.n_layers, amortize, 1)


@dataclass(frozen=True)
class AdmissionConfig:
    """The three knobs of the admission policy (times in virtual µs)."""

    #: Close a batch as soon as this many requests are queued.
    target_batch: int
    #: Hard cap on batch size (queue overflow while a replica was busy).
    max_batch: int
    #: Close a batch when its oldest request has waited this long.
    max_wait_us: float

    def __post_init__(self) -> None:
        if self.target_batch < 1:
            raise ConfigurationError(
                f"target_batch must be >= 1, got {self.target_batch}"
            )
        if self.max_batch < self.target_batch:
            raise ConfigurationError(
                f"max_batch ({self.max_batch}) must be >= target_batch "
                f"({self.target_batch})"
            )
        if self.max_wait_us <= 0:
            raise ConfigurationError(
                f"max_wait_us must be positive, got {self.max_wait_us}"
            )


def admission_config(
    design: NetworkDesign,
    max_batch: Optional[int] = None,
    max_wait_us: Optional[float] = None,
    tolerance: float = KNEE_TOLERANCE,
    perf: Optional[NetworkPerf] = None,
) -> AdmissionConfig:
    """Derive the default policy from the design's analytic model.

    The target batch is the convergence knee; the default wait cap is
    the modeled service time of one knee-sized batch (waiting longer
    than one batch turnaround can never improve amortization).
    """
    if perf is None:
        perf = network_perf(design)
    knee = convergence_knee(design, tolerance=tolerance, perf=perf)
    if max_batch is None:
        max_batch = max(2 * knee, 8)
    target = min(knee, max_batch)
    if max_wait_us is None:
        max_wait_us = cycles_to_us(perf.batch_cycles(target))
    return AdmissionConfig(
        target_batch=target, max_batch=max_batch, max_wait_us=max_wait_us
    )


#: VC707 board clock: 100 MHz == 100 cycles per microsecond.
CYCLES_PER_US = 100.0


def cycles_to_us(cycles: float) -> float:
    """Board cycles -> virtual microseconds (100 MHz paper clock)."""
    return cycles / CYCLES_PER_US


@dataclass(frozen=True)
class PlannedBatch:
    """One admitted batch: composition, placement, and timeline."""

    #: Request indices, in arrival order.
    indices: Tuple[int, ...]
    #: Replica the batch was dispatched to.
    replica: int
    #: Virtual µs at which the batch was sealed and dispatched.
    dispatch_us: float
    #: Modeled (or replayed-measured) service time of the batch.
    service_us: float

    @property
    def size(self) -> int:
        return len(self.indices)

    @property
    def done_us(self) -> float:
        return self.dispatch_us + self.service_us


def plan_batches(
    arrivals_us: Sequence[float],
    config: AdmissionConfig,
    service_us: Callable[[int], float],
    n_replicas: int,
) -> List[PlannedBatch]:
    """Run the admission policy to completion in virtual time.

    A batch forms on the earliest-free replica: it waits for the first
    queued request, then seals at the earliest moment one of the
    triggers fires — ``target_batch`` requests have arrived, the oldest
    request has waited ``max_wait_us``, or every remaining request has
    arrived (waiting longer cannot grow the batch). Sealing takes the
    oldest ``min(max_batch, arrived)`` requests. Deterministic: a pure
    function of the arguments.
    """
    if n_replicas < 1:
        raise ConfigurationError(f"need >= 1 replica, got {n_replicas}")
    if any(b < a for a, b in zip(arrivals_us, arrivals_us[1:])):
        raise ConfigurationError("arrival times must be ascending")
    n = len(arrivals_us)
    free = [0.0] * n_replicas
    batches: List[PlannedBatch] = []
    first = 0  # next unserved request index
    while first < n:
        replica = min(range(n_replicas), key=lambda r: (free[r], r))
        oldest = arrivals_us[first]
        fill_at = first + config.target_batch - 1
        # The sealing trigger: target reached, deadline hit, or no more
        # arrivals to wait for.
        trigger = min(
            arrivals_us[fill_at] if fill_at < n else arrivals_us[-1],
            oldest + config.max_wait_us,
        )
        dispatch = max(free[replica], oldest, trigger)
        arrived = first
        while arrived < n and arrivals_us[arrived] <= dispatch:
            arrived += 1
        take = min(config.max_batch, max(arrived - first, 1))
        indices = tuple(range(first, first + take))
        batch = PlannedBatch(
            indices=indices,
            replica=replica,
            dispatch_us=dispatch,
            service_us=service_us(take),
        )
        batches.append(batch)
        free[replica] = batch.done_us
        first += take
    return batches


def replay_batches(
    batches: Sequence[PlannedBatch],
    arrivals_us: Sequence[float],
    measured_service_us: Sequence[float],
    n_replicas: int,
) -> List[PlannedBatch]:
    """Re-time a fixed batch composition with measured service times.

    Composition and replica assignment are kept exactly as planned; only
    the clock changes: each batch becomes ready when its last member has
    arrived and dispatches when its replica frees up. This is how the
    loadtest converts measured per-batch cycles into latencies without
    letting measurement noise perturb what was batched with what.
    """
    if len(measured_service_us) != len(batches):
        raise ConfigurationError(
            f"{len(batches)} batches but {len(measured_service_us)} "
            f"measured service times"
        )
    free = [0.0] * n_replicas
    replayed: List[PlannedBatch] = []
    for batch, service in zip(batches, measured_service_us):
        ready = max(arrivals_us[i] for i in batch.indices)
        dispatch = max(ready, free[batch.replica])
        replayed.append(
            PlannedBatch(
                indices=batch.indices,
                replica=batch.replica,
                dispatch_us=dispatch,
                service_us=service,
            )
        )
        free[batch.replica] = dispatch + service
    return replayed
