"""Seeded open-loop arrival schedules for the loadtest.

An *open-loop* load generator decides every request's arrival time up
front, independent of how fast the service answers — the standard way to
measure tail latency without coordinated omission. Times are **virtual
microseconds on the board clock** (the VC707's 100 MHz: 100 cycles/µs),
the same unit the admission planner and the report use, so a loadtest is
a pure function of ``(n, rate, dist, seed)`` and replays bit-identically
(satisfying the deterministic-replay contract tested in
``tests/serve/test_arrivals.py``).
"""

from __future__ import annotations

import random
from typing import List

from repro.errors import ConfigurationError

#: Supported inter-arrival distributions.
DISTRIBUTIONS = ("poisson", "uniform")


def arrival_schedule(
    n: int, rate: float, dist: str = "poisson", seed: int = 0
) -> List[float]:
    """Arrival times (virtual µs, ascending, starting at 0) of ``n`` requests.

    ``rate`` is the offered load in requests per virtual second.
    ``"poisson"`` draws exponential inter-arrival gaps from a
    ``random.Random(seed)`` stream; ``"uniform"`` spaces requests exactly
    ``1e6 / rate`` µs apart (seed-independent by construction — the
    degenerate deterministic baseline).
    """
    if n < 1:
        raise ConfigurationError(f"need at least 1 request, got {n}")
    if rate <= 0:
        raise ConfigurationError(f"rate must be positive req/s, got {rate}")
    if dist not in DISTRIBUTIONS:
        raise ConfigurationError(
            f"unknown arrival distribution {dist!r} "
            f"(choose from {DISTRIBUTIONS})"
        )
    mean_gap_us = 1e6 / rate
    if dist == "uniform":
        return [i * mean_gap_us for i in range(n)]
    rng = random.Random(seed)
    t = 0.0
    out = []
    for _ in range(n):
        out.append(t)
        t += rng.expovariate(1.0 / mean_gap_us)
    return out
