"""The open-loop loadtest: arrivals -> admission -> fleet -> report.

The loadtest is the serving stack run as an experiment. Four phases:

1. **Plan** (virtual time, deterministic): a seeded arrival schedule
   (:mod:`repro.serve.arrivals`) is run through the admission planner
   (:func:`repro.serve.admission.plan_batches`) with the Eq. 4 *modeled*
   service time, fixing the batch composition and replica assignment as
   a pure function of ``(design, n, rate, dist, seed, policy)``.
2. **Execute** (real processes): every planned batch runs on its
   assigned replica in the warm fleet; chaos mode arms the fault
   scenario on one replica for the second half of the planned timeline.
3. **Verify**: each request's output digest is compared against an
   independent single-shot compiled-engine simulation of the same
   request; a knee-sized probe batch on the *event* engine checks that
   genuinely measured per-image cycles converge to the bottleneck II
   (the Fig. 6 claim — the compiled engine's timing is modeled, so the
   probe must not use it); a chaos run cross-checks the faulted
   replica's measured interval against the analytical throttled-DMA
   model (:func:`repro.faults.throttled_perf`).
4. **Replay** (virtual time): the fixed batch composition is re-timed
   with the *measured* per-batch cycles, yielding the latency
   percentiles and throughput the report quotes.

Determinism contract: with the same arguments, phases 1 and 4 are
bit-identical across runs (asserted in ``tests/serve/test_loadtest.py``)
— clean-run measured cycles equal the model by the compiled engine's
timing contract, and faulted cycles are seed-deterministic.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Dict, List, Optional

import numpy as np

from repro.core.builder import build_network, random_weights
from repro.core.network_design import NetworkDesign
from repro.core.perf_model import network_perf
from repro.dataflow.digest import stable_digest
from repro.errors import ConfigurationError
from repro.faults import load_scenario, throttled_perf
from repro.serve.admission import (
    KNEE_TOLERANCE,
    admission_config,
    convergence_knee,
    cycles_to_us,
    plan_batches,
    replay_batches,
)
from repro.serve.arrivals import arrival_schedule
from repro.serve.replicas import ReplicaFleet, request_image
from repro.serve.report import ServeReport, latency_stats

#: Relative error allowed on the knee-probe per-image cycles (Eq. 4)
#: and on the chaos measured-vs-analytical interval.
DEFAULT_TOLERANCE = 0.05
CHAOS_TOLERANCE = 0.10


def single_shot_digests(
    design: NetworkDesign, seed: int, indices: List[int]
) -> Dict[int, str]:
    """Reference digest of each request, from independent 1-image runs.

    This is the ground truth the fleet must reproduce: same weights
    (seeded), same per-request input recipe, batch of one, compiled
    engine. Any divergence means batching or IPC corrupted a result.
    """
    weights = random_weights(design, seed=seed)
    refs: Dict[int, str] = {}
    for idx in indices:
        built = build_network(
            design, weights, np.stack([request_image(design, seed, idx)])
        )
        built.run(scheduler="compiled")
        refs[idx] = stable_digest(built.outputs()[0])
    return refs


def knee_probe(
    design: NetworkDesign, seed: int, batch: int
) -> Dict[str, object]:
    """Measured per-image cycles at ``batch`` images, on the event engine.

    The compiled engine's cycle timing is modeled (it would match Eq. 4
    by construction), so the Fig. 6 convergence claim is only honestly
    testable on an interpreted engine: run the batch, take
    ``total_cycles / batch``.
    """
    weights = random_weights(design, seed=seed)
    images = np.stack(
        [request_image(design, seed, i) for i in range(batch)]
    )
    built = build_network(design, weights, images)
    result = built.run(scheduler="event")
    return {
        "probe_batch": batch,
        "measured_per_image": result.cycles / batch,
        "measured_cycles": result.cycles,
    }


def run_loadtest(
    design: NetworkDesign,
    requests: int = 32,
    rate: float = 200.0,
    dist: str = "poisson",
    seed: int = 0,
    replicas: int = 2,
    mode: str = "process",
    max_batch: Optional[int] = None,
    max_wait_us: Optional[float] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    fault: Optional[str] = None,
    probe: bool = True,
    verify_digests: bool = True,
) -> ServeReport:
    """Run one open-loop loadtest and report (see module docstring).

    ``fault`` names a preset scenario (e.g. ``"dma-throttle"``) or a
    scenario JSON path; it is armed on replica 0 for every batch
    dispatched in the second half of the planned virtual timeline —
    chaos arrives mid-run, while the rest of the fleet stays clean.
    """
    if requests < 1:
        raise ConfigurationError(f"need >= 1 request, got {requests}")
    t_start = time.perf_counter()
    perf = network_perf(design)
    knee = convergence_knee(design, tolerance=tolerance, perf=perf)
    config = admission_config(
        design, max_batch=max_batch, max_wait_us=max_wait_us,
        tolerance=tolerance, perf=perf,
    )

    # Phase 1: deterministic virtual-time plan.
    arrivals = arrival_schedule(requests, rate, dist=dist, seed=seed)
    planned = plan_batches(
        arrivals, config,
        lambda b: cycles_to_us(perf.batch_cycles(b)),
        replicas,
    )

    scenario = load_scenario(fault) if fault is not None else None
    chaos_from_us = None
    arm_batch = None
    if scenario is not None:
        # Arm mid-run: the second half of replica 0's batch sequence runs
        # faulted (at least one organic traffic batch, even if replica 0
        # only ever gets a single batch).
        on_zero = sorted(
            (i for i, b in enumerate(planned) if b.replica == 0),
            key=lambda i: (planned[i].dispatch_us, i),
        )
        if on_zero:
            arm_batch = on_zero[len(on_zero) // 2]
            chaos_from_us = planned[arm_batch].dispatch_us

    # Phase 2: execute on the warm fleet, in planned dispatch order.
    failures: List[str] = []
    order = sorted(
        range(len(planned)), key=lambda i: (planned[i].dispatch_us, i)
    )
    results: List[Optional[dict]] = [None] * len(planned)
    with ReplicaFleet(design, replicas, seed=seed, mode=mode) as fleet:
        fleet.warm()
        pending = []
        for i in order:
            if i == arm_batch:
                fleet.arm(0, scenario)
            batch = planned[i]
            pending.append(
                (i, fleet.submit(batch.replica, batch.indices))
            )
        for i, fut in pending:
            results[i] = fut.result()
        faulted_batches = [
            i for i in range(len(planned)) if results[i]["faulted"]
        ]
        chaos_probe = None
        if scenario is not None:
            # The faulted interval needs a multi-image faulted batch;
            # traffic may not have produced one on replica 0 (e.g. the
            # only batch past the arming point was a straggler of 1).
            # Guarantee the measurement with one probe batch on the
            # armed replica, using fresh request indices.
            organic = max(
                (len(results[i]["indices"]) for i in faulted_batches),
                default=0,
            )
            if organic < 4:
                fleet.arm(0, scenario)
                probe_n = min(config.max_batch,
                              max(4, config.target_batch))
                chaos_probe = fleet.submit(
                    0, list(range(requests, requests + probe_n))
                ).result()
    exec_wall = time.perf_counter() - t_start

    # Phase 3a: digest verification vs single-shot simulation.
    digest_info: Dict[str, object] = {"checked": 0, "matched": 0,
                                      "mismatched": []}
    if verify_digests:
        refs = single_shot_digests(design, seed, list(range(requests)))
        mismatched = []
        for batch, res in zip(planned, results):
            for idx, digest in zip(res["indices"], res["digests"]):
                if digest != refs[idx]:
                    mismatched.append(
                        {"request": idx, "got": digest,
                         "expected": refs[idx]}
                    )
        digest_info = {
            "checked": requests,
            "matched": requests - len(mismatched),
            "mismatched": mismatched,
        }
        if mismatched:
            failures.append(
                f"{len(mismatched)} digest(s) diverge from single-shot"
            )

    # Phase 3b: the Fig. 6 convergence probe (event engine, past knee).
    knee_info: Dict[str, object] = {
        "predicted": knee,
        "tolerance": tolerance,
        "bottleneck_ii": perf.interval,
        "bottleneck": perf.bottleneck,
        "fill_latency": perf.fill_latency,
    }
    if probe:
        # Twice the knee: comfortably past convergence (the expected
        # amortized-fill error is tolerance/2), still O(knee) cycles.
        probe_res = knee_probe(design, seed, batch=max(2 * knee, 2))
        measured = probe_res["measured_per_image"]
        rel = (measured - perf.interval) / perf.interval
        knee_info.update(probe_res)
        knee_info["rel_err"] = rel
        # One-sided in spirit (measured >= II always) but keep abs().
        if abs(rel) > tolerance:
            failures.append(
                f"knee probe per-image cycles {measured:.1f} off II "
                f"{perf.interval} by {100 * rel:+.1f}%"
            )

    # Phase 3c: chaos cross-check vs the analytical throttled model.
    chaos_info = None
    if scenario is not None:
        predicted = throttled_perf(design, scenario, perf=perf)
        measured_iis = [
            results[i]["measured_interval"]
            for i in faulted_batches
            if results[i]["measured_interval"] is not None
        ]
        if chaos_probe is not None:
            measured_iis.append(chaos_probe["measured_interval"])
        measured_ii = max(measured_iis) if measured_iis else None
        if measured_ii is None:  # pragma: no cover - probe guarantees one
            chaos_rel = None
            failures.append("chaos interval could not be measured")
        else:
            chaos_rel = (measured_ii - predicted.interval) / predicted.interval
            if abs(chaos_rel) > CHAOS_TOLERANCE:
                failures.append(
                    f"throttled interval {measured_ii} off analytical "
                    f"{predicted.interval} by {100 * chaos_rel:+.1f}%"
                )
        chaos_info = {
            "scenario": scenario.name,
            "replica": 0,
            "armed_from_us": (
                round(chaos_from_us, 3) if chaos_from_us is not None
                else None
            ),
            "faulted_batches": len(faulted_batches),
            "probe_batch": (
                len(chaos_probe["indices"]) if chaos_probe else None
            ),
            "predicted_interval": predicted.interval,
            "predicted_degradation": round(predicted.degradation, 4),
            "measured_interval": measured_ii,
            "rel_err": chaos_rel,
        }

    # Phase 4: measured replay -> latencies.
    measured_service = [
        cycles_to_us(res["cycles"]) for res in results
    ]
    replayed = replay_batches(planned, arrivals, measured_service, replicas)
    latencies = [0.0] * requests
    for batch in replayed:
        for idx in batch.indices:
            latencies[idx] = batch.done_us - arrivals[idx]
    makespan = max(b.done_us for b in replayed) - arrivals[0]
    stats = latency_stats(latencies)

    if chaos_info is not None:
        # Tail degradation: the replay's p99 against a clean-model p99
        # (every batch at its modeled service time).
        clean = replay_batches(
            planned, arrivals,
            [cycles_to_us(perf.batch_cycles(b.size)) for b in planned],
            replicas,
        )
        clean_lat = sorted(
            b.done_us - arrivals[i] for b in clean for i in b.indices
        )
        chaos_info["clean_p99_us"] = round(
            latency_stats(clean_lat)["p99_us"], 3
        )
        chaos_info["p99_ratio"] = round(
            stats["p99_us"] / max(chaos_info["clean_p99_us"], 1e-9), 4
        )

    total_wall = time.perf_counter() - t_start
    return ServeReport(
        design=design.name,
        requests=requests,
        rate=rate,
        dist=dist,
        seed=seed,
        replicas=replicas,
        mode=mode,
        scheduler="compiled" if scenario is None else "compiled+event",
        admission={
            "target_batch": config.target_batch,
            "max_batch": config.max_batch,
            "max_wait_us": round(config.max_wait_us, 3),
        },
        knee=knee_info,
        latency=stats,
        images_per_sec=requests / (makespan / 1e6),
        makespan_us=round(makespan, 3),
        batch_histogram=dict(Counter(b.size for b in planned)),
        digests=digest_info,
        chaos=chaos_info,
        wall={
            "exec_s": round(exec_wall, 3),
            "total_s": round(total_wall, 3),
            "images_per_sec": round(requests / max(exec_wall, 1e-9), 1),
        },
        plan_cache=dict(results[0]["plan_cache"]) if results else {},
        ok=not failures,
        failures=failures,
    )
