"""The replica fleet: per-design compiled-engine simulators as workers.

Each replica is one OS process holding a warm copy of the model: the
design, its seeded weights, and — after the first batch — the compiled
plan in that process's :data:`~repro.compiled.plan_cache.
GLOBAL_PLAN_CACHE`. Requests are shipped as *indices*, not arrays: a
request's input image is a pure function of ``(seed, index)`` (the same
recipe on both sides of the IPC boundary), so a batch submission is a
few hundred bytes and the parent can independently compute the
single-shot reference digest for any request.

The fleet deliberately uses one single-worker ``ProcessPoolExecutor``
*per replica* rather than one N-worker pool: replicas must be
individually addressable so chaos mode can arm a fault scenario on one
replica while the others stay clean (pools give no control over which
worker picks up a job). ``mode="inline"`` executes the same worker code
in-process — for tests, and for machines where forking per-replica
costs more than it buys.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.builder import build_network, random_weights
from repro.core.network_design import NetworkDesign
from repro.core.serialize import design_from_json, design_to_json
from repro.dataflow.digest import stable_digest
from repro.errors import ConfigurationError
from repro.faults.injectors import arm_faults
from repro.faults.scenario import FaultScenario

#: Engines a replica accepts for a batch.
_SCHEDULERS = ("compiled", "event", "lockstep")


def request_image(
    design: NetworkDesign, seed: int, index: int
) -> np.ndarray:
    """The input image of request ``index`` (pure function of seed+index).

    Both the fleet workers and the parent's single-shot verifier derive
    request payloads from this one recipe, which is what makes
    per-request digest comparison meaningful across process boundaries.
    """
    rng = np.random.default_rng([seed, index])
    return rng.uniform(0, 1, design.input_shape).astype(np.float32)


def run_replica_batch(
    design: NetworkDesign,
    seed: int,
    indices: Sequence[int],
    scheduler: str = "compiled",
    scenario: Optional[FaultScenario] = None,
    weights=None,
) -> Dict[str, object]:
    """Simulate one batch; the core of both worker and inline execution.

    Returns a JSON-friendly dict: per-request output digests (row ``i``
    of the outputs is request ``indices[i]``), total cycles, per-image
    completion cycles, the measured steady interval, and wall time.
    Faulted batches require an interpreted engine (the compiled engine
    rejects armed faults by contract), so a scenario forces ``"event"``.
    """
    if scheduler not in _SCHEDULERS:
        raise ConfigurationError(
            f"unknown scheduler {scheduler!r} (choose from {_SCHEDULERS})"
        )
    if not indices:
        raise ConfigurationError("a batch needs at least one request")
    if scenario is not None and scheduler == "compiled":
        scheduler = "event"
    t0 = time.perf_counter()
    if weights is None:
        weights = random_weights(design, seed=seed)
    batch = np.stack([request_image(design, seed, i) for i in indices])
    built = build_network(design, weights, batch)
    sim = built.graph.build_simulator(scheduler=scheduler)
    if scenario is not None:
        sim.faults = arm_faults(built.graph, scenario, seed)
    result = sim.run(max_cycles=50_000_000)
    built.result = result
    outputs = built.outputs()
    completions = built.image_completion_cycles()
    diffs = [b - a for a, b in zip(completions, completions[1:])]
    interval = max(diffs) if diffs else None
    from repro.compiled import plan_cache_stats

    return {
        "indices": list(indices),
        "digests": [stable_digest(outputs[i]) for i in range(len(indices))],
        "cycles": result.cycles,
        "completion_cycles": completions,
        "measured_interval": interval,
        "scheduler": scheduler,
        "faulted": scenario is not None,
        "wall_s": time.perf_counter() - t0,
        "pid": os.getpid(),
        "plan_cache": plan_cache_stats(),
    }


# -- process-pool worker side (module-level for pickling) ------------------

_WORKER_DESIGN: Optional[NetworkDesign] = None
_WORKER_WEIGHTS = None
_WORKER_SEED = 0


def _worker_init(design_json: str, seed: int) -> None:
    """Per-process warm start: design + weights built once, then reused."""
    global _WORKER_DESIGN, _WORKER_WEIGHTS, _WORKER_SEED
    # Under fork the worker inherits the parent's plan cache (plans and
    # counters both); clear it so each replica's cache stats account for
    # this replica alone.
    from repro.compiled import clear_plan_cache

    clear_plan_cache()
    _WORKER_DESIGN = design_from_json(design_json)
    _WORKER_WEIGHTS = random_weights(_WORKER_DESIGN, seed=seed)
    _WORKER_SEED = seed


def _worker_run(
    indices: Sequence[int],
    scheduler: str,
    scenario_json: Optional[str],
) -> Dict[str, object]:
    assert _WORKER_DESIGN is not None, "worker used before initialization"
    scenario = (
        FaultScenario.from_json(scenario_json) if scenario_json else None
    )
    return run_replica_batch(
        _WORKER_DESIGN,
        _WORKER_SEED,
        indices,
        scheduler=scheduler,
        scenario=scenario,
        weights=_WORKER_WEIGHTS,
    )


class ReplicaFleet:
    """N warm replicas of one design, individually addressable.

    ``mode="process"`` backs each replica with its own single-worker
    ``ProcessPoolExecutor`` (weights and compiled plan built once per
    process by the initializer); ``mode="inline"`` runs batches in the
    calling process, sharing one weights copy. Use as a context manager
    or call :meth:`shutdown`.
    """

    def __init__(
        self,
        design: NetworkDesign,
        n_replicas: int = 2,
        seed: int = 0,
        mode: str = "process",
    ):
        if n_replicas < 1:
            raise ConfigurationError(
                f"need >= 1 replica, got {n_replicas}"
            )
        if mode not in ("process", "inline"):
            raise ConfigurationError(
                f"unknown fleet mode {mode!r} (process|inline)"
            )
        self.design = design
        self.n_replicas = n_replicas
        self.seed = seed
        self.mode = mode
        #: Per-replica armed chaos scenario (None == clean).
        self._scenarios: List[Optional[FaultScenario]] = [None] * n_replicas
        self._pools: List[ProcessPoolExecutor] = []
        if mode == "process":
            design_json = design_to_json(design, indent=0)
            self._pools = [
                ProcessPoolExecutor(
                    max_workers=1,
                    initializer=_worker_init,
                    initargs=(design_json, seed),
                )
                for _ in range(n_replicas)
            ]
        else:
            self._weights = random_weights(design, seed=seed)

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "ReplicaFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        for pool in self._pools:
            pool.shutdown(wait=True, cancel_futures=True)
        self._pools = []

    def warm(self) -> List[Dict[str, object]]:
        """Build weights + compiled plan on every replica (one tiny batch).

        Returns the per-replica warmup results; after this, no request
        batch pays lowering or weight-generation cost (satellite: plan
        cache hit on every subsequent batch).
        """
        futures = [
            self.submit(r, [0], scheduler="compiled")
            for r in range(self.n_replicas)
        ]
        return [f.result() for f in futures]

    # -- chaos -------------------------------------------------------------

    def arm(self, replica: int, scenario: FaultScenario) -> None:
        """Arm a fault scenario on one replica; later batches run faulted."""
        self._check_replica(replica)
        self._scenarios[replica] = scenario

    def disarm(self, replica: int) -> None:
        self._check_replica(replica)
        self._scenarios[replica] = None

    def armed(self, replica: int) -> Optional[FaultScenario]:
        self._check_replica(replica)
        return self._scenarios[replica]

    # -- execution ---------------------------------------------------------

    def submit(
        self,
        replica: int,
        indices: Sequence[int],
        scheduler: str = "compiled",
    ) -> "Future[Dict[str, object]]":
        """Dispatch one batch to one replica; returns a future.

        If a chaos scenario is armed on the replica, it travels with the
        batch (and forces the event engine in the worker).
        """
        self._check_replica(replica)
        scenario = self._scenarios[replica]
        if self.mode == "inline":
            fut: "Future[Dict[str, object]]" = Future()
            try:
                fut.set_result(
                    run_replica_batch(
                        self.design,
                        self.seed,
                        indices,
                        scheduler=scheduler,
                        scenario=scenario,
                        weights=self._weights,
                    )
                )
            except BaseException as exc:  # pragma: no cover - surfaced to caller
                fut.set_exception(exc)
            return fut
        scenario_json = scenario.to_json() if scenario is not None else None
        return self._pools[replica].submit(
            _worker_run, list(indices), scheduler, scenario_json
        )

    def _check_replica(self, replica: int) -> None:
        if not 0 <= replica < self.n_replicas:
            raise ConfigurationError(
                f"replica {replica} out of range (fleet of "
                f"{self.n_replicas})"
            )
