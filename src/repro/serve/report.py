"""The ServeReport: one JSON/text shape for every serving run.

Joins the unified Report API (``{"schema_version": 1, "kind": "serve",
...}``): tail-latency percentiles, throughput, the batch-size histogram,
knee prediction vs. measured per-image cycles, per-request digest
verification against single-shot simulation, and (chaos mode) the
measured-vs-analytical throttled interval cross-check. Latencies are
virtual µs on the board clock — the loadtest measures what the *paper's
board* would serve, using the simulator as the device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.report import Report, format_kv, format_table


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of pre-sorted values."""
    if not sorted_values:
        raise ValueError("percentile of an empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    rank = max(1, -(-len(sorted_values) * q // 100))  # ceil without math
    return float(sorted_values[int(rank) - 1])


def latency_stats(latencies_us: Sequence[float]) -> Dict[str, float]:
    """The tail summary every serving system quotes (virtual µs)."""
    s = sorted(latencies_us)
    return {
        "p50_us": round(percentile(s, 50), 3),
        "p95_us": round(percentile(s, 95), 3),
        "p99_us": round(percentile(s, 99), 3),
        "mean_us": round(sum(s) / len(s), 3),
        "max_us": round(s[-1], 3),
    }


@dataclass
class ServeReport(Report):
    """Everything one serving run measured, in the shared envelope."""

    kind = "serve"

    design: str
    requests: int
    rate: float
    dist: str
    seed: int
    replicas: int
    mode: str
    scheduler: str
    #: Admission policy actually applied.
    admission: Dict[str, Any]
    #: Convergence-knee prediction vs measurement.
    knee: Dict[str, Any]
    #: Tail latency of the measured replay (virtual µs).
    latency: Dict[str, float]
    #: Virtual throughput: requests / makespan.
    images_per_sec: float
    #: Virtual µs from first arrival to last completion.
    makespan_us: float
    #: batch size -> number of batches.
    batch_histogram: Dict[int, int]
    #: Digest verification vs single-shot simulation.
    digests: Dict[str, Any]
    #: Chaos cross-check (None when no fault armed).
    chaos: Optional[Dict[str, Any]] = None
    #: Host-side execution cost (real seconds, not virtual).
    wall: Dict[str, float] = field(default_factory=dict)
    #: Plan-cache counters sampled from one replica worker.
    plan_cache: Dict[str, int] = field(default_factory=dict)
    ok: bool = True
    failures: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "design": self.design,
            "requests": self.requests,
            "rate": self.rate,
            "dist": self.dist,
            "seed": self.seed,
            "replicas": self.replicas,
            "mode": self.mode,
            "scheduler": self.scheduler,
            "admission": dict(self.admission),
            "knee": dict(self.knee),
            "latency": dict(self.latency),
            "images_per_sec": self.images_per_sec,
            "makespan_us": self.makespan_us,
            "batch_histogram": {
                str(k): v for k, v in sorted(self.batch_histogram.items())
            },
            "digests": dict(self.digests),
            "chaos": dict(self.chaos) if self.chaos else None,
            "wall": dict(self.wall),
            "plan_cache": dict(self.plan_cache),
            "ok": self.ok,
            "failures": list(self.failures),
        }

    def summary(self) -> str:
        verdict = "OK" if self.ok else "FAILED"
        return (
            f"serve {self.design}: {self.requests} req @ {self.rate:g}/s -> "
            f"{self.images_per_sec:.1f} img/s, "
            f"p50 {self.latency['p50_us']:.0f} us, "
            f"p99 {self.latency['p99_us']:.0f} us [{verdict}]"
        )

    def format_text(self) -> str:
        pairs = [
            ("design", self.design),
            ("requests", f"{self.requests} ({self.dist}, "
                         f"{self.rate:g} req/s, seed {self.seed})"),
            ("fleet", f"{self.replicas} replica(s), {self.mode} mode, "
                      f"{self.scheduler} engine"),
            ("admission", f"target {self.admission['target_batch']}, "
                          f"max {self.admission['max_batch']}, "
                          f"max wait {self.admission['max_wait_us']:.0f} us"),
            ("knee (Eq. 4)", f"batch {self.knee['predicted']} "
                             f"@ tol {self.knee['tolerance']:g}"),
            ("throughput", f"{self.images_per_sec:.1f} images/s (virtual)"),
            ("latency p50/p95/p99",
             f"{self.latency['p50_us']:.0f} / {self.latency['p95_us']:.0f} / "
             f"{self.latency['p99_us']:.0f} us"),
            ("digests", f"{self.digests['matched']}/{self.digests['checked']}"
                        f" match single-shot"),
        ]
        if "measured_per_image" in self.knee:
            pairs.append(
                ("per-image cycles",
                 f"measured {self.knee['measured_per_image']:.1f} vs II "
                 f"{self.knee['bottleneck_ii']} "
                 f"({100 * self.knee['rel_err']:+.2f}%)")
            )
        if self.chaos:
            rel = self.chaos.get("rel_err")
            err = f"{100 * rel:+.2f}%" if rel is not None else "n/a"
            pairs.append(
                ("chaos", f"{self.chaos['scenario']} on replica "
                          f"{self.chaos['replica']}: interval "
                          f"{self.chaos['measured_interval']} vs predicted "
                          f"{self.chaos['predicted_interval']} ({err}), "
                          f"p99 x{self.chaos['p99_ratio']:.2f}")
            )
        if self.wall:
            pairs.append(
                ("host wall", f"{self.wall['total_s']:.2f} s "
                              f"({self.wall['images_per_sec']:.1f} img/s)")
            )
        pairs.append(("verdict", "OK" if self.ok else
                      f"FAILED ({'; '.join(self.failures)})"))
        text = format_kv(f"serving loadtest: {self.design}", pairs)
        rows = [
            [str(size), str(count)]
            for size, count in sorted(self.batch_histogram.items())
        ]
        text += "\n\n" + format_table(
            ["batch", "count"], rows, title="batch sizes"
        )
        return text
