"""The live asyncio front-end: concurrent requests over a warm fleet.

Where the loadtest (:mod:`repro.serve.loadtest`) runs the serving stack
as a closed deterministic experiment, :class:`InferenceServer` runs it
open-ended: callers ``await submit(index)`` concurrently (or connect to
the JSON-lines TCP endpoint), an admission task applies the same
batch-aware triggers as the planner — target batch, hard cap, oldest
waiter's deadline — in *wall* time, and sealed batches dispatch to the
least-busy replica of a :class:`~repro.serve.replicas.ReplicaFleet`.
Every response carries the request's output digest and its
queue/batch/simulate timing so a client can audit both correctness
(digest vs single-shot) and where its latency went.

The wall-clock wait cap defaults to milliseconds, not the virtual-µs cap
of the planner: a simulated batch takes ~10–100 ms of host time, so
board-scale waits would seal every batch at size 1.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.core.network_design import NetworkDesign
from repro.errors import ConfigurationError
from repro.serve.admission import convergence_knee
from repro.serve.replicas import ReplicaFleet

#: Default wall-time cap on the oldest queued request (50 ms).
DEFAULT_MAX_WAIT_S = 0.050


class InferenceServer:
    """Batch-aware async inference over a replica fleet.

    Usage::

        server = InferenceServer(design, replicas=2)
        async with server:
            response = await server.submit(7)

    ``submit`` returns when the request's batch has simulated; the
    response dict carries ``digest``, ``batch``, ``replica``,
    ``queue_us`` / ``service_us`` (wall), and ``cycles`` (virtual).
    """

    def __init__(
        self,
        design: NetworkDesign,
        replicas: int = 2,
        seed: int = 0,
        mode: str = "process",
        target_batch: Optional[int] = None,
        max_batch: Optional[int] = None,
        max_wait_s: float = DEFAULT_MAX_WAIT_S,
    ):
        if max_wait_s <= 0:
            raise ConfigurationError(
                f"max_wait_s must be positive, got {max_wait_s}"
            )
        self.design = design
        knee = convergence_knee(design)
        self.target_batch = target_batch or knee
        self.max_batch = max_batch or max(2 * self.target_batch, 8)
        if self.max_batch < self.target_batch:
            raise ConfigurationError(
                f"max_batch ({self.max_batch}) < target_batch "
                f"({self.target_batch})"
            )
        self.max_wait_s = max_wait_s
        self.fleet = ReplicaFleet(design, replicas, seed=seed, mode=mode)
        self._queue: List[Tuple[int, float, "asyncio.Future[dict]"]] = []
        self._wake: Optional[asyncio.Event] = None
        self._batcher: Optional[asyncio.Task] = None
        self._inflight = [0] * replicas
        self._served = 0
        self._batches: List[int] = []

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self.fleet.warm()
        self._wake = asyncio.Event()
        self._batcher = asyncio.create_task(self._admission_loop())

    async def stop(self) -> None:
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        for _, _, fut in self._queue:
            if not fut.done():
                fut.cancel()
        self._queue.clear()
        self.fleet.shutdown()

    async def __aenter__(self) -> "InferenceServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- request path ------------------------------------------------------

    async def submit(self, index: int) -> Dict[str, Any]:
        """One inference request; resolves when its batch completes."""
        if self._batcher is None:
            raise ConfigurationError("server not started (use 'async with')")
        fut: "asyncio.Future[dict]" = asyncio.get_running_loop().create_future()
        self._queue.append((index, time.perf_counter(), fut))
        self._wake.set()
        return await fut

    def stats(self) -> Dict[str, Any]:
        return {
            "design": self.design.name,
            "served": self._served,
            "queued": len(self._queue),
            "batches": len(self._batches),
            "target_batch": self.target_batch,
            "max_batch": self.max_batch,
        }

    # -- admission ---------------------------------------------------------

    async def _admission_loop(self) -> None:
        while True:
            while not self._queue:
                self._wake.clear()
                await self._wake.wait()
            oldest = self._queue[0][1]
            deadline = oldest + self.max_wait_s
            while (
                len(self._queue) < self.target_batch
                and time.perf_counter() < deadline
            ):
                self._wake.clear()
                try:
                    await asyncio.wait_for(
                        self._wake.wait(),
                        timeout=deadline - time.perf_counter(),
                    )
                except asyncio.TimeoutError:
                    break
            take = min(self.max_batch, len(self._queue))
            sealed, self._queue = self._queue[:take], self._queue[take:]
            replica = min(
                range(self.fleet.n_replicas),
                key=lambda r: (self._inflight[r], r),
            )
            asyncio.create_task(self._run_batch(replica, sealed))

    async def _run_batch(
        self,
        replica: int,
        sealed: List[Tuple[int, float, "asyncio.Future[dict]"]],
    ) -> None:
        indices = [idx for idx, _, _ in sealed]
        self._inflight[replica] += 1
        dispatch = time.perf_counter()
        loop = asyncio.get_running_loop()
        try:
            if self.fleet.mode == "inline":
                # Inline submit simulates synchronously; keep the event
                # loop responsive by pushing it to a thread.
                result = await loop.run_in_executor(
                    None,
                    lambda: self.fleet.submit(replica, indices).result(),
                )
            else:
                result = await asyncio.wrap_future(
                    self.fleet.submit(replica, indices)
                )
        except Exception as exc:  # pragma: no cover - surfaced per request
            for _, _, fut in sealed:
                if not fut.done():
                    fut.set_exception(exc)
            return
        finally:
            self._inflight[replica] -= 1
        done = time.perf_counter()
        self._batches.append(len(sealed))
        for pos, (idx, arrived, fut) in enumerate(sealed):
            self._served += 1
            if not fut.done():
                fut.set_result(
                    {
                        "request": idx,
                        "digest": result["digests"][pos],
                        "batch": len(sealed),
                        "replica": replica,
                        "scheduler": result["scheduler"],
                        "cycles": result["cycles"],
                        "queue_us": round((dispatch - arrived) * 1e6, 1),
                        "service_us": round((done - dispatch) * 1e6, 1),
                    }
                )


async def serve_tcp(
    server: InferenceServer,
    host: str = "127.0.0.1",
    port: int = 8707,
) -> "asyncio.AbstractServer":
    """Expose the server as a JSON-lines TCP endpoint.

    One request per line: ``{"index": <int>[, "id": <any>]}`` answered by
    the response dict (plus the echoed ``id``); ``{"cmd": "stats"}``
    answers with :meth:`InferenceServer.stats`. Malformed lines get an
    ``{"error": ...}`` reply instead of a dropped connection.
    """

    async def handle(reader, writer):
        async def answer(payload: Dict[str, Any]) -> None:
            writer.write((json.dumps(payload) + "\n").encode())
            await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    msg = json.loads(line)
                except json.JSONDecodeError as exc:
                    await answer({"error": f"bad json: {exc}"})
                    continue
                if msg.get("cmd") == "stats":
                    await answer(server.stats())
                    continue
                if "index" not in msg:
                    await answer({"error": "missing 'index'"})
                    continue
                response = await server.submit(int(msg["index"]))
                if "id" in msg:
                    response = {"id": msg["id"], **response}
                await answer(response)
        finally:
            writer.close()

    return await asyncio.start_server(handle, host, port)
