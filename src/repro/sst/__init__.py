"""Streaming-Stencil-Timestep memory systems (Section II-B / IV-A).

The per-layer *memory structure*: window geometry, behavioral line-buffer
actor, the literal filter-chain rendition, and buffer-sizing math for the
resource model.
"""

from repro.sst.block import (
    BlockMergeActor,
    BlockPlan,
    BlockSpec,
    BlockSplitActor,
    plan_blocks,
    reference_block_stream,
    tile_coords,
)
from repro.sst.filter_chain import (
    TapFilter,
    WindowAssembler,
    build_filter_chain,
    fifo_depths,
    tap_offsets,
)
from repro.sst.line_buffer import SlidingWindowActor, completion_map, reference_windows
from repro.sst.padding import PadInserter
from repro.sst.sizing import (
    BufferBudget,
    bandwidth_memory_tradeoff,
    chain_words,
    layer_buffer_budget,
)
from repro.sst.window import WindowSpec

__all__ = [
    "BlockMergeActor",
    "BlockPlan",
    "BlockSpec",
    "BlockSplitActor",
    "BufferBudget",
    "PadInserter",
    "SlidingWindowActor",
    "TapFilter",
    "WindowAssembler",
    "WindowSpec",
    "bandwidth_memory_tradeoff",
    "build_filter_chain",
    "chain_words",
    "completion_map",
    "fifo_depths",
    "layer_buffer_budget",
    "plan_blocks",
    "reference_block_stream",
    "reference_windows",
    "tap_offsets",
    "tile_coords",
]
