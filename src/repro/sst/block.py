"""Block-convolution geometry and the tile split/merge streaming actors.

Block convolution (arXiv:2105.08937) bounds a conv layer's on-chip line
buffers by tiling the output feature map into ``th`` x ``tw`` blocks and
convolving each block independently. This reproduction uses the *exact*
(halo-overlap) variant: every tile's input block carries the halo rows and
columns it shares with its neighbours, so each output value is computed
from precisely the same window of input pixels — and therefore the same
bits — as the unblocked full-buffering layer. Only the *order* of output
coordinates changes (tile-major instead of raster); the merge stage
restores raster order, so digests are preserved end to end.

Geometry (:func:`plan_blocks`)
------------------------------
For a window ``(kh, kw, stride s, pad p)`` over an ``h x w`` feature map
with output ``oh x ow``:

* the output is cut into ``gh x gw`` tiles of ``th x tw`` coordinates
  (``gh = ceil(oh / th)``); boundary tiles keep the uniform shape and
  *overhang* past the real output — overhang coordinates are computed on
  zero-filled data and dropped by the merge stage, keeping all SDF rates
  static;
* tile ``(bi, bj)`` reads the uniform input block
  ``ih x iw = ((th-1)*s + kh) x ((tw-1)*s + kw)`` whose origin in the
  *padded* input is ``(bi*th*s, bj*tw*s)``; pixels outside the real image
  (zero padding or overhang) are zero-filled;
* adjacent input blocks overlap by the halo ``max(0, kh - s)`` rows
  (``max(0, kw - s)`` columns) — exactly the pixels a window straddling
  the tile boundary needs. Shrinking the halo by one row (see the
  ``shave_h`` test hook on :class:`BlockSplitActor`) zero-fills real
  pixels and provably changes the output digest.

The split/merge actors model the off-chip staging a real block-conv
accelerator performs in DDR: they double-buffer one full feature map and
re-emit it in tile order (split) or raster order (merge). The *on-chip*
win is that the per-tile sliding-window stage between them buffers
``(kh-1)`` lines of ``iw`` pixels instead of ``w`` pixels — the blocked
sizing rule in :mod:`repro.core.network_design`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

import numpy as np

from repro.config import DTYPE
from repro.dataflow.actor import Actor
from repro.dataflow.events import Gate
from repro.errors import ConfigurationError
from repro.sst.window import WindowSpec


@dataclass(frozen=True)
class BlockSpec:
    """Requested output-tile shape for a blocked conv layer.

    ``th`` x ``tw`` output coordinates per tile; ``tw`` defaults to ``th``.
    The planner clamps tiles to the layer's real output shape, so a spec
    larger than the output degenerates to a single tile.
    """

    th: int
    tw: Optional[int] = None

    def __post_init__(self) -> None:
        if self.tw is None:
            object.__setattr__(self, "tw", self.th)
        if self.th < 1 or (self.tw is not None and self.tw < 1):
            raise ConfigurationError(
                f"block tile must be >= 1x1, got {self.th}x{self.tw}"
            )

    def describe(self) -> str:
        return f"block {self.th}x{self.tw}"


@dataclass(frozen=True)
class BlockPlan:
    """Fully-resolved blocking geometry for one conv layer instance.

    Produced by :func:`plan_blocks`; consumed by the builder, the perf
    model, the graph rules, and the compiled kernels — all four read the
    same numbers, which is what keeps Eq. 4 accounting, elaboration, and
    execution in lockstep.
    """

    window: WindowSpec  #: original (padded) layer window
    tile_window: WindowSpec  #: per-tile window: same kernel/stride, pad=0
    h: int  #: real input height
    w: int  #: real input width
    oh: int  #: real output height
    ow: int  #: real output width
    th: int  #: output tile height (clamped)
    tw: int  #: output tile width (clamped)
    gh: int  #: tile-grid rows
    gw: int  #: tile-grid cols
    ih: int  #: input block height (th-1)*s + kh
    iw: int  #: input block width (tw-1)*s + kw
    halo_h: int  #: row overlap between vertically adjacent blocks
    halo_w: int  #: column overlap between horizontally adjacent blocks

    @property
    def n_tiles(self) -> int:
        return self.gh * self.gw

    @property
    def coords(self) -> int:
        """Output coordinates *computed* per image (incl. overhang)."""
        return self.n_tiles * self.th * self.tw

    @property
    def in_words(self) -> int:
        """Input words streamed per image per FM (incl. halo re-reads)."""
        return self.n_tiles * self.ih * self.iw

    @property
    def out_words(self) -> int:
        """Words the cores emit per image per FM (incl. overhang).

        This — not ``oh * ow`` — is what crosses a cut placed at a blocked
        layer's core outputs (upstream of the merge stages): overhang
        coordinates travel the link and are only dropped by the merge on
        the far device.
        """
        return self.coords

    @property
    def overhang_h(self) -> int:
        return self.gh * self.th - self.oh

    @property
    def overhang_w(self) -> int:
        return self.gw * self.tw - self.ow

    def describe(self) -> str:
        return (
            f"{self.gh}x{self.gw} tiles of {self.th}x{self.tw} "
            f"(blocks {self.ih}x{self.iw}, halo {self.halo_h}x{self.halo_w})"
        )


def plan_blocks(window: WindowSpec, h: int, w: int, block: BlockSpec) -> BlockPlan:
    """Resolve a :class:`BlockSpec` into concrete tiling geometry."""
    oh, ow = window.out_shape(h, w)
    th = min(int(block.th), oh)
    tw = min(int(block.tw or block.th), ow)
    gh = -(-oh // th)
    gw = -(-ow // tw)
    s = window.stride
    ih = (th - 1) * s + window.kh
    iw = (tw - 1) * s + window.kw
    tile_window = WindowSpec(kh=window.kh, kw=window.kw, stride=s, pad=0)
    plan = BlockPlan(
        window=window,
        tile_window=tile_window,
        h=int(h),
        w=int(w),
        oh=oh,
        ow=ow,
        th=th,
        tw=tw,
        gh=gh,
        gw=gw,
        ih=ih,
        iw=iw,
        halo_h=max(0, window.kh - s),
        halo_w=max(0, window.kw - s),
    )
    if tile_window.out_shape(ih, iw) != (th, tw):
        raise ConfigurationError(  # pragma: no cover - geometry identity
            f"inconsistent block plan: tile window yields "
            f"{tile_window.out_shape(ih, iw)}, expected {(th, tw)}"
        )
    return plan


def tile_coords(plan: BlockPlan) -> List[Optional[Tuple[int, int]]]:
    """Output coordinate per blocked stream position, ``None`` = overhang.

    Position order is the split/core emission order: tile-major
    ``(bi, bj)``, raster within the tile. The merge stage keeps exactly
    the non-``None`` entries and re-sorts them into raster order.
    """
    out: List[Optional[Tuple[int, int]]] = []
    for bi in range(plan.gh):
        for bj in range(plan.gw):
            for ty in range(plan.th):
                for tx in range(plan.tw):
                    oy = bi * plan.th + ty
                    ox = bj * plan.tw + tx
                    out.append((oy, ox) if oy < plan.oh and ox < plan.ow else None)
    return out


def reference_block_stream(
    image: np.ndarray, plan: BlockPlan, shave_h: int = 0, shave_w: int = 0
) -> List[float]:
    """Golden split-stream for one single-FM image (tests only).

    Returns the pixel values a :class:`BlockSplitActor` emits for one
    feature map, in emission order. ``shave_h``/``shave_w`` mirror the
    actor's halo-shaving test hook.
    """
    img = np.asarray(image, dtype=DTYPE)
    if img.shape != (plan.h, plan.w):
        raise ConfigurationError(
            f"expected {(plan.h, plan.w)} image, got {img.shape}"
        )
    pad = plan.window.pad
    out: List[float] = []
    for bi in range(plan.gh):
        for bj in range(plan.gw):
            oy = bi * plan.th * plan.window.stride
            ox = bj * plan.tw * plan.window.stride
            for ty in range(plan.ih):
                for tx in range(plan.iw):
                    y = oy + ty - pad
                    x = ox + tx - pad
                    shaved = ty >= plan.ih - shave_h or tx >= plan.iw - shave_w
                    if shaved or not (0 <= y < plan.h and 0 <= x < plan.w):
                        out.append(0.0)
                    else:
                        out.append(float(img[y, x]))
    return out


class BlockSplitActor(Actor):
    """Re-emits a raster FM-minor pixel stream as halo-overlapped tiles.

    Models the DDR-staged tile reader of a block-conv accelerator: one
    full feature-map set is double-buffered off-chip, then re-read in
    tile-major order with the halo rows/columns each tile needs. Padding
    is resolved here (the per-tile window runs with ``pad=0``), so pixels
    outside the real image are emitted as zeros.

    Ports: ``in`` — ``h*w*group`` beats per image (raster, FM-minor);
    ``out`` — ``n_tiles*ih*iw*group`` beats per image (tile-major, raster
    within the tile, FM-minor).

    ``shave_h``/``shave_w`` are a TEST-ONLY hook: they zero-fill the last
    rows/columns of *every* emitted tile, simulating a halo narrowed by
    that amount while keeping all rates (and thus liveness) intact — the
    halo-minimality property test shows any shave changes the digest.
    """

    def __init__(
        self,
        name: str,
        plan: BlockPlan,
        group: int = 1,
        images: int = 1,
        shave_h: int = 0,
        shave_w: int = 0,
    ):
        super().__init__(name)
        if group < 1:
            raise ConfigurationError(f"{name!r}: group must be >= 1, got {group}")
        if images < 1:
            raise ConfigurationError(f"{name!r}: images must be >= 1, got {images}")
        if not (0 <= shave_h <= plan.ih and 0 <= shave_w <= plan.iw):
            raise ConfigurationError(
                f"{name!r}: shave {shave_h}x{shave_w} outside block "
                f"{plan.ih}x{plan.iw}"
            )
        self.plan = plan
        self.group = int(group)
        self.images = int(images)
        self.shave_h = int(shave_h)
        self.shave_w = int(shave_w)

    @property
    def beats_in_per_image(self) -> int:
        return self.plan.h * self.plan.w * self.group

    @property
    def beats_out_per_image(self) -> int:
        return self.plan.in_words * self.group

    def processes(self):
        # Same receiver/emitter split as SlidingWindowActor: the receiver
        # fills one full feature-map buffer per image (the off-chip stage),
        # the emitter re-reads completed buffers in tile order.
        self._ready: deque = deque()
        self._gate = Gate()
        return [self._receiver(), self._emitter()]

    def _receiver(self) -> Generator:
        plan = self.plan
        in_ch = self.input("in")
        group = self.group
        pop_wait = in_ch.pop_wait()
        ready_append = self._ready.append
        for _ in range(self.images):
            buf = np.zeros((group, plan.h, plan.w), dtype=DTYPE)
            for y in range(plan.h):
                for x in range(plan.w):
                    for g in range(group):
                        while not in_ch.can_pop():
                            self.blocked_reason = f"split: {in_ch.name} empty"
                            in_ch.note_empty_stall()
                            yield pop_wait
                        self.blocked_reason = None
                        buf[g, y, x] = in_ch.pop()
                        yield
            ready_append(buf)
            self._gate.notify()

    def _emitter(self) -> Generator:
        plan = self.plan
        out_ch = self.output("out")
        group = self.group
        push_wait = out_ch.push_wait()
        pad = plan.window.pad
        stride = plan.window.stride
        h, w = plan.h, plan.w
        shave_y = plan.ih - self.shave_h
        shave_x = plan.iw - self.shave_w
        ready = self._ready
        for _ in range(self.images):
            while not ready:
                self.blocked_reason = "split: waiting for image"
                yield self._gate.wait()
            buf = ready.popleft()
            for bi in range(plan.gh):
                oy = bi * plan.th * stride - pad
                for bj in range(plan.gw):
                    ox = bj * plan.tw * stride - pad
                    for ty in range(plan.ih):
                        y = oy + ty
                        row_ok = 0 <= y < h and ty < shave_y
                        for tx in range(plan.iw):
                            x = ox + tx
                            if row_ok and 0 <= x < w and tx < shave_x:
                                row = buf[:, y, x]
                            else:
                                row = None
                            for g in range(group):
                                while not out_ch.can_push():
                                    self.blocked_reason = (
                                        f"split: {out_ch.name} full"
                                    )
                                    out_ch.note_full_stall()
                                    yield push_wait
                                self.blocked_reason = None
                                out_ch.push(
                                    DTYPE(0.0) if row is None else row[g]
                                )
                                yield


class BlockMergeActor(Actor):
    """Re-orders tile-major conv results into a raster FM-minor stream.

    Inverse of :class:`BlockSplitActor` on the output side: collects the
    ``n_tiles*th*tw`` computed coordinates of one image (tile-major, the
    core's emission order), drops overhang coordinates past the real
    ``oh x ow`` output, and re-emits raster order — bit-identical to the
    unblocked layer's stream.

    Ports: ``in`` — ``n_tiles*th*tw*group`` beats per image; ``out`` —
    ``oh*ow*group`` beats per image.
    """

    def __init__(self, name: str, plan: BlockPlan, group: int = 1, images: int = 1):
        super().__init__(name)
        if group < 1:
            raise ConfigurationError(f"{name!r}: group must be >= 1, got {group}")
        if images < 1:
            raise ConfigurationError(f"{name!r}: images must be >= 1, got {images}")
        self.plan = plan
        self.group = int(group)
        self.images = int(images)

    @property
    def beats_in_per_image(self) -> int:
        return self.plan.coords * self.group

    @property
    def beats_out_per_image(self) -> int:
        return self.plan.oh * self.plan.ow * self.group

    def processes(self):
        self._ready: deque = deque()
        self._gate = Gate()
        return [self._receiver(), self._emitter()]

    def _receiver(self) -> Generator:
        plan = self.plan
        in_ch = self.input("in")
        group = self.group
        pop_wait = in_ch.pop_wait()
        ready_append = self._ready.append
        for _ in range(self.images):
            # Uniform tile grid: overhang coordinates land past (oh, ow)
            # and are simply never read back by the emitter.
            buf = np.zeros((group, plan.gh * plan.th, plan.gw * plan.tw), dtype=DTYPE)
            for bi in range(plan.gh):
                ys = bi * plan.th
                for bj in range(plan.gw):
                    xs = bj * plan.tw
                    for ty in range(plan.th):
                        for tx in range(plan.tw):
                            for g in range(group):
                                while not in_ch.can_pop():
                                    self.blocked_reason = (
                                        f"merge: {in_ch.name} empty"
                                    )
                                    in_ch.note_empty_stall()
                                    yield pop_wait
                                self.blocked_reason = None
                                buf[g, ys + ty, xs + tx] = in_ch.pop()
                                yield
            ready_append(buf)
            self._gate.notify()

    def _emitter(self) -> Generator:
        plan = self.plan
        out_ch = self.output("out")
        group = self.group
        push_wait = out_ch.push_wait()
        ready = self._ready
        for _ in range(self.images):
            while not ready:
                self.blocked_reason = "merge: waiting for image"
                yield self._gate.wait()
            buf = ready.popleft()
            for y in range(plan.oh):
                for x in range(plan.ow):
                    row = buf[:, y, x]
                    for g in range(group):
                        while not out_ch.can_push():
                            self.blocked_reason = f"merge: {out_ch.name} full"
                            out_ch.note_full_stall()
                            yield push_wait
                        self.blocked_reason = None
                        out_ch.push(row[g])
                        yield
