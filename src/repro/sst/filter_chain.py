"""Literal SST filter chain: per-tap filter actors connected by FIFOs.

This is the faithful, actor-per-filter rendition of the memory system of a
Streaming Stencil Timestep (Section II-B and Figure 2): a chain of *filters*
interconnected via FIFO channels, one chain per distinct input stream. Each
filter forwards every element to the next FIFO in the chain and, once the
stream has advanced far enough (its tap offset), also sends the element to
the computing system. The FIFO depths between consecutive taps equal the
offset differences, so the total buffered data is exactly the *full
buffering* amount — data is read once from off-chip memory and kept on chip
until every dependent computation has completed.

The behavioral :class:`~repro.sst.line_buffer.SlidingWindowActor` is the
fast equivalent used in network builds; this module exists to demonstrate
and property-test the equivalence (see ``tests/sst/test_equivalence.py``).
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import DTYPE
from repro.dataflow.actor import Actor
from repro.dataflow.events import CHARGE_NONE, POP, PUSH, ChannelWait
from repro.dataflow.graph import DataflowGraph
from repro.errors import ConfigurationError
from repro.sst.window import WindowSpec


def tap_offsets(spec: WindowSpec, w_padded: int, group: int = 1) -> List[int]:
    """Stream-beat offsets of every tap for ``group`` interleaved FMs.

    With ``group`` feature maps interleaved per pixel, each pixel occupies
    ``group`` consecutive beats, so the raster offsets scale by ``group``
    (the paper: "enlarging the FIFO size to fit the data of all this
    channels").
    """
    return [o * group for o in spec.linear_offsets(w_padded)]


def fifo_depths(spec: WindowSpec, w_padded: int, group: int = 1) -> List[int]:
    """Full-buffering FIFO depths between consecutive taps of the chain.

    ``depths[i]`` is the FIFO between tap ``i`` and tap ``i+1`` (taps sorted
    by decreasing offset, i.e. in stream-arrival order). Their sum plus the
    window registers is the total on-chip footprint of the chain.
    """
    offs = sorted(tap_offsets(spec, w_padded, group), reverse=True)
    return [offs[i] - offs[i + 1] for i in range(len(offs) - 1)]


class TapFilter(Actor):
    """One filter of the chain.

    Forwards every stream element downstream (if any) and taps to the
    computing system the elements its window access needs: within each
    image of ``beats_per_image`` elements, those with local index in
    ``[skip, skip + steps)``. Forward and tap happen in the same cycle
    (the hardware filter does exactly this with combinational routing plus
    a FIFO write).

    Ports: ``in`` (from previous FIFO), ``out`` (next FIFO, optional),
    ``tap`` (to the window assembler).
    """

    def __init__(
        self,
        name: str,
        skip: int,
        beats_per_image: int,
        steps: int,
        images: int,
        has_downstream: bool,
    ):
        super().__init__(name)
        if skip < 0:
            raise ConfigurationError(f"{name!r}: skip must be >= 0")
        if skip + steps > beats_per_image:
            raise ConfigurationError(
                f"{name!r}: skip {skip} + steps {steps} exceeds image beats "
                f"{beats_per_image}"
            )
        self.skip = int(skip)
        self.beats_per_image = int(beats_per_image)
        self.steps = int(steps)
        self.images = int(images)
        self.has_downstream = bool(has_downstream)

    def run(self) -> Generator:
        in_ch = self.input("in")
        tap_ch = self.output("tap")
        out_ch = self.output("out") if self.has_downstream else None
        base = ((POP, in_ch),)
        if out_ch is not None:
            base += ((PUSH, out_ch),)
        fwd_park = ChannelWait(base, CHARGE_NONE)
        tap_park = ChannelWait(base + ((PUSH, tap_ch),), CHARGE_NONE)
        for idx in range(self.beats_per_image * self.images):
            local = idx % self.beats_per_image
            tapping = self.skip <= local < self.skip + self.steps
            while True:
                ok = in_ch.can_pop()
                if ok and out_ch is not None:
                    ok = out_ch.can_push()
                if ok and tapping:
                    ok = tap_ch.can_push()
                if ok:
                    break
                self.blocked_reason = f"filter[{idx}]: waiting on FIFO"
                yield tap_park if tapping else fwd_park
            self.blocked_reason = None
            v = in_ch.pop()
            if out_ch is not None:
                out_ch.push(v)
            if tapping:
                tap_ch.push(v)
            yield


class WindowAssembler(Actor):
    """Pops one aligned value per tap per step and emits valid windows.

    Step ``i`` of the assembly yields the raw window whose origin is stream
    beat ``i``: FM ``i % group`` at padded coordinate ``i // group``. Only
    windows at valid output positions (inside the padded image, aligned to
    the stride) are forwarded — this is the boundary handling that
    distinguishes a convolution from a full stencil sweep.

    Ports: ``tap0 .. tap{T-1}`` in, ``out`` (``(kh, kw)`` arrays).
    """

    def __init__(
        self,
        name: str,
        spec: WindowSpec,
        h: int,
        w: int,
        group: int = 1,
        images: int = 1,
    ):
        super().__init__(name)
        self.spec = spec
        self.h = int(h)
        self.w = int(w)
        self.group = int(group)
        self.images = int(images)
        self.hp, self.wp = spec.padded_shape(self.h, self.w)
        self.offsets = tap_offsets(spec, self.wp, self.group)
        self.n_taps = len(self.offsets)
        beats = self.hp * self.wp * self.group
        self.steps_per_image = beats - max(self.offsets)

    def run(self) -> Generator:
        taps = [self.input(f"tap{t}") for t in range(self.n_taps)]
        out_ch = self.output("out")
        taps_park = ChannelWait(tuple((POP, t) for t in taps), CHARGE_NONE)
        spec = self.spec
        for _ in range(self.images):
            for i in range(self.steps_per_image):
                g = i % self.group
                coord = i // self.group
                y, x = divmod(coord, self.wp)
                valid = (
                    y % spec.stride == 0
                    and x % spec.stride == 0
                    and y + spec.kh <= self.hp
                    and x + spec.kw <= self.wp
                )
                while not all(t.can_pop() for t in taps):
                    self.blocked_reason = "assembler: taps not ready"
                    yield taps_park
                if valid:
                    while not out_ch.can_push():
                        self.blocked_reason = f"assembler: {out_ch.name} full"
                        out_ch.note_full_stall()
                        yield out_ch.push_wait()
                self.blocked_reason = None
                values = [t.pop() for t in taps]
                if valid:
                    win = np.asarray(values, dtype=DTYPE).reshape(spec.kh, spec.kw)
                    out_ch.push(win)
                yield


def build_filter_chain(
    graph: DataflowGraph,
    name: str,
    spec: WindowSpec,
    h: int,
    w: int,
    group: int = 1,
    images: int = 1,
) -> Tuple[TapFilter, WindowAssembler]:
    """Assemble the literal filter chain into ``graph``.

    Returns ``(head_filter, assembler)``. The caller connects its padded
    pixel stream (raster order, FM-minor interleaved, padding included) to
    ``head_filter`` port ``"in"`` and reads ``(kh, kw)`` windows from
    ``assembler`` port ``"out"``.

    The inter-filter FIFOs are sized by :func:`fifo_depths` — the minimum
    for deadlock-free full buffering; tap FIFOs get the small default
    capacity since the assembler drains them at stream rate.
    """
    hp, wp = spec.padded_shape(h, w)
    offs = sorted(tap_offsets(spec, wp, group), reverse=True)
    beats_per_image = hp * wp * group
    n = len(offs)
    assembler = WindowAssembler(f"{name}.asm", spec, h, w, group, images)
    graph.add_actor(assembler)
    filters: List[TapFilter] = []
    for i, off in enumerate(offs):
        f = TapFilter(
            f"{name}.f{i}",
            skip=off,
            beats_per_image=beats_per_image,
            steps=assembler.steps_per_image,
            images=images,
            has_downstream=(i < n - 1),
        )
        graph.add_actor(f)
        filters.append(f)
    depths = fifo_depths(spec, wp, group)
    for i in range(n - 1):
        # +1: a FIFO of depth d delays by d only once primed; capacity d+1
        # lets the producer stay at full rate while the consumer lags by d.
        graph.connect(
            filters[i], "out", filters[i + 1], "in", capacity=depths[i] + 1,
            name=f"{name}.fifo{i}",
        )
    # Tap index within the assembler follows the *unsorted* offset order
    # (row-major taps); map sorted chain position back to tap index.
    unsorted = tap_offsets(spec, wp, group)
    taken = [False] * n
    for i, off in enumerate(offs):
        # Find the matching unsorted tap (offsets can repeat only if kernel
        # dims collide, which linear offsets never do).
        t = next(
            j for j, o in enumerate(unsorted) if o == off and not taken[j]
        )
        taken[t] = True
        graph.connect(
            filters[i], "tap", assembler, f"tap{t}",
            capacity=max(4, group + 1), name=f"{name}.tap{t}",
        )
    return filters[0], assembler
