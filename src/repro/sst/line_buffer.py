"""Behavioral sliding-window (line-buffer) actor.

:class:`SlidingWindowActor` is the behavioral model of the paper's per-port
*memory structure* (Figure 3): it consumes a raster-ordered pixel stream in
which ``group`` feature maps are interleaved per pixel, and produces the
corresponding ``kh`` x ``kw`` windows — one window beat per cycle, in
output-coordinate-major / feature-map-minor order, exactly the order the
computation core of Algorithm 1 expects.

Timing matches a real line buffer: a window is emitted only after its last
real pixel has been received, and the actor accepts at most one input beat
per cycle. (Internally the full image is retained for simplicity; the *real*
on-chip footprint — (kh-1) lines + kw pixels per feature map — is what
:mod:`repro.sst.sizing` reports to the resource model.)
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Generator, List, Tuple

import numpy as np

from repro.config import DTYPE
from repro.dataflow.actor import Actor
from repro.dataflow.events import Gate
from repro.errors import ConfigurationError
from repro.sst.window import WindowSpec


def completion_map(
    spec: WindowSpec, h: int, w: int
) -> Dict[Tuple[int, int], List[Tuple[int, int]]]:
    """Map each real pixel to the output coordinates emitted at its arrival.

    A window's data is complete when its bottom-right-most real
    (non-padding) pixel has arrived. With bottom/right zero padding, a
    later-raster window can complete *before* an earlier one (its real
    footprint ends higher up); hardware nevertheless emits windows in
    raster order, so the trigger pixels are closed under prefix-max over
    the window raster order — a padded window waits for the pixel that
    releases its predecessor. Windows sharing a trigger pixel are listed
    in raster order.
    """
    oh, ow = spec.out_shape(h, w)
    triggers: List[Tuple[int, int]] = []
    for oy in range(oh):
        for ox in range(ow):
            last_y = min(oy * spec.stride - spec.pad + spec.kh - 1, h - 1)
            last_x = min(ox * spec.stride - spec.pad + spec.kw - 1, w - 1)
            if last_y < 0 or last_x < 0:
                raise ConfigurationError(
                    f"window at ({oy},{ox}) contains no real pixel "
                    f"(h={h}, w={w}, {spec.describe()})"
                )
            triggers.append((last_y, last_x))
    # Raster-order emission: monotone closure of the trigger sequence.
    for i in range(1, len(triggers)):
        if triggers[i] < triggers[i - 1]:
            triggers[i] = triggers[i - 1]
    done: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for idx, trig in enumerate(triggers):
        done.setdefault(trig, []).append((idx // ow, idx % ow))
    return done


class SlidingWindowActor(Actor):
    """Streams ``kh`` x ``kw`` windows out of an interleaved pixel stream.

    Parameters
    ----------
    name: actor name.
    spec: window geometry (kernel, stride, pad).
    h, w: real (unpadded) input feature-map height and width.
    group: number of feature maps interleaved on the input port.
    images: number of images to process before finishing (>= 1).

    Ports
    -----
    ``in``  — one beat per cycle: pixel values, raster order, FM-minor.
    ``out`` — one beat per cycle: ``np.ndarray (kh, kw)`` windows, output
    coordinate-major, FM-minor.
    """

    def __init__(
        self,
        name: str,
        spec: WindowSpec,
        h: int,
        w: int,
        group: int = 1,
        images: int = 1,
    ):
        super().__init__(name)
        if group < 1:
            raise ConfigurationError(f"{name!r}: group must be >= 1, got {group}")
        if images < 1:
            raise ConfigurationError(f"{name!r}: images must be >= 1, got {images}")
        self.spec = spec
        self.h = int(h)
        self.w = int(w)
        self.group = int(group)
        self.images = int(images)
        self._completion = completion_map(spec, self.h, self.w)
        self.out_h, self.out_w = spec.out_shape(self.h, self.w)

    @property
    def windows_per_image(self) -> int:
        """Window beats emitted per image (coordinates x interleaved FMs)."""
        return self.out_h * self.out_w * self.group

    def processes(self):
        # The receiving pipeline and the emitting pipeline run concurrently,
        # coupled by an internal queue: exactly like the filter chain feeding
        # the window registers while the previous window drains.
        self._emit_queue: deque = deque()
        self._recv_done = False
        # Wakes the emitter when the receiver completes new windows.
        self._gate = Gate()
        return [self._receiver(), self._emitter()]

    def _receiver(self) -> Generator:
        spec = self.spec
        hp, wp = spec.padded_shape(self.h, self.w)
        in_ch = self.input("in")
        # Hot-loop locals: this loop runs once per input pixel beat.
        pad, stride, kh, kw = spec.pad, spec.stride, spec.kh, spec.kw
        group = self.group
        completion_get = self._completion.get
        emit_append = self._emit_queue.append
        pop_wait = in_ch.pop_wait()
        for _ in range(self.images):
            # Padded, per-FM pixel buffers; padding pre-filled with zeros.
            buf = np.zeros((group, hp, wp), dtype=DTYPE)
            for y in range(self.h):
                yp = y + pad
                for x in range(self.w):
                    xp = x + pad
                    for g in range(group):
                        while not in_ch.can_pop():
                            self.blocked_reason = f"window: {in_ch.name} empty"
                            in_ch.note_empty_stall()
                            yield pop_wait
                        self.blocked_reason = None
                        buf[g, yp, xp] = in_ch.pop()
                        yield
                    # All FMs of (y, x) have arrived: enqueue every window
                    # this pixel completes, coordinate-major, FM-minor.
                    completed = completion_get((y, x))
                    if completed is not None:
                        for (oy, ox) in completed:
                            ys = oy * stride
                            xs = ox * stride
                            for g in range(group):
                                emit_append(
                                    buf[g, ys : ys + kh, xs : xs + kw].copy()
                                )
                        self._gate.notify()
        self._recv_done = True

    def _emitter(self) -> Generator:
        out_ch = self.output("out")
        emit_queue = self._emit_queue
        push_wait = out_ch.push_wait()
        total = self.windows_per_image * self.images
        sent = 0
        while sent < total:
            while not emit_queue:
                self.blocked_reason = "window: no completed window yet"
                yield self._gate.wait()
            while not out_ch.can_push():
                self.blocked_reason = f"window: {out_ch.name} full"
                out_ch.note_full_stall()
                yield push_wait
            self.blocked_reason = None
            out_ch.push(emit_queue.popleft())
            sent += 1
            yield


def reference_windows(
    image: np.ndarray, spec: WindowSpec
) -> List[np.ndarray]:
    """Golden (non-streaming) window extraction for one single-FM image.

    Returns the ``(kh, kw)`` windows in output raster order; used by tests
    to validate both the behavioral actor and the literal filter chain.
    """
    img = np.asarray(image, dtype=DTYPE)
    if img.ndim != 2:
        raise ConfigurationError(f"expected 2-D image, got shape {img.shape}")
    h, w = img.shape
    padded = np.pad(img, spec.pad)
    oh, ow = spec.out_shape(h, w)
    out = []
    for oy in range(oh):
        for ox in range(ow):
            ys = oy * spec.stride
            xs = ox * spec.stride
            out.append(padded[ys : ys + spec.kh, xs : xs + spec.kw].copy())
    return out
