"""Zero-padding injection for literal filter chains.

The literal SST chain consumes the *padded* raster stream (its tap
offsets are computed over the padded width). The behavioral line buffer
synthesizes padding internally; when elaborating with literal chains, a
:class:`PadInserter` sits in front of the chain and weaves the zero beats
into the stream — one beat per cycle, zeros generated without consuming
input, exactly what a small padding FSM does in hardware.
"""

from __future__ import annotations

from typing import Generator

from repro.config import DTYPE
from repro.dataflow.actor import Actor
from repro.dataflow.events import CHARGE_NONE, POP, PUSH, ChannelWait
from repro.errors import ConfigurationError

_ZERO = DTYPE(0.0)


class PadInserter(Actor):
    """Expands an ``h x w`` FM-interleaved stream with a zero border.

    Ports: ``in`` (real pixels), ``out`` (padded raster stream).

    Parameters
    ----------
    h, w: real feature-map size.
    pad: zero border width on every side.
    group: feature maps interleaved per pixel.
    images: images to process.
    """

    def __init__(self, name: str, h: int, w: int, pad: int, group: int = 1,
                 images: int = 1):
        super().__init__(name)
        if min(h, w, pad, group, images) < 1 and pad != 0:
            raise ConfigurationError(
                f"{name!r}: h, w, group, images must be >= 1 and pad >= 0"
            )
        if pad < 0:
            raise ConfigurationError(f"{name!r}: pad must be >= 0, got {pad}")
        self.h, self.w, self.pad = int(h), int(w), int(pad)
        self.group, self.images = int(group), int(images)

    def run(self) -> Generator:
        in_ch = self.input("in")
        out_ch = self.output("out")
        real_park = ChannelWait(((PUSH, out_ch), (POP, in_ch)), CHARGE_NONE)
        pad_park = ChannelWait(((PUSH, out_ch),), CHARGE_NONE)
        p = self.pad
        hp, wp = self.h + 2 * p, self.w + 2 * p
        for _ in range(self.images):
            for y in range(hp):
                for x in range(wp):
                    real = p <= y < p + self.h and p <= x < p + self.w
                    for _g in range(self.group):
                        while True:
                            ok = out_ch.can_push()
                            if ok and real:
                                ok = in_ch.can_pop()
                            if ok:
                                break
                            self.blocked_reason = "pad: waiting on stream"
                            yield real_park if real else pad_park
                        self.blocked_reason = None
                        out_ch.push(in_ch.pop() if real else _ZERO)
                        yield
