"""On-chip buffer sizing for SST memory systems.

Computes, without simulating, the storage an SST-style memory structure
needs: the *full buffering* footprint (data read once from off-chip memory
and held until all dependent computations complete) and the
memory/bandwidth trade-off of Cattaneo et al. (TACO 2016, ref. [18] of the
paper): replicating the input stream over ``r`` ports divides the per-port
buffer at the cost of ``r`` times the input bandwidth.

These numbers feed :mod:`repro.core.resource_model` (BRAM estimation for
Table I).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError
from repro.sst.window import WindowSpec


@dataclass(frozen=True)
class BufferBudget:
    """Storage requirement of one layer's memory structure, in elements."""

    #: FIFO words for full buffering across all input port chains.
    fifo_words: int
    #: Window registers (kh*kw per chain) — register slices, not BRAM.
    window_registers: int
    #: Number of independent filter chains (one per input port).
    chains: int

    @property
    def total_words(self) -> int:
        """Total on-chip words (FIFO + registers)."""
        return self.fifo_words + self.window_registers


def chain_words(spec: WindowSpec, w: int, group: int = 1) -> int:
    """Full-buffering words of a single chain over a width-``w`` input.

    ``(kh-1) * w_padded + kw`` raster positions, times the ``group``
    feature maps interleaved on the port (the paper's FIFO enlargement for
    the ``OUT_PORTS(i-1) > IN_PORTS(i)`` case).
    """
    _, wp = spec.padded_shape(1, w)
    return spec.footprint(wp) * group


def layer_buffer_budget(
    spec: WindowSpec,
    w: int,
    in_fm: int,
    in_ports: int,
) -> BufferBudget:
    """Buffer budget of a layer's whole memory structure.

    Parameters
    ----------
    spec: window geometry of the layer.
    w: input feature-map width.
    in_fm: number of input feature maps.
    in_ports: number of physical input ports (chains).
    """
    if in_ports < 1:
        raise ConfigurationError(f"in_ports must be >= 1, got {in_ports}")
    if in_fm % in_ports != 0:
        raise ConfigurationError(
            f"in_fm ({in_fm}) must be a multiple of in_ports ({in_ports})"
        )
    group = in_fm // in_ports
    per_chain = chain_words(spec, w, group)
    regs = spec.kh * spec.kw * in_ports
    return BufferBudget(
        fifo_words=per_chain * in_ports,
        window_registers=regs,
        chains=in_ports,
    )


def chain_fifo_capacities(spec: WindowSpec, w: int, group: int = 1) -> List[int]:
    """Channel capacities a literal filter chain must use, tap to tap.

    ``fifo_depths`` gives the full-buffering delay each inter-filter FIFO
    provides; the elaborated channel needs one extra slot so the producer
    can stay at full rate while the consumer lags by the whole depth
    (mirrors ``build_filter_chain``). The static verifier checks elaborated
    chains against exactly these capacities.
    """
    from repro.sst.filter_chain import fifo_depths  # local: avoid heavy import

    _, wp = spec.padded_shape(1, w)
    return [d + 1 for d in fifo_depths(spec, wp, group)]


def chain_channel_words(spec: WindowSpec, w: int, group: int = 1) -> int:
    """Total elaborated channel capacity of one full-buffering chain.

    What the literal elaboration actually provisions: the
    :func:`chain_fifo_capacities` inter-filter FIFOs plus one
    ``max(4, group + 1)``-deep tap channel per filter (mirrors
    ``build_filter_chain``). This is the like-for-like baseline for the
    certified depths — :func:`chain_words` measures the *data footprint*
    held, not the channel storage paid.
    """
    caps = chain_fifo_capacities(spec, w, group)
    tap_cap = max(4, group + 1)
    return sum(caps) + (len(caps) + 1) * tap_cap


def certified_chain_floors(
    spec: WindowSpec, w: int, group: int = 1
) -> List[int]:
    """Word-minimal chain FIFO capacities the depth prover certifies.

    The max-plus run-ahead recursion of :mod:`repro.analysis.depths`
    (``R_{n-1} = T_{n-1}``; ``R_i = min(T_i, R_{i+1} + c_i - d_i)``;
    deadlock-free iff every ``R_i >= 1``) admits the backward greedy
    assignment ``T_i = 1`` (unit tap channels), ``c_i = max(1, d_i)`` —
    each chain FIFO drops the ``+1`` in-flight slot full buffering pays
    for full-rate operation. Word-optimal for the recursion: spending a
    tap word buys back at most one word per chain FIFO but costs one
    per *tap*, and there are more taps than FIFOs.
    """
    from repro.sst.filter_chain import fifo_depths  # local: avoid heavy import

    _, wp = spec.padded_shape(1, w)
    return [max(1, d) for d in fifo_depths(spec, wp, group)]


def certified_chain_words(spec: WindowSpec, w: int, group: int = 1) -> int:
    """Total certified FIFO words of one chain (chain FIFOs + unit taps).

    Compare against :func:`chain_fifo_capacities` summed with the
    ``max(4, group+1)``-deep tap channels ``build_filter_chain`` uses:
    the certified plan runs every tap at capacity 1.
    """
    floors = certified_chain_floors(spec, w, group)
    n_taps = len(floors) + 1
    return sum(floors) + n_taps


def deadlock_shrink_targets(
    spec: WindowSpec, w: int, group: int = 1
) -> List[tuple]:
    """FIFO shrinks that *provably* deadlock a literal filter chain.

    Returns ``(fifo_index, shrunk_capacity)`` pairs, capacity always 1.
    For filter ``i`` to tap assembly step ``s`` it must consume stream
    beat ``off_i + s``; the next filter is bounded by its own tap FIFO to
    beat ``off_{i+1} + s + tap_cap``, so chain FIFO ``i`` must hold at
    least ``depth_i - tap_cap`` words (``tap_cap = max(4, group + 1)``,
    the tap channel capacity ``build_filter_chain`` uses). Shrinking to
    capacity 1 therefore jams every FIFO with
    ``depth_i >= tap_cap + 2`` — the margin keeps the bound robust at
    image boundaries, where a filter past its tapping window can run
    further ahead. Small inter-tap FIFOs (depth 1, between taps in the
    same kernel row) are excluded: the tap slack absorbs their whole
    skew at any legal capacity.

    The fault-injection agreement suite iterates these targets and
    asserts the simulator's deadlock names the same channel as the
    BUFFER.FULL diagnostic.
    """
    from repro.sst.filter_chain import fifo_depths  # local: avoid heavy import

    _, wp = spec.padded_shape(1, w)
    tap_cap = max(4, group + 1)
    return [
        (i, 1)
        for i, d in enumerate(fifo_depths(spec, wp, group))
        if d >= tap_cap + 2
    ]


def bandwidth_memory_tradeoff(
    spec: WindowSpec, w: int, in_fm: int, replicas: List[int]
) -> List[dict]:
    """Tabulate the memory/bandwidth trade-off of ref. [18].

    For each port count ``r`` in ``replicas`` (must divide ``in_fm``),
    report the total buffered words and the relative input bandwidth
    (``r`` parallel streams). More ports -> more aggregate window
    registers and bandwidth, same full-buffering FIFO total (each chain
    holds fewer interleaved FMs).
    """
    rows = []
    for r in replicas:
        b = layer_buffer_budget(spec, w, in_fm, r)
        rows.append(
            {
                "ports": r,
                "fifo_words": b.fifo_words,
                "window_registers": b.window_registers,
                "total_words": b.total_words,
                "relative_bandwidth": r,
            }
        )
    return rows
