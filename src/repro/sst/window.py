"""Window geometry for stencil/convolution memory systems.

A :class:`WindowSpec` captures the sliding-window access pattern of one
layer: kernel height/width, stride and zero padding (Section II-A's
hyper-parameters ``S`` and ``P``). It provides the shape arithmetic shared
by the functional library, the SST memory systems and the performance
model, so output-size computations exist in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigurationError, ShapeError


@dataclass(frozen=True)
class WindowSpec:
    """A 2-D sliding window: ``kh`` x ``kw`` kernel, stride, zero padding."""

    kh: int
    kw: int
    stride: int = 1
    pad: int = 0

    def __post_init__(self) -> None:
        if self.kh < 1 or self.kw < 1:
            raise ConfigurationError(f"kernel must be >= 1x1, got {self.kh}x{self.kw}")
        if self.stride < 1:
            raise ConfigurationError(f"stride must be >= 1, got {self.stride}")
        if self.pad < 0:
            raise ConfigurationError(f"pad must be >= 0, got {self.pad}")
        if self.pad >= self.kh or self.pad >= self.kw:
            # A window fully inside the padding would contain no real pixel.
            raise ConfigurationError(
                f"pad {self.pad} must be smaller than the kernel {self.kh}x{self.kw}"
            )

    # -- shape arithmetic ----------------------------------------------------

    def out_shape(self, h: int, w: int) -> Tuple[int, int]:
        """Output (height, width) when sliding over an ``h`` x ``w`` input."""
        oh = (h + 2 * self.pad - self.kh) // self.stride + 1
        ow = (w + 2 * self.pad - self.kw) // self.stride + 1
        if oh < 1 or ow < 1:
            raise ShapeError(
                f"window {self.kh}x{self.kw}/s{self.stride}/p{self.pad} does not "
                f"fit a {h}x{w} input"
            )
        return oh, ow

    def num_windows(self, h: int, w: int) -> int:
        """Number of output coordinates over an ``h`` x ``w`` input."""
        oh, ow = self.out_shape(h, w)
        return oh * ow

    def padded_shape(self, h: int, w: int) -> Tuple[int, int]:
        """Input shape after zero padding."""
        return h + 2 * self.pad, w + 2 * self.pad

    # -- stencil offsets -------------------------------------------------------

    def linear_offsets(self, w_padded: int) -> List[int]:
        """Raster-scan offsets of the window taps relative to its top-left.

        These are the per-tap stream delays of the SST filter chain: tap
        ``(r, c)`` reads the element ``r * w_padded + c`` positions after
        the window origin in a raster-ordered stream of the padded image.
        """
        if w_padded < self.kw:
            raise ShapeError(f"padded width {w_padded} smaller than kernel {self.kw}")
        return [r * w_padded + c for r in range(self.kh) for c in range(self.kw)]

    def footprint(self, w_padded: int) -> int:
        """On-chip elements needed for full buffering of one stream.

        Equals the span between the first and last tap plus one:
        ``(kh - 1) * w_padded + kw`` — i.e. (kh-1) image lines plus a
        partial line, the classic line-buffer size.
        """
        offs = self.linear_offsets(w_padded)
        return offs[-1] - offs[0] + 1

    def describe(self) -> str:
        """Human-readable summary, e.g. ``5x5/s1`` or ``2x2/s2``."""
        s = f"{self.kh}x{self.kw}/s{self.stride}"
        if self.pad:
            s += f"/p{self.pad}"
        return s
