"""Test package."""
