"""Seeded broken designs for the static verifier's regression suite.

Each case is engineered to violate exactly ONE rule: the paired test
asserts that the analyzer reports errors under that rule id and no other.
That keeps the rules orthogonal — a refactor that makes one rule bleed
into another's territory fails the suite immediately.

Dict-based cases double as CLI fixtures (they serialize to design JSON);
graph-based cases exercise the graph-level rules on hand-built networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.analysis import (
    AnalysisReport,
    check_design_dict,
    check_network,
)
from repro.analysis.checker import analyze_graph
from repro.core.compute_core import ConvCoreActor
from repro.core.layer_spec import ConvLayerSpec
from repro.core.network_design import NetworkDesign
from repro.dataflow.actors import (
    ArraySource,
    FifoStage,
    Fork,
    Interleaver,
    ListSink,
    ScheduleDemux,
)
from repro.dataflow.graph import DataflowGraph
from repro.sst.line_buffer import SlidingWindowActor


@dataclass(frozen=True)
class BadCase:
    """One seeded defect: a builder and the single rule it must trip."""

    name: str
    expected_rule: str
    analyze: Callable[[], AnalysisReport]


# -- design-dict seeds (also used as CLI JSON fixtures) ----------------------


def mismatched_ports_dict() -> dict:
    """conv1 exposes 3 output ports, conv2 wants 2: no adapter exists."""
    return {
        "name": "bad-adapter",
        "input_shape": [1, 8, 8],
        "layers": [
            {"kind": "conv", "name": "conv1", "in_fm": 1, "out_fm": 6,
             "kh": 3, "out_ports": 3},
            {"kind": "conv", "name": "conv2", "in_fm": 6, "out_fm": 4,
             "kh": 3, "in_ports": 2},
        ],
    }


def under_declared_fm_dict() -> dict:
    """pool1 claims 8 input FMs where conv1 produces 4: rate imbalance."""
    return {
        "name": "bad-balance",
        "input_shape": [1, 8, 8],
        "layers": [
            {"kind": "conv", "name": "conv1", "in_fm": 1, "out_fm": 4, "kh": 3},
            {"kind": "pool", "name": "pool1", "in_fm": 8, "out_fm": 8},
        ],
    }


def fc_flatten_mismatch_dict() -> dict:
    """fc consumes 100 flattened words where upstream yields 4*6*6=144."""
    return {
        "name": "bad-flatten",
        "input_shape": [1, 8, 8],
        "layers": [
            {"kind": "conv", "name": "conv1", "in_fm": 1, "out_fm": 4, "kh": 3},
            {"kind": "fc", "name": "fc1", "in_fm": 100, "out_fm": 10},
        ],
    }


# -- II seed (needs a spec object that lies about its interval) --------------


class _LyingIISpec(ConvLayerSpec):
    """A conv spec whose core claims a faster II than Eq. 4 allows."""

    @property
    def ii(self) -> int:  # pretends to be fully parallel
        return 1


def ii_inconsistent_design() -> NetworkDesign:
    spec = _LyingIISpec(name="conv1", in_fm=1, out_fm=6, kh=3)
    # out_fm/out_ports = 6/1: the honest Eq. 4 interval is 6, not 1.
    return NetworkDesign("bad-ii", (1, 8, 8), [spec])


# -- graph seeds -------------------------------------------------------------


def under_buffered_branch_graph() -> DataflowGraph:
    """A fork whose thin branch cannot absorb the deep branch's latency."""
    g = DataflowGraph("bad-skew", default_capacity=4)
    src = g.add_actor(ArraySource("src", list(range(8))))
    pre = g.add_actor(FifoStage("pre"))
    fork = g.add_actor(Fork("fork", n_outputs=2))
    deep = g.add_actor(FifoStage("deep"))
    deep.pipeline_depth = 64  # a deeply pipelined stage on one branch
    thin = g.add_actor(FifoStage("thin"))
    join = g.add_actor(Interleaver("join", n_inputs=2))
    snk = g.add_actor(ListSink("snk", count=16))
    g.connect(src, "out", pre, "in")
    g.connect(pre, "out", fork, "in")
    g.connect(fork, "out0", deep, "in", capacity=4)
    g.connect(deep, "out", join, "in0", capacity=4)
    g.connect(fork, "out1", thin, "in", capacity=2)
    g.connect(thin, "out", join, "in1", capacity=2)
    g.connect(join, "out", snk, "in")
    return g


def duplicated_source_graph() -> DataflowGraph:
    """The off-chip stream forked to two consumers: reads each word twice."""
    g = DataflowGraph("bad-dup", default_capacity=4)
    src = g.add_actor(ArraySource("src", list(range(8))))
    fork = g.add_actor(Fork("fork", n_outputs=2))
    a = g.add_actor(ListSink("a", count=8))
    b = g.add_actor(ListSink("b", count=8))
    g.connect(src, "out", fork, "in")
    g.connect(fork, "out0", a, "in")
    g.connect(fork, "out1", b, "in")
    return g


def miswired_demux() -> AnalysisReport:
    """A 1->2 port demux whose outputs feed the wrong window chains.

    The design is valid; the hand-elaborated graph swaps the demux
    outputs, permuting the feature maps between conv1's input ports.
    """
    spec = ConvLayerSpec(name="conv1", in_fm=2, out_fm=2, kh=1,
                         in_ports=2, out_ports=1)
    design = NetworkDesign("bad-wiring", (2, 4, 4), [spec])
    g = DataflowGraph("bad-wiring", default_capacity=4)
    src = g.add_actor(ArraySource("dma_in", [0.0] * 32))
    dem = g.add_actor(ScheduleDemux("conv1.demux0", n_outputs=2))
    wins = [
        g.add_actor(SlidingWindowActor(f"conv1.win{i}", spec.window, 4, 4,
                                       group=1, images=1))
        for i in range(2)
    ]
    core = g.add_actor(ConvCoreActor(
        "conv1.core",
        np.zeros((2, 2, 1, 1), dtype=np.float32),
        np.zeros(2, dtype=np.float32),
        2, 1, n_coords=16, images=1,
    ))
    snk = g.add_actor(ListSink("dma_out_sink", count=32))
    g.connect(src, "out", dem, "in")
    # BUG: out0 must feed win0 and out1 win1 (port i + m*have); swapped here.
    g.connect(dem, "out0", wins[1], "in")
    g.connect(dem, "out1", wins[0], "in")
    for i, win in enumerate(wins):
        g.connect(win, "out", core, f"in{i}")
    g.connect(core, "out0", snk, "in")
    return analyze_graph(g, design)


BAD_CASES: List[BadCase] = [
    BadCase("mismatched-ports-no-adapter", "ADAPTER.LEGAL",
            lambda: check_design_dict(mismatched_ports_dict())),
    BadCase("under-declared-fm", "RATE.BALANCE",
            lambda: check_design_dict(under_declared_fm_dict())),
    BadCase("fc-flatten-mismatch", "RATE.BALANCE",
            lambda: check_design_dict(fc_flatten_mismatch_dict())),
    BadCase("ii-inconsistent-core", "II.EQ4",
            lambda: check_network(ii_inconsistent_design())),
    BadCase("under-buffered-branch", "BUFFER.SKEW",
            lambda: analyze_graph(under_buffered_branch_graph())),
    BadCase("duplicated-source-stream", "BUFFER.FULL",
            lambda: analyze_graph(duplicated_source_graph())),
    BadCase("miswired-demux", "ADAPTER.WIRING", miswired_demux),
]
