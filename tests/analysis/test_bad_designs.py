"""Each seeded bad design must trip exactly its expected rule."""

import pytest

from tests.analysis.bad_designs import BAD_CASES


@pytest.mark.parametrize("case", BAD_CASES, ids=lambda c: c.name)
class TestBadDesigns:
    def test_fails(self, case):
        report = case.analyze()
        assert not report.ok

    def test_trips_exactly_expected_rule(self, case):
        report = case.analyze()
        assert set(report.error_rules()) == {case.expected_rule}

    def test_errors_carry_hints_or_locations(self, case):
        report = case.analyze()
        for d in report.errors:
            assert d.location
            assert d.paper_ref  # every rule cites its paper section
