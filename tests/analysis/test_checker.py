"""The static verifier over valid designs: zoo cleanliness, perf agreement,
report plumbing and the strict builder gate."""

import json

import numpy as np
import pytest

from repro.analysis import (
    RULES,
    AnalysisReport,
    Severity,
    analyze_design,
    analyze_graph,
    check_design_dict,
    check_network,
    make,
)
from repro.analysis.design_rules import _pick_bottleneck, _stage_intervals
from repro.core import random_weights, usps_design
from repro.core.builder import build_network
from repro.core.models import cifar10_design, tiny_design
from repro.core.perf_model import network_perf
from repro.core.serialize import design_to_dict
from repro.core.zoo import alexnet_design, vgg16_design
from repro.errors import AnalysisError, ConfigurationError

ZOO = {
    "usps": usps_design,
    "cifar10": cifar10_design,
    "tiny": tiny_design,
    "alexnet": alexnet_design,
    "vgg16": vgg16_design,
}


class TestZooClean:
    @pytest.mark.parametrize("name", sorted(ZOO))
    def test_zoo_design_passes(self, name):
        report = check_network(ZOO[name]())
        assert report.ok, report.format_text()
        assert not report.warnings, report.format_text()

    @pytest.mark.parametrize("name", ["usps", "tiny"])
    def test_zoo_design_passes_literal_memory(self, name):
        report = check_network(ZOO[name](), memory_system="literal")
        assert report.ok, report.format_text()

    def test_large_designs_skip_elaboration_by_default(self):
        report = check_network(vgg16_design())
        assert any("skipped" in d.message for d in report.infos)
        # Design rules still all ran.
        assert "II.BOTTLENECK" in report.rules_run
        assert "BUFFER.SKEW" not in report.rules_run


class TestPerfAgreement:
    @pytest.mark.parametrize("name", sorted(ZOO))
    def test_analyzer_matches_perf_model(self, name):
        design = ZOO[name]()
        perf = network_perf(design)
        bname, interval = _pick_bottleneck(_stage_intervals(design))
        assert (bname, interval) == (perf.bottleneck, perf.interval)

    @pytest.mark.parametrize("name", sorted(ZOO))
    def test_bottleneck_reported_as_info(self, name):
        report = analyze_design(ZOO[name]())
        infos = [d for d in report.infos if d.rule == "II.BOTTLENECK"]
        assert len(infos) == 1
        assert "perf model agrees" in infos[0].message


class TestReportPlumbing:
    def test_json_roundtrip(self):
        report = check_network(tiny_design())
        d = json.loads(report.to_json())
        assert d["design"] == "tiny"
        assert d["ok"] is True
        assert set(d["counts"]) == {"error", "warning", "info"}
        for diag in d["diagnostics"]:
            assert diag["rule"] in RULES
            assert diag["paper_ref"]

    def test_format_text_verdict(self):
        report = check_network(usps_design())
        text = report.format_text()
        assert text.startswith("=== repro check: usps-tc1 ===")
        assert "PASS:" in text

    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigurationError):
            make("NOT.A.RULE", Severity.ERROR, "design", "boom")

    def test_merge_combines_rules_and_diags(self):
        a = AnalysisReport("x", rules_run=["RATE.BALANCE"])
        b = AnalysisReport("x", rules_run=["II.EQ4"])
        b.add(make("II.EQ4", Severity.ERROR, "layer:l", "bad"))
        a.merge(b)
        assert a.rules_run == ["RATE.BALANCE", "II.EQ4"]
        assert a.error_rules() == ["II.EQ4"]


class TestDictFrontend:
    def test_valid_dict_gets_full_check(self):
        report = check_design_dict(design_to_dict(usps_design()))
        assert report.ok
        assert "BUFFER.FULL" in report.rules_run

    def test_unparseable_spec_reported_not_raised(self):
        report = check_design_dict({
            "name": "broken",
            "input_shape": [1, 8, 8],
            "layers": [{"kind": "conv", "name": "c", "in_fm": 0, "out_fm": 4}],
        })
        assert not report.ok
        assert report.error_rules() == ["SPEC.VALID"]

    def test_bad_input_shape_reported(self):
        report = check_design_dict({"name": "x", "input_shape": [0, 8],
                                    "layers": []})
        assert not report.ok
        assert report.error_rules() == ["SPEC.VALID"]


class TestStrictBuilder:
    def test_strict_build_passes_on_valid_design(self, rng):
        d = usps_design()
        built = build_network(
            d, random_weights(d),
            rng.uniform(0, 1, (1,) + d.input_shape).astype(np.float32),
            strict=True,
        )
        assert built.graph.actors  # built normally

    def test_strict_build_rejects_lying_ii(self, rng):
        from tests.analysis.bad_designs import ii_inconsistent_design

        d = ii_inconsistent_design()
        with pytest.raises(AnalysisError) as exc:
            build_network(
                d, random_weights(d),
                rng.uniform(0, 1, (1,) + d.input_shape).astype(np.float32),
                strict=True,
            )
        assert exc.value.report.error_rules() == ["II.EQ4"]
        assert "II.EQ4" in str(exc.value)


class TestGraphOnly:
    def test_builder_graph_clean_without_design(self, rng):
        d = usps_design()
        built = build_network(
            d, random_weights(d),
            rng.uniform(0, 1, (1,) + d.input_shape).astype(np.float32),
        )
        report = analyze_graph(built.graph)
        assert report.ok
        assert "ADAPTER.WIRING" not in report.rules_run  # needs the design

    def test_builder_graph_clean_with_design(self, rng):
        d = cifar10_design()
        built = build_network(
            d, random_weights(d),
            rng.uniform(0, 1, (1,) + d.input_shape).astype(np.float32),
        )
        report = analyze_graph(built.graph, d)
        assert report.ok, report.format_text()
        assert "ADAPTER.WIRING" in report.rules_run
