"""Unit tests for the static FIFO depth prover (repro.analysis.depths)."""

import json

import numpy as np
import pytest

from repro.analysis import (
    RULES,
    DepthCertificate,
    DepthPlan,
    analyze_graph,
    apply_depth_plan,
    bisect_channel_floor,
    chain_run_ahead,
    infer_depth_plan,
    load_depth_plan,
    probe_tight_certificate,
    run_shrink,
    validate_plan,
)
from repro.analysis.depths import (
    METHOD_BRIDGE,
    METHOD_CHAIN,
    METHOD_PIN,
    METHOD_SKEW,
)
from repro.core import random_weights, tiny_design
from repro.core.builder import build_network
from repro.dataflow import (
    ArraySource,
    DataflowGraph,
    FifoStage,
    Fork,
    Interleaver,
    ListSink,
    ScheduleDemux,
)
from repro.errors import ConfigurationError
from repro.sst.sizing import certified_chain_floors


def build_tiny(memory_system="literal", plan=None, images=1, seed=0):
    d = tiny_design()
    rng = np.random.default_rng(seed)
    batch = rng.uniform(0, 1, (images,) + d.input_shape).astype(np.float32)
    return build_network(
        d, random_weights(d, seed=seed), batch,
        memory_system=memory_system, depth_plan=plan,
    )


@pytest.fixture(scope="module")
def tiny_plan():
    built = build_tiny()
    return infer_depth_plan(built.graph)


class TestCatalog:
    def test_rules_registered(self):
        assert RULES["BUFFER.DEPTH_CERT"].level == "graph"
        assert RULES["BUFFER.DEPTH_UNDERSIZED"].level == "graph"
        assert "2011.07317" in RULES["BUFFER.DEPTH_CERT"].paper_ref
        assert "2105.08937" in RULES["BUFFER.DEPTH_UNDERSIZED"].paper_ref


class TestRecursion:
    def test_full_buffering_budgets_are_tap_caps(self):
        # c_i = d_i + 1 gives every filter its full tap slack.
        assert chain_run_ahead([3, 7], [4, 8], [4, 4, 4]) == [4, 4, 4]

    def test_minimal_assignment_budgets_are_one(self):
        assert chain_run_ahead([3, 7], [3, 7], [1, 1, 1]) == [1, 1, 1]

    def test_undersized_fifo_starves_upstream(self):
        # Shrinking c_0 below d_0 drives R_0 under 1: deadlock.
        assert min(chain_run_ahead([3, 7], [2, 7], [1, 1, 1])) < 1

    def test_slack_is_shared_along_the_chain(self):
        # A deficit downstream propagates to every upstream budget.
        budgets = chain_run_ahead([2, 2, 6], [2, 2, 5], [1, 1, 1, 1])
        assert budgets[-2] < 1 and budgets[0] < 1

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            chain_run_ahead([3], [3, 7], [1, 1, 1])


class TestInferTiny:
    def test_every_bounded_channel_certified(self, tiny_plan):
        built = build_tiny()
        bounded = {
            n for n, ch in built.graph.channels.items()
            if ch.capacity is not None
        }
        assert set(tiny_plan.certificates) == bounded

    def test_no_heuristic_pins_on_tiny(self, tiny_plan):
        assert tiny_plan.heuristic_channels() == []

    def test_chain_floors_match_sizing_helper(self, tiny_plan):
        built = build_tiny()
        conv = built.graph.design.placements[0]
        floors = certified_chain_floors(
            conv.spec.window, conv.in_shape[2], conv.spec.in_group
        )
        got = [
            tiny_plan.capacity(f"conv1.win0.fifo{i}")
            for i in range(len(floors))
        ]
        assert got == floors

    def test_taps_certified_at_one(self, tiny_plan):
        taps = [
            c for c in tiny_plan.certificates.values()
            if ".tap" in c.channel and c.method == METHOD_CHAIN
        ]
        assert taps and all(c.depth == 1 and not c.tight for c in taps)

    def test_tight_iff_chain_floor_at_least_two(self, tiny_plan):
        for cert in tiny_plan.certificates.values():
            if cert.method == METHOD_CHAIN and ".fifo" in cert.channel:
                assert cert.tight == (cert.depth >= 2)
            else:
                assert not cert.tight

    def test_saves_at_least_thirty_percent(self, tiny_plan):
        assert tiny_plan.saved_pct >= 30.0

    def test_json_round_trip(self, tiny_plan, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(tiny_plan.to_dict()))
        back = load_depth_plan(str(path))
        assert back.certificates == tiny_plan.certificates
        assert back.design_name == tiny_plan.design_name
        assert back.certified_words == tiny_plan.certified_words


class TestApply:
    def test_apply_sets_capacities_and_attaches_plan(self, tiny_plan):
        built = build_tiny()
        apply_depth_plan(built.graph, tiny_plan)
        assert built.graph.depth_plan is tiny_plan
        for name, cert in tiny_plan.certificates.items():
            assert built.graph.channels[name].capacity == cert.depth

    def test_applied_graph_analyzes_clean(self, tiny_plan):
        built = build_tiny(plan=tiny_plan)
        report = analyze_graph(built.graph, built.graph.design)
        assert report.ok
        assert "BUFFER.DEPTH_CERT" in report.rules_run
        assert "BUFFER.DEPTH_UNDERSIZED" in report.rules_run

    def test_wrong_elaboration_rejected(self, tiny_plan):
        built = build_tiny(memory_system="behavioral")
        with pytest.raises(ConfigurationError):
            apply_depth_plan(built.graph, tiny_plan)

    def test_undersized_channel_is_hard_error(self, tiny_plan):
        built = build_tiny(plan=tiny_plan)
        tight = tiny_plan.tight_channels()[0]
        built.graph.channels[tight].capacity = (
            tiny_plan.capacity(tight) - 1
        )
        report = analyze_graph(built.graph, built.graph.design)
        assert not report.ok
        errs = [
            d for d in report.errors if d.rule == "BUFFER.DEPTH_UNDERSIZED"
        ]
        assert len(errs) == 1 and tight in errs[0].location

    def test_deeper_than_certified_stays_clean(self, tiny_plan):
        built = build_tiny(plan=tiny_plan)
        tight = tiny_plan.tight_channels()[0]
        built.graph.channels[tight].capacity = (
            tiny_plan.capacity(tight) + 3
        )
        assert analyze_graph(built.graph, built.graph.design).ok


class TestCertificateModel:
    def test_depth_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            DepthCertificate("c", 0, 4, METHOD_BRIDGE, True, False, "")

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            DepthCertificate("c", 1, 4, "vibes", True, False, "")

    def test_tight_requires_proof(self):
        with pytest.raises(ConfigurationError):
            DepthCertificate("c", 2, 4, METHOD_PIN, False, True, "")


class TestHandBuiltGraphs:
    def test_pure_chain_is_all_bridges(self):
        g = DataflowGraph("chain")
        src = g.add_actor(ArraySource("src", [1, 2]))
        f = g.add_actor(FifoStage("f"))
        snk = g.add_actor(ListSink("snk", count=2))
        g.connect(src, "out", f, "in", capacity=6)
        g.connect(f, "out", snk, "in", capacity=6)
        plan = infer_depth_plan(g)
        assert plan.memory_system == "behavioral"
        for cert in plan.certificates.values():
            assert cert.method == METHOD_BRIDGE and cert.depth == 1

    def test_parallel_edges_are_heuristic_pins(self):
        # Two channels between the same actor pair: not bridges (the
        # sibling closes an undirected cycle) and invisible to the
        # simple-digraph fork detection (out-degree 1).
        g = DataflowGraph("par")
        src = g.add_actor(ArraySource("src", [1, 2, 3, 4]))
        dm = g.add_actor(ScheduleDemux("dm", n_outputs=2))
        il = g.add_actor(Interleaver("il", n_inputs=2))
        snk = g.add_actor(ListSink("snk", count=4))
        g.connect(src, "out", dm, "in", capacity=4)
        g.connect(dm, "out0", il, "in0", capacity=4)
        g.connect(dm, "out1", il, "in1", capacity=4)
        g.connect(il, "out", snk, "in", capacity=4)
        plan = infer_depth_plan(g)
        pins = {
            n for n, c in plan.certificates.items()
            if c.method == METHOD_PIN
        }
        assert pins == {"dm.out0->il.in0", "dm.out1->il.in1"}
        for n in pins:
            cert = plan.certificates[n]
            assert not cert.proven and cert.depth == 4

    def test_heuristic_pins_warn_depth_cert(self):
        g = DataflowGraph("par")
        src = g.add_actor(ArraySource("src", [1, 2]))
        dm = g.add_actor(ScheduleDemux("dm", n_outputs=2))
        il = g.add_actor(Interleaver("il", n_inputs=2))
        snk = g.add_actor(ListSink("snk", count=2))
        g.connect(src, "out", dm, "in", capacity=4)
        g.connect(dm, "out0", il, "in0", capacity=4)
        g.connect(dm, "out1", il, "in1", capacity=4)
        g.connect(il, "out", snk, "in", capacity=4)
        plan = infer_depth_plan(g)
        apply_depth_plan(g, plan)
        report = analyze_graph(g)
        warns = [
            d for d in report.warnings if d.rule == "BUFFER.DEPTH_CERT"
        ]
        assert len(warns) == 2

    def test_fork_join_branches_get_skew_floor(self):
        g = DataflowGraph("diamond")
        src = g.add_actor(ArraySource("src", list(range(4))))
        fork = g.add_actor(Fork("fork", n_outputs=2))
        a = g.add_actor(FifoStage("a"))
        b = g.add_actor(FifoStage("b"))
        join = g.add_actor(Interleaver("join", n_inputs=2))
        snk = g.add_actor(ListSink("snk", count=8))
        g.connect(src, "out", fork, "in", capacity=4)
        g.connect(fork, "out0", a, "in", capacity=4)
        g.connect(fork, "out1", b, "in", capacity=4)
        g.connect(a, "out", join, "in0", capacity=4)
        g.connect(b, "out", join, "in1", capacity=4)
        g.connect(join, "out", snk, "in", capacity=4)
        plan = infer_depth_plan(g)
        branch = plan.certificates["fork.out0->a.in"]
        assert branch.method == METHOD_SKEW and branch.proven
        # Symmetric one-beat branches: deficit floor is 1.
        assert branch.depth == 1

    def test_unbounded_channels_skipped(self):
        g = DataflowGraph("unb")
        src = g.add_actor(ArraySource("src", [1]))
        snk = g.add_actor(ListSink("snk", count=1))
        g.connect(src, "out", snk, "in")
        g.channels["src.out->snk.in"].capacity = None
        plan = infer_depth_plan(g)
        assert plan.certificates == {}


class TestValidation:
    def test_validate_plan_tiny(self, tiny_plan):
        val = validate_plan(tiny_design(), tiny_plan)
        assert val.ok
        assert set(val.runs) == {"event", "lockstep"}
        for run in val.runs.values():
            assert run["digest"] == val.baseline_digest
        assert {p.channel for p in val.probes} == set(
            tiny_plan.tight_channels()
        )

    def test_probe_rejects_non_tight(self, tiny_plan):
        tap = next(
            n for n, c in tiny_plan.certificates.items() if not c.tight
        )
        with pytest.raises(ConfigurationError):
            probe_tight_certificate(tiny_design(), tiny_plan, tap)

    def test_bisect_floor_matches_tight_certificate(self, tiny_plan):
        tight = tiny_plan.tight_channels()[0]
        floor = bisect_channel_floor(tiny_design(), tiny_plan, tight)
        assert floor == tiny_plan.capacity(tight)

    def test_bisect_depth_one_short_circuits(self, tiny_plan):
        shallow = next(
            n for n, c in tiny_plan.certificates.items() if c.depth == 1
        )
        assert bisect_channel_floor(tiny_design(), tiny_plan, shallow) == 1


class TestRunShrink:
    def test_tiny_report_ok(self):
        report = run_shrink(tiny_design())
        assert report["ok"] and not report["violations"]
        assert report.kind == "shrink"
        env = report.envelope()
        assert env["schema_version"] == 1 and env["kind"] == "shrink"
        assert report["words"]["saved_pct"] >= 30.0
        assert report["prover"]["heuristic"] == 0
        assert report["resources"]["saved_words"] > 0
        text = report.format_text()
        assert "depth shrink: tiny" in text and "verdict" in text

    def test_probe_limit_counts_unprobed(self):
        report = run_shrink(tiny_design(), probe_limit=1)
        assert report["ok"]
        assert len(report["validation"]["probes"]) == 1
        tight = report["prover"]["tight"]
        assert report["validation"]["unprobed_tight"] == tight - 1
        assert "unprobed" in report.format_text()

    def test_plan_round_trips_through_report(self):
        report = run_shrink(tiny_design(), validate=False)
        plan = DepthPlan.from_dict(report["plan"])
        built = build_tiny(plan=plan)
        res = built.run(stall_limit=50_000)
        assert res.finished
