"""Property tests: the depth prover is sound on random designs.

For ANY valid design Hypothesis can dream up, the certified plan must
(1) cover every bounded channel of the literal elaboration with a
certificate, (2) simulate deadlock-free under both the event and the
lockstep engine with the full-buffering output digest (Kahn determinism
makes digest equality a free correctness check), and (3) deadlock on
exactly the certified channel when any tight certificate is probed at
depth-1. This is the PR 3 shrink invariant restated over the whole
design space, with the prover — not hand-picked targets — choosing the
channels.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings

from repro.analysis import infer_depth_plan, probe_tight_certificate
from repro.core import random_weights
from repro.core.builder import build_network
from repro.faults import output_digest
from tests.strategies import small_designs

_SETTINGS = settings(
    max_examples=8, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _build(design, plan=None, seed=0):
    weights = random_weights(design, seed=seed)
    rng = np.random.default_rng(seed)
    batch = rng.uniform(0, 1, (1,) + design.input_shape).astype(np.float32)
    return build_network(
        design, weights, batch, memory_system="literal", depth_plan=plan
    )


@given(design=small_designs())
@_SETTINGS
def test_certified_plan_is_deadlock_free_on_both_engines(design):
    built = _build(design)
    plan = infer_depth_plan(built.graph)
    bounded = {
        n for n, ch in built.graph.channels.items()
        if ch.capacity is not None
    }
    assert set(plan.certificates) == bounded
    base = built.run(stall_limit=50_000)
    assert base.finished
    baseline_digest = output_digest(built.outputs())
    for scheduler in ("event", "lockstep"):
        applied = _build(design, plan=plan)
        res = applied.run(stall_limit=50_000, scheduler=scheduler)
        assert res.finished, f"certified plan deadlocked under {scheduler}"
        assert output_digest(applied.outputs()) == baseline_digest
    assert plan.certified_words <= plan.full_words


@given(design=small_designs())
@_SETTINGS
def test_tight_certificate_probe_deadlocks_on_named_channel(design):
    built = _build(design)
    plan = infer_depth_plan(built.graph)
    tight = plan.tight_channels()
    if not tight:
        return  # nothing to refute: every floor is within the tap slack
    # One probe per example keeps the suite fast; Hypothesis varies the
    # design, the prover varies the channel.
    probe = probe_tight_certificate(design, plan, tight[0])
    assert probe.deadlocked, f"{tight[0]}: depth-1 did not deadlock"
    assert probe.blamed, (
        f"{tight[0]}: deadlock blocked on {probe.blocked} instead"
    )
    assert probe.flagged and probe.matched
