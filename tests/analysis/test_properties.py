"""Property tests: spec validation error paths and analyzer invariants.

Two families:

* :class:`LayerSpec` construction must reject indivisible FM/port combos
  and bad window parameters with :class:`ConfigurationError` — the
  analyzer's SPEC.VALID rule leans on these raises;
* the analyzer itself must accept every randomly generated valid design
  and flag every random single-fault mutation with the right rule.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import SpecChain, analyze_chain, analyze_design
from repro.core.layer_spec import ConvLayerSpec, FCLayerSpec, PoolLayerSpec
from repro.errors import ConfigurationError
from tests.strategies import small_designs


class TestSpecErrorPaths:
    @given(fm=st.integers(2, 64), ports=st.integers(2, 12))
    def test_indivisible_in_ports_rejected(self, fm, ports):
        if fm % ports == 0:
            fm += 1  # ports >= 2, so fm+1 is never divisible either way
        with pytest.raises(ConfigurationError):
            ConvLayerSpec(name="c", in_fm=fm, out_fm=4, kh=1, in_ports=ports)

    @given(fm=st.integers(2, 64), ports=st.integers(2, 12))
    def test_indivisible_out_ports_rejected(self, fm, ports):
        if fm % ports == 0:
            fm += 1
        with pytest.raises(ConfigurationError):
            ConvLayerSpec(name="c", in_fm=2, out_fm=fm, kh=1, out_ports=ports)

    @given(n=st.integers(-4, 0))
    def test_nonpositive_counts_rejected(self, n):
        with pytest.raises(ConfigurationError):
            ConvLayerSpec(name="c", in_fm=n, out_fm=4, kh=1)
        with pytest.raises(ConfigurationError):
            ConvLayerSpec(name="c", in_fm=1, out_fm=4, kh=1, in_ports=n)

    @given(k=st.integers(1, 4), pad=st.integers(1, 6))
    def test_pad_swallowing_kernel_rejected(self, k, pad):
        """A window fully inside the padding is meaningless."""
        if pad < k:
            pad = k  # pad must reach the kernel size to be invalid
        spec = ConvLayerSpec(name="c", in_fm=1, out_fm=1, kh=k, pad=pad)
        with pytest.raises(ConfigurationError):
            spec.out_hw(8, 8)

    def test_pool_fm_asymmetry_rejected(self):
        with pytest.raises(ConfigurationError):
            PoolLayerSpec(name="p", in_fm=4, out_fm=8)

    def test_pool_port_asymmetry_rejected(self):
        with pytest.raises(ConfigurationError):
            PoolLayerSpec(name="p", in_fm=4, out_fm=4, in_ports=2, out_ports=1)

    def test_fc_requires_single_ports(self):
        with pytest.raises(ConfigurationError):
            FCLayerSpec(name="f", in_fm=8, out_fm=2, in_ports=2)


class TestAnalyzerProperties:
    @settings(deadline=None, max_examples=30)
    @given(design=small_designs())
    def test_valid_designs_pass_design_rules(self, design):
        report = analyze_design(design)
        assert report.ok, report.format_text()

    @settings(deadline=None, max_examples=30)
    @given(design=small_designs())
    def test_oversized_window_flagged_as_geometry(self, design):
        """Blowing up the first conv's kernel past the input trips
        RATE.GEOMETRY (and only rate/geometry-family rules)."""
        first = design.specs[0]
        _, h, w = design.input_shape
        broken = dataclasses.replace(first, kh=h + 2 * first.pad + 1,
                                     kw=w + 2 * first.pad + 1)
        chain = SpecChain(design.name, design.input_shape,
                          (broken,) + tuple(design.specs[1:]))
        report = analyze_chain(chain)
        assert "RATE.GEOMETRY" in report.error_rules()

    @settings(deadline=None, max_examples=30)
    @given(design=small_designs())
    def test_fm_mutation_breaks_balance(self, design):
        """Inflating the first layer's IN_FM (keeping divisibility) must
        trip RATE.BALANCE against the DMA stream."""
        first = design.specs[0]
        mutated = dataclasses.replace(
            first, in_fm=first.in_fm + first.in_ports
        )
        chain = SpecChain(design.name, design.input_shape,
                          (mutated,) + tuple(design.specs[1:]))
        report = analyze_chain(chain)
        assert "RATE.BALANCE" in report.error_rules()

    @settings(deadline=None, max_examples=20)
    @given(design=small_designs())
    def test_duplicate_names_flagged(self, design):
        specs = tuple(design.specs) + (
            dataclasses.replace(design.specs[0], name=design.specs[0].name),
        )
        chain = SpecChain(design.name, design.input_shape, specs)
        report = analyze_chain(chain)
        assert "SPEC.VALID" in report.error_rules()
