"""Depth certification composed with block convolution.

PR 7's depth prover (`repro shrink`) and this PR's block transform must
compose: a blocked design's literal elaboration is certified channel by
channel, the tight certificates still deadlock at depth-1 on exactly
the blamed channel, and the promoted full-size networks end up with
certified word totals strictly below what the *unblocked* full-size
designs would need at full buffering — the whole point of blocking.
"""

import numpy as np
import pytest

from repro.analysis import run_shrink
from repro.analysis.depths import infer_depth_plan, probe_tight_certificate
from repro.core import (
    ConvLayerSpec,
    FCLayerSpec,
    NetworkDesign,
    PoolLayerSpec,
    alexnet_blocked_design,
    build_network,
    random_weights,
    vgg16_blocked_design,
)
from repro.core.block_transform import without_blocking
from repro.core.resource_model import buffering_savings
from repro.core.zoo import alexnet_design, vgg16_design


def blocked_midsize():
    """Two blocked convs + pool + FC, small enough for validated runs."""
    return NetworkDesign(
        "blk-mid", (2, 12, 12),
        [
            ConvLayerSpec(name="c1", in_fm=2, out_fm=4, kh=3, pad=1,
                          activation="relu"),
            PoolLayerSpec(name="p1", in_fm=4, out_fm=4, kh=2, stride=2),
            ConvLayerSpec(name="c2", in_fm=4, out_fm=4, kh=3, pad=1,
                          in_ports=2, out_ports=2),
            FCLayerSpec(name="f1", in_fm=4 * 6 * 6, out_fm=3),
        ],
    ).with_blocking({"c1": 4, "c2": 3})


@pytest.fixture(scope="module")
def midsize_report():
    return run_shrink(blocked_midsize())


class TestBlockedMidsize:
    def test_certifies_clean(self, midsize_report):
        rep = midsize_report
        assert rep["ok"] and not rep["violations"]
        assert rep["prover"]["heuristic"] == 0
        assert rep["prover"]["proven"] == rep["prover"]["channels"]
        assert rep["words"]["certified"] < rep["words"]["full"]

    def test_blocked_chains_are_certified(self, midsize_report):
        # The split -> window -> core -> merge rewrite is covered by the
        # plan, not special-cased around: the per-port tile chains show
        # up as certified channels.
        channels = set(midsize_report["plan"]["certificates"])
        assert any(".split" in name for name in channels)
        assert any(".merge" in name for name in channels)
        assert any(".win0.fifo" in name for name in channels)

    def test_every_tight_probe_deadlocks_on_the_blamed_channel(
        self, midsize_report
    ):
        probes = midsize_report["validation"]["probes"]
        assert probes, "expected tight certificates to probe"
        for p in probes:
            assert p["deadlocked"], f"{p['channel']} did not deadlock"
            assert p["blamed"], f"{p['channel']} not blamed at deadlock"
            assert p["matched"], f"{p['channel']} not matched by analyzer"

    def test_probe_outcome_object_agrees(self):
        design = blocked_midsize()
        rng = np.random.default_rng(0)
        batch = rng.uniform(0, 1, (1,) + design.input_shape).astype(
            np.float32
        )
        built = build_network(
            design, random_weights(design, seed=0), batch,
            memory_system="literal",
        )
        plan = infer_depth_plan(built.graph, design_name=design.name)
        tight = plan.tight_channels()
        assert tight
        outcome = probe_tight_certificate(design, plan, tight[0])
        assert outcome.ok and outcome.probe_depth == (
            plan.capacity(tight[0]) - 1
        )


class TestPromotedFullSize:
    def test_blocking_shrinks_the_closed_form_words(self):
        # Closed-form (no elaboration): for both promoted networks the
        # certified blocked chains need strictly fewer words than the
        # unblocked full-size design's full-buffering footprint, and
        # blocking alone already shrinks the full-buffering footprint.
        for blocked, reference in (
            (alexnet_blocked_design(), alexnet_design()),
            (vgg16_blocked_design(), vgg16_design()),
        ):
            unblocked_full = reference.full_buffering_words()
            assert blocked.full_buffering_words() < unblocked_full
            savings = buffering_savings(blocked)
            assert savings["certified_words"] < savings["full_words"]
            assert savings["certified_words"] < unblocked_full

    def test_shrink_certifies_full_size_alexnet(self):
        # The real prover over the real full-size literal elaboration
        # (validation replay is exercised on the midsize design above
        # and in CI's block-suite job; replaying AlexNet's ~1.6M-cycle
        # runs per probe is too slow for tier-1).
        blocked = alexnet_blocked_design()
        rep = run_shrink(blocked, validate=False)
        assert rep["ok"] and not rep["pilot"]
        assert rep["simulated_design"] == blocked.name
        assert rep["prover"]["heuristic"] == 0
        assert rep["words"]["certified"] < rep["words"]["full"]
        assert (
            rep["words"]["certified"]
            < alexnet_design().full_buffering_words()
        )

    def test_pilot_alias_reports_distinct_full_buffering_words(self):
        # `--pilot` stays as a deprecated alias on the promoted designs;
        # the aliased run must visibly be the downscale, not a silent
        # duplicate of the full-size report.
        blocked = alexnet_blocked_design()
        pilot_rep = run_shrink(blocked, pilot=True, validate=False)
        full_rep = run_shrink(blocked, validate=False)
        assert pilot_rep["pilot"] and not full_rep["pilot"]
        assert pilot_rep["simulated_design"] != full_rep["simulated_design"]
        assert pilot_rep["words"]["full"] != full_rep["words"]["full"]

    def test_unblocked_references_still_pilot(self):
        # The unblocked factories keep the PR 6 behaviour: too large to
        # simulate, so shrink falls back to the pilot downscale.
        rep = run_shrink(vgg16_design(), validate=False)
        assert rep["pilot"]
        assert rep["simulated_design"] != "vgg16"

    def test_without_blocking_round_trip(self):
        blocked = vgg16_blocked_design()
        assert without_blocking(blocked).full_buffering_words() == (
            vgg16_design().full_buffering_words()
        )
