"""Test package."""
