"""Unit tests for the host-CPU baseline measurement."""

import numpy as np
import pytest

from repro.baselines import measure_cpu_inference
from repro.core import tiny_model
from repro.errors import ConfigurationError


class TestCpuBaseline:
    def test_measures_positive_throughput(self, rng):
        net = tiny_model()
        batch = rng.uniform(0, 1, (8, 1, 8, 8)).astype(np.float32)
        res = measure_cpu_inference(net, batch, repeats=2, warmup=1)
        assert res.images_per_second > 0
        assert res.batch_size == 8 and res.repeats == 2

    def test_invalid_repeats_rejected(self, rng):
        net = tiny_model()
        batch = rng.uniform(0, 1, (2, 1, 8, 8)).astype(np.float32)
        with pytest.raises(ConfigurationError):
            measure_cpu_inference(net, batch, repeats=0)
