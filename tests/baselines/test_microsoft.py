"""Unit tests for the published-baseline model of ref. [28]."""

import pytest

from repro.baselines import MICROSOFT_CIFAR10, PAPER_CLAIMED_SPEEDUP
from repro.errors import ConfigurationError


class TestMicrosoftBaseline:
    def test_published_throughput(self):
        assert MICROSOFT_CIFAR10.images_per_second == 2318.0

    def test_device_is_stratix(self):
        assert MICROSOFT_CIFAR10.device.name == "stratix-v-d5"

    def test_speedup_of_paper_number(self):
        # 7809 img/s over 2318 img/s is the paper's 3.36x.
        assert MICROSOFT_CIFAR10.speedup_of(7809) == pytest.approx(
            PAPER_CLAIMED_SPEEDUP, rel=0.01
        )

    def test_invalid_throughput_rejected(self):
        with pytest.raises(ConfigurationError):
            MICROSOFT_CIFAR10.speedup_of(0)

    def test_citation_present(self):
        assert "Ovtcharov" in MICROSOFT_CIFAR10.citation
