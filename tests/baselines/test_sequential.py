"""Unit tests for the layer-at-a-time baseline."""

import pytest

from repro.baselines import sequential_perf
from repro.core import cifar10_design, network_perf, usps_design
from repro.errors import ConfigurationError


class TestSequentialPerf:
    def test_one_entry_per_layer(self):
        sp = sequential_perf(usps_design())
        assert len(sp.per_layer_cycles) == 4

    def test_slower_than_dataflow(self):
        # The whole point of the paper's pipeline.
        for d in (usps_design(), cifar10_design()):
            assert sequential_perf(d).cycles_per_image > network_perf(d).interval

    def test_mean_time_flat_in_batch(self):
        sp = sequential_perf(usps_design())
        assert sp.mean_cycles_per_image(1) == sp.mean_cycles_per_image(50)

    def test_batch_strictly_serial(self):
        sp = sequential_perf(cifar10_design())
        assert sp.batch_cycles(10) == 10 * sp.cycles_per_image

    def test_invalid_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            sequential_perf(usps_design()).batch_cycles(0)

    def test_includes_dma_roundtrips(self):
        # Sequential per-layer cost must exceed the pure compute cycles
        # because every volume crosses off-chip memory.
        from repro.core import layer_perf

        d = cifar10_design()
        sp = sequential_perf(d)
        for cost, placement in zip(sp.per_layer_cycles, d.placements):
            assert cost > layer_perf(placement).core_cycles

    def test_images_per_second(self):
        sp = sequential_perf(usps_design())
        assert sp.images_per_second() == pytest.approx(100e6 / sp.cycles_per_image)
