"""The compiled engine's strict gate, fallback path and refusal modes.

The compiled engine only accepts graphs that carry a NetworkDesign which
passes the static analyzer cleanly. Everything else must fall back to the
event engine with a :class:`CompiledFallbackWarning` — never a wrong
answer, never a crash. Faults, tracers, ``until`` predicates and
``run_cycles`` are interpreter-only features and are rejected explicitly.
"""

import warnings

import numpy as np
import pytest

from repro.compiled import CompiledFallbackWarning, backend_name
from repro.core import random_weights, tiny_design
from repro.core.builder import build_network
from repro.dataflow import ArraySource, DataflowGraph, ListSink
from repro.errors import ConfigurationError


def tiny_built(rng, memory_system="behavioral"):
    design = tiny_design()
    weights = random_weights(design, seed=7)
    batch = rng.uniform(-1, 1, (2, 1, 8, 8)).astype(np.float32)
    return build_network(design, weights, batch, memory_system=memory_system)


class TestStrictGate:
    def test_strict_design_compiles(self, rng):
        built = tiny_built(rng)
        with warnings.catch_warnings():
            warnings.simplefilter("error", CompiledFallbackWarning)
            res = built.run(scheduler="compiled")
        assert res.finished
        assert res.scheduler_stats["scheduler"] == "compiled"
        assert res.scheduler_stats["backend"] == backend_name()

    def test_graph_without_design_falls_back(self):
        g = DataflowGraph("bare", default_capacity=2)
        src = g.add_actor(ArraySource("src", list(range(8))))
        snk = g.add_actor(ListSink("snk", count=8))
        g.connect(src, "out", snk, "in")
        with pytest.warns(CompiledFallbackWarning, match="NetworkDesign"):
            res = g.build_simulator(scheduler="compiled").run()
        assert res.finished
        assert res.scheduler_stats["scheduler"] == "event"
        assert list(snk.received) == list(range(8))

    def test_tracer_falls_back(self, rng):
        from repro.dataflow.trace import Tracer

        built = tiny_built(rng)
        with pytest.warns(CompiledFallbackWarning):
            res = built.run(tracer=Tracer(1), scheduler="compiled")
        assert res.finished
        assert res.scheduler_stats["scheduler"] == "event"

    def test_unknown_actor_subclass_falls_back(self, rng):
        # Literal memory systems elaborate subclassed actors; the
        # compiled engine's exact-type dispatch refuses them.
        built = tiny_built(rng, memory_system="literal")
        with pytest.warns(CompiledFallbackWarning):
            res = built.run(scheduler="compiled")
        assert res.finished
        assert res.scheduler_stats["scheduler"] == "event"

    def test_fallback_matches_event_outputs(self, rng):
        design = tiny_design()
        weights = random_weights(design, seed=7)
        batch = rng.uniform(-1, 1, (2, 1, 8, 8)).astype(np.float32)
        a = build_network(design, weights, batch, memory_system="literal")
        with pytest.warns(CompiledFallbackWarning):
            a.run(scheduler="compiled")
        b = build_network(design, weights, batch, memory_system="literal")
        b.run(scheduler="event")
        np.testing.assert_array_equal(a.outputs(), b.outputs())


class TestRefusals:
    def test_faults_rejected_with_clear_error(self, rng):
        from repro.faults import ChannelJitter, FaultScenario, arm_faults

        built = tiny_built(rng)
        sc = FaultScenario(
            "jitter", (ChannelJitter(probability=0.5, max_delay=2),)
        )
        sim = built.graph.build_simulator(scheduler="compiled")
        sim.faults = arm_faults(built.graph, sc, seed=1)
        with pytest.raises(ConfigurationError, match="interpreted engine"):
            sim.run()

    def test_until_predicate_rejected(self, rng):
        built = tiny_built(rng)
        sim = built.graph.build_simulator(scheduler="compiled")
        with pytest.raises(ConfigurationError, match="until"):
            sim.run(until=lambda: True)

    def test_run_cycles_rejected(self, rng):
        built = tiny_built(rng)
        sim = built.graph.build_simulator(scheduler="compiled")
        with pytest.raises(ConfigurationError):
            sim.run_cycles(10)

    def test_faultsim_harness_rejects_compiled(self):
        from repro.faults import ChannelJitter, FaultScenario
        from repro.faults.harness import faultsim

        sc = FaultScenario(
            "jitter", (ChannelJitter(probability=0.5, max_delay=2),)
        )
        with pytest.raises(ConfigurationError, match="interpreted engine"):
            faultsim(tiny_design(), sc, images=1, scheduler="compiled")

    def test_run_campaign_rejects_compiled(self):
        from repro.faults import ChannelJitter, FaultScenario
        from repro.faults.harness import run_campaign

        sc = FaultScenario(
            "jitter", (ChannelJitter(probability=0.5, max_delay=2),)
        )
        with pytest.raises(ConfigurationError, match="interpreted engine"):
            run_campaign(
                [("tiny", tiny_design())], [sc], [0], scheduler="compiled"
            )
