"""The compiled-plan cache: hit/miss accounting, keys, eviction, verdicts.

Satellite contract: repeated builds of the same design must skip
re-lowering (plan hit), while anything that changes the solved schedule
— batch size, a different design — must miss. The cache also memoizes
the static-verification verdict per design digest, including *failing*
verdicts (a cached failure re-raises without re-running the analyzer).
"""

import numpy as np
import pytest

from repro.compiled import (
    CompiledPlan,
    PlanCache,
    clear_plan_cache,
    design_digest,
    plan_cache_stats,
)
from repro.compiled.plan_cache import GLOBAL_PLAN_CACHE, plan_key
from repro.core import random_weights, tiny_design, usps_design
from repro.core.builder import build_network


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def built_tiny(batch=2, seed=7):
    design = tiny_design()
    weights = random_weights(design, seed=seed)
    rng = np.random.default_rng(seed)
    images = rng.uniform(-1, 1, (batch, 1, 8, 8)).astype(np.float32)
    return build_network(design, weights, images)


class TestDesignDigest:
    def test_stable_across_instances(self):
        assert design_digest(tiny_design()) == design_digest(tiny_design())

    def test_distinguishes_designs(self):
        assert design_digest(tiny_design()) != design_digest(usps_design())

    def test_digest_format(self):
        assert design_digest(tiny_design()).startswith("sha256:")


class TestEngineIntegration:
    def test_second_build_hits(self):
        built_tiny().run(scheduler="compiled")
        first = plan_cache_stats()
        assert first["misses"] == 1 and first["plans"] == 1
        built_tiny().run(scheduler="compiled")
        second = plan_cache_stats()
        assert second["hits"] >= first["hits"] + 1
        assert second["misses"] == first["misses"]
        assert second["plans"] == 1

    def test_different_batch_misses(self):
        built_tiny(batch=2).run(scheduler="compiled")
        built_tiny(batch=3).run(scheduler="compiled")
        stats = plan_cache_stats()
        # Batch size changes the stream geometry -> a second plan.
        assert stats["plans"] == 2
        assert stats["misses"] == 2

    def test_cached_plan_gives_identical_results(self):
        b1 = built_tiny()
        r1 = b1.run(scheduler="compiled")
        b2 = built_tiny()
        r2 = b2.run(scheduler="compiled")
        assert plan_cache_stats()["hits"] >= 1
        assert r1.cycles == r2.cycles
        np.testing.assert_array_equal(b1.outputs(), b2.outputs())

    def test_verdict_cached_once_per_design(self):
        built_tiny(batch=2).run(scheduler="compiled")
        built_tiny(batch=3).run(scheduler="compiled")
        stats = plan_cache_stats()
        # Two geometry misses, but the verifier ran only once: the
        # second lowering hit the verdict cache.
        assert stats["analysis_misses"] == 1
        assert stats["analysis_hits"] >= 1

    def test_weights_do_not_affect_the_plan(self):
        design = tiny_design()
        rng = np.random.default_rng(0)
        images = rng.uniform(-1, 1, (2, 1, 8, 8)).astype(np.float32)
        build_network(design, random_weights(design, seed=1), images).run(
            scheduler="compiled"
        )
        build_network(design, random_weights(design, seed=2), images).run(
            scheduler="compiled"
        )
        assert plan_cache_stats()["plans"] == 1


class TestPlanCacheUnit:
    def _plan(self):
        # Any frozen payload works; the cache never inspects the plan.
        return CompiledPlan(schedule=None, in_ports={}, out_ports={})

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)

    def test_lru_eviction_order(self):
        cache = PlanCache(maxsize=2)
        k = [plan_key(f"sha256:{i}", 8, 1, 0, 0) for i in range(3)]
        cache.put_plan(k[0], self._plan())
        cache.put_plan(k[1], self._plan())
        assert cache.get_plan(k[0]) is not None  # refresh k0
        cache.put_plan(k[2], self._plan())  # evicts k1, not k0
        assert cache.get_plan(k[1]) is None
        assert cache.get_plan(k[0]) is not None
        assert cache.get_plan(k[2]) is not None

    def test_stats_counters(self):
        cache = PlanCache()
        key = plan_key("sha256:x", 8, 1, 0, 0)
        assert cache.get_plan(key) is None
        cache.put_plan(key, self._plan())
        assert cache.get_plan(key) is not None
        assert cache.stats() == {
            "plans": 1, "hits": 1, "misses": 1,
            "analysis_hits": 0, "analysis_misses": 0,
        }

    def test_failing_verdict_cached(self):
        cache = PlanCache()
        assert cache.get_verdict("sha256:bad") is None
        cache.put_verdict("sha256:bad", ("R01", "R05"))
        assert cache.get_verdict("sha256:bad") == ("R01", "R05")
        assert cache.stats()["analysis_hits"] == 1

    def test_clear_resets_everything(self):
        cache = PlanCache()
        cache.put_plan(plan_key("sha256:x", 8, 1, 0, 0), self._plan())
        cache.put_verdict("sha256:x", ())
        cache.clear()
        assert cache.stats() == {
            "plans": 0, "hits": 0, "misses": 0,
            "analysis_hits": 0, "analysis_misses": 0,
        }

    def test_global_cache_is_shared(self):
        built_tiny().run(scheduler="compiled")
        assert GLOBAL_PLAN_CACHE.stats() == plan_cache_stats()
