"""Three-way engine equivalence: event == lockstep == compiled.

The compiled engine executes fused vectorized kernels instead of
interpreting actor coroutines, so its *cycle accounting* is the analytic
performance model rather than a discrete-event measurement. The
equivalence contract is therefore:

- output digests: bit-identical across all three engines,
- per-process fire counts: identical (fires count productive beats,
  which are timing-independent),
- measured II and bottleneck attribution in the profiler: identical.

Cycle counts, channel stall statistics and sink timestamps are NOT part
of the contract — the compiled engine synthesizes a modeled envelope.
"""

import warnings

import numpy as np
import pytest

from repro.compiled import CompiledFallbackWarning
from repro.core import random_weights
from repro.core.builder import build_network
from repro.core.models import cifar10_design, tiny_design, usps_design
from repro.dataflow import stable_digest

ENGINES = ("event", "lockstep", "compiled")

DESIGNS = {
    "tiny": tiny_design,
    "usps": usps_design,
    "cifar10": cifar10_design,
}


def run_three_way(design, images, seed):
    weights = random_weights(design, seed=seed)
    rng = np.random.default_rng(seed)
    batch = rng.uniform(
        0, 1, (images,) + design.input_shape
    ).astype(np.float32)
    out = {}
    for engine in ENGINES:
        built = build_network(design, weights, batch)
        with warnings.catch_warnings():
            warnings.simplefilter("error", CompiledFallbackWarning)
            res = built.run(scheduler=engine)
        fires = {
            actor: [p["fires"] for p in procs]
            for actor, procs in res.actor_stats.items()
        }
        out[engine] = {
            "digest": stable_digest(built.outputs()),
            "fires": fires,
            "finished": res.finished,
        }
    return out


class TestZooDesigns:
    @pytest.mark.parametrize("name", sorted(DESIGNS))
    def test_digests_and_fires_identical(self, name):
        out = run_three_way(DESIGNS[name](), images=2, seed=5)
        ref = out["event"]
        assert ref["finished"]
        for engine in ("lockstep", "compiled"):
            assert out[engine]["digest"] == ref["digest"], engine
            assert out[engine]["fires"] == ref["fires"], engine
            assert out[engine]["finished"]


class TestProfilerAgreement:
    """`repro profile --scheduler compiled` must be a drop-in."""

    # alexnet/vgg16 profile as their deterministic pilot downscales,
    # which is exactly what `repro profile` runs — so this covers the
    # full five-design zoo on the profiler surface.
    @pytest.mark.parametrize(
        "preset", ["tiny", "usps", "cifar10", "alexnet", "vgg16"]
    )
    def test_profile_compiled_matches_event(self, preset):
        from repro.core.models import (
            cifar10_design as _c,
            tiny_design as _t,
            usps_design as _u,
        )
        from repro.core.zoo import alexnet_design, vgg16_design
        from repro.profiling import profile_design

        factory = {
            "tiny": _t, "usps": _u, "cifar10": _c,
            "alexnet": alexnet_design, "vgg16": vgg16_design,
        }[preset]
        design = factory()
        reports = {}
        for engine in ("event", "compiled"):
            with warnings.catch_warnings():
                warnings.simplefilter("error", CompiledFallbackWarning)
                reports[engine] = profile_design(
                    design, images=2, seed=0, scheduler=engine
                )
        ref, got = reports["event"], reports["compiled"]
        assert got.ok and ref.ok
        assert got.scheduler == "compiled"
        ref_cores = {c["actor"]: c for c in ref.cores}
        got_cores = {c["actor"]: c for c in got.cores}
        assert set(got_cores) == set(ref_cores)
        for actor, rc in ref_cores.items():
            gc = got_cores[actor]
            assert gc["fires"] == rc["fires"], actor
            assert gc["measured_ii"] == rc["measured_ii"], actor
            assert gc["within_tolerance"] and rc["within_tolerance"]
        assert got.bottleneck.get("measured") == ref.bottleneck.get("measured")
