"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_image(rng):
    """A single-channel 8x8 float32 image in [0, 1]."""
    return rng.uniform(0.0, 1.0, (8, 8)).astype(np.float32)
