"""Test package."""
