"""Unit + integration tests for the network builder."""

import numpy as np
import pytest

from repro.core import (
    ConvLayerSpec,
    FCLayerSpec,
    NetworkDesign,
    PoolLayerSpec,
    build_network,
    extract_weights,
    interleave_images,
    random_weights,
    tiny_design,
    tiny_model,
)
from repro.errors import ConfigurationError, ShapeError
from repro.nn import Conv2D, Flatten, Linear, MaxPool2D, Sequential, Tanh


class TestInterleave:
    def test_order_is_pixel_major_fm_minor(self):
        batch = np.arange(2 * 2 * 2 * 2, dtype=np.float32).reshape(2, 2, 2, 2)
        stream = interleave_images(batch)
        # First beats: image 0, pixel (0,0), FM 0 then FM 1.
        assert stream[0] == batch[0, 0, 0, 0]
        assert stream[1] == batch[0, 1, 0, 0]
        assert stream[2] == batch[0, 0, 0, 1]

    def test_requires_4d(self):
        with pytest.raises(ShapeError):
            interleave_images(np.zeros((2, 2, 2), dtype=np.float32))


class TestWeights:
    def test_random_weights_cover_parameterized_layers(self):
        d = tiny_design()
        w = random_weights(d)
        assert set(w) == {"conv1", "fc1"}
        assert w["conv1"]["weight"].shape == (2, 1, 3, 3)

    def test_extract_matches_shapes(self):
        d = tiny_design()
        m = tiny_model()
        w = extract_weights(d, m)
        assert np.array_equal(w["conv1"]["weight"], m.layers[0].weight)
        assert np.array_equal(w["fc1"]["bias"], m.layers[4].bias)

    def test_extract_shape_mismatch_rejected(self, rng):
        d = tiny_design()
        wrong = Sequential(
            [Conv2D(1, 3, 3, rng=rng), Tanh(), MaxPool2D(2), Flatten(),
             Linear(27, 4, rng=rng)],
            in_shape=(1, 8, 8),
        )
        with pytest.raises(ShapeError):
            extract_weights(d, wrong)

    def test_extract_leftover_layers_rejected(self, rng):
        d = tiny_design()
        extra = Sequential(
            [Conv2D(1, 2, 3, rng=rng), Tanh(), MaxPool2D(2), Flatten(),
             Linear(18, 4, rng=rng), Linear(4, 4, rng=rng)],
            in_shape=(1, 8, 8),
        )
        with pytest.raises(ConfigurationError):
            extract_weights(d, extra)


class TestBuild:
    def test_batch_shape_validated(self):
        d = tiny_design()
        with pytest.raises(ShapeError):
            build_network(d, random_weights(d), np.zeros((1, 1, 9, 9), dtype=np.float32))

    def test_missing_weights_rejected(self, rng):
        d = tiny_design()
        with pytest.raises(ConfigurationError):
            build_network(d, {}, rng.uniform(0, 1, (1, 1, 8, 8)).astype(np.float32))

    def test_functional_equals_timed(self, rng):
        d = tiny_design()
        w = random_weights(d, seed=3)
        batch = rng.uniform(0, 1, (2, 1, 8, 8)).astype(np.float32)
        timed = build_network(d, w, batch)
        timed.run()
        funct = build_network(d, w, batch)
        funct.run_functional()
        assert np.array_equal(timed.outputs(), funct.outputs())

    def test_outputs_before_run_rejected(self, rng):
        d = tiny_design()
        built = build_network(
            d, random_weights(d), rng.uniform(0, 1, (1, 1, 8, 8)).astype(np.float32)
        )
        with pytest.raises(ShapeError):
            built.outputs()

    def test_demux_adapter_network(self, rng):
        # First conv with 2 input ports forces a demux from the DMA stream.
        d = NetworkDesign(
            "demux-net", (2, 6, 6),
            [
                ConvLayerSpec(name="c1", in_fm=2, out_fm=2, kh=3, in_ports=2,
                              out_ports=2),
                FCLayerSpec(name="f1", in_fm=2 * 16, out_fm=3),
            ],
        )
        m = Sequential(
            [Conv2D(2, 2, 3, rng=np.random.default_rng(5)), Flatten(),
             Linear(32, 3, rng=np.random.default_rng(6))],
            in_shape=(2, 6, 6),
        )
        w = extract_weights(d, m)
        batch = rng.uniform(0, 1, (2, 2, 6, 6)).astype(np.float32)
        built = build_network(d, w, batch)
        built.run()
        assert np.allclose(built.outputs(), m.forward(batch), atol=1e-4)

    def test_widen_adapter_network(self, rng):
        # conv out 4 ports -> conv in 2 ports exercises the interleaver.
        d = NetworkDesign(
            "widen-net", (1, 8, 8),
            [
                ConvLayerSpec(name="c1", in_fm=1, out_fm=4, kh=3, out_ports=4,
                              activation="tanh"),
                ConvLayerSpec(name="c2", in_fm=4, out_fm=2, kh=3, in_ports=2),
                FCLayerSpec(name="f1", in_fm=2 * 16, out_fm=3),
            ],
        )
        rng0 = np.random.default_rng(4)
        m = Sequential(
            [Conv2D(1, 4, 3, rng=rng0), Tanh(), Conv2D(4, 2, 3, rng=rng0),
             Flatten(), Linear(32, 3, rng=rng0)],
            in_shape=(1, 8, 8),
        )
        w = extract_weights(d, m)
        batch = rng.uniform(0, 1, (2, 1, 8, 8)).astype(np.float32)
        built = build_network(d, w, batch)
        built.run()
        assert np.allclose(built.outputs(), m.forward(batch), atol=1e-4)

    def test_conv_ending_network_output_shape(self, rng):
        # A design ending in a conv layer reshapes outputs to (N, K, OH, OW).
        d = NetworkDesign(
            "conv-end", (1, 6, 6),
            [ConvLayerSpec(name="c1", in_fm=1, out_fm=2, kh=3, out_ports=2)],
        )
        m = Sequential([Conv2D(1, 2, 3, rng=np.random.default_rng(1))], in_shape=(1, 6, 6))
        w = extract_weights(d, m)
        batch = rng.uniform(0, 1, (2, 1, 6, 6)).astype(np.float32)
        built = build_network(d, w, batch)
        built.run()
        out = built.outputs()
        assert out.shape == (2, 2, 4, 4)
        assert np.allclose(out, m.forward(batch), atol=1e-4)

    def test_image_completion_cycles_monotone(self, rng):
        d = tiny_design()
        w = random_weights(d)
        batch = rng.uniform(0, 1, (4, 1, 8, 8)).astype(np.float32)
        built = build_network(d, w, batch)
        built.run()
        cc = built.image_completion_cycles()
        assert cc == sorted(cc) and len(cc) == 4


class TestGeometryVariants:
    def test_rectangular_kernel_end_to_end(self, rng):
        # 1x3 and 3x1 kernels through the full dataflow build.
        d = NetworkDesign(
            "rect", (1, 6, 8),
            [
                ConvLayerSpec(name="c1", in_fm=1, out_fm=2, kh=1, kw=3,
                              activation="tanh"),
                ConvLayerSpec(name="c2", in_fm=2, out_fm=2, kh=3, kw=1),
                FCLayerSpec(name="f1", in_fm=2 * 4 * 6, out_fm=3),
            ],
        )
        from repro.nn import Conv2D, Flatten, Linear, Sequential, Tanh

        rng0 = np.random.default_rng(8)
        m = Sequential(
            [Conv2D(1, 2, 1, 3, rng=rng0), Tanh(),
             Conv2D(2, 2, 3, 1, rng=rng0), Flatten(), Linear(48, 3, rng=rng0)],
            in_shape=(1, 6, 8),
        )
        batch = rng.uniform(0, 1, (2, 1, 6, 8)).astype(np.float32)
        built = build_network(d, extract_weights(d, m), batch)
        built.run()
        assert np.allclose(built.outputs(), m.forward(batch), atol=1e-4)

    def test_overlapping_pooling_end_to_end(self, rng):
        # AlexNet-style 3x3/s2 overlapping max pooling.
        d = NetworkDesign(
            "overlap", (1, 9, 9),
            [
                ConvLayerSpec(name="c1", in_fm=1, out_fm=2, kh=3,
                              activation="relu"),
                PoolLayerSpec(name="p1", in_fm=2, out_fm=2, kh=3, stride=2),
                FCLayerSpec(name="f1", in_fm=2 * 3 * 3, out_fm=4),
            ],
        )
        from repro.nn import Conv2D, Flatten, Linear, MaxPool2D, ReLU, Sequential

        rng0 = np.random.default_rng(9)
        m = Sequential(
            [Conv2D(1, 2, 3, rng=rng0), ReLU(), MaxPool2D(3, stride=2),
             Flatten(), Linear(18, 4, rng=rng0)],
            in_shape=(1, 9, 9),
        )
        batch = rng.uniform(0, 1, (2, 1, 9, 9)).astype(np.float32)
        built = build_network(d, extract_weights(d, m), batch)
        built.run()
        assert np.allclose(built.outputs(), m.forward(batch), atol=1e-4)
