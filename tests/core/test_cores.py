"""Unit tests for the compute-core actors against NumPy references."""

import numpy as np
import pytest

from repro.core import ConvCoreActor, FCCoreActor, PoolCoreActor
from repro.dataflow import ArraySource, DataflowGraph, ListSink
from repro.errors import ConfigurationError, ShapeError
from repro.hls import interleaved_sum


def run_conv_core(weight, bias, windows_per_port, in_ports, out_ports, n_coords,
                  activation=None):
    """windows_per_port: list (per port) of lists of (kh,kw) arrays."""
    g = DataflowGraph("t")
    core = g.add_actor(
        ConvCoreActor("core", weight, bias, in_ports, out_ports,
                      n_coords=n_coords, activation=activation)
    )
    out_fm = weight.shape[0]
    for p in range(in_ports):
        src = g.add_actor(ArraySource(f"src{p}", windows_per_port[p]))
        g.connect(src, "out", core, f"in{p}", capacity=4)
    sinks = []
    per_port_out = n_coords * (out_fm // out_ports)
    for p in range(out_ports):
        snk = g.add_actor(ListSink(f"snk{p}", count=per_port_out))
        g.connect(core, f"out{p}", snk, "in", capacity=4)
        sinks.append(snk)
    g.build_simulator().run()
    return sinks


class TestConvCore:
    def test_single_coord_single_port(self, rng):
        w = rng.standard_normal((2, 1, 3, 3)).astype(np.float32)
        b = rng.standard_normal(2).astype(np.float32)
        win = rng.standard_normal((3, 3)).astype(np.float32)
        sinks = run_conv_core(w, b, [[win]], 1, 1, 1)
        got = sinks[0].received
        exp = [np.sum(w[k, 0] * win) + b[k] for k in range(2)]
        assert np.allclose(got, exp, atol=1e-5)

    def test_multi_group_accumulates_over_fms(self, rng):
        # 2 input FMs on 1 port: windows arrive fm0 then fm1.
        w = rng.standard_normal((1, 2, 2, 2)).astype(np.float32)
        b = np.zeros(1, dtype=np.float32)
        win0 = rng.standard_normal((2, 2)).astype(np.float32)
        win1 = rng.standard_normal((2, 2)).astype(np.float32)
        sinks = run_conv_core(w, b, [[win0, win1]], 1, 1, 1)
        exp = np.sum(w[0, 0] * win0) + np.sum(w[0, 1] * win1)
        assert sinks[0].received[0] == pytest.approx(exp, abs=1e-5)

    def test_parallel_ports_fm_assignment(self, rng):
        # 2 ports: port p carries FM p.
        w = rng.standard_normal((1, 2, 2, 2)).astype(np.float32)
        b = np.zeros(1, dtype=np.float32)
        wins = [
            [rng.standard_normal((2, 2)).astype(np.float32)],
            [rng.standard_normal((2, 2)).astype(np.float32)],
        ]
        sinks = run_conv_core(w, b, wins, 2, 1, 1)
        exp = np.sum(w[0, 0] * wins[0][0]) + np.sum(w[0, 1] * wins[1][0])
        assert sinks[0].received[0] == pytest.approx(exp, abs=1e-5)

    def test_output_interleaving_over_ports(self, rng):
        # 4 output FMs on 2 ports: port p gets FMs p, p+2.
        w = rng.standard_normal((4, 1, 1, 1)).astype(np.float32)
        b = np.zeros(4, dtype=np.float32)
        win = np.ones((1, 1), dtype=np.float32)
        sinks = run_conv_core(w, b, [[win]], 1, 2, 1)
        assert np.allclose(sinks[0].received, [w[0, 0, 0, 0], w[2, 0, 0, 0]], atol=1e-6)
        assert np.allclose(sinks[1].received, [w[1, 0, 0, 0], w[3, 0, 0, 0]], atol=1e-6)

    def test_activation_applied(self, rng):
        w = np.full((1, 1, 1, 1), 5.0, dtype=np.float32)
        b = np.zeros(1, dtype=np.float32)
        win = np.full((1, 1), -2.0, dtype=np.float32)
        sinks = run_conv_core(w, b, [[win]], 1, 1, 1, activation="relu")
        assert sinks[0].received[0] == 0.0

    def test_steady_state_interval_is_ii(self, rng):
        # 4 input FMs on 1 port, 1 output FM: II = 4 per coordinate.
        w = rng.standard_normal((1, 4, 1, 1)).astype(np.float32)
        b = np.zeros(1, dtype=np.float32)
        wins = [[rng.standard_normal((1, 1)).astype(np.float32) for _ in range(16)]]
        sinks = run_conv_core(w, b, wins, 1, 1, 4)
        ts = sinks[0].timestamps
        deltas = [b_ - a_ for a_, b_ in zip(ts, ts[1:])]
        assert all(d == 4 for d in deltas)

    def test_weight_shape_validated(self):
        with pytest.raises(ShapeError):
            ConvCoreActor("c", np.zeros((2, 3)), np.zeros(2), 1, 1, 1)

    def test_bias_shape_validated(self):
        with pytest.raises(ShapeError):
            ConvCoreActor("c", np.zeros((2, 1, 3, 3)), np.zeros(3), 1, 1, 1)

    def test_port_divisibility_validated(self):
        with pytest.raises(ConfigurationError):
            ConvCoreActor("c", np.zeros((2, 3, 3, 3)), np.zeros(2), 2, 1, 1)


class TestPoolCore:
    def _run(self, mode, windows):
        g = DataflowGraph("t")
        core = g.add_actor(PoolCoreActor("p", mode, count=len(windows)))
        src = g.add_actor(ArraySource("src", windows))
        snk = g.add_actor(ListSink("snk", count=len(windows)))
        g.connect(src, "out", core, "in", capacity=4)
        g.connect(core, "out", snk, "in", capacity=4)
        g.build_simulator().run()
        return snk

    def test_max_mode(self, rng):
        wins = [rng.standard_normal((2, 2)).astype(np.float32) for _ in range(5)]
        snk = self._run("max", wins)
        assert np.allclose(snk.received, [w.max() for w in wins])

    def test_mean_mode(self, rng):
        wins = [rng.standard_normal((2, 2)).astype(np.float32) for _ in range(5)]
        snk = self._run("mean", wins)
        assert np.allclose(snk.received, [w.mean() for w in wins], atol=1e-6)

    def test_full_rate(self, rng):
        wins = [rng.standard_normal((2, 2)).astype(np.float32) for _ in range(6)]
        snk = self._run("max", wins)
        deltas = [b - a for a, b in zip(snk.timestamps, snk.timestamps[1:])]
        assert all(d == 1 for d in deltas)  # "perfect pipelining"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            PoolCoreActor("p", "median", count=1)


class TestFCCore:
    def _run(self, weight, bias, values, images=1, lanes=4, activation=None):
        g = DataflowGraph("t")
        core = g.add_actor(
            FCCoreActor("fc", weight, bias, acc_lanes=lanes, images=images,
                        activation=activation)
        )
        src = g.add_actor(ArraySource("src", values))
        snk = g.add_actor(ListSink("snk", count=images * weight.shape[0]))
        g.connect(src, "out", core, "in", capacity=4)
        g.connect(core, "out", snk, "in", capacity=4)
        g.build_simulator().run()
        return snk

    def test_matches_matvec(self, rng):
        w = rng.standard_normal((3, 8)).astype(np.float32)
        b = rng.standard_normal(3).astype(np.float32)
        x = rng.standard_normal(8).astype(np.float32)
        snk = self._run(w, b, x)
        assert np.allclose(snk.received, w @ x + b, atol=1e-5)

    def test_interleaved_accumulator_rounding(self, rng):
        # The core's float rounding equals the lane-interleaved order.
        w = rng.standard_normal((2, 16)).astype(np.float32)
        b = np.zeros(2, dtype=np.float32)
        x = (rng.standard_normal(16) * 1e3).astype(np.float32)
        snk = self._run(w, b, x, lanes=4)
        exp = interleaved_sum(w * x[None, :], 4)
        assert np.array_equal(np.asarray(snk.received), exp)

    def test_multiple_images(self, rng):
        w = rng.standard_normal((2, 4)).astype(np.float32)
        b = rng.standard_normal(2).astype(np.float32)
        xs = rng.standard_normal((3, 4)).astype(np.float32)
        snk = self._run(w, b, xs.ravel(), images=3)
        got = np.asarray(snk.received).reshape(3, 2)
        assert np.allclose(got, xs @ w.T + b, atol=1e-5)

    def test_activation(self, rng):
        w = np.array([[1.0]], dtype=np.float32)
        b = np.array([0.0], dtype=np.float32)
        snk = self._run(w, b, np.array([-5.0], dtype=np.float32), activation="relu")
        assert snk.received[0] == 0.0

    def test_outputs_after_all_inputs(self, rng):
        # Section IV-B: outputs are sent sequentially after all inputs.
        w = rng.standard_normal((2, 6)).astype(np.float32)
        b = np.zeros(2, dtype=np.float32)
        x = rng.standard_normal(6).astype(np.float32)
        snk = self._run(w, b, x)
        assert snk.timestamps[0] >= 6

    def test_weight_must_be_2d(self):
        with pytest.raises(ShapeError):
            FCCoreActor("f", np.zeros((2, 2, 2)), np.zeros(2))

    def test_lane_count_validated(self):
        with pytest.raises(ConfigurationError):
            FCCoreActor("f", np.zeros((2, 4)), np.zeros(2), acc_lanes=0)
