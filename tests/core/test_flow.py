"""Unit tests for the automated design flow."""

import os

import numpy as np
import pytest

from repro.core import FLOW_PRESETS, run_flow
from repro.errors import ConfigurationError


class TestRunFlow:
    def test_tiny_flow_ok(self):
        res = run_flow("tiny", seed=1, epochs=3)
        assert res.ok
        assert res.verification.passed
        assert res.fits_device
        assert res.training.losses[-1] < res.training.losses[0]

    def test_usps_flow_trains_and_verifies(self):
        res = run_flow("usps", seed=2, epochs=3)
        assert res.ok
        assert res.training.test_accuracy > 0.6
        assert res.interval == 256

    def test_artifacts_emitted(self, tmp_path):
        out = str(tmp_path / "flow")
        res = run_flow("tiny", seed=1, epochs=2, output_dir=out)
        names = {os.path.basename(p) for p in res.artifacts}
        assert names == {"design.json", "weights.npz", "hls_report.txt",
                         "verify.txt"}
        for p in res.artifacts:
            assert os.path.getsize(p) > 0

    def test_artifacts_reload_and_match(self, tmp_path):
        from repro.core import design_from_json, load_weights
        from repro.core.builder import build_network

        out = str(tmp_path / "flow")
        res = run_flow("tiny", seed=3, epochs=2, output_dir=out)
        with open(os.path.join(out, "design.json")) as fh:
            design = design_from_json(fh.read())
        weights = load_weights(os.path.join(out, "weights.npz"))
        batch = np.random.default_rng(0).uniform(
            0, 1, (2,) + design.input_shape
        ).astype(np.float32)
        built = build_network(design, weights, batch)
        built.run_functional()
        ref = res.model.forward(batch)
        assert np.allclose(built.outputs(), ref, atol=1e-4)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            run_flow("alexnet")

    def test_invalid_verify_images_rejected(self):
        with pytest.raises(ConfigurationError):
            run_flow("tiny", verify_images=0)

    def test_presets_registry(self):
        assert set(FLOW_PRESETS) == {"usps", "cifar10", "tiny"}


class TestStateDict:
    def test_roundtrip(self):
        from repro.core import tiny_model

        a = tiny_model(np.random.default_rng(1))
        b = tiny_model(np.random.default_rng(2))
        b.load_state_dict(a.state_dict())
        x = np.random.default_rng(0).uniform(0, 1, (2, 1, 8, 8)).astype(np.float32)
        assert np.array_equal(a.forward(x), b.forward(x))

    def test_mismatched_keys_rejected(self):
        from repro.core import tiny_model
        from repro.errors import ShapeError

        m = tiny_model()
        state = m.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(ShapeError):
            m.load_state_dict(state)

    def test_mismatched_shape_rejected(self):
        from repro.core import tiny_model
        from repro.errors import ShapeError

        m = tiny_model()
        state = m.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1), dtype=np.float32)
        with pytest.raises(ShapeError):
            m.load_state_dict(state)
