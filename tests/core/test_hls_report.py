"""Unit tests for the HLS-style synthesis report."""

from repro.core import cifar10_design, core_reports, render_report, usps_design


class TestCoreReports:
    def test_one_row_per_layer(self):
        assert len(core_reports(usps_design())) == 4
        assert len(core_reports(cifar10_design())) == 6

    def test_conv2_figures(self):
        rows = {c.layer: c for c in core_reports(usps_design())}
        conv2 = rows["conv2"]
        assert conv2.ii == 16
        assert conv2.trip_count == 4
        assert conv2.mac_lanes == 150

    def test_pool_has_no_mac_lanes(self):
        rows = {c.layer: c for c in core_reports(usps_design())}
        assert rows["pool1"].mac_lanes == 0
        assert rows["pool1"].ii == 1

    def test_fc_lanes_equal_outputs(self):
        rows = {c.layer: c for c in core_reports(cifar10_design())}
        assert rows["fc1"].mac_lanes == 64
        assert rows["fc2"].mac_lanes == 10

    def test_latency_positive(self):
        for c in core_reports(cifar10_design()):
            assert c.latency > 0 and c.depth >= 1


class TestRenderReport:
    def test_sections_present(self):
        text = render_report(usps_design())
        assert "per-core synthesis estimates" in text
        assert "network summary" in text
        assert "device utilization" in text

    def test_mentions_bottleneck_and_fit(self):
        text = render_report(cifar10_design())
        assert "conv1" in text
        assert "fits xc7vx485t" in text
