"""Unit tests for layer specifications."""

import pytest

from repro.core import ConvLayerSpec, FCLayerSpec, PoolLayerSpec
from repro.errors import ConfigurationError, ShapeError


class TestConvSpec:
    def test_shape_inference(self):
        s = ConvLayerSpec(name="c", in_fm=3, out_fm=12, kh=5, kw=5)
        assert s.out_shape((3, 32, 32)) == (12, 28, 28)

    def test_channel_mismatch_rejected(self):
        s = ConvLayerSpec(name="c", in_fm=3, out_fm=12, kh=5)
        with pytest.raises(ShapeError):
            s.out_shape((4, 32, 32))

    def test_ii_equation4(self):
        s = ConvLayerSpec(name="c", in_fm=6, out_fm=16, kh=5, in_ports=6, out_ports=1)
        assert s.ii == 16

    def test_fully_parallel_ii_one(self):
        s = ConvLayerSpec(name="c", in_fm=6, out_fm=16, kh=5, in_ports=6, out_ports=16)
        assert s.ii == 1

    def test_ports_must_divide(self):
        with pytest.raises(ConfigurationError):
            ConvLayerSpec(name="c", in_fm=6, out_fm=16, kh=5, in_ports=4)
        with pytest.raises(ConfigurationError):
            ConvLayerSpec(name="c", in_fm=6, out_fm=16, kh=5, out_ports=5)

    def test_groups(self):
        s = ConvLayerSpec(name="c", in_fm=12, out_fm=36, kh=5, in_ports=3, out_ports=6)
        assert s.in_group == 4 and s.out_group == 6

    def test_macs_per_image(self):
        s = ConvLayerSpec(name="c", in_fm=3, out_fm=12, kh=5)
        assert s.macs_per_image(32, 32) == 28 * 28 * 12 * 3 * 25

    def test_flops_twice_macs(self):
        s = ConvLayerSpec(name="c", in_fm=1, out_fm=6, kh=5)
        assert s.flops_per_image(16, 16) == 2 * s.macs_per_image(16, 16)

    def test_weight_count(self):
        s = ConvLayerSpec(name="c", in_fm=6, out_fm=16, kh=5)
        assert s.weight_count() == 16 * 6 * 25 + 16

    def test_with_ports(self):
        s = ConvLayerSpec(name="c", in_fm=6, out_fm=16, kh=5)
        s2 = s.with_ports(6, 4)
        assert (s2.in_ports, s2.out_ports) == (6, 4)
        assert (s.in_ports, s.out_ports) == (1, 1)  # original untouched

    def test_describe_mentions_ports(self):
        s = ConvLayerSpec(name="c", in_fm=1, out_fm=6, kh=5, out_ports=6, activation="tanh")
        d = s.describe()
        assert "1in/6out" in d and "tanh" in d


class TestPoolSpec:
    def test_preserves_fm_count(self):
        with pytest.raises(ConfigurationError):
            PoolLayerSpec(name="p", in_fm=6, out_fm=8)

    def test_symmetric_ports_required(self):
        with pytest.raises(ConfigurationError):
            PoolLayerSpec(name="p", in_fm=6, out_fm=6, in_ports=2, out_ports=3)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            PoolLayerSpec(name="p", in_fm=6, out_fm=6, mode="median")

    def test_shape(self):
        s = PoolLayerSpec(name="p", in_fm=6, out_fm=6)
        assert s.out_shape((6, 12, 12)) == (6, 6, 6)

    def test_no_macs(self):
        assert PoolLayerSpec(name="p", in_fm=6, out_fm=6).macs_per_image(12, 12) == 0

    def test_ii_is_group(self):
        s = PoolLayerSpec(name="p", in_fm=12, out_fm=12, in_ports=1, out_ports=1)
        assert s.ii == 12


class TestFCSpec:
    def test_single_port_enforced(self):
        with pytest.raises(ConfigurationError):
            FCLayerSpec(name="f", in_fm=64, out_fm=10, in_ports=2, out_ports=2)

    def test_requires_flat_input(self):
        s = FCLayerSpec(name="f", in_fm=64, out_fm=10)
        with pytest.raises(ShapeError):
            s.out_shape((64, 2, 2))
        assert s.out_shape((64, 1, 1)) == (10, 1, 1)

    def test_ii_is_input_count(self):
        assert FCLayerSpec(name="f", in_fm=900, out_fm=64).ii == 900

    def test_macs(self):
        assert FCLayerSpec(name="f", in_fm=64, out_fm=10).macs_per_image(1, 1) == 640

    def test_weight_count(self):
        assert FCLayerSpec(name="f", in_fm=64, out_fm=10).weight_count() == 650

    def test_acc_lanes_validated(self):
        with pytest.raises(ConfigurationError):
            FCLayerSpec(name="f", in_fm=64, out_fm=10, acc_lanes=0)

    def test_zero_fm_rejected(self):
        with pytest.raises(ConfigurationError):
            FCLayerSpec(name="f", in_fm=0, out_fm=10)
